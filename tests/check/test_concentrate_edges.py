"""CHERI Concentrate boundary cases, pinned.

Covers the encoding's delicate edges: zero-length bounds, top == 2**32,
CRRL/CRAM at the maximum exponent (including the XLEN truncation of
CRRL's 2**32 result), and the representable-range edge that CSetAddr
must detect.  The hypothesis block checks the encode/decode invariants
over arbitrary requested regions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cheri import concentrate
from repro.cheri.capability import root_capability
from repro.isa.instructions import Op
from repro.simt.pipeline import _CRR_FN

MASK32 = 0xFFFFFFFF


# ---------------------------------------------------------------------------
# set_bounds: length 0 and top == 2**32
# ---------------------------------------------------------------------------

def test_set_bounds_length_zero_is_exact_and_tagged():
    cap, exact = root_capability().set_bounds(0x1234, 0)
    assert exact and cap.tag
    assert (cap.base, cap.top, cap.length) == (0x1234, 0x1234, 0)


def test_set_bounds_top_at_address_space_limit():
    root = root_capability()
    cap, exact = root.set_bounds(0xFFFFFFFF, 1)
    assert exact and cap.tag
    assert (cap.base, cap.top) == (0xFFFFFFFF, 1 << 32)
    cap, exact = root.set_bounds(0xFFFF0000, 0x10000)
    assert exact and cap.tag
    assert (cap.base, cap.top) == (0xFFFF0000, 1 << 32)
    cap, exact = root.set_bounds(0, 1 << 32)
    assert exact and cap.tag
    assert (cap.base, cap.top) == (0, 1 << 32)


# ---------------------------------------------------------------------------
# CRRL / CRAM at the exponent extremes
# ---------------------------------------------------------------------------

def test_crrl_cram_max_exponent():
    assert concentrate.crrl(0xFFFFFFFF) == 1 << 32
    assert concentrate.crml(0xFFFFFFFF) == 0xE0000000
    assert concentrate.crrl(0xFFFFF000) == 1 << 32
    assert concentrate.crrl(0x80000000) == 0x80000000
    assert concentrate.crml(0x80000000) == 0xF0000000


def test_crrl_pipeline_truncates_to_xlen():
    # The CRRL *instruction* returns an XLEN-wide register value:
    # crrl(0xFFFFFFFF) = 2**32 must truncate to 0, not saturate to
    # 0xFFFFFFFF (which a caller could mistake for a representable
    # length).  This was an actual pipeline bug.
    assert _CRR_FN[Op.CRRL](0xFFFFFFFF) == 0
    assert _CRR_FN[Op.CRRL](0xFFFFF000) == 0
    assert _CRR_FN[Op.CRRL](0x80000000) == 0x80000000


def test_crrl_cram_small_lengths():
    assert concentrate.crrl(0) == 0
    assert concentrate.crml(0) == MASK32
    assert concentrate.crrl(1) == 1
    assert concentrate.crml(1) == MASK32


# ---------------------------------------------------------------------------
# set_addr at the representable-range edge
# ---------------------------------------------------------------------------

def test_set_addr_representable_edge_pinned():
    # 0x101 rounds to 0x120 (internal exponent), giving bounds
    # [0x1000, 0x1120) with a representable window wider than the
    # bounds; the edges were measured from the encoding itself.
    cap, exact = root_capability().set_bounds(0x1000, 0x101)
    assert not exact
    assert (cap.base, cap.top) == (0x1000, 0x1120)
    assert cap.set_addr(0x137F).tag       # last representable above
    assert not cap.set_addr(0x1380).tag   # first unrepresentable
    assert cap.set_addr(0xF80).tag        # last representable below
    assert not cap.set_addr(0xF7F).tag


def test_set_addr_edge_discoverable_by_walk():
    # Walking upward from top in granule steps must hit the edge in a
    # bounded number of steps, and tag loss must coincide exactly with
    # the decoded bounds changing (representability = decode equality).
    cap, _ = root_capability().set_bounds(0x1000, 0x101)
    reference = concentrate.decode_bounds(cap.bounds, cap.addr)
    edge = None
    for step in range(1, 256):
        addr = cap.top + 32 * step
        if not cap.set_addr(addr).tag:
            edge = addr
            break
    assert edge is not None
    assert concentrate.decode_bounds(cap.bounds, edge) != reference
    assert concentrate.decode_bounds(cap.bounds, edge - 32) == reference


# ---------------------------------------------------------------------------
# Encoding invariants over arbitrary regions
# ---------------------------------------------------------------------------

@settings(max_examples=500, deadline=None)
@given(base=st.integers(0, MASK32),
       length=st.integers(0, 1 << 32))
def test_encode_bounds_invariants(base, length):
    top = min(base + length, 1 << 32)
    bounds, exact, actual_base, actual_top = concentrate.encode_bounds(
        base, top)
    # Rounding is only ever outward.
    assert actual_base <= base
    assert top <= actual_top
    # Exactness means no rounding happened.
    assert exact == (actual_base == base and actual_top == top)
    # Decoding at the requested base must reproduce the actual bounds.
    assert concentrate.decode_bounds(bounds, base) == (actual_base,
                                                       actual_top)


@settings(max_examples=500, deadline=None)
@given(base=st.integers(0, MASK32), length=st.integers(0, MASK32))
def test_crrl_cram_alignment_contract(base, length):
    # CRRL/CRAM's documented use: aligning base down to CRAM(len) and
    # padding the length to CRRL(len) always gives exact bounds.
    mask = concentrate.crml(length)
    aligned_base = base & mask
    padded = concentrate.crrl(length)
    if aligned_base + padded > 1 << 32:
        aligned_base = ((1 << 32) - padded) & mask
    _, exact, actual_base, actual_top = concentrate.encode_bounds(
        aligned_base, aligned_base + padded)
    assert exact
    assert (actual_base, actual_top) == (aligned_base, aligned_base + padded)
    assert padded >= length
