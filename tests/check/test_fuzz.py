"""The differential fuzzer: clean on the current simulator, and able to
find + shrink an injected bug.  The long seeded run is CI-only (set
``REPRO_FUZZ_CI=1``).
"""

import os

import pytest

from repro.check.fuzz import (
    SCHEDULE,
    FuzzReport,
    generate_case,
    run_case,
    run_fuzz,
    shrink_case,
)
from repro.isa.instructions import Op


def test_fuzz_smoke_all_kinds_clean(tmp_path):
    # Two full rotations of the generator schedule must pass cleanly.
    report = run_fuzz(seed=1, budget=2 * len(SCHEDULE),
                      out_dir=str(tmp_path))
    assert isinstance(report, FuzzReport)
    assert report.cases == 2 * len(SCHEDULE)
    assert report.ok, report.summary()
    assert not list(tmp_path.iterdir())  # no reproducers for clean runs


def test_cases_are_deterministic():
    for index in (0, 3, 5, 11):
        a = generate_case(7, index)
        b = generate_case(7, index)
        assert (a.kind, a.body, a.init_regs, a.source) == (
            b.kind, b.body, b.init_regs, b.source)


def test_branchy_kind_is_branch_heavy_and_divergent():
    index = SCHEDULE.index("branchy")
    case = generate_case(3, index)
    assert case.kind == "branchy"
    branches = sum(1 for line in case.body if ", L" in line)
    # ~30% branch probability vs the alu mix's 8%: a branchy body is
    # reliably branch-heavy (deterministic for a fixed seed).
    assert branches >= len(case.body) // 8
    # Per-lane scrambled operands, so the branches actually diverge.
    assert any(len(set(values)) > 1
               for values in case.init_regs.values())


def test_kinds_filter_restricts_the_rotation(tmp_path):
    report = run_fuzz(seed=5, budget=4, kinds=("branchy",),
                      out_dir=str(tmp_path))
    assert report.cases == 4
    assert report.ok, report.summary()


def test_unknown_kind_is_rejected():
    with pytest.raises(ValueError):
        run_fuzz(seed=0, budget=1, kinds=("turbo",))


def test_time_budget_stops_early():
    report = run_fuzz(seed=2, budget=None, time_budget=0.0)
    assert report.cases == 0 and report.ok


def test_fuzzer_finds_and_shrinks_injected_bug(monkeypatch, tmp_path):
    from repro.simt import pipeline
    monkeypatch.setitem(pipeline._INT_R_FN, Op.XOR,
                        lambda a, b: (a | b) & 0xFFFFFFFF)
    found = None
    for index in range(64):
        case = generate_case(0, index)
        if case.kind == "kernel":
            continue  # kernels also xor, but seq cases shrink better
        outcome = run_case(case)
        if outcome is not None:
            found = (case, outcome)
            break
    assert found is not None, "injected xor bug survived 64 fuzz cases"
    case, (signature, message) = found
    assert signature == "divergence"
    reduced = shrink_case(case, signature)
    assert len(reduced) < len(case.body)
    assert len(reduced) <= 3
    assert any("xor" in line for line in reduced)


def test_reproducer_file_written_for_failures(monkeypatch, tmp_path):
    from repro.simt import pipeline
    monkeypatch.setitem(pipeline._INT_R_FN, Op.AND,
                        lambda a, b: (a | b) & 0xFFFFFFFF)
    report = run_fuzz(seed=0, budget=32, out_dir=str(tmp_path))
    assert not report.ok
    failure = report.failures[0]
    assert failure.path and os.path.exists(failure.path)
    text = open(failure.path).read()
    assert "generate_case(seed=0, index=%d)" % failure.index in text
    assert "divergence" in text


@pytest.mark.skipif(not os.environ.get("REPRO_FUZZ_CI"),
                    reason="long seeded fuzz run; set REPRO_FUZZ_CI=1")
def test_fuzz_seeded_minute_budget(tmp_path):
    report = run_fuzz(seed=0, budget=None, time_budget=60,
                      out_dir=str(tmp_path))
    assert report.cases > 100
    assert report.ok, report.summary()
