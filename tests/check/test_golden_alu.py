"""Golden-model scalar semantics vs the pipeline's ALU, property-style.

The golden model's operation tables were written independently against
the ISA definition; these tests pin them to the pipeline's
:mod:`repro.simt.alu` implementations over adversarial operand pools so
any later edit to either side must keep them in agreement.  The pinned
cases at the bottom are regression tests for real bugs: the RISC-V
fmin/fmax NaN and signed-zero rules, fdiv's signed-zero divisor, and
FCVT saturation on infinities.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import golden
from repro.simt import alu, pipeline

MASK32 = 0xFFFFFFFF

#: Operand pool: uniform random bits plus the corner values where
#: signed/unsigned and FP semantics go wrong first.
_CORNERS = (
    0, 1, 2, 0x7FFFFFFF, 0x80000000, 0x80000001, 0xFFFFFFFF, 0xFFFFFFFE,
    31, 32, 0xAAAAAAAA, 0x55555555,
    # FP bit patterns: signed zeros, infs, NaNs, denormals, FLT_MAX.
    0x3F800000, 0xBF800000, 0x7F800000, 0xFF800000, 0x7FC00000,
    0x7F800001, 0x00000001, 0x007FFFFF, 0x7F7FFFFF, 0x4F000000,
    0xCF000000,
)

WORD = st.one_of(st.integers(0, MASK32), st.sampled_from(_CORNERS))


@settings(max_examples=300, deadline=None)
@given(op=st.sampled_from(sorted(golden._INT2, key=lambda o: o.name)),
       a=WORD, b=WORD)
def test_int2_matches_pipeline(op, a, b):
    assert golden._INT2[op](a, b) == pipeline._INT_R_FN[op](a, b)


@settings(max_examples=200, deadline=None)
@given(op=st.sampled_from(sorted(golden._INT_IMM, key=lambda o: o.name)),
       a=WORD, imm=st.integers(-2048, 2047))
def test_int_imm_matches_pipeline(op, a, imm):
    # The pipeline applies immediates pre-masked to 32 bits.
    assert (golden._INT_IMM[op](a, imm & MASK32)
            == pipeline._INT_I_FN[op](a, imm & MASK32))


@settings(max_examples=200, deadline=None)
@given(op=st.sampled_from(sorted(golden._BRANCH, key=lambda o: o.name)),
       a=WORD, b=WORD)
def test_branch_matches_pipeline(op, a, b):
    assert bool(golden._BRANCH[op](a, b)) == bool(
        pipeline._BRANCH_FN[op](a, b))


@settings(max_examples=200, deadline=None)
@given(op=st.sampled_from(sorted(golden._AMO, key=lambda o: o.name)),
       old=WORD, value=WORD)
def test_amo_matches_pipeline(op, old, value):
    assert (golden._AMO[op](old, value) & MASK32
            == pipeline._AMO_FN[op](old, value) & MASK32)


@settings(max_examples=400, deadline=None)
@given(op=st.sampled_from(sorted(golden._FLOAT2, key=lambda o: o.name)),
       a=WORD, b=WORD)
def test_float2_matches_pipeline(op, a, b):
    assert golden._FLOAT2[op](a, b) == pipeline._FLOAT_RR_FN[op](a, b)


@settings(max_examples=400, deadline=None)
@given(op=st.sampled_from(sorted(golden._FLOAT1, key=lambda o: o.name)),
       a=WORD)
def test_float1_matches_pipeline(op, a):
    assert golden._FLOAT1[op](a) == pipeline._FLOAT_UNARY_FN[op](a)


# ---------------------------------------------------------------------------
# Pinned regressions (each was an actual divergence before the fix)
# ---------------------------------------------------------------------------

_POS_ZERO, _NEG_ZERO = 0x00000000, 0x80000000
_QNAN = 0x7FC00000
_SNAN = 0x7F800001
_ONE = 0x3F800000
_POS_INF, _NEG_INF = 0x7F800000, 0xFF800000


def test_fmin_fmax_nan_returns_other_operand():
    fmin, fmax = alu.FLOAT_FNS["fmin"], alu.FLOAT_FNS["fmax"]
    assert fmin(_QNAN, _ONE) == _ONE
    assert fmin(_ONE, _QNAN) == _ONE
    assert fmax(_SNAN, _ONE) == _ONE
    assert fmax(_ONE, _SNAN) == _ONE


def test_fmin_fmax_both_nan_canonicalises():
    assert alu.FLOAT_FNS["fmin"](_QNAN, _SNAN) == _QNAN
    assert alu.FLOAT_FNS["fmax"](0xFFC00001, _SNAN) == _QNAN


def test_fmin_fmax_signed_zero_ordering():
    # RISC-V: -0.0 < +0.0 for fmin/fmax purposes.
    fmin, fmax = alu.FLOAT_FNS["fmin"], alu.FLOAT_FNS["fmax"]
    assert fmin(_POS_ZERO, _NEG_ZERO) == _NEG_ZERO
    assert fmin(_NEG_ZERO, _POS_ZERO) == _NEG_ZERO
    assert fmax(_POS_ZERO, _NEG_ZERO) == _POS_ZERO
    assert fmax(_NEG_ZERO, _POS_ZERO) == _POS_ZERO


def test_fdiv_signed_zero_divisor():
    fdiv = alu.FLOAT_FNS["fdiv"]
    assert fdiv(_ONE, _POS_ZERO) == _POS_INF
    assert fdiv(_ONE, _NEG_ZERO) == _NEG_INF          # sign must XOR
    assert fdiv(0xBF800000, _NEG_ZERO) == _POS_INF    # -1 / -0 = +inf
    assert fdiv(_POS_ZERO, _POS_ZERO) == _QNAN        # 0/0 invalid
    assert fdiv(_QNAN, _POS_ZERO) == _QNAN            # NaN propagates


def test_arithmetic_nan_results_stay_canonical_when_warm():
    # fadd/fsub/fmul/fdiv/fsqrt with a NaN operand must produce the
    # canonical quiet NaN, never an operand payload.  Found by the
    # branchy fuzz kind: CPython's specializing interpreter flips which
    # operand's payload ``float + float`` propagates once BINARY_OP
    # warms up, so payload-propagating results diverged between the
    # pipeline and the golden model depending on code-path warmth.
    _NAN_IN = 0xFFFFFFFE  # negative NaN with an all-ones payload
    for fns in (alu.FLOAT_FNS,
                {name: golden._FLOAT2[op] for name, op in
                 (("fadd", golden.Op.FADD_S), ("fsub", golden.Op.FSUB_S),
                  ("fmul", golden.Op.FMUL_S), ("fdiv", golden.Op.FDIV_S))}):
        for _ in range(64):  # warm the host's adaptive interpreter
            fns["fadd"](_ONE, 0x40000000)
        for name in ("fadd", "fsub", "fmul", "fdiv"):
            assert fns[name](_NAN_IN, _SNAN) == _QNAN, name
            assert fns[name](_SNAN, _NAN_IN) == _QNAN, name
            assert fns[name](_NAN_IN, _ONE) == _QNAN, name
            assert fns[name](_ONE, _NAN_IN) == _QNAN, name
    assert alu.FLOAT_FNS["fsqrt"](_NAN_IN) == _QNAN
    assert golden._FLOAT1[golden.Op.FSQRT_S](_NAN_IN) == _QNAN


def test_fcvt_saturates_infinities_and_nan():
    fcvt_w = alu.FLOAT_FNS["fcvt.w.s"]
    fcvt_wu = alu.FLOAT_FNS["fcvt.wu.s"]
    assert fcvt_w(_POS_INF) == 0x7FFFFFFF
    assert fcvt_w(_NEG_INF) == 0x80000000
    assert fcvt_w(_QNAN) == 0x7FFFFFFF                # NaN converts high
    assert fcvt_w(0x4F000000) == 0x7FFFFFFF           # 2**31 clamps
    assert fcvt_wu(_NEG_INF) == 0
    assert fcvt_wu(0xBF800000) == 0                   # -1.0 clamps to 0
