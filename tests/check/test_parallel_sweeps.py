"""Tests for the sharded fuzz / parallel lockstep sweep helpers."""

import pytest

from repro.check import lockstep as lockstep_mod
from repro.check.fuzz import run_fuzz, run_fuzz_parallel, shard_seed
from repro.check.lockstep import run_lockstep_sweep


class TestShardSeeds:
    def test_shard_zero_keeps_base_seed(self):
        assert shard_seed(1234, 0) == 1234

    def test_shards_are_deterministic_and_disjoint(self):
        seeds = [shard_seed(7, shard) for shard in range(8)]
        assert seeds == [shard_seed(7, shard) for shard in range(8)]
        assert len(set(seeds)) == 8

    def test_shard_seed_stays_in_signed_range(self):
        assert 0 <= shard_seed(0x7FFFFFFF, 63) <= 0x7FFFFFFF


class TestParallelFuzz:
    def test_budget_is_split_exactly(self, tmp_path):
        report = run_fuzz_parallel(seed=3, budget=5, jobs=2,
                                   out_dir=str(tmp_path))
        assert report.cases == 5
        assert report.ok, report.summary()

    def test_shard_zero_matches_serial_run(self, tmp_path):
        # jobs=1 must cover exactly the serial case schedule.
        serial = run_fuzz(seed=11, budget=6)
        sharded = run_fuzz_parallel(seed=11, budget=6, jobs=1,
                                    out_dir=str(tmp_path))
        assert sharded.cases == serial.cases
        assert sharded.ok == serial.ok

    def test_log_reports_each_shard(self, tmp_path):
        lines = []
        run_fuzz_parallel(seed=0, budget=4, jobs=2,
                          out_dir=str(tmp_path), log=lines.append)
        assert sum("shard 0" in line for line in lines) == 1
        assert sum("shard 1" in line for line in lines) == 1


class TestLockstepSweep:
    def test_serial_sweep_reports_wall_time(self):
        lines = []
        failures = run_lockstep_sweep(["VecAdd"], ["baseline"],
                                      log=lines.append)
        assert failures == 0
        assert any("VecAdd [baseline]" in line and "s)" in line
                   for line in lines)

    def test_parallel_sweep_covers_all_cells(self):
        lines = []
        failures = run_lockstep_sweep(["VecAdd"],
                                      ["baseline", "cheri_opt"],
                                      jobs=2, log=lines.append)
        assert failures == 0
        assert any("cheri_opt" in line for line in lines)
        assert any("2 worker processes" in line for line in lines)

    def test_divergence_is_counted_not_raised(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("synthetic divergence")

        monkeypatch.setattr(lockstep_mod, "check_benchmark", boom)
        lines = []
        failures = run_lockstep_sweep(["VecAdd"], ["baseline"],
                                      log=lines.append)
        assert failures == 1
        assert any("DIVERGED" in line for line in lines)
