"""Lockstep cross-check: the whole benchmark suite, fault lockstep, and
a sensitivity check that the harness actually detects divergences.
"""

import pytest

from repro.benchsuite import BENCHMARK_NAMES
from repro.check import DivergenceError, check_benchmark, check_program
from repro.check.golden import GoldenModel
from repro.isa.assembler import assemble_text
from repro.isa.instructions import Op
from repro.simt.config import SMConfig

CONFIGS = ("baseline", "cheri_opt", "boundscheck")


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_lockstep(name, config_name):
    """Every benchmark, in every mode, retires in architectural lockstep
    with the golden model (including the final full-state sweep)."""
    stats, checker = check_benchmark(name, config_name, scale=1)
    assert stats.cycles > 0
    assert checker.retired > 0
    assert checker.instructions >= checker.retired


# ---------------------------------------------------------------------------
# Fault lockstep
# ---------------------------------------------------------------------------

def _bounded_cap(length=64):
    from repro.cheri.capability import root_capability
    from repro.simt.config import HEAP_BASE
    cap, exact = root_capability().set_bounds(HEAP_BASE, length)
    assert exact
    return cap


def test_fault_lockstep_bounds_violation():
    program = assemble_text("clw t0, 64(a0)\nhalt")
    config = SMConfig.cheri_optimised(num_warps=2, num_lanes=4)
    stats, checker, fault = check_program(
        program, config, init_cap_regs={10: _bounded_cap(64)})
    assert stats is None
    assert type(fault).__name__ == "BoundsViolation"


def test_fault_lockstep_tag_violation():
    program = assemble_text("ccleartag a0, a0\nclw t0, 0(a0)\nhalt")
    config = SMConfig.cheri(num_warps=2, num_lanes=4)
    stats, checker, fault = check_program(
        program, config, init_cap_regs={10: _bounded_cap()})
    assert stats is None
    assert type(fault).__name__ == "TagViolation"


def test_in_bounds_access_is_not_a_fault():
    program = assemble_text("clw t0, 0(a0)\ncsw t0, 4(a0)\nhalt")
    config = SMConfig.cheri_optimised(num_warps=2, num_lanes=4)
    stats, checker, fault = check_program(
        program, config, init_cap_regs={10: _bounded_cap()})
    assert fault is None
    assert stats is not None and stats.cycles > 0


# ---------------------------------------------------------------------------
# Divergence-stress micro-kernels (masked compiled regions)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["vector", "jit"])
def test_divergence_micro_kernels_lockstep(backend, monkeypatch):
    """The irregular micro-kernels retire in golden-model lockstep on
    the interpreted and compiled tiers (thresholds lowered so the jit
    tier's masked region variants actually engage within the run)."""
    from repro.simt.backend.jit import JITBackend
    from tests.simt.kernels import branch_ladder, frontier_loop
    monkeypatch.setattr(JITBackend, "_hot_threshold", 4)
    monkeypatch.setattr(JITBackend, "_promote_after", 1)
    for prog, regs in (branch_ladder(), frontier_loop()):
        config = SMConfig.baseline(num_warps=2, num_lanes=4).with_(
            backend=backend)
        stats, checker, fault = check_program(prog, config,
                                              init_regs=regs)
        assert fault is None
        assert stats is not None and checker.retired > 0


# ---------------------------------------------------------------------------
# Sensitivity: the checker must actually catch a wrong pipeline
# ---------------------------------------------------------------------------

def test_lockstep_detects_injected_alu_bug(monkeypatch):
    from repro.simt import pipeline
    monkeypatch.setitem(pipeline._INT_R_FN, Op.XOR,
                        lambda a, b: (a | b) & 0xFFFFFFFF)
    program = assemble_text("xor t0, a1, a2\nhalt")
    config = SMConfig.baseline(num_warps=1, num_lanes=2)
    with pytest.raises(DivergenceError) as info:
        check_program(program, config,
                      init_regs={11: [0b1100, 0b1010], 12: [0b1010, 0b0110]})
    assert "x5" in str(info.value)


def test_lockstep_detects_injected_memory_bug(monkeypatch):
    from repro.simt import pipeline
    from repro.simt.config import HEAP_BASE
    original = pipeline._AMO_FN[Op.AMOADD_W]
    monkeypatch.setitem(pipeline._AMO_FN, Op.AMOADD_W,
                        lambda old, v: (old - v) & 0xFFFFFFFF)
    program = assemble_text("amoadd.w t0, a0, a1\nhalt")
    config = SMConfig.baseline(num_warps=1, num_lanes=2)
    with pytest.raises(DivergenceError):
        check_program(program, config,
                      init_regs={10: [HEAP_BASE, HEAP_BASE],
                                 11: [5, 7]})
    assert pipeline._AMO_FN[Op.AMOADD_W] is not original  # still patched


# ---------------------------------------------------------------------------
# Golden model basics (independent of the pipeline)
# ---------------------------------------------------------------------------

def test_golden_model_runs_standalone():
    program = assemble_text("""
        addi t0, zero, 0
        addi t1, zero, 5
    loop:
        addi t0, t0, 1
        blt  t0, t1, loop
        halt
    """)
    golden = GoldenModel(program, num_threads=2, cheri=False)
    steps = 0
    while not all(golden.halted) and steps < 100:
        for thread in range(2):
            if not golden.halted[thread]:
                golden.step(thread)
        steps += 1
    assert all(golden.halted)
    assert golden.gp[0][5] == 5 and golden.gp[1][5] == 5
