"""Disassembler/assembler round-trip: every encodable instruction must
survive encode -> decode -> format -> parse -> encode with identical bits.

This pins the full textual surface of the ISA: any op whose disassembly
the assembler cannot parse back (or parses to different fields) fails
here immediately rather than silently breaking listings and reproducer
files.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import encoding as enc
from repro.isa.assembler import AssemblerError, assemble_text
from repro.isa.disasm import format_instr
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Instr, Op

REG = st.integers(0, 31)
IMM12 = st.integers(-2048, 2047)
SHAMT = st.integers(0, 31)
UIMM20 = st.integers(0, 0xFFFFF)
UIMM12 = st.integers(0, 4095)
BIMM = st.integers(-2048, 2047).map(lambda v: v * 2)
JIMM = st.integers(-(1 << 19), (1 << 19) - 1).map(lambda v: v * 2)

#: Ops whose encodings are shared with a baseline op and only decode
#: under ``cheri_mode=True``.
_CHERI_ALIASES = frozenset({Op.AUIPCC, Op.CJAL, Op.CAMOADD_W})

_NO_FIELDS = frozenset({Op.FENCE, Op.ECALL, Op.EBREAK})


def _strategy(op):
    """A strategy of valid Instr values for ``op`` (None if unknown)."""
    three_reg = (op in enc._R_TYPE or op in enc._AMO_FUNCT5
                 or op is Op.CAMOADD_W or op in enc._CHERI_RR)
    if three_reg:
        return st.builds(lambda rd, rs1, rs2:
                         Instr(op, rd=rd, rs1=rs1, rs2=rs2), REG, REG, REG)
    if op in enc._FP:
        _, _, rs2sel = enc._FP[op]
        if rs2sel is not None:
            return st.builds(lambda rd, rs1: Instr(op, rd=rd, rs1=rs1),
                             REG, REG)
        return st.builds(lambda rd, rs1, rs2:
                         Instr(op, rd=rd, rs1=rs1, rs2=rs2), REG, REG, REG)
    if op in enc._CHERI_UNARY:
        return st.builds(lambda rd, rs1: Instr(op, rd=rd, rs1=rs1), REG, REG)
    if op in enc._I_ARITH or op in (Op.JALR, Op.CJALR, Op.CINCOFFSETIMM):
        return st.builds(lambda rd, rs1, imm:
                         Instr(op, rd=rd, rs1=rs1, imm=imm), REG, REG, IMM12)
    if op in enc._SHIFTS:
        return st.builds(lambda rd, rs1, imm:
                         Instr(op, rd=rd, rs1=rs1, imm=imm), REG, REG, SHAMT)
    if op is Op.CSETBOUNDSIMM:
        return st.builds(lambda rd, rs1, imm:
                         Instr(op, rd=rd, rs1=rs1, imm=imm), REG, REG, UIMM12)
    if op in enc._LOADS or op in enc._CLOADS:
        return st.builds(lambda rd, rs1, imm:
                         Instr(op, rd=rd, rs1=rs1, imm=imm), REG, REG, IMM12)
    if op in enc._STORES or op in enc._CSTORES:
        return st.builds(lambda rs1, rs2, imm:
                         Instr(op, rs1=rs1, rs2=rs2, imm=imm), REG, REG, IMM12)
    if op in enc._BRANCHES:
        return st.builds(lambda rs1, rs2, imm:
                         Instr(op, rs1=rs1, rs2=rs2, imm=imm), REG, REG, BIMM)
    if op in (Op.LUI, Op.AUIPC, Op.AUIPCC):
        return st.builds(lambda rd, imm: Instr(op, rd=rd, imm=imm),
                         REG, UIMM20)
    if op in (Op.JAL, Op.CJAL):
        return st.builds(lambda rd, imm: Instr(op, rd=rd, imm=imm),
                         REG, JIMM)
    if op in _NO_FIELDS:
        return st.just(Instr(op))
    if op in enc._SIM_OPS:
        return st.builds(lambda rd, rs1, imm:
                         Instr(op, rd=rd, rs1=rs1, imm=imm), REG, REG, IMM12)
    return None


_ALL_OPS = sorted(Op, key=lambda o: o.name)


def test_every_op_has_a_strategy():
    missing = [op.name for op in _ALL_OPS if _strategy(op) is None]
    assert not missing, "round-trip test covers no strategy for %s" % missing


@settings(max_examples=1500, deadline=None)
@given(data=st.data())
def test_encode_disasm_assemble_roundtrip(data):
    op = data.draw(st.sampled_from(_ALL_OPS))
    instr = data.draw(_strategy(op))
    word = encode(instr)
    cheri_mode = op in _CHERI_ALIASES
    decoded = decode(word, cheri_mode=cheri_mode)
    assert decoded.op is op
    text = format_instr(decoded)
    program = assemble_text(text)
    assert len(program) == 1
    assert encode(program[0]) == word


@pytest.mark.parametrize("baseline_op,cheri_op", [
    (Op.AUIPC, Op.AUIPCC),
    (Op.JAL, Op.CJAL),
    (Op.AMOADD_W, Op.CAMOADD_W),
])
def test_purecap_aliases_share_encodings(baseline_op, cheri_op):
    fields = (dict(rd=3, imm=0x42) if baseline_op is not Op.AMOADD_W
              else dict(rd=3, rs1=4, rs2=5))
    word = encode(Instr(baseline_op, **fields))
    assert encode(Instr(cheri_op, **fields)) == word
    assert decode(word, cheri_mode=False).op is baseline_op
    assert decode(word, cheri_mode=True).op is cheri_op


def test_sim_ops_roundtrip_both_forms():
    # Bare form (all fields zero) and the full rd/rs1/imm form.
    for op in (Op.BARRIER, Op.HALT, Op.TRAP):
        bare = Instr(op)
        assert format_instr(bare) == op.name.lower()
        assert encode(assemble_text(op.name.lower())[0]) == encode(bare)
        full = Instr(op, rd=1, rs1=2, imm=3)
        text = format_instr(full)
        assert text != op.name.lower()
        assert encode(assemble_text(text)[0]) == encode(full)


def test_bare_ops_reject_operands():
    for text in ("ecall x1", "fence a0, a1", "ebreak 3"):
        with pytest.raises(AssemblerError):
            assemble_text(text)
    with pytest.raises(AssemblerError):
        assemble_text("halt ra")  # 1 operand: neither bare nor full form
