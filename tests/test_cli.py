"""Tests for the command-line interface and tracing facility."""

import pytest

from repro.cli import main
from repro.eval.tracing import TraceRecorder, trace_kernel


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "VecAdd" in out and "MotionEst" in out

    def test_run_benchmark(self, capsys):
        assert main(["run", "VecAdd", "--warps", "2", "--lanes", "4"]) == 0
        out = capsys.readouterr().out
        assert "PASSED self test" in out
        assert "cycles=" in out

    def test_run_purecap(self, capsys):
        assert main(["run", "Histogram", "--mode", "purecap",
                     "--warps", "2", "--lanes", "4"]) == 0
        out = capsys.readouterr().out
        assert "capability registers/thread" in out

    def test_listing(self, capsys):
        assert main(["listing", "VecAdd", "--mode", "purecap"]) == 0
        out = capsys.readouterr().out
        assert "clw" in out and "halt" in out

    def test_listing_baseline_has_no_cheri(self, capsys):
        assert main(["listing", "VecAdd", "--mode", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "clw" not in out and "lw" in out

    def test_trace(self, capsys):
        assert main(["trace", "VecAdd", "--warps", "2", "--lanes", "4",
                     "--limit", "10"]) == 0
        out = capsys.readouterr().out
        assert "instruction" in out
        assert "w0" in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "126753" in out

    def test_experiment_fig7(self, capsys):
        assert main(["experiment", "fig7"]) == 0
        assert "setBounds" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "NotABenchmark"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestRunJson:
    def test_run_json_is_machine_readable(self, capsys):
        import json
        assert main(["run", "VecAdd", "--json",
                     "--warps", "2", "--lanes", "4"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["benchmark"] == "VecAdd"
        assert data["stats"]["cycles"] > 0
        assert data["stats"]["ipc"] > 0
        assert data["geometry"] == {"num_warps": 2, "num_lanes": 4}


class TestProfileCommand:
    def test_profile_source_view_sums_exactly(self, capsys):
        assert main(["profile", "VecAdd", "--config", "cheri_opt",
                     "--source", "--warps", "4", "--lanes", "4"]) == 0
        out = capsys.readouterr().out
        assert "exact match" in out
        assert "cycle profile by source line" in out
        assert "(idle)" in out

    def test_profile_is_case_insensitive(self, capsys):
        assert main(["profile", "transpose", "--config", "cheri_opt",
                     "--warps", "4", "--lanes", "4"]) == 0
        out = capsys.readouterr().out
        assert "Transpose" in out and "exact match" in out

    def test_profile_pc_view(self, capsys):
        assert main(["profile", "vecadd", "--pc",
                     "--warps", "4", "--lanes", "4"]) == 0
        out = capsys.readouterr().out
        assert "exact match" in out and "instruction" in out

    def test_profile_perfetto_export(self, tmp_path, capsys):
        import json

        from repro.obs import validate_trace
        out_path = str(tmp_path / "trace.json")
        assert main(["profile", "vecadd", "--perfetto", out_path,
                     "--warps", "4", "--lanes", "4"]) == 0
        assert "perfetto trace written" in capsys.readouterr().out
        with open(out_path) as stream:
            trace = json.load(stream)
        assert validate_trace(trace) == []

    def test_profile_json_view(self, capsys):
        import json
        assert main(["profile", "vecadd", "--json",
                     "--warps", "4", "--lanes", "4"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["profile"]["attributed_cycles"] == data["cycles"]

    def test_profile_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["profile", "NotABenchmark"])


class TestBenchJson:
    def test_bench_json_reports_suite(self, tmp_path, monkeypatch, capsys):
        import json

        from repro.eval import runner
        monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path / "simcache"))
        monkeypatch.setattr(runner, "BENCHMARK_NAMES",
                            ("VecAdd", "Reduce"))
        runner.clear_cache()
        try:
            assert main(["bench", "--json", "--jobs", "1",
                         "--warps", "4", "--lanes", "4", "cheri_opt"]) == 0
        finally:
            runner.clear_cache()
        data = json.loads(capsys.readouterr().out)
        suite = data["configs"]["cheri_opt"]["benchmarks"]
        assert set(suite) == {"VecAdd", "Reduce"}
        for record in suite.values():
            assert record["cycles"] > 0
            assert record["cache_source"] in ("sim", "disk", "memo")
        assert "runner_counters" in data


class TestDiffCommand:
    def _manifests(self, tmp_path):
        import copy
        import json

        from repro.obs import manifest as mf
        base = {
            "schema": mf.SCHEMA, "config": "cheri_opt", "scale": 1,
            "benchmarks": {
                "VecAdd": {"stats": {"cycles": 1000, "dram_txns": 50}},
            },
        }
        worse = copy.deepcopy(base)
        worse["benchmarks"]["VecAdd"]["stats"]["cycles"] = 1500
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        with open(a, "w") as stream:
            json.dump(base, stream)
        with open(b, "w") as stream:
            json.dump(worse, stream)
        return a, b

    def test_identical_manifests_exit_zero(self, tmp_path, capsys):
        a, _ = self._manifests(tmp_path)
        assert main(["diff", a, a]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        a, b = self._manifests(tmp_path)
        assert main(["diff", a, b]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_threshold_tames_regression(self, tmp_path, capsys):
        a, b = self._manifests(tmp_path)
        assert main(["diff", a, b, "--threshold", "0.6"]) == 0

    def test_missing_file_exits_two(self, tmp_path):
        a, _ = self._manifests(tmp_path)
        assert main(["diff", a, str(tmp_path / "nope.json")]) == 2


class TestTracing:
    def make_runtime(self):
        from repro.nocl import NoCLRuntime
        from repro.simt import SMConfig
        return NoCLRuntime("baseline",
                           config=SMConfig.baseline(num_warps=2,
                                                    num_lanes=4))

    def test_trace_kernel_records_issues(self):
        from repro.nocl import i32, kernel, ptr

        @kernel
        def tiny(a: ptr[i32]):
            a[threadIdx.x] = threadIdx.x

        rt = self.make_runtime()
        buf = rt.alloc(i32, 8)
        stats, recorder = trace_kernel(rt, tiny, 1, 4, [buf])
        assert len(recorder) > 0
        assert len(recorder) <= stats.instrs_issued
        first = recorder.entries[0]
        assert first.pc == 0
        assert first.active_lanes == [0, 1, 2, 3]
        # Tracing must be detached afterwards.
        assert rt.sm.trace is None

    def test_limit_and_dropped(self):
        recorder = TraceRecorder(limit=2)
        from repro.isa.instructions import Instr, Op
        for i in range(5):
            recorder.record(i, 0, 4 * i, Instr(Op.ADDI, rd=1, rs1=0, imm=0),
                            [0])
        assert len(recorder) == 2
        assert recorder.dropped == 3
        assert "3 further issues" in recorder.render()

    def test_warp_filter(self):
        recorder = TraceRecorder(only_warp=1)
        from repro.isa.instructions import Instr, Op
        recorder.record(0, 0, 0, Instr(Op.HALT), [0])
        recorder.record(0, 1, 0, Instr(Op.HALT), [0])
        assert len(recorder) == 1
        assert recorder.entries[0].warp == 1

    def test_empty_lane_set_renders(self):
        """An entry with no active lanes must not crash __str__."""
        from repro.isa.instructions import Instr, Op
        recorder = TraceRecorder(num_lanes=4)
        recorder.record(0, 0, 0, Instr(Op.HALT), [])
        text = str(recorder.entries[0])
        assert "[....]" in text
        # Without a known lane count the mask is simply empty.
        recorder = TraceRecorder()
        recorder.record(0, 0, 0, Instr(Op.HALT), [])
        assert "[]" in str(recorder.entries[0])

    def test_mask_rendered_at_sm_lane_count(self):
        """Partial masks pad out to the SM's warp width."""
        from repro.isa.instructions import Instr, Op
        recorder = TraceRecorder(num_lanes=8)
        recorder.record(0, 0, 0, Instr(Op.HALT), [0, 2])
        assert "[x.x.....]" in str(recorder.entries[0])

    def test_trace_kernel_uses_runtime_lane_count(self):
        from repro.nocl import i32, kernel, ptr

        @kernel
        def tiny(a: ptr[i32]):
            if threadIdx.x < 2:
                a[threadIdx.x] = threadIdx.x

        rt = self.make_runtime()  # 4 lanes
        buf = rt.alloc(i32, 8)
        _, recorder = trace_kernel(rt, tiny, 1, 4, [buf])
        assert recorder.num_lanes == 4
        # Divergent entries still render a full-width 4-lane mask.
        masks = [str(e).split("[")[1].split("]")[0]
                 for e in recorder.entries]
        assert all(len(m) == 4 for m in masks)
        assert any("." in m for m in masks), "kernel diverges"
