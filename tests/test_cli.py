"""Tests for the command-line interface and tracing facility."""

import pytest

from repro.cli import main
from repro.eval.tracing import TraceRecorder, trace_kernel


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "VecAdd" in out and "MotionEst" in out

    def test_run_benchmark(self, capsys):
        assert main(["run", "VecAdd", "--warps", "2", "--lanes", "4"]) == 0
        out = capsys.readouterr().out
        assert "PASSED self test" in out
        assert "cycles=" in out

    def test_run_purecap(self, capsys):
        assert main(["run", "Histogram", "--mode", "purecap",
                     "--warps", "2", "--lanes", "4"]) == 0
        out = capsys.readouterr().out
        assert "capability registers/thread" in out

    def test_listing(self, capsys):
        assert main(["listing", "VecAdd", "--mode", "purecap"]) == 0
        out = capsys.readouterr().out
        assert "clw" in out and "halt" in out

    def test_listing_baseline_has_no_cheri(self, capsys):
        assert main(["listing", "VecAdd", "--mode", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "clw" not in out and "lw" in out

    def test_trace(self, capsys):
        assert main(["trace", "VecAdd", "--warps", "2", "--lanes", "4",
                     "--limit", "10"]) == 0
        out = capsys.readouterr().out
        assert "instruction" in out
        assert "w0" in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "126753" in out

    def test_experiment_fig7(self, capsys):
        assert main(["experiment", "fig7"]) == 0
        assert "setBounds" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "NotABenchmark"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTracing:
    def make_runtime(self):
        from repro.nocl import NoCLRuntime
        from repro.simt import SMConfig
        return NoCLRuntime("baseline",
                           config=SMConfig.baseline(num_warps=2,
                                                    num_lanes=4))

    def test_trace_kernel_records_issues(self):
        from repro.nocl import i32, kernel, ptr

        @kernel
        def tiny(a: ptr[i32]):
            a[threadIdx.x] = threadIdx.x

        rt = self.make_runtime()
        buf = rt.alloc(i32, 8)
        stats, recorder = trace_kernel(rt, tiny, 1, 4, [buf])
        assert len(recorder) > 0
        assert len(recorder) <= stats.instrs_issued
        first = recorder.entries[0]
        assert first.pc == 0
        assert first.active_lanes == [0, 1, 2, 3]
        # Tracing must be detached afterwards.
        assert rt.sm.trace is None

    def test_limit_and_dropped(self):
        recorder = TraceRecorder(limit=2)
        from repro.isa.instructions import Instr, Op
        for i in range(5):
            recorder.record(i, 0, 4 * i, Instr(Op.ADDI, rd=1, rs1=0, imm=0),
                            [0])
        assert len(recorder) == 2
        assert recorder.dropped == 3
        assert "3 further issues" in recorder.render()

    def test_warp_filter(self):
        recorder = TraceRecorder(only_warp=1)
        from repro.isa.instructions import Instr, Op
        recorder.record(0, 0, 0, Instr(Op.HALT), [0])
        recorder.record(0, 1, 0, Instr(Op.HALT), [0])
        assert len(recorder) == 1
        assert recorder.entries[0].warp == 1
