"""Run manifests: emission from run_suite, loading, and regression diff."""

import copy
import json
import os

import pytest

from repro.eval import runner
from repro.obs import manifest as mf

GEOMETRY = dict(num_warps=4, num_lanes=4)
BENCHES = ("VecAdd", "Reduce")


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path / "simcache"))
    monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path / "manifests"))
    monkeypatch.setattr(runner, "BENCHMARK_NAMES", BENCHES)
    runner.clear_cache()
    yield tmp_path
    runner.clear_cache()


def _suite_manifest(tmp_path, config="cheri_opt"):
    runner.run_suite(config, jobs=1, **GEOMETRY)
    path = os.path.join(str(tmp_path / "manifests"),
                        "%s_s1.json" % config)
    assert os.path.exists(path), "run_suite must emit a manifest"
    return mf.load_manifest(path), path


class TestEmission:
    def test_run_suite_writes_manifest_with_full_stats(self, isolated):
        manifest, _ = _suite_manifest(isolated)
        assert manifest["schema"] == mf.SCHEMA
        assert manifest["config"] == "cheri_opt"
        assert manifest["mode"] == "purecap"
        assert manifest["geometry"] == GEOMETRY
        assert set(manifest["benchmarks"]) == set(BENCHES)
        for record in manifest["benchmarks"].values():
            assert record["cache_source"] in ("sim", "disk", "memo")
            assert record["stats"]["cycles"] > 0
            assert "ipc" in record["stats"]
        assert manifest["sources_digest"]
        assert manifest["wall_seconds"] >= 0

    def test_manifest_stats_match_runner_results(self, isolated):
        results = runner.run_suite("baseline", jobs=1, **GEOMETRY)
        manifest, _ = _suite_manifest(isolated, config="baseline")
        for name, result in results.items():
            assert (manifest["benchmarks"][name]["stats"]["cycles"]
                    == result.stats.cycles)

    def test_set_manifests_false_disables_emission(self, isolated,
                                                   monkeypatch):
        runner.set_manifests(False)
        try:
            runner.run_suite("baseline", jobs=1, **GEOMETRY)
            assert not os.path.exists(
                os.path.join(str(isolated / "manifests"),
                             "baseline_s1.json"))
        finally:
            runner.set_manifests(True)

    def test_write_failure_is_silent(self, isolated, monkeypatch):
        # Point the manifest dir somewhere unwritable: runs still succeed.
        monkeypatch.setenv("REPRO_MANIFEST_DIR",
                           "/proc/definitely/not/writable")
        results = runner.run_suite("baseline", jobs=1, **GEOMETRY)
        assert set(results) == set(BENCHES)


class TestDiff:
    def test_identical_manifests_have_no_regressions(self, isolated):
        manifest, _ = _suite_manifest(isolated)
        rows = mf.diff_manifests(manifest, manifest)
        assert rows and not any(r["regressed"] for r in rows)

    def test_growth_beyond_threshold_flags_regression(self, isolated):
        manifest, _ = _suite_manifest(isolated)
        worse = copy.deepcopy(manifest)
        stats = worse["benchmarks"]["VecAdd"]["stats"]
        stats["cycles"] = int(stats["cycles"] * 1.5)
        rows = mf.diff_manifests(manifest, worse, threshold=0.02)
        flagged = [r for r in rows if r["regressed"]]
        assert [(r["benchmark"], r["metric"]) for r in flagged] \
            == [("VecAdd", "cycles")]
        # The reverse direction (an improvement) is not a regression.
        rows = mf.diff_manifests(worse, manifest, threshold=0.02)
        assert not any(r["regressed"] for r in rows)

    def test_growth_within_threshold_passes(self, isolated):
        manifest, _ = _suite_manifest(isolated)
        near = copy.deepcopy(manifest)
        stats = near["benchmarks"]["VecAdd"]["stats"]
        stats["cycles"] = int(stats["cycles"] * 1.01)
        rows = mf.diff_manifests(manifest, near, threshold=0.02)
        assert not any(r["regressed"] for r in rows)

    def test_missing_benchmark_is_flagged(self, isolated):
        manifest, _ = _suite_manifest(isolated)
        short = copy.deepcopy(manifest)
        del short["benchmarks"]["Reduce"]
        rows = mf.diff_manifests(manifest, short)
        assert any(r["metric"] == "<missing>" and r["regressed"]
                   for r in rows)

    def test_render_diff_mentions_regressions(self, isolated):
        manifest, _ = _suite_manifest(isolated)
        worse = copy.deepcopy(manifest)
        worse["benchmarks"]["VecAdd"]["stats"]["cycles"] *= 2
        text = mf.render_diff(mf.diff_manifests(manifest, worse))
        assert "REGRESSED" in text and "cycles" in text


class TestDiffEdgeCases:
    """Zero baselines and schema drift: the diff must stay finite and
    the CLI must exit cleanly when a metric exists in only one manifest."""

    def test_zero_baseline_has_no_infinite_ratio(self, isolated):
        manifest, _ = _suite_manifest(isolated)
        old = copy.deepcopy(manifest)
        new = copy.deepcopy(manifest)
        old["benchmarks"]["VecAdd"]["stats"]["dram_spill_bytes"] = 0
        new["benchmarks"]["VecAdd"]["stats"]["dram_spill_bytes"] = 128
        rows = mf.diff_manifests(old, new)
        [row] = [r for r in rows if r["metric"] == "dram_spill_bytes"
                 and r["benchmark"] == "VecAdd"]
        # Growth from zero is a regression, but with no finite ratio.
        assert row["regressed"] and row["ratio"] is None
        text = mf.render_diff(rows)
        assert "inf" not in text and "+new" in text

    def test_zero_on_both_sides_is_unchanged(self, isolated):
        manifest, _ = _suite_manifest(isolated)
        both = copy.deepcopy(manifest)
        both["benchmarks"]["VecAdd"]["stats"]["dram_spill_bytes"] = 0
        rows = mf.diff_manifests(both, both)
        [row] = [r for r in rows if r["metric"] == "dram_spill_bytes"
                 and r["benchmark"] == "VecAdd"]
        assert not row["regressed"] and row["delta"] == 0
        mf.render_diff(rows)  # must not raise on the None ratio

    def test_metric_in_only_one_manifest_is_a_note_not_a_regression(
            self, isolated):
        manifest, _ = _suite_manifest(isolated)
        short = copy.deepcopy(manifest)
        del short["benchmarks"]["VecAdd"]["stats"]["dram_spill_bytes"]
        for old, new, side in ((manifest, short, "new"),
                               (short, manifest, "old")):
            rows = mf.diff_manifests(old, new)
            [row] = [r for r in rows if r["metric"] == "dram_spill_bytes"
                     and r["benchmark"] == "VecAdd"]
            assert not row["regressed"]
            assert row["note"] == "only in %s" % ("old" if side == "new"
                                                  else "new")
            assert "only in" in mf.render_diff(rows)

    def test_cli_diff_exits_zero_on_schema_drift(self, isolated, tmp_path,
                                                 capsys):
        from repro.cli import main
        manifest, path = _suite_manifest(isolated)
        short = copy.deepcopy(manifest)
        del short["benchmarks"]["VecAdd"]["stats"]["dram_spill_bytes"]
        short_path = mf.write_manifest(short, str(tmp_path / "short.json"))
        assert main(["diff", path, short_path]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_cli_diff_exits_one_on_regression(self, isolated, tmp_path,
                                              capsys):
        from repro.cli import main
        manifest, path = _suite_manifest(isolated)
        worse = copy.deepcopy(manifest)
        worse["benchmarks"]["VecAdd"]["stats"]["cycles"] *= 2
        worse_path = mf.write_manifest(worse, str(tmp_path / "worse.json"))
        assert main(["diff", path, worse_path]) == 1
        assert "REGRESSED" in capsys.readouterr().out


class TestRoundTrip:
    def test_write_and_load(self, isolated, tmp_path):
        manifest, _ = _suite_manifest(isolated)
        path = mf.write_manifest(manifest, str(tmp_path / "copy.json"))
        loaded = mf.load_manifest(path)
        assert loaded == json.loads(json.dumps(manifest))

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            mf.load_manifest(str(path))
