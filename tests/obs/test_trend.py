"""Tests for longitudinal trend reporting (``repro obs report``)."""

import json

import pytest

from repro.obs.trend import (
    BENCH_THRESHOLD,
    bench_trends,
    group_key,
    host_key,
    load_bench_history,
    manifest_trends,
    render_bench_trends,
    trend_report,
)


def _record(rev, cold, host=None, **extra):
    record = {"git_rev": rev, "config": "baseline", "scale": 4,
              "cpu_count": 8, "cold_serial_seconds": cold}
    if host is not None:
        record["host"] = host
    record.update(extra)
    return record


HOST_A = {"cpu_model": "EPYC 7763", "cpu_count": 8,
          "python_version": "3.11"}
HOST_B = {"cpu_model": "Xeon 8480", "cpu_count": 64,
          "python_version": "3.11"}


class TestGrouping:
    def test_host_key_fallback_for_legacy_records(self):
        # Records written before host provenance was stamped only carry
        # cpu_count; they must still form one comparable group.
        legacy = {"cpu_count": 8}
        assert host_key(legacy) == "unknown/8c"
        assert host_key(_record("a", 1.0, host=HOST_A)) \
            == "EPYC 7763/8c/py3.11"

    def test_cross_host_records_never_compared(self):
        history = [_record("a", 10.0, host=HOST_A),
                   _record("b", 99.0, host=HOST_B)]
        rows = bench_trends(history)
        # Two groups of one record each: no pair exists, so a 10x
        # wall-clock jump across machines cannot flag.
        assert len(rows) == 2
        assert all(row["old"] is None for row in rows)
        assert not any(row["regressed"] for row in rows)

    def test_backend_splits_groups(self):
        history = [_record("a", 10.0, host=HOST_A),
                   _record("b", 2.0, host=HOST_A, backend="vector")]
        keys = {group_key(record) for record in history}
        assert len(keys) == 2


class TestRegressionFlag:
    def test_flags_above_threshold(self):
        history = [_record("a", 10.0, host=HOST_A),
                   _record("b", 12.0, host=HOST_A)]
        (row,) = bench_trends(history)
        assert row["old"] == 10.0
        assert row["new"] == 12.0
        assert row["ratio"] == pytest.approx(1.2)
        assert row["regressed"]

    def test_within_threshold_passes(self):
        history = [_record("a", 10.0, host=HOST_A),
                   _record("b", 10.5, host=HOST_A)]
        (row,) = bench_trends(history)
        assert not row["regressed"]

    def test_improvement_never_flags(self):
        history = [_record("a", 10.0, host=HOST_A),
                   _record("b", 5.0, host=HOST_A)]
        (row,) = bench_trends(history)
        assert not row["regressed"]

    def test_noise_floor_suppresses_cache_hit_jitter(self):
        # Warm cache-hit paths time at single milliseconds; a 3x blip
        # there is scheduler noise, not a regression.
        history = [_record("a", 10.0, host=HOST_A,
                           warm_memo_seconds=0.002),
                   _record("b", 10.0, host=HOST_A,
                           warm_memo_seconds=0.006)]
        rows = {row["metric"]: row for row in bench_trends(history)}
        assert not rows["warm_memo_seconds"]["regressed"]

    def test_latest_vs_previous_not_vs_oldest(self):
        history = [_record("a", 20.0, host=HOST_A),
                   _record("b", 10.0, host=HOST_A),
                   _record("c", 10.4, host=HOST_A)]
        (row,) = bench_trends(history)
        assert row["old"] == 10.0
        assert not row["regressed"]
        assert [value for _rev, value in row["series"]] \
            == [20.0, 10.0, 10.4]

    def test_breakdown_rows(self):
        # bench_runner records the breakdown as {benchmark: seconds}.
        history = [_record("a", 3.0, host=HOST_A,
                           cold_serial_breakdown={"VecAdd": 1.0,
                                                  "Reduce": 2.0}),
                   _record("b", 3.7, host=HOST_A,
                           cold_serial_breakdown={"VecAdd": 1.0,
                                                  "Reduce": 2.7})]
        rows = {row["metric"]: row
                for row in bench_trends(history, breakdown=True)}
        assert rows["cold_serial_seconds[VecAdd]"]["new"] == 1.0
        assert not rows["cold_serial_seconds[VecAdd]"]["regressed"]
        assert rows["cold_serial_seconds[Reduce]"]["regressed"]


class TestRendering:
    def test_report_text_marks_regressions(self):
        history = [_record("a", 10.0, host=HOST_A),
                   _record("b", 15.0, host=HOST_A)]
        text = render_bench_trends(bench_trends(history))
        assert "<< REGRESSED" in text
        assert "+50.0%" in text
        assert "EPYC 7763" in text

    def test_clean_history_says_so(self):
        history = [_record("a", 10.0, host=HOST_A)]
        text = render_bench_trends(bench_trends(history))
        assert "no wall-clock regressions" in text


def _manifest(cycles, backend="vector"):
    return {"backend": backend,
            "benchmarks": {"VecAdd": {"stats": {"cycles": cycles}}}}


class TestManifestChain:
    def test_pairwise_chaining(self, tmp_path):
        paths = []
        for index, cycles in enumerate((100, 100, 150)):
            path = tmp_path / ("m%d.json" % index)
            path.write_text(json.dumps(_manifest(cycles)))
            paths.append(str(path))
        steps, regressed = manifest_trends(paths)
        assert len(steps) == 2
        assert len(regressed) == 1
        assert regressed[0]["metric"] == "cycles"
        assert regressed[0]["new_manifest"] == "m2.json"


class TestTrendReport:
    def test_report_over_bench_file(self, tmp_path):
        bench = tmp_path / "BENCH_runner.json"
        bench.write_text(json.dumps([_record("a", 10.0, host=HOST_A),
                                     _record("b", 15.0, host=HOST_A)]))
        text, regressed = trend_report(bench_path=str(bench))
        assert regressed == 1
        assert "BENCH trajectory" in text
        assert "<< REGRESSED" in text
        # A looser explicit threshold can wave the same jump through.
        _text, regressed = trend_report(bench_path=str(bench),
                                        threshold=0.60)
        assert regressed == 0

    def test_missing_history_is_not_an_error(self, tmp_path):
        text, regressed = trend_report(
            bench_path=str(tmp_path / "absent.json"))
        assert regressed == 0
        assert "no history" in text

    def test_rejects_non_list_history(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_bench_history(str(path))

    def test_checked_in_history_gates_clean(self):
        # The repo's own BENCH trajectory must pass its own gate.
        import os
        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_runner.json")
        text, regressed = trend_report(bench_path=path,
                                       threshold=BENCH_THRESHOLD)
        assert regressed == 0
        assert "BENCH trajectory" in text
