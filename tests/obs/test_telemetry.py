"""Unit tests for the telemetry layer: metrics registry, histograms
with exact streaming percentile bounds, span tracing, and cross-process
trace-context propagation."""

import json
import multiprocessing

import pytest

from repro.obs.telemetry import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    active_tracer,
    install,
    load_ndjson_spans,
    new_id,
)


# ---------------------------------------------------------------------------
# Instruments


class TestCounterGauge:
    def test_counter_monotonic(self):
        counter = Counter("jobs_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("depth")
        gauge.set(7)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 6

    def test_callback_backed_instruments(self):
        backing = {"value": 3}
        counter = Counter("cb_total", fn=lambda: backing["value"])
        gauge = Gauge("cb", fn=lambda: backing["value"] * 2)
        assert counter.value == 3
        assert gauge.value == 6
        backing["value"] = 10
        assert counter.value == 10
        assert gauge.value == 20


class TestHistogram:
    def test_bucket_edges_inclusive_upper(self):
        hist = Histogram("latency", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            hist.observe(value)
        # bisect_left: a value equal to an edge lands in that bucket.
        assert hist.counts == [2, 2, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(104.0)

    def test_quantile_bounds_are_exact(self):
        hist = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        values = [0.05, 0.2, 0.3, 5.0]
        for value in values:
            hist.observe(value)
        # rank(0.5) over 4 samples -> index 2 -> value 0.3, which lives
        # in the (0.1, 1.0] bucket with observed min 0.2 / max 0.3.
        low, high = hist.quantile_bounds(0.5)
        assert low == 0.2
        assert high == 0.3
        assert low <= sorted(values)[2] <= high
        assert hist.quantile(0.0) == 0.05
        assert hist.quantile(1.0) == 5.0

    def test_no_drop_oldest_bias(self):
        # The failure mode of the old reservoir: a recent burst of fast
        # observations must not erase the slow majority from the tail.
        hist = Histogram("latency")
        for _ in range(6000):
            hist.observe(50.0)
        for _ in range(4096):
            hist.observe(0.0005)
        assert hist.count == 10096
        assert hist.quantile(0.99) == 50.0
        assert hist.quantile(0.50) == 50.0
        assert hist.quantile(0.05) == 0.0005

    def test_empty_histogram(self):
        hist = Histogram("latency")
        assert hist.quantile_bounds(0.99) == (0.0, 0.0)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p99"] == 0.0

    def test_snapshot_buckets(self):
        hist = Histogram("latency", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(3.0)
        snapshot = hist.snapshot()
        assert snapshot["buckets"] == {"1": 1, "+Inf": 1}
        assert snapshot["min"] == 0.5
        assert snapshot["max"] == 3.0

    def test_memory_is_bounded_by_buckets(self):
        hist = Histogram("latency")
        for index in range(100_000):
            hist.observe(index * 0.001)
        assert len(hist.counts) == len(LATENCY_BUCKETS) + 1


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total")
        second = registry.counter("a_total")
        assert first is second
        with pytest.raises(ValueError):
            registry.gauge("a_total")

    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("serve_executed_total",
                         help="jobs executed").inc(2)
        registry.gauge("serve_queue_depth").set(3)
        hist = registry.histogram("serve_job_latency_seconds",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(9.0)
        text = registry.exposition()
        assert "# HELP serve_executed_total jobs executed" in text
        assert "# TYPE serve_executed_total counter" in text
        assert "serve_executed_total 2" in text
        assert "serve_queue_depth 3" in text
        # Prometheus histogram buckets are cumulative.
        assert 'serve_job_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'serve_job_latency_seconds_bucket{le="1"} 2' in text
        assert 'serve_job_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "serve_job_latency_seconds_count 3" in text
        assert text.endswith("\n")

    def test_ndjson_snapshot_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x_total").inc(7)
        path = str(tmp_path / "series" / "metrics.ndjson")
        assert registry.write_snapshot(path, now=100.0) == path
        assert registry.write_snapshot(path, now=200.0) == path
        lines = [json.loads(line)
                 for line in open(path).read().splitlines()]
        assert [line["ts"] for line in lines] == [100.0, 200.0]
        assert lines[0]["metrics"]["x_total"] == 7


# ---------------------------------------------------------------------------
# Tracing


class TestSpans:
    def test_ids_and_finish(self):
        span = Span("serve.job")
        assert len(span.trace_id) == 16
        assert span.end is None
        span.finish(end=span.start + 1.5)
        assert span.duration == pytest.approx(1.5)
        # finish() is idempotent: the first end sticks.
        span.finish(end=span.start + 99.0)
        assert span.duration == pytest.approx(1.5)

    def test_as_dict_from_dict_roundtrip(self):
        span = Span("worker.execute", process="worker-3",
                    attrs={"job": "j1"})
        span.finish(status="error")
        clone = Span.from_dict(span.as_dict())
        assert clone.as_dict() == span.as_dict()

    def test_tracer_nesting_via_context_stack(self):
        tracer = Tracer(process="test")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        inner_rec, outer_rec = tracer.spans
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer_rec.span_id
        assert inner_rec.trace_id == outer_rec.trace_id

    def test_exception_marks_span_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        assert tracer.spans[0].status == "error"
        assert tracer.spans[0].end is not None

    def test_inject_extract(self):
        span = Span("serve.job")
        context = Tracer.inject(span)
        assert Tracer.extract(context) == {"trace_id": span.trace_id,
                                           "span_id": span.span_id}
        assert Tracer.extract(None) is None
        assert Tracer.extract({"trace_id": "x"}) is None
        child = Tracer().start_span("worker.execute", parent=context)
        assert child.trace_id == span.trace_id
        assert child.parent_id == span.span_id

    def test_ingest_merges_foreign_spans(self):
        worker = Tracer(process="worker-0")
        with worker.span("worker.execute"):
            pass
        scheduler = Tracer(process="scheduler")
        scheduler.ingest(worker.drain())
        assert worker.spans == []
        assert scheduler.spans[0].process == "worker-0"

    def test_span_limit_drops_not_grows(self):
        tracer = Tracer(limit=2)
        for index in range(5):
            tracer.record(tracer.start_span("s%d" % index))
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_ndjson_roundtrip(self, tmp_path):
        tracer = Tracer(process="test")
        with tracer.span("a", attrs={"k": 1}):
            pass
        path = str(tmp_path / "trace.ndjson")
        assert tracer.to_ndjson(path) == path
        spans = load_ndjson_spans(path)
        assert spans == tracer.to_dicts()

    def test_install_and_active(self):
        assert active_tracer() is None
        tracer = Tracer()
        previous = install(tracer)
        try:
            assert previous is None
            assert active_tracer() is tracer
        finally:
            install(previous)
        assert active_tracer() is None


def _child_main(context, queue):
    """Spawned-process child: execute under a propagated trace context
    (exactly the worker pool's shape) and ship the spans back."""
    tracer = Tracer(process="child")
    install(tracer)
    try:
        with tracer.span("worker.execute", parent=Tracer.extract(context)):
            with tracer.span("runner.run"):
                pass
        queue.put(tracer.drain())
    finally:
        install(None)


class TestCrossProcessPropagation:
    def test_context_propagates_through_spawned_process(self):
        parent = Tracer(process="scheduler")
        root = parent.start_span("serve.job")
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        process = ctx.Process(target=_child_main,
                              args=(Tracer.inject(root), queue))
        process.start()
        try:
            child_spans = queue.get(timeout=60)
        finally:
            process.join(timeout=10)
        parent.ingest(child_spans)
        parent.record(root)
        spans = {span.name: span for span in parent.spans}
        execute = spans["worker.execute"]
        runner = spans["runner.run"]
        assert execute.trace_id == root.trace_id
        assert execute.parent_id == root.span_id
        assert execute.process == "child"
        assert runner.trace_id == root.trace_id
        assert runner.parent_id == execute.span_id


class TestPerfettoExport:
    def test_spans_become_service_tracks(self):
        from repro.obs.perfetto import spans_to_trace_events, validate_trace
        tracer = Tracer(process="scheduler")
        root = tracer.start_span("serve.job", start=10.0)
        tracer.record(root, end=10.5)
        worker = Tracer(process="worker-0")
        child = worker.start_span("worker.execute", parent=root,
                                  start=10.1)
        worker.record(child, end=10.4)
        spans = tracer.to_dicts() + worker.to_dicts()
        events = spans_to_trace_events(spans)
        assert validate_trace({"traceEvents": events}) == []
        tracks = {event["args"]["name"] for event in events
                  if event["name"] == "thread_name"}
        assert tracks == {"scheduler", "worker-0"}
        begins = [event for event in events if event["ph"] == "B"]
        ends = [event for event in events if event["ph"] == "E"]
        assert len(begins) == len(ends) == 2
        job = [event for event in begins
               if event["name"] == "serve.job"][0]
        assert job["ts"] == 0                      # relative to earliest
        assert job["args"]["trace_id"] == root.trace_id

    def test_unfinished_spans_are_skipped(self):
        from repro.obs.perfetto import spans_to_trace_events
        open_span = Span("serve.job").as_dict()
        assert spans_to_trace_events([open_span]) == []


def test_new_id_shape_and_uniqueness():
    ids = {new_id() for _ in range(100)}
    assert len(ids) == 100
    assert all(len(value) == 16 for value in ids)
    assert all(int(value, 16) >= 0 for value in ids)
