"""ProfileCollector: exact cycle attribution and source mapping."""

import pytest

from repro.benchsuite import ALL_BENCHMARKS
from repro.nocl import NoCLRuntime, i32, kernel, ptr
from repro.obs import ProfileCollector, attach, detach
from repro.simt import SMConfig


def _profiled_run(name="VecAdd", config=None, mode="purecap", scale=1):
    bench = ALL_BENCHMARKS[name]
    cfg = config or SMConfig.cheri_optimised(num_warps=4, num_lanes=4)
    rt = NoCLRuntime(mode, config=cfg)
    profiler = ProfileCollector()
    attach(rt.sm, profiler)
    stats = bench.run(rt, scale=scale)
    detach(rt.sm)
    return stats, profiler


class TestAttribution:
    @pytest.mark.parametrize("name", ("VecAdd", "Transpose", "Reduce"))
    def test_attributed_cycles_sum_to_total(self, name):
        stats, profiler = _profiled_run(name)
        assert profiler.total_attributed() == stats.cycles

    def test_attribution_exact_across_multiple_launches(self):
        """Histogram launches two kernels; cycles still sum exactly."""
        stats, profiler = _profiled_run("Histogram")
        assert profiler.total_attributed() == stats.cycles
        assert len(profiler.kernels) >= 1

    def test_by_source_folds_all_pc_cycles(self):
        stats, profiler = _profiled_run("Transpose")
        pc_total = sum(r["cycles"] for r in profiler.by_pc())
        src_total = sum(r["cycles"] for r in profiler.by_source())
        assert pc_total == src_total
        assert pc_total + profiler.idle_cycles == stats.cycles

    def test_baseline_mode_also_exact(self):
        stats, profiler = _profiled_run(
            "Reduce", config=SMConfig.baseline(num_warps=4, num_lanes=4),
            mode="baseline")
        assert profiler.total_attributed() == stats.cycles


class TestSourceMapping:
    def test_hot_lines_carry_kernel_source_text(self):
        _, profiler = _profiled_run("VecAdd")
        rows = profiler.by_source()
        texts = [r["source"] for r in rows if r["line"]]
        assert any("a[i]" in t or "c[i]" in t for t in texts), texts

    def test_prologue_cycles_have_no_line(self):
        _, profiler = _profiled_run("VecAdd")
        rows = profiler.by_source()
        prologue = [r for r in rows if r["line"] is None]
        assert prologue and all(r["source"] == "<compiler prologue>"
                                for r in prologue)

    def test_line_info_survives_spilling_kernels(self):
        """MatMul's register pressure exercises the regalloc rewrite."""
        _, profiler = _profiled_run("MatMul")
        rows = profiler.by_source()
        lined = sum(r["cycles"] for r in rows if r["line"])
        total = sum(r["cycles"] for r in rows)
        # The vast majority of cycles must map to real source lines.
        assert lined > 0.5 * total


class TestRendering:
    def test_render_source_reports_exact_match(self):
        stats, profiler = _profiled_run("Transpose")
        text = profiler.render_source(stats)
        assert "exact match" in text
        assert "stats.cycles = %d" % stats.cycles in text
        assert "(idle)" in text

    def test_render_pc_lists_hot_instructions(self):
        stats, profiler = _profiled_run("VecAdd")
        text = profiler.render_pc(stats, limit=10)
        assert "exact match" in text

    def test_render_warps_and_timeline(self):
        _, profiler = _profiled_run("VecAdd")
        warps = profiler.render_warps()
        assert "warp" in warps and "barriers" in warps
        assert "|" in profiler.render_timeline()

    def test_as_dict_round_trips_json(self):
        import json
        stats, profiler = _profiled_run("VecAdd")
        data = json.loads(json.dumps(profiler.as_dict()))
        assert data["attributed_cycles"] == stats.cycles
        assert data["by_source"]


class TestWarpBreakdown:
    def test_all_active_warps_appear(self):
        stats, profiler = _profiled_run("VecAdd")
        rows = profiler.warp_rows()
        assert rows
        assert sum(r["cycles"] for r in rows) + profiler.idle_cycles \
            == stats.cycles
