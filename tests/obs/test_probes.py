"""Probe-bus mechanics: dispatch, attach/detach, and event coverage."""

import pytest

from repro.nocl import NoCLRuntime, i32, kernel, ptr
from repro.obs import ProbeBus, attach, detach
from repro.obs.probes import EVENTS
from repro.simt import SMConfig


@kernel
def _store_tid(a: ptr[i32]):
    a[threadIdx.x] = threadIdx.x


@kernel
def _sync_and_store(a: ptr[i32]):
    a[threadIdx.x] = threadIdx.x
    syncthreads()
    a[threadIdx.x] = a[threadIdx.x] + 1


class RecordingSink:
    """Subscribes to every event and logs (event, args) tuples."""

    def __init__(self):
        self.events = []

    def __getattr__(self, name):
        if name.startswith("on_") and name[3:] in EVENTS:
            event = name[3:]

            def handler(*args, _event=event):
                self.events.append((_event, args))
            return handler
        raise AttributeError(name)

    def of(self, event):
        return [args for name, args in self.events if name == event]


def _runtime(mode="baseline"):
    cfg = (SMConfig.cheri_optimised(num_warps=2, num_lanes=4)
           if mode == "purecap"
           else SMConfig.baseline(num_warps=2, num_lanes=4))
    return NoCLRuntime(mode, config=cfg)


class TestBusMechanics:
    def test_attach_creates_bus_and_detach_clears_it(self):
        rt = _runtime()
        assert rt.sm.probes is None
        sink = RecordingSink()
        bus = attach(rt.sm, sink)
        assert isinstance(bus, ProbeBus)
        assert rt.sm.probes is bus
        assert detach(rt.sm) is bus
        assert rt.sm.probes is None
        # detach emits finish exactly once.
        assert len(sink.of("finish")) == 1
        assert detach(rt.sm) is None

    def test_partial_sinks_only_get_their_events(self):
        class IssueOnly:
            def __init__(self):
                self.count = 0

            def on_issue(self, *args):
                self.count += 1

        rt = _runtime()
        sink = IssueOnly()
        attach(rt.sm, sink)
        buf = rt.alloc(i32, 8)
        _run(rt, _store_tid, buf)
        detach(rt.sm)
        assert sink.count > 0

    def test_multiple_sinks_see_the_same_events(self):
        rt = _runtime()
        a, b = RecordingSink(), RecordingSink()
        attach(rt.sm, a)
        attach(rt.sm, b)
        buf = rt.alloc(i32, 8)
        _run(rt, _store_tid, buf)
        detach(rt.sm)
        assert a.of("issue") == b.of("issue")
        assert a.of("idle") == b.of("idle")

    def test_detach_sink_stops_delivery(self):
        rt = _runtime()
        sink = RecordingSink()
        bus = attach(rt.sm, sink)
        bus.detach_sink(sink)
        buf = rt.alloc(i32, 8)
        _run(rt, _store_tid, buf)
        assert sink.events == []


def _run(rt, src, buf, grid=1, block=8):
    return rt.launch(src, grid, block, [buf])


class TestEventCoverage:
    def test_issue_idle_launch_and_mem_events_fire(self):
        rt = _runtime()
        sink = RecordingSink()
        attach(rt.sm, sink)
        buf = rt.alloc(i32, 8)
        stats = _run(rt, _store_tid, buf)
        detach(rt.sm)
        assert len(sink.of("launch")) == 1
        assert sink.of("issue"), "kernel must issue instructions"
        assert sink.of("mem_txn"), "global stores must reach DRAM"
        # This tiny kernel underfills the SM: idle gaps must show up.
        assert sink.of("idle")
        # Every issue reports the issuing warp, the pc, and a stall tuple.
        for (cycle, warp, pc, instr, n_lanes, width, completion,
             stalls) in sink.of("issue"):
            assert 0 <= cycle < stats.cycles
            assert warp in (0, 1)
            assert pc % 4 == 0
            assert 1 <= n_lanes <= 4
            assert width >= 1
            assert completion > cycle
            assert len(stalls) == 4

    def test_cycle_accounting_invariant(self):
        """sum(issue widths) + sum(idle skips) == stats.cycles."""
        rt = _runtime("purecap")
        sink = RecordingSink()
        attach(rt.sm, sink)
        buf = rt.alloc(i32, 8)
        stats = _run(rt, _store_tid, buf)
        detach(rt.sm)
        issued = sum(args[5] for args in sink.of("issue"))
        idle = sum(until - cycle for cycle, until in sink.of("idle"))
        assert issued + idle == stats.cycles

    def test_barrier_event(self):
        rt = _runtime()
        sink = RecordingSink()
        attach(rt.sm, sink)
        buf = rt.alloc(i32, 8)
        _run(rt, _sync_and_store, buf)
        detach(rt.sm)
        assert sink.of("barrier")

    def test_issue_count_matches_stats(self):
        rt = _runtime("purecap")
        sink = RecordingSink()
        attach(rt.sm, sink)
        buf = rt.alloc(i32, 8)
        stats = _run(rt, _store_tid, buf)
        detach(rt.sm)
        assert len(sink.of("issue")) == stats.instrs_issued
