"""Manifest-write failures must be loud: logged once and counted.

Both manifest writers are best-effort by design (a read-only results
directory must never fail an experiment run or a service drain), but a
swallowed failure means silently lost provenance.  These tests pin the
whole visibility chain:

- the suite runner's ``_emit_manifest`` bumps
  ``RUNNER_STATS.manifest_write_failures`` and warns on stderr;
- the serve node's ``ServeMetrics`` carries the counter into its stats
  snapshot and the Prometheus exposition
  (``serve_manifest_write_failures_total``);
- ``repro top`` renders an alert line only when the counter is nonzero;
- ``repro obs report`` flags manifests whose banked runner counters
  recorded failures (a gap earlier in that process's trail).
"""

import json

from repro.eval.runner import RUNNER_STATS, _emit_manifest
from repro.serve.metrics import ServeMetrics
from repro.serve.top import render_frame
from repro.obs.trend import manifest_failure_alerts, trend_report


class TestRunnerEmitManifest:
    def test_write_failure_is_counted_and_warned(self, monkeypatch,
                                                 capsys):
        from repro.obs import manifest as mf

        def boom(*_args, **_kwargs):
            raise OSError("read-only results dir")

        monkeypatch.setattr(mf, "write_manifest", boom)
        before = RUNNER_STATS.snapshot()["manifest_write_failures"]
        assert _emit_manifest({}, "baseline", 1, 0.0) is None
        after = RUNNER_STATS.snapshot()["manifest_write_failures"]
        assert after == before + 1
        err = capsys.readouterr().err
        assert "manifest write failed" in err
        assert "read-only results dir" in err

    def test_swallowed_none_return_is_also_counted(self, monkeypatch,
                                                   capsys):
        # write_manifest eats filesystem errors and returns None; the
        # runner must count that path too, not just raised exceptions.
        from repro.obs import manifest as mf
        monkeypatch.setattr(mf, "write_manifest", lambda *_a, **_k: None)
        before = RUNNER_STATS.snapshot()["manifest_write_failures"]
        assert _emit_manifest({}, "baseline", 1, 0.0) is None
        assert RUNNER_STATS.snapshot()["manifest_write_failures"] \
            == before + 1
        assert "not writable" in capsys.readouterr().err

    def test_success_does_not_count(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        before = RUNNER_STATS.snapshot()["manifest_write_failures"]
        path = _emit_manifest({}, "baseline", 1, 0.0)
        assert path is not None
        after = RUNNER_STATS.snapshot()["manifest_write_failures"]
        assert after == before
        # The failure counter itself travels in the manifest.
        with open(path) as stream:
            manifest = json.load(stream)
        counters = manifest.get("runner_counters") or {}
        assert "manifest_write_failures" in counters


class TestServeMetricsCounter:
    def test_counter_in_snapshot_and_exposition(self):
        metrics = ServeMetrics()
        assert metrics.snapshot()["manifest_write_failures"] == 0
        metrics.manifest_write_failures += 1
        assert metrics.snapshot()["manifest_write_failures"] == 1
        exposition = metrics.registry.exposition()
        assert "serve_manifest_write_failures_total 1" in exposition


class TestTopAlertLine:
    def _stats(self, failures):
        return {"host": "h", "port": 1, "uptime_seconds": 1.0,
                "manifest_write_failures": failures}

    def test_alert_line_when_failures(self):
        frame = render_frame(self._stats(2), [])
        assert "manifest writes failed: 2" in frame

    def test_no_alert_when_clean(self):
        frame = render_frame(self._stats(0), [])
        assert "manifest writes failed" not in frame


class TestTrendAlerts:
    def _manifest_file(self, tmp_path, name, failures):
        path = tmp_path / name
        path.write_text(json.dumps({
            "benchmarks": {},
            "runner_counters": {"manifest_write_failures": failures},
        }))
        return str(path)

    def test_alerts_only_for_failing_manifests(self, tmp_path):
        clean = self._manifest_file(tmp_path, "clean.json", 0)
        broken = self._manifest_file(tmp_path, "broken.json", 3)
        alerts = manifest_failure_alerts([clean, broken])
        assert len(alerts) == 1
        assert "broken.json" in alerts[0]
        assert "3 manifest write failure(s)" in alerts[0]

    def test_report_section_appears(self, tmp_path):
        paths = [self._manifest_file(tmp_path, "a.json", 0),
                 self._manifest_file(tmp_path, "b.json", 1)]
        text, _regressed = trend_report(manifest_paths=paths)
        assert "manifest write failures" in text
        text, _regressed = trend_report(
            manifest_paths=[paths[0], paths[0]])
        assert "manifest write failures" not in text
