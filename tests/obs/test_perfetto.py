"""TimelineCollector: Perfetto/Chrome trace-event schema validity."""

import json

from repro.benchsuite import ALL_BENCHMARKS
from repro.nocl import NoCLRuntime
from repro.obs import TimelineCollector, attach, detach, validate_trace
from repro.simt import SMConfig


def _traced_run(name="VecAdd", limit=200_000):
    bench = ALL_BENCHMARKS[name]
    rt = NoCLRuntime("purecap",
                     config=SMConfig.cheri_optimised(num_warps=4,
                                                     num_lanes=4))
    collector = TimelineCollector(limit=limit)
    attach(rt.sm, collector)
    stats = bench.run(rt, scale=1)
    detach(rt.sm)
    return stats, collector


class TestTraceSchema:
    def test_trace_passes_validation_and_serialises(self):
        _, collector = _traced_run("Transpose")
        trace = collector.to_trace()
        assert validate_trace(trace) == []
        parsed = json.loads(json.dumps(trace))
        assert parsed["traceEvents"]

    def test_one_track_per_warp_with_names(self):
        _, collector = _traced_run()
        trace = collector.to_trace()
        names = [e for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        warp_names = {e["args"]["name"] for e in names}
        assert any(n.startswith("warp ") for n in warp_names)

    def test_slices_cover_all_issues(self):
        stats, collector = _traced_run()
        trace = collector.to_trace()
        slices = [e for e in trace["traceEvents"]
                  if e["ph"] == "X" and e["cat"] != "idle"]
        assert len(slices) == stats.instrs_issued
        assert collector.dropped == 0

    def test_counter_tracks_present(self):
        _, collector = _traced_run()
        trace = collector.to_trace()
        counters = {e["name"] for e in trace["traceEvents"]
                    if e["ph"] == "C"}
        assert "VRF resident vectors" in counters
        assert "DRAM bytes (cumulative)" in counters

    def test_limit_drops_and_reports(self):
        stats, collector = _traced_run(limit=10)
        assert len(collector.slices) == 10
        assert collector.dropped == stats.instrs_issued - 10
        trace = collector.to_trace()
        assert trace["otherData"]["dropped_slices"] == collector.dropped
        assert validate_trace(trace) == []

    def test_export_writes_loadable_json(self, tmp_path):
        _, collector = _traced_run()
        path = collector.export(str(tmp_path / "trace.json"))
        with open(path) as stream:
            trace = json.load(stream)
        assert validate_trace(trace) == []

    def test_slice_args_carry_pc_and_category(self):
        _, collector = _traced_run()
        trace = collector.to_trace()
        slices = [e for e in trace["traceEvents"]
                  if e["ph"] == "X" and e["cat"] != "idle"]
        for event in slices[:50]:
            assert event["args"]["pc"].startswith("0x")
            assert event["args"]["category"] in (
                "compute", "mem", "sfu", "cheri_slow", "stall")


class TestValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_trace({}) == ["missing traceEvents key"]

    def test_rejects_overlapping_slices(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1},
        ]}
        assert any("overlap" in p for p in validate_trace(trace))

    def test_rejects_bad_ph_and_dur(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "Z", "ts": 0},
            {"name": "b", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1},
        ]}
        problems = validate_trace(trace)
        assert len(problems) == 2
