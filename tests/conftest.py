"""Suite-wide fixtures.

Run manifests are a production feature of ``run_suite``; during tests
they are redirected to a throwaway directory so ``results/`` only ever
holds manifests from real experiment invocations.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def _manifests_to_tmp(tmp_path_factory):
    import os
    path = str(tmp_path_factory.mktemp("manifests"))
    old = os.environ.get("REPRO_MANIFEST_DIR")
    os.environ["REPRO_MANIFEST_DIR"] = path
    yield
    if old is None:
        os.environ.pop("REPRO_MANIFEST_DIR", None)
    else:
        os.environ["REPRO_MANIFEST_DIR"] = old
