"""The codegen trace-JIT backend (``SMConfig.backend == "jit"``).

The JIT tier compiles hot straight-line regions into fused per-slot
closures.  These tests pin its contract:

- generated source is deterministic for a fixed program + config (the
  golden property that makes ``--jit-dump-dir`` artifacts diffable);
- the code cache is keyed by program digest + region start: re-launching
  the same program rebinds cached code (no recompile), a different
  program digest compiles fresh entries without evicting the old ones;
- a lane faulting mid-region bails out with the identical fault kind,
  PC and statistics as the scalar reference;
- regions whose specialization arms mostly miss demote back to the
  interpreted vector tier — and stay bit-identical while doing so;
- the ``REPRO_BACKEND`` environment variable selects the default
  backend, with an explicit argument still winning.

The full scalar-vs-jit benchmark sweep lives in
``tests/eval/test_equivalence.py``; these are the SM-level corners.
"""

from dataclasses import asdict

import pytest

from repro.cheri import root_capability
from repro.isa.instructions import Instr, Op
from repro.simt import KernelAbort, SMConfig, StreamingMultiprocessor
from repro.simt.backend.jit import JITBackend
from repro.simt.config import HEAP_BASE

from tests.simt.kernels import branch_ladder, frontier_loop


@pytest.fixture
def eager_jit(monkeypatch):
    """Lower the JIT tier's heat/promotion bars so the tiny test
    programs compile within a handful of loop iterations (the vector
    tier's own thresholds are untouched)."""
    monkeypatch.setattr(JITBackend, "_hot_threshold", 4)
    monkeypatch.setattr(JITBackend, "_promote_after", 1)


def _config(mode, backend, num_warps, num_lanes):
    factory = (SMConfig.cheri_optimised if mode == "purecap"
               else SMConfig.baseline)
    return factory(num_warps=num_warps,
                   num_lanes=num_lanes).with_(backend=backend)


def _run_one(backend, prog, mode="baseline", num_warps=2, num_lanes=4,
             init_regs=None, init_cap_regs=None):
    """One backend's observables for a launch; also returns the SM."""
    sm = StreamingMultiprocessor(
        _config(mode, backend, num_warps, num_lanes))
    fault = None
    try:
        sm.launch(prog, init_regs=init_regs, init_cap_regs=init_cap_regs)
    except KernelAbort as abort:
        cause = abort.cause
        fault = (type(cause).__name__, str(cause))
    return {
        "stats": asdict(sm.stats),
        "words": dict(sm.memory._words),
        "tags": set(sm.memory._tags),
        "fault": fault,
    }, sm


def run_both(prog, **kwargs):
    """Scalar reference vs JIT tier: every observable must match.

    Returns the scalar observation and the JIT SM (for assertions on
    the backend's own counters).
    """
    scalar, _ = _run_one("scalar", prog, **kwargs)
    jit, sm = _run_one("jit", prog, **kwargs)
    assert scalar["fault"] == jit["fault"]
    assert scalar["words"] == jit["words"]
    assert scalar["tags"] == jit["tags"]
    assert scalar["stats"] == jit["stats"]
    return scalar, sm


def heap_slots(num_threads, base=HEAP_BASE):
    return [base + 4 * t for t in range(num_threads)]


def _alu_loop(trips=12):
    """A convergent counted loop with a 4-step straight-line body."""
    prog = [
        Instr(Op.ADDI, rd=9, rs1=0, imm=0),
        Instr(Op.BGE, rs1=9, rs2=5, imm=24),             # loop head
        Instr(Op.ADD, rd=10, rs1=9, rs2=6),              # region start
        Instr(Op.XOR, rd=11, rs1=10, rs2=7),
        Instr(Op.SLLI, rd=12, rs1=11, imm=1),
        Instr(Op.ADDI, rd=9, rs1=9, imm=1),
        Instr(Op.JAL, rd=0, imm=-20),
        Instr(Op.SW, rs1=8, rs2=12, imm=0),
        Instr(Op.HALT),
    ]
    threads = 8
    regs = {5: [trips] * threads,
            6: [3] * threads,
            7: [0x55] * threads,
            8: heap_slots(threads)}
    return prog, regs


def _sources(sm):
    """pc -> generated source for every compiled region."""
    backend = sm.backend
    return {index << 2: backend.generated_source(index << 2)
            for (digest, index) in backend._code_cache
            if digest == backend._program_digest}


class TestGoldenCodegen:
    def test_generated_source_is_deterministic(self, eager_jit):
        prog, regs = _alu_loop()
        _, sm_a = _run_one("jit", prog, init_regs=regs)
        _, sm_b = _run_one("jit", prog, init_regs=regs)
        sources_a = _sources(sm_a)
        assert sources_a, "the loop body never compiled"
        assert sources_a == _sources(sm_b)

    def test_generated_source_shape(self, eager_jit):
        prog, regs = _alu_loop()
        _, sm = _run_one("jit", prog, init_regs=regs)
        source = max(_sources(sm).values(), key=len)
        # The closure factory and one frame per region step.
        assert "def _make(B):" in source
        assert "def c0(" in source
        assert "return cycle + width" in source
        # Region sources are Python: they must compile standalone.
        compile(source, "<golden>", "exec")

    def test_frames_actually_executed(self, eager_jit):
        prog, regs = _alu_loop(trips=24)
        _, sm = run_both(prog, init_regs=regs)
        summary = sm.backend.jit_summary()
        assert summary["compiled_regions"] >= 1
        assert summary["fused_steps"] > 0


class TestCodeCache:
    def test_relaunch_rebinds_without_recompiling(self, eager_jit):
        prog, regs = _alu_loop()
        _, sm = _run_one("jit", prog, init_regs=regs)
        backend = sm.backend
        compiled = backend.compiled_regions
        assert compiled >= 1
        sm.launch(prog, init_regs=regs)
        assert backend.compiled_regions == compiled
        assert backend.cache_hits >= 1

    def test_digest_change_compiles_fresh_entries(self, eager_jit):
        prog, regs = _alu_loop()
        _, sm = _run_one("jit", prog, init_regs=regs)
        backend = sm.backend
        compiled = backend.compiled_regions
        old_keys = set(backend._code_cache)
        changed = list(prog)
        changed[3] = Instr(Op.OR, rd=11, rs1=10, rs2=7)
        sm.launch(changed, init_regs=regs)
        assert backend.compiled_regions > compiled
        # The old program's entries survive for its digest (a later
        # relaunch of it would rebind, not recompile).
        assert old_keys <= set(backend._code_cache)

    def test_relaunch_stats_match_scalar(self, eager_jit):
        # The cross-launch heat/code cache must not leak into simulated
        # statistics: launch twice on one SM, compare against a scalar
        # SM doing the same.
        prog, regs = _alu_loop()
        per_backend = {}
        for backend in ("scalar", "jit"):
            sm = StreamingMultiprocessor(
                _config("baseline", backend, 2, 4))
            sm.launch(prog, init_regs=regs)
            first = asdict(sm.stats)
            sm.launch(prog, init_regs=regs)
            per_backend[backend] = (first, asdict(sm.stats))
        assert per_backend["scalar"] == per_backend["jit"]


class TestMidRegionFault:
    def _fault_loop(self, bad_lane=None, window_words=8, trips=12,
                    num_lanes=4):
        """A loop whose CLW sits mid-region and walks each lane's
        capability forward until it leaves bounds."""
        prog = [
            Instr(Op.ADDI, rd=9, rs1=0, imm=0),
            Instr(Op.BGE, rs1=9, rs2=5, imm=24),         # loop head
            Instr(Op.ADD, rd=10, rs1=9, rs2=9),          # region start
            Instr(Op.CLW, rd=11, rs1=6, imm=0),          # faults late
            Instr(Op.CINCOFFSETIMM, rd=6, rs1=6, imm=4),
            Instr(Op.ADDI, rd=9, rs1=9, imm=1),
            Instr(Op.JAL, rd=0, imm=-20),
            Instr(Op.HALT),
        ]
        cap, exact = root_capability().set_bounds(HEAP_BASE,
                                                  4 * window_words)
        assert exact
        caps = []
        for t in range(num_lanes):
            addr = HEAP_BASE
            if t == bad_lane:
                # This lane starts deeper into the window, so it walks
                # out of bounds iterations before the others.
                addr = HEAP_BASE + 4 * (window_words - 2)
            caps.append(cap.set_addr(addr))
        regs = {5: [trips] * num_lanes}
        return prog, regs, {6: caps}

    def test_uniform_fault_mid_region(self, eager_jit):
        prog, regs, caps = self._fault_loop()
        obs, sm = run_both(prog, mode="purecap", num_warps=1,
                           init_regs=regs, init_cap_regs=caps)
        assert obs["fault"] is not None
        assert obs["fault"][0] == "BoundsViolation"
        assert sm.backend.jit_summary()["compiled_regions"] >= 1

    def test_single_lane_fault_mid_region(self, eager_jit):
        prog, regs, caps = self._fault_loop(bad_lane=2)
        obs, _ = run_both(prog, mode="purecap", num_warps=1,
                          init_regs=regs, init_cap_regs=caps)
        assert obs["fault"] is not None
        assert obs["fault"][0] == "BoundsViolation"

    def test_clean_when_window_covers_the_walk(self, eager_jit):
        prog, regs, caps = self._fault_loop(window_words=16, trips=12)
        obs, _ = run_both(prog, mode="purecap", num_warps=1,
                          init_regs=regs, init_cap_regs=caps)
        assert obs["fault"] is None


class TestIrregularKernels:
    """Masked region variants on divergence-stress kernels.

    A warp whose active subset stays converged on a straight-line block
    must enter the compiled tier under a partial mask — and stay
    bit-identical to the scalar reference while doing so."""

    def test_branch_ladder_uses_masked_variants(self, eager_jit):
        prog, regs = branch_ladder(trips=24)
        _, sm = run_both(prog, num_warps=2, num_lanes=4, init_regs=regs)
        summary = sm.backend.jit_summary()
        assert summary["compiled_masked_variants"] >= 1
        assert summary["masked_steps"] > 0

    def test_frontier_loop_uses_masked_variants(self, eager_jit):
        prog, regs = frontier_loop()
        _, sm = run_both(prog, num_warps=2, num_lanes=4, init_regs=regs)
        summary = sm.backend.jit_summary()
        assert summary["masked_steps"] > 0
        report = sm.backend.region_report()
        assert report["entry_mask_histogram"]
        assert any(row["masked_entries"] for row in report["regions"])


class TestMaskedMidRegionFault:
    """Capability faults raised from inside a *masked* compiled region:
    same fault kind, same pinned cycle, same statistics as the scalar
    reference — whether the fault is uniform across the active subset
    or confined to a single lane of it."""

    def _masked_fault_loop(self, bad_lane=None, window_words=8, trips=12,
                           num_lanes=4, parked_lane=3):
        """One lane branches straight to HALT, so the remaining subset
        walks the capability-fault loop under a partial mask."""
        prog = [
            Instr(Op.BNE, rs1=12, rs2=0, imm=32),        # parked lane out
            Instr(Op.ADDI, rd=9, rs1=0, imm=0),
            Instr(Op.BGE, rs1=9, rs2=5, imm=28),         # loop head
            Instr(Op.ADD, rd=10, rs1=9, rs2=9, depth=1),  # region start
            Instr(Op.CLW, rd=11, rs1=6, imm=0, depth=1),  # faults late
            Instr(Op.CINCOFFSETIMM, rd=6, rs1=6, imm=4, depth=1),
            Instr(Op.ADDI, rd=9, rs1=9, imm=1, depth=1),
            Instr(Op.JAL, rd=0, imm=-20, depth=1),       # -> loop head
            Instr(Op.HALT),                              # parked lane
            Instr(Op.HALT),                              # loop exit
        ]
        cap, exact = root_capability().set_bounds(HEAP_BASE,
                                                  4 * window_words)
        assert exact
        caps = []
        for t in range(num_lanes):
            addr = HEAP_BASE
            if t == bad_lane:
                addr = HEAP_BASE + 4 * (window_words - 2)
            caps.append(cap.set_addr(addr))
        regs = {5: [trips] * num_lanes,
                12: [1 if t == parked_lane else 0
                     for t in range(num_lanes)]}
        return prog, regs, {6: caps}

    def test_uniform_masked_fault(self, eager_jit):
        prog, regs, caps = self._masked_fault_loop()
        obs, _ = run_both(prog, mode="purecap", num_warps=1,
                          init_regs=regs, init_cap_regs=caps)
        assert obs["fault"] is not None
        assert obs["fault"][0] == "BoundsViolation"

    def test_single_lane_masked_fault(self, eager_jit):
        prog, regs, caps = self._masked_fault_loop(bad_lane=1)
        obs, _ = run_both(prog, mode="purecap", num_warps=1,
                          init_regs=regs, init_cap_regs=caps)
        assert obs["fault"] is not None
        assert obs["fault"][0] == "BoundsViolation"

    def test_clean_masked_walk_compiles_masked_variant(self, eager_jit):
        prog, regs, caps = self._masked_fault_loop(window_words=16)
        obs, sm = run_both(prog, mode="purecap", num_warps=1,
                           init_regs=regs, init_cap_regs=caps)
        assert obs["fault"] is None
        summary = sm.backend.jit_summary()
        assert summary["compiled_masked_variants"] >= 1
        assert summary["masked_steps"] > 0


class TestHotCounterPromotion:
    def test_banked_heat_overshoot_still_promotes_once(self, eager_jit,
                                                       monkeypatch):
        # A formed region's hot counter parks exactly at the threshold,
        # and relaunch seeding banks it unchanged — so the relaunch's
        # first fetch bumps the counter *past* the bar.  Promotion is a
        # >= check (an == check never re-forms the region once the
        # counter overshoots), with the regions-dict entry as the
        # sentinel that keeps _build_region to one call per region.
        prog, regs = _alu_loop()
        sm = StreamingMultiprocessor(_config("baseline", "jit", 2, 4))
        sm.launch(prog, init_regs=regs)
        backend = sm.backend
        formed = {idx for idx, steps in backend._regions.items() if steps}
        assert formed, "the loop body never formed a region"
        builds = []
        orig = JITBackend._build_region

        def counting(self, index):
            builds.append(index)
            return orig(self, index)

        monkeypatch.setattr(JITBackend, "_build_region", counting)
        sm.launch(prog, init_regs=regs)
        assert formed <= set(builds), "an overshot counter never promoted"
        assert len(builds) == len(set(builds)), \
            "a region was rebuilt after forming"
        # The overshoot really happened: counters sit past the bar.
        assert any(backend._hot.get(idx, 0) > backend._hot_threshold
                   for idx in formed)


class TestAdaptiveDemotion:
    def test_miss_heavy_region_demotes_and_stays_identical(
            self, eager_jit, monkeypatch):
        monkeypatch.setattr(JITBackend, "_demote_floor", 8)
        # Non-affine per-lane gather addresses (a scrambled permutation)
        # miss the memory arm's affine-form guard on every execution.
        # The region-entry step issues through the normal fetch path, so
        # the *frames* cover steps 1..3: two SW misses per ADDI hit,
        # comfortably past the one-half demotion ratio.
        prog = [
            Instr(Op.ADDI, rd=9, rs1=0, imm=0),
            Instr(Op.BGE, rs1=9, rs2=5, imm=24),         # loop head
            Instr(Op.SW, rs1=8, rs2=9, imm=0),           # region start
            Instr(Op.SW, rs1=8, rs2=9, imm=0x100),
            Instr(Op.SW, rs1=8, rs2=9, imm=0x200),
            Instr(Op.ADDI, rd=9, rs1=9, imm=1),
            Instr(Op.JAL, rd=0, imm=-20),
            Instr(Op.HALT),
        ]
        threads = 8
        perm = [3, 0, 6, 1, 7, 4, 2, 5]
        regs = {5: [32] * threads,
                8: [HEAP_BASE + 4 * perm[t] for t in range(threads)]}
        _, sm = run_both(prog, init_regs=regs)
        report = sm.backend.region_report()
        assert any(row["demoted"] for row in report["regions"]), \
            [row for row in report["regions"]]


class TestBackendSelection:
    def test_env_var_sets_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "jit")
        assert SMConfig.baseline().backend == "jit"
        # An explicit argument still wins.
        assert SMConfig.baseline(backend="scalar").backend == "scalar"

    def test_jit_is_a_registered_backend(self):
        from repro.simt.backend import BACKEND_NAMES, create_backend
        assert "jit" in BACKEND_NAMES
        sm = StreamingMultiprocessor(
            _config("baseline", "jit", 2, 4))
        assert type(sm.backend).__name__ == "JITBackend"
        assert create_backend("jit", sm).name == "jit"
