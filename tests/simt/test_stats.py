"""Unit tests for the stats collector's derived metrics."""

from collections import Counter

from repro.isa.instructions import Op
from repro.simt.stats import SMStats


class TestDerivedMetrics:
    def test_ipc(self):
        stats = SMStats()
        stats.cycles = 100
        stats.instrs_issued = 80
        assert stats.ipc == 0.8

    def test_ipc_zero_cycles(self):
        assert SMStats().ipc == 0.0

    def test_dram_total(self):
        stats = SMStats()
        stats.dram_read_bytes = 100
        stats.dram_write_bytes = 50
        assert stats.dram_total_bytes == 150

    def test_cap_regs_per_thread(self):
        stats = SMStats()
        assert stats.cap_regs_per_thread == 0
        stats.note_cap_register(0, 5)
        stats.note_cap_register(0, 6)
        stats.note_cap_register(1, 5)
        assert stats.cap_regs_per_thread == 2

    def test_cheri_instr_fraction(self):
        stats = SMStats()
        stats.opcode_counts = Counter({Op.ADD: 90, Op.CLW: 10})
        freq = stats.cheri_instr_fraction()
        assert freq == {Op.CLW: 0.1}

    def test_cheri_instr_fraction_empty(self):
        assert SMStats().cheri_instr_fraction() == {}

    def test_vrf_residency(self):
        stats = SMStats()
        stats.cycles = 100
        stats.gp_vrf_occupancy_integral = 100 * 16  # 16 vectors resident
        stats.meta_vrf_occupancy_integral = 100 * 4
        assert stats.vrf_residency(64) == 0.25
        assert stats.vrf_residency(64, metadata=True) == 0.0625

    def test_vrf_residency_zero_cycles(self):
        assert SMStats().vrf_residency(64) == 0.0
