"""Divergence-stress micro-kernels shared across backend test stacks.

Two irregular control-flow shapes that defeat the converged fast paths
and drive the masked region-variant machinery:

- :func:`branch_ladder`: a counted loop whose body forks on each lane's
  own accumulator parity into one of two straight-line mixing blocks,
  so the warp splits and re-joins with a data-dependent mask on every
  trip — and because the arms rewrite the accumulators, the masks
  themselves evolve from trip to trip;
- :func:`frontier_loop`: a BFS-style frontier walk where every lane
  owns a different amount of work, so lanes retire from the loop one by
  one and the surviving subset keeps executing a long straight-line
  body (load, mix, store, cursor bump) under ever-thinner masks.

Both keep their straight-line blocks long enough (>= 4 instructions)
to form compiled regions, which makes them the canonical fixtures for
scalar-vs-vector-vs-jit bit-identity under partial masks and for the
CI divergence smoke job.
"""

from repro.isa.instructions import Instr, Op
from repro.simt.config import HEAP_BASE


def _heap_slots(num_threads, base=HEAP_BASE):
    return [base + 4 * t for t in range(num_threads)]


def branch_ladder(trips=16, threads=8):
    """Data-dependent branch ladder: fork/rejoin with evolving masks.

    Every trip each lane inspects its own accumulator's parity and runs
    exactly one of two straight-line mixing blocks before rejoining for
    the trip counter.  The blocks rewrite the accumulator, so which
    lanes go even/odd next trip depends on the data they just computed.
    Returns ``(prog, init_regs)``.
    """
    prog = [
        Instr(Op.ADDI, rd=9, rs1=0, imm=0),
        Instr(Op.BGE, rs1=9, rs2=5, imm=56),                 # loop head
        Instr(Op.ANDI, rd=10, rs1=6, imm=1),
        Instr(Op.BNE, rs1=10, rs2=0, imm=24),                # parity fork
        Instr(Op.ADD, rd=11, rs1=6, rs2=7, depth=1),         # even arm
        Instr(Op.XOR, rd=6, rs1=11, rs2=9, depth=1),
        Instr(Op.SLLI, rd=12, rs1=6, imm=1, depth=1),
        Instr(Op.ADDI, rd=6, rs1=12, imm=3, depth=1),
        Instr(Op.JAL, rd=0, imm=20, depth=1),                # -> join
        Instr(Op.SRLI, rd=11, rs1=6, imm=1, depth=1),        # odd arm
        Instr(Op.ADD, rd=6, rs1=11, rs2=9, depth=1),
        Instr(Op.XOR, rd=12, rs1=6, rs2=7, depth=1),
        Instr(Op.ADDI, rd=6, rs1=12, imm=1, depth=1),
        Instr(Op.ADDI, rd=9, rs1=9, imm=1),                  # join
        Instr(Op.JAL, rd=0, imm=-52),                        # -> loop head
        Instr(Op.SW, rs1=8, rs2=6, imm=0),
        Instr(Op.HALT),
    ]
    regs = {5: [trips] * threads,
            6: [7 * t + 1 for t in range(threads)],
            7: [0x33] * threads,
            8: _heap_slots(threads)}
    return prog, regs


def frontier_loop(threads=8):
    """BFS-style frontier walk: per-lane work, progressive retirement.

    Every lane walks its own cursor over a private node window for a
    lane-dependent number of trips; lanes fall out of the loop one by
    one while survivors keep running the 6-instruction straight-line
    body under shrinking masks.  Returns ``(prog, init_regs)``.
    """
    prog = [
        Instr(Op.ADDI, rd=9, rs1=0, imm=0),
        Instr(Op.BGE, rs1=9, rs2=5, imm=32),                 # loop head
        Instr(Op.LW, rd=10, rs1=6, imm=0, depth=1),          # pop node
        Instr(Op.ADD, rd=11, rs1=10, rs2=7, depth=1),        # relax edge
        Instr(Op.XOR, rd=12, rs1=11, rs2=9, depth=1),
        Instr(Op.SW, rs1=8, rs2=12, imm=0, depth=1),
        Instr(Op.ADDI, rd=6, rs1=6, imm=4, depth=1),         # next node
        Instr(Op.ADDI, rd=9, rs1=9, imm=1, depth=1),
        Instr(Op.JAL, rd=0, imm=-28, depth=1),               # -> loop head
        Instr(Op.SW, rs1=8, rs2=9, imm=0x100),               # trip count
        Instr(Op.HALT),
    ]
    regs = {5: [(3 * t) % 7 + 1 for t in range(threads)],
            6: [HEAP_BASE + 0x400 + 64 * t for t in range(threads)],
            7: [0x9E37] * threads,
            8: _heap_slots(threads)}
    return prog, regs
