"""Tests for the compressed register file (SRF/VRF, NVO, shared pool)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt.regfile import CompressedRegFile, PlainRegFile, SlotPool

LANES = 8
FULL_MASK = (1 << LANES) - 1


def make_rf(capacity=16, detect_affine=True, nvo=False, pool=None):
    pool = pool or SlotPool(capacity)
    return CompressedRegFile(LANES, 32, pool, detect_affine=detect_affine,
                             nvo=nvo)


class TestCompression:
    def test_default_register_is_uniform_zero(self):
        rf = make_rf()
        values, report = rf.read(0, 5)
        assert values == [0] * LANES
        assert report.spills == 0 and report.reloads == 0

    def test_uniform_vector_stays_in_srf(self):
        rf = make_rf()
        rf.write(0, 5, [42] * LANES)
        assert not rf.is_vector_resident(0, 5)
        assert rf.read(0, 5)[0] == [42] * LANES

    def test_affine_vector_stays_in_srf(self):
        rf = make_rf()
        values = [100 + 4 * i for i in range(LANES)]
        rf.write(0, 5, values)
        assert not rf.is_vector_resident(0, 5)
        assert rf.read(0, 5)[0] == values

    def test_negative_stride_affine(self):
        rf = make_rf()
        values = [(1000 - 3 * i) & 0xFFFFFFFF for i in range(LANES)]
        rf.write(0, 1, values)
        assert not rf.is_vector_resident(0, 1)
        assert rf.read(0, 1)[0] == values

    def test_huge_stride_goes_to_vrf(self):
        rf = make_rf()
        values = [(i * 1000) & 0xFFFFFFFF for i in range(LANES)]
        rf.write(0, 5, values)
        assert rf.is_vector_resident(0, 5)
        assert rf.read(0, 5)[0] == values

    def test_general_vector_goes_to_vrf(self):
        rf = make_rf()
        values = [7, 1, 9, 3, 5, 2, 8, 0]
        rf.write(0, 5, values)
        assert rf.is_vector_resident(0, 5)
        assert rf.read(0, 5)[0] == values

    def test_uniform_detection_disabled_affine(self):
        rf = make_rf(detect_affine=False)
        values = [100 + i for i in range(LANES)]
        rf.write(0, 5, values)
        assert rf.is_vector_resident(0, 5)
        rf.write(0, 6, [9] * LANES)
        assert not rf.is_vector_resident(0, 6)

    def test_vector_recompresses_on_uniform_overwrite(self):
        rf = make_rf()
        rf.write(0, 5, [7, 1, 9, 3, 5, 2, 8, 0])
        assert rf.pool.used == 1
        rf.write(0, 5, [3] * LANES)
        assert rf.pool.used == 0
        assert not rf.is_vector_resident(0, 5)

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                    min_size=LANES, max_size=LANES))
    @settings(max_examples=200)
    def test_write_read_roundtrip(self, values):
        rf = make_rf()
        rf.write(1, 7, values)
        assert rf.read(1, 7)[0] == values

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.integers(min_value=-128, max_value=127))
    @settings(max_examples=200)
    def test_affine_roundtrip_compresses(self, base, stride):
        rf = make_rf()
        values = [(base + i * stride) & 0xFFFFFFFF for i in range(LANES)]
        rf.write(0, 3, values)
        assert rf.read(0, 3)[0] == values
        assert not rf.is_vector_resident(0, 3)


class TestMaskedWrites:
    def test_partial_write_merges_lanes(self):
        rf = make_rf()
        rf.write(0, 5, [10] * LANES)
        rf.write(0, 5, [99] * LANES, active_mask=0b00000001)
        assert rf.read(0, 5)[0] == [99, 10, 10, 10, 10, 10, 10, 10]

    def test_divergent_write_decompresses(self):
        rf = make_rf()
        rf.write(0, 5, [10] * LANES)
        assert not rf.is_vector_resident(0, 5)
        rf.write(0, 5, [99] * LANES, active_mask=0b00001111)
        # Two different uniform halves: not totally scalarisable.
        assert rf.is_vector_resident(0, 5)

    def test_partial_write_restoring_uniformity_recompresses(self):
        rf = make_rf()
        rf.write(0, 5, [10, 10, 10, 10, 99, 99, 99, 99])
        assert rf.is_vector_resident(0, 5)
        rf.write(0, 5, [10] * LANES, active_mask=0b11110000)
        assert not rf.is_vector_resident(0, 5)


class TestSpilling:
    def test_pool_exhaustion_spills_fifo(self):
        rf = make_rf(capacity=2)
        general = [[i * 13 + j * j for j in range(LANES)] for i in range(3)]
        rf.write(0, 1, general[0])
        rf.write(0, 2, general[1])
        report = rf.write(0, 3, general[2])
        assert report.spills == 1
        assert rf.total_spills == 1
        # Oldest (reg 1) was the victim; its value must survive.
        values, report = rf.read(0, 1)
        assert values == [v & 0xFFFFFFFF for v in general[0]]
        assert report.reloads == 1

    def test_reload_can_cascade_spill(self):
        rf = make_rf(capacity=1)
        a = [3, 1, 4, 1, 5, 9, 2, 6]
        b = [2, 7, 1, 8, 2, 8, 1, 8]
        rf.write(0, 1, a)
        rf.write(0, 2, b)          # spills reg 1
        values, report = rf.read(0, 1)  # reload spills reg 2
        assert values == a
        assert report.reloads == 1 and report.spills == 1
        assert rf.read(0, 2)[0] == b

    def test_full_overwrite_of_spilled_register_skips_reload(self):
        rf = make_rf(capacity=1)
        rf.write(0, 1, [3, 1, 4, 1, 5, 9, 2, 6])
        rf.write(0, 2, [2, 7, 1, 8, 2, 8, 1, 8])  # spills reg 1
        report = rf.write(0, 1, [5] * LANES)       # dead spilled copy
        assert report.reloads == 0
        assert rf.read(0, 1)[0] == [5] * LANES

    def test_partial_overwrite_of_spilled_register_reloads(self):
        rf = make_rf(capacity=1)
        a = [3, 1, 4, 1, 5, 9, 2, 6]
        rf.write(0, 1, a)
        rf.write(0, 2, [2, 7, 1, 8, 2, 8, 1, 8])  # spills reg 1
        report = rf.write(0, 1, [0] * LANES, active_mask=0b1)
        assert report.reloads == 1
        assert rf.read(0, 1)[0] == [0] + a[1:]

    def test_resident_count_tracks_pool(self):
        rf = make_rf(capacity=8)
        for reg in range(4):
            rf.write(0, reg + 1, [reg, 99, 5, 1, 2, 3, 4, reg])
        assert rf.resident_vectors == 4


class TestNullValueOptimisation:
    def make_nvo(self, capacity=8):
        return make_rf(capacity=capacity, detect_affine=False, nvo=True)

    def test_partially_null_uniform_stays_in_srf(self):
        rf = self.make_nvo()
        meta = 0xABCD0001
        rf.write(0, 5, [meta] * LANES)
        rf.write(0, 5, [0] * LANES, active_mask=0b00001111)
        assert not rf.is_vector_resident(0, 5)
        assert rf.read(0, 5)[0] == [0, 0, 0, 0, meta, meta, meta, meta]

    def test_null_overwritten_with_uniform_stays(self):
        rf = self.make_nvo()
        meta = 0x1234
        rf.write(0, 5, [meta] * LANES, active_mask=0b11000000)
        assert not rf.is_vector_resident(0, 5)
        assert rf.read(0, 5)[0] == [0] * 6 + [meta] * 2

    def test_two_distinct_values_need_vrf(self):
        rf = self.make_nvo()
        rf.write(0, 5, [0x1111] * LANES, active_mask=0b00001111)
        rf.write(0, 5, [0x2222] * LANES, active_mask=0b11110000)
        assert rf.is_vector_resident(0, 5)

    def test_without_nvo_partial_null_needs_vrf(self):
        rf = make_rf(detect_affine=False, nvo=False)
        rf.write(0, 5, [0xABCD] * LANES)
        rf.write(0, 5, [0] * LANES, active_mask=0b00001111)
        assert rf.is_vector_resident(0, 5)

    def test_nvo_recompression_from_vrf(self):
        rf = self.make_nvo()
        rf.write(0, 5, [1, 2, 3, 4, 5, 6, 7, 8])
        assert rf.is_vector_resident(0, 5)
        rf.write(0, 5, [0, 7, 0, 7, 0, 0, 0, 7])
        assert not rf.is_vector_resident(0, 5)


class TestSharedPool:
    def test_two_register_files_share_capacity(self):
        pool = SlotPool(2)
        gp = CompressedRegFile(LANES, 32, pool, name="gp")
        meta = CompressedRegFile(LANES, 33, pool, detect_affine=False, name="meta")
        gp.write(0, 1, [7, 1, 9, 3, 5, 2, 8, 0])
        gp.write(0, 2, [6, 2, 8, 4, 4, 3, 7, 1])
        report = meta.write(0, 1, [1, 2, 3, 4, 5, 6, 7, 8])
        assert report.spills == 1
        assert gp.total_spills == 1  # victim came from the *other* file

    def test_separate_pools_fragment(self):
        # Without sharing, one full pool spills even though the other is empty.
        gp = make_rf(capacity=1)
        meta = make_rf(capacity=1, detect_affine=False)
        gp.write(0, 1, [7, 1, 9, 3, 5, 2, 8, 0])
        report = gp.write(0, 2, [6, 2, 8, 4, 4, 3, 7, 1])
        assert report.spills == 1
        assert meta.pool.used == 0


class TestWriteRegularityCounters:
    def test_uniform_and_affine_classified(self):
        rf = make_rf()
        rf.write(0, 1, [5] * LANES)                       # uniform
        rf.write(0, 2, [10 + i for i in range(LANES)])    # affine
        rf.write(0, 3, [7, 1, 9, 3, 5, 2, 8, 0])          # general
        assert rf.writes_total == 3
        assert rf.writes_uniform == 1
        assert rf.writes_affine == 1

    def test_partial_null_classified(self):
        rf = make_rf(detect_affine=False, nvo=True)
        rf.write(0, 1, [9] * LANES, active_mask=0b1111)
        assert rf.writes_partial_null == 1

    def test_counters_accumulate(self):
        rf = make_rf()
        for _ in range(10):
            rf.write(0, 1, [3] * LANES)
        assert rf.writes_total == 10
        assert rf.writes_uniform == 10


class TestPlainRegFile:
    def test_roundtrip(self):
        rf = PlainRegFile(LANES, 33)
        rf.write(0, 5, [1 << 32] * LANES)
        assert rf.read(0, 5)[0] == [1 << 32] * LANES

    def test_masked_write(self):
        rf = PlainRegFile(LANES, 32)
        rf.write(0, 5, [5] * LANES)
        rf.write(0, 5, [9] * LANES, active_mask=0b1)
        assert rf.read(0, 5)[0] == [9] + [5] * 7

    def test_never_spills(self):
        rf = PlainRegFile(LANES, 33)
        for reg in range(32):
            rf.write(0, reg, [reg * 17 + i for i in range(LANES)])
        assert rf.total_spills == 0
        assert rf.resident_vectors == 0


class TestWidthMasking:
    def test_values_masked_to_width(self):
        rf = CompressedRegFile(LANES, 33, SlotPool(4), detect_affine=False)
        rf.write(0, 1, [(1 << 40) | 5] * LANES)
        assert rf.read(0, 1)[0] == [((1 << 40) | 5) & ((1 << 33) - 1)] * LANES
