"""Active-thread-selection and reconvergence properties.

SIMTight reconverges divergent threads by prioritising the deepest
control-flow nesting level, tie-breaking on the lowest PC (paper section
2.3).  These tests pin that behaviour down: execution order, utilisation,
and the PCC-grouping rule of section 3.3.
"""

from repro.cheri import root_capability
from repro.isa.instructions import Instr, Op
from repro.simt import SMConfig, StreamingMultiprocessor
from repro.simt.config import HEAP_BASE


def one_warp(lanes=4, **kwargs):
    return SMConfig.baseline(num_warps=1, num_lanes=lanes, **kwargs)


class TestSelectionOrder:
    def test_deeper_threads_run_first(self):
        # Lane 0 branches into a deep region; other lanes sit at the join
        # (lower depth).  The deep region must fully execute before the
        # join does, which we observe through a memory write ordering.
        sm = StreamingMultiprocessor(one_warp())
        prog = [
            Instr(Op.BNE, rs1=5, rs2=0, imm=12),             # lane0 falls through
            # depth-1 region (lane 0 only): set flag
            Instr(Op.ADDI, rd=7, rs1=0, imm=1, depth=1),
            Instr(Op.SW, rs1=8, rs2=7, imm=0, depth=1),      # flag = 1
            # join: everyone loads flag and stores it to their slot
            Instr(Op.LW, rd=9, rs1=8, imm=0),
            Instr(Op.SW, rs1=10, rs2=9, imm=0),
            Instr(Op.HALT),
        ]
        lanes = sm.cfg.num_lanes
        flag = [HEAP_BASE] * lanes
        out = [HEAP_BASE + 0x100 + 4 * t for t in range(lanes)]
        sm.launch(prog, init_regs={5: list(range(lanes)), 8: flag, 10: out})
        # If the join had run before the deep region, some lanes would have
        # read flag == 0.
        for t in range(lanes):
            assert sm.memory.read(HEAP_BASE + 0x100 + 4 * t, 4) == 1

    def test_lower_pc_wins_at_equal_depth(self):
        # Even/odd lanes diverge into two same-depth regions; the
        # lower-PC region (then-branch) must execute before the other.
        sm = StreamingMultiprocessor(one_warp())
        prog = [
            Instr(Op.ANDI, rd=7, rs1=5, imm=1),
            Instr(Op.BNE, rs1=7, rs2=0, imm=16),
            # then (even lanes): increment counter, record its value
            Instr(Op.AMOADD_W, rd=9, rs1=8, rs2=6, depth=1),
            Instr(Op.SW, rs1=10, rs2=9, imm=0, depth=1),
            Instr(Op.JAL, rd=0, imm=12, depth=1),
            # else (odd lanes)
            Instr(Op.AMOADD_W, rd=9, rs1=8, rs2=6, depth=1),
            Instr(Op.SW, rs1=10, rs2=9, imm=0, depth=1),
            Instr(Op.HALT),
        ]
        lanes = sm.cfg.num_lanes
        counter = [HEAP_BASE] * lanes
        out = [HEAP_BASE + 0x100 + 4 * t for t in range(lanes)]
        ones = [1] * lanes
        sm.launch(prog, init_regs={5: list(range(lanes)), 6: ones,
                                   8: counter, 10: out})
        even = [sm.memory.read(HEAP_BASE + 0x100 + 4 * t, 4)
                for t in range(0, lanes, 2)]
        odd = [sm.memory.read(HEAP_BASE + 0x100 + 4 * t, 4)
               for t in range(1, lanes, 2)]
        assert max(even) < min(odd), (even, odd)

    def test_full_warp_executes_together_when_convergent(self):
        sm = StreamingMultiprocessor(one_warp())
        prog = [
            Instr(Op.ADDI, rd=7, rs1=5, imm=1),
            Instr(Op.HALT),
        ]
        stats = sm.launch(prog, init_regs={5: [0, 1, 2, 3]})
        # 2 issues for the whole warp: no divergence means full lanes.
        assert stats.instrs_issued == 2
        assert stats.thread_instrs == 2 * sm.cfg.num_lanes

    def test_divergence_costs_extra_issues(self):
        # A 4-way divergent JALR: each lane jumps somewhere different, so
        # every subsequent instruction issues once per lane.
        sm = StreamingMultiprocessor(one_warp())
        prog = [
            Instr(Op.JALR, rd=0, rs1=5, imm=0),
            Instr(Op.ADDI, rd=7, rs1=0, imm=0),   # pc 4 (lane 0 target)
            Instr(Op.HALT),                        # lane 0 halts at 8...
            Instr(Op.HALT),
            Instr(Op.HALT),
            Instr(Op.HALT),
        ]
        targets = [4, 8, 12, 16]
        stats = sm.launch(prog, init_regs={5: targets})
        # Lane 0 runs ADDI then HALT; others HALT directly, all separately.
        assert stats.instrs_issued >= 5


class TestPCCGrouping:
    def test_dynamic_pcc_splits_groups(self):
        # Two lanes share a PC but have different PCC metadata: with
        # dynamic PC metadata they may not issue together.
        cfg = SMConfig.cheri(num_warps=1, num_lanes=2)
        sm = StreamingMultiprocessor(cfg)
        prog = [Instr(Op.ADDI, rd=7, rs1=0, imm=1), Instr(Op.HALT)]
        pcc_a = root_capability()
        sm.launch(prog, kernel_pcc=pcc_a)
        # Uniform PCC at launch: both lanes issue together.
        assert sm.stats.instrs_issued == 2

    def test_static_pc_metadata_ignores_pcc(self):
        cfg = SMConfig.cheri_optimised(num_warps=1, num_lanes=2)
        sm = StreamingMultiprocessor(cfg)
        prog = [Instr(Op.ADDI, rd=7, rs1=0, imm=1), Instr(Op.HALT)]
        stats = sm.launch(prog)
        assert stats.instrs_issued == 2
