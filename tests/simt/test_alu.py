"""Unit tests for per-lane scalar semantics (RV32IM + Zfinx corner cases)."""

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt.alu import (
    MASK32,
    bits_to_f32,
    branch_taken,
    f32_to_bits,
    float_op,
    int_op,
    to_signed,
    to_u32,
)

u32s = st.integers(min_value=0, max_value=MASK32)


def f(x):
    return struct.unpack("<I", struct.pack("<f", x))[0]


class TestSignHelpers:
    def test_to_signed(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x80000000) == -(1 << 31)
        assert to_signed(0x7FFFFFFF) == (1 << 31) - 1

    @given(u32s)
    @settings(max_examples=100)
    def test_roundtrip(self, value):
        assert to_u32(to_signed(value)) == value


class TestIntegerOps:
    def test_add_wraps(self):
        assert int_op("add", 0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        assert int_op("sub", 0, 1) == 0xFFFFFFFF

    def test_shifts(self):
        assert int_op("sll", 1, 31) == 0x80000000
        assert int_op("srl", 0x80000000, 31) == 1
        assert int_op("sra", 0x80000000, 31) == 0xFFFFFFFF

    def test_shift_amount_masked(self):
        assert int_op("sll", 1, 32) == 1  # shamt & 31 == 0

    def test_comparisons(self):
        assert int_op("slt", 0xFFFFFFFF, 0) == 1   # -1 < 0
        assert int_op("sltu", 0xFFFFFFFF, 0) == 0  # big unsigned

    def test_mulh_variants(self):
        a, b = 0x80000000, 0x80000000  # -2^31 * -2^31
        assert int_op("mulh", a, b) == 0x40000000
        assert int_op("mulhu", a, b) == 0x40000000
        assert int_op("mulhsu", a, b) == to_u32(((-(1 << 31)) * (1 << 31)) >> 32)

    def test_div_by_zero_yields_minus_one(self):
        assert int_op("div", 42, 0) == 0xFFFFFFFF
        assert int_op("divu", 42, 0) == 0xFFFFFFFF

    def test_rem_by_zero_yields_dividend(self):
        assert int_op("rem", 42, 0) == 42
        assert int_op("remu", 42, 0) == 42

    def test_signed_overflow_division(self):
        assert int_op("div", 0x80000000, 0xFFFFFFFF) == 0x80000000
        assert int_op("rem", 0x80000000, 0xFFFFFFFF) == 0

    def test_div_truncates_toward_zero(self):
        assert to_signed(int_op("div", to_u32(-7), 2)) == -3
        assert to_signed(int_op("rem", to_u32(-7), 2)) == -1

    @given(u32s, u32s)
    @settings(max_examples=200)
    def test_divmod_identity(self, a, b):
        if to_u32(b) == 0:
            return
        q = int_op("divu", a, b)
        r = int_op("remu", a, b)
        assert to_u32(q * b + r) == to_u32(a)

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            int_op("frobnicate", 1, 2)


class TestBranches:
    def test_signed_vs_unsigned(self):
        minus_one = 0xFFFFFFFF
        assert branch_taken("blt", minus_one, 0)
        assert not branch_taken("bltu", minus_one, 0)
        assert branch_taken("bgeu", minus_one, 0)

    def test_equality(self):
        assert branch_taken("beq", 5, 5)
        assert branch_taken("bne", 5, 6)


class TestFloatOps:
    def test_basic_arithmetic(self):
        assert bits_to_f32(float_op("fadd", f(1.5), f(2.25))) == 3.75
        assert bits_to_f32(float_op("fmul", f(3.0), f(-2.0))) == -6.0

    def test_rounds_to_binary32(self):
        # 0.1 + 0.2 in binary32 is not the float64 result.
        result = bits_to_f32(float_op("fadd", f(0.1), f(0.2)))
        assert result == struct.unpack("<f", struct.pack("<f", 0.30000001192092896))[0]

    def test_div_by_zero_is_inf(self):
        assert math.isinf(bits_to_f32(float_op("fdiv", f(1.0), f(0.0))))
        assert bits_to_f32(float_op("fdiv", f(-1.0), f(0.0))) == -math.inf

    def test_sqrt(self):
        assert bits_to_f32(float_op("fsqrt", f(9.0))) == 3.0
        assert math.isnan(bits_to_f32(float_op("fsqrt", f(-1.0))))

    def test_compare(self):
        assert float_op("flt", f(1.0), f(2.0)) == 1
        assert float_op("fle", f(2.0), f(2.0)) == 1
        assert float_op("feq", f(2.0), f(2.5)) == 0

    def test_sign_injection(self):
        assert bits_to_f32(float_op("fsgnjn", f(3.0), f(1.0))) == -3.0
        assert bits_to_f32(float_op("fsgnjx", f(-3.0), f(-1.0))) == 3.0

    def test_conversions(self):
        assert float_op("fcvt.w.s", f(-3.7)) == to_u32(-3)
        assert float_op("fcvt.wu.s", f(3.7)) == 3
        assert bits_to_f32(float_op("fcvt.s.w", to_u32(-5))) == -5.0
        assert bits_to_f32(float_op("fcvt.s.wu", 0xFFFFFFFF)) == \
            struct.unpack("<f", struct.pack("<f", float(0xFFFFFFFF)))[0]

    def test_conversion_clamps(self):
        assert float_op("fcvt.w.s", f(1e20)) == to_u32((1 << 31) - 1)
        assert float_op("fcvt.wu.s", f(-5.0)) == 0

    def test_overflow_to_infinity(self):
        big = float_op("fmul", f(3e38), f(3e38))
        assert math.isinf(bits_to_f32(big))

    @given(st.floats(min_value=-1e30, max_value=1e30, allow_nan=False))
    @settings(max_examples=100)
    def test_bits_roundtrip(self, value):
        bits = f32_to_bits(value)
        assert 0 <= bits <= MASK32
        assert f32_to_bits(bits_to_f32(bits)) == bits
