"""Tests for the compressed stack cache (paper section 4.4)."""

from repro.isa.instructions import Instr, Op
from repro.simt import SMConfig, StreamingMultiprocessor
from repro.simt.config import STACK_BASE
from repro.simt.stackcache import StackCache


class TestStackCacheUnit:
    def make(self):
        return StackCache(base=0x1000, size_bytes=0x10000, lines=4,
                          line_bytes=64)

    def test_contains(self):
        cache = self.make()
        assert cache.contains(0x1000)
        assert cache.contains(0x10FFF)
        assert not cache.contains(0xFFF)
        assert not cache.contains(0x11000)

    def test_miss_then_hit(self):
        cache = self.make()
        assert cache.access([0x1000, 0x1004], is_write=False) == [0x1000]
        assert cache.access([0x1008], is_write=True) == []
        assert cache.hits == 1
        assert cache.misses == 1

    def test_warp_accesses_within_one_line_are_one_fill(self):
        cache = self.make()
        addrs = [0x1000 + 4 * i for i in range(8)]
        assert len(cache.access(addrs, False)) == 1

    def test_conflict_eviction_and_writeback(self):
        cache = self.make()
        cache.access([0x1000], True)
        cache.access([0x1000 + 4 * 64], True)  # same index (4 lines * 64B)
        cache.access([0x1000], True)
        assert cache.misses == 3
        assert cache.writebacks >= 1

    def test_hit_rate(self):
        cache = self.make()
        cache.access([0x1000], False)
        cache.access([0x1000], False)
        cache.access([0x1000], False)
        assert cache.hit_rate == 2 / 3


class TestStackCacheIntegration:
    def run_stack_traffic(self, enable):
        cfg = SMConfig.baseline(num_warps=1, num_lanes=4,
                                enable_stack_cache=enable)
        sm = StreamingMultiprocessor(cfg)
        # Each lane stores to and reloads from its own stack slot, twice.
        prog = [
            Instr(Op.SW, rs1=2, rs2=5, imm=0),
            Instr(Op.LW, rd=6, rs1=2, imm=0),
            Instr(Op.SW, rs1=2, rs2=6, imm=4),
            Instr(Op.LW, rd=7, rs1=2, imm=4),
            Instr(Op.HALT),
        ]
        sp = [STACK_BASE + 64 * t for t in range(4)]
        tids = list(range(4))
        sm.launch(prog, init_regs={2: sp, 5: tids})
        return sm

    def test_cache_absorbs_repeat_stack_traffic(self):
        without = self.run_stack_traffic(enable=False)
        with_cache = self.run_stack_traffic(enable=True)
        assert with_cache.stack_cache.hits > 0
        assert (with_cache.dram.stats.total_txns
                < without.dram.stats.total_txns)

    def test_correctness_is_unaffected(self):
        sm = self.run_stack_traffic(enable=True)
        for t in range(4):
            assert sm.memory.read(STACK_BASE + 64 * t + 4, 4) == t

    def test_disabled_by_default(self):
        sm = StreamingMultiprocessor(SMConfig.baseline())
        assert sm.stack_cache is None
