"""Unit tests for the coalescer, SFU, scratchpad, and SMConfig."""

import pytest

from repro.memory import TaggedMemory
from repro.simt import SMConfig
from repro.simt.coalescer import atomic_conflicts, coalesce
from repro.simt.config import SCRATCHPAD_BASE
from repro.simt.scratchpad import Scratchpad
from repro.simt.sfu import SharedFunctionUnit


class TestCoalescer:
    def test_consecutive_words_coalesce_to_one_line(self):
        accesses = [(0x1000 + 4 * i, 4) for i in range(8)]
        assert coalesce(accesses, 64) == [(0x1000, 64)]

    def test_uniform_address_is_one_transaction(self):
        accesses = [(0x2000, 4)] * 8
        assert coalesce(accesses, 64) == [(0x2000, 64)]

    def test_scattered_addresses_need_many_lines(self):
        accesses = [(0x1000 + 256 * i, 4) for i in range(8)]
        assert len(coalesce(accesses, 64)) == 8

    def test_straddling_access_touches_both_lines(self):
        txns = coalesce([(0x103E, 4)], 64)
        assert len(txns) == 2

    def test_two_lines_for_strided_halves(self):
        accesses = [(0x1000 + 8 * i, 4) for i in range(16)]
        assert len(coalesce(accesses, 64)) == 2

    def test_atomic_conflicts(self):
        assert atomic_conflicts([0x100, 0x100, 0x100, 0x104]) == 2
        assert atomic_conflicts([0x100, 0x104, 0x108]) == 0
        assert atomic_conflicts([]) == 0


class TestSFU:
    def test_serialisation_and_latency(self):
        sfu = SharedFunctionUnit(latency=10, cheri_latency=2)
        done = sfu.issue(cycle=0, n_active=8)
        assert done == 8 + 10

    def test_back_to_back_requests_queue(self):
        sfu = SharedFunctionUnit(latency=10, cheri_latency=2)
        first = sfu.issue(0, 8)
        second = sfu.issue(0, 8)
        assert second == first + 8

    def test_cheri_ops_use_short_latency(self):
        sfu = SharedFunctionUnit(latency=10, cheri_latency=2)
        assert sfu.issue(0, 4, cheri_op=True) == 4 + 2

    def test_counters(self):
        sfu = SharedFunctionUnit(latency=10, cheri_latency=2)
        sfu.issue(0, 8)
        sfu.issue(0, 3)
        assert sfu.requests == 11
        assert sfu.busy_cycles == 11


class TestScratchpad:
    def make(self):
        return Scratchpad(TaggedMemory(), num_banks=8, size_bytes=65536)

    def test_contains(self):
        spad = self.make()
        assert spad.contains(SCRATCHPAD_BASE)
        assert spad.contains(SCRATCHPAD_BASE + 65535)
        assert not spad.contains(SCRATCHPAD_BASE - 4)
        assert not spad.contains(0x1000)

    def test_conflict_free_distinct_banks(self):
        spad = self.make()
        addrs = [SCRATCHPAD_BASE + 4 * i for i in range(8)]
        assert spad.conflict_cycles(addrs) == 0

    def test_same_bank_serialises(self):
        spad = self.make()
        addrs = [SCRATCHPAD_BASE + 32 * i for i in range(8)]  # bank 0 always
        assert spad.conflict_cycles(addrs) == 7

    def test_broadcast_same_word_is_free(self):
        spad = self.make()
        addrs = [SCRATCHPAD_BASE + 64] * 8
        assert spad.conflict_cycles(addrs) == 0

    def test_empty_access_list(self):
        assert self.make().conflict_cycles([]) == 0


class TestSMConfig:
    def test_presets(self):
        base = SMConfig.baseline()
        assert not base.enable_cheri
        cheri = SMConfig.cheri()
        assert cheri.enable_cheri and not cheri.compress_metadata
        opt = SMConfig.cheri_optimised()
        assert opt.enable_cheri and opt.compress_metadata and opt.nvo
        assert opt.shared_vrf and opt.sfu_cheri_slow_path
        assert opt.static_pc_metadata and opt.metadata_srf_single_port

    def test_derived_quantities(self):
        cfg = SMConfig.baseline(num_warps=8, num_lanes=16)
        assert cfg.num_threads == 128
        assert cfg.arch_vector_regs == 256
        assert cfg.vrf_slots == int(256 * 0.375)

    def test_validation_rejects_optimisations_without_cheri(self):
        with pytest.raises(ValueError):
            SMConfig(nvo=True).validate()

    def test_validation_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SMConfig(num_warps=0).validate()
        with pytest.raises(ValueError):
            SMConfig(vrf_fraction=0.0).validate()

    def test_with_override(self):
        cfg = SMConfig.cheri_optimised().with_(nvo=False)
        assert not cfg.nvo
        assert cfg.compress_metadata
