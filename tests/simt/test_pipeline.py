"""Pipeline tests: hand-assembled programs on the simulated SM."""

import pytest

from repro.cheri import Perms, root_capability
from repro.isa.instructions import Instr, Op
from repro.simt import KernelAbort, SMConfig, StreamingMultiprocessor
from repro.simt.config import HEAP_BASE, SCRATCHPAD_BASE


def small_config(**kwargs):
    kwargs.setdefault("num_warps", 2)
    kwargs.setdefault("num_lanes", 4)
    return SMConfig.baseline(**kwargs)


def cheri_config(**kwargs):
    return SMConfig.cheri_optimised(num_warps=2, num_lanes=4, **kwargs)


def thread_ids(cfg):
    return list(range(cfg.num_threads))


class TestBasicExecution:
    def test_trivial_halt(self):
        sm = StreamingMultiprocessor(small_config())
        stats = sm.launch([Instr(Op.HALT)])
        assert stats.instrs_issued == 2  # one HALT issue per warp
        assert stats.cycles > 0

    def test_addi_chain(self):
        sm = StreamingMultiprocessor(small_config())
        prog = [
            Instr(Op.ADDI, rd=5, rs1=0, imm=10),
            Instr(Op.ADDI, rd=5, rs1=5, imm=32),
            Instr(Op.SW, rs1=6, rs2=5, imm=0),
            Instr(Op.HALT),
        ]
        base = [HEAP_BASE + 64 * t for t in thread_ids(sm.cfg)]
        sm.launch(prog, init_regs={6: base})
        for t in thread_ids(sm.cfg):
            assert sm.memory.read(HEAP_BASE + 64 * t, 4) == 42

    def test_per_thread_values(self):
        sm = StreamingMultiprocessor(small_config())
        tids = thread_ids(sm.cfg)
        prog = [
            Instr(Op.SLLI, rd=7, rs1=5, imm=1),     # 2*tid
            Instr(Op.SW, rs1=6, rs2=7, imm=0),
            Instr(Op.HALT),
        ]
        addrs = [HEAP_BASE + 4 * t for t in tids]
        sm.launch(prog, init_regs={5: tids, 6: addrs})
        for t in tids:
            assert sm.memory.read(HEAP_BASE + 4 * t, 4) == 2 * t

    def test_loads_round_trip(self):
        sm = StreamingMultiprocessor(small_config())
        for t in thread_ids(sm.cfg):
            sm.memory.write(HEAP_BASE + 4 * t, 4, 100 + t)
        prog = [
            Instr(Op.LW, rd=7, rs1=6, imm=0),
            Instr(Op.ADDI, rd=7, rs1=7, imm=1),
            Instr(Op.SW, rs1=6, rs2=7, imm=0),
            Instr(Op.HALT),
        ]
        addrs = [HEAP_BASE + 4 * t for t in thread_ids(sm.cfg)]
        sm.launch(prog, init_regs={6: addrs})
        for t in thread_ids(sm.cfg):
            assert sm.memory.read(HEAP_BASE + 4 * t, 4) == 101 + t

    def test_mul_div_and_sfu(self):
        sm = StreamingMultiprocessor(small_config())
        prog = [
            Instr(Op.ADDI, rd=5, rs1=0, imm=84),
            Instr(Op.ADDI, rd=6, rs1=0, imm=2),
            Instr(Op.DIV, rd=7, rs1=5, rs2=6),
            Instr(Op.SW, rs1=8, rs2=7, imm=0),
            Instr(Op.HALT),
        ]
        addrs = [HEAP_BASE + 4 * t for t in thread_ids(sm.cfg)]
        stats = sm.launch(prog, init_regs={8: addrs})
        assert sm.memory.read(HEAP_BASE, 4) == 42
        assert stats.sfu_requests > 0

    def test_x0_is_hardwired_zero(self):
        sm = StreamingMultiprocessor(small_config())
        prog = [
            Instr(Op.ADDI, rd=0, rs1=0, imm=99),
            Instr(Op.SW, rs1=6, rs2=0, imm=0),
            Instr(Op.HALT),
        ]
        addrs = [HEAP_BASE + 4 * t for t in thread_ids(sm.cfg)]
        sm.memory.write(HEAP_BASE, 4, 7)
        sm.launch(prog, init_regs={6: addrs})
        assert sm.memory.read(HEAP_BASE, 4) == 0


class TestControlFlow:
    def test_uniform_branch(self):
        # for (i = 0; i < 5; i++) acc += 3
        sm = StreamingMultiprocessor(small_config())
        prog = [
            Instr(Op.ADDI, rd=5, rs1=0, imm=0),     # i = 0
            Instr(Op.ADDI, rd=7, rs1=0, imm=0),     # acc = 0
            Instr(Op.ADDI, rd=6, rs1=0, imm=5),     # n = 5
            Instr(Op.BGE, rs1=5, rs2=6, imm=16, depth=0),   # -> store
            Instr(Op.ADDI, rd=7, rs1=7, imm=3, depth=1),
            Instr(Op.ADDI, rd=5, rs1=5, imm=1, depth=1),
            Instr(Op.JAL, rd=0, imm=-12, depth=1),  # back to BGE
            Instr(Op.SW, rs1=8, rs2=7, imm=0),
            Instr(Op.HALT),
        ]
        addrs = [HEAP_BASE + 4 * t for t in thread_ids(sm.cfg)]
        sm.launch(prog, init_regs={8: addrs})
        for t in thread_ids(sm.cfg):
            assert sm.memory.read(HEAP_BASE + 4 * t, 4) == 15

    def test_divergent_if_else_reconverges(self):
        # even tids take one path, odd the other; all must store.
        sm = StreamingMultiprocessor(small_config())
        tids = thread_ids(sm.cfg)
        prog = [
            Instr(Op.ANDI, rd=7, rs1=5, imm=1),
            Instr(Op.BNE, rs1=7, rs2=0, imm=12),        # odd -> +12
            Instr(Op.ADDI, rd=9, rs1=0, imm=100, depth=1),
            Instr(Op.JAL, rd=0, imm=8, depth=1),
            Instr(Op.ADDI, rd=9, rs1=0, imm=200, depth=1),
            Instr(Op.SW, rs1=6, rs2=9, imm=0),
            Instr(Op.HALT),
        ]
        addrs = [HEAP_BASE + 4 * t for t in tids]
        sm.launch(prog, init_regs={5: tids, 6: addrs})
        for t in tids:
            expect = 200 if t % 2 else 100
            assert sm.memory.read(HEAP_BASE + 4 * t, 4) == expect

    def test_divergent_loop_trip_counts(self):
        # Each thread loops tid+1 times incrementing acc.
        sm = StreamingMultiprocessor(small_config())
        tids = thread_ids(sm.cfg)
        prog = [
            Instr(Op.ADDI, rd=7, rs1=0, imm=0),          # acc
            Instr(Op.ADDI, rd=8, rs1=5, imm=1),          # bound = tid + 1
            Instr(Op.ADDI, rd=9, rs1=0, imm=0),          # i
            Instr(Op.BGE, rs1=9, rs2=8, imm=16),
            Instr(Op.ADDI, rd=7, rs1=7, imm=2, depth=1),
            Instr(Op.ADDI, rd=9, rs1=9, imm=1, depth=1),
            Instr(Op.JAL, rd=0, imm=-12, depth=1),
            Instr(Op.SW, rs1=6, rs2=7, imm=0),
            Instr(Op.HALT),
        ]
        addrs = [HEAP_BASE + 4 * t for t in tids]
        sm.launch(prog, init_regs={5: tids, 6: addrs})
        for t in tids:
            assert sm.memory.read(HEAP_BASE + 4 * t, 4) == 2 * (t + 1)


class TestBarriersAndAtomics:
    def test_barrier_orders_stores_before_loads(self):
        # Warp 0 and 1 are one block: each thread stores its tid, then all
        # barrier, then each loads its neighbour's slot.
        sm = StreamingMultiprocessor(small_config())
        cfg = sm.cfg
        tids = thread_ids(cfg)
        n = cfg.num_threads
        prog = [
            Instr(Op.SW, rs1=6, rs2=5, imm=0),    # out[tid] = tid
            Instr(Op.BARRIER),
            Instr(Op.LW, rd=7, rs1=8, imm=0),     # in = out[(tid+1)%n]
            Instr(Op.SW, rs1=9, rs2=7, imm=0),    # res[tid] = in
            Instr(Op.HALT),
        ]
        slots = [HEAP_BASE + 4 * t for t in tids]
        neigh = [HEAP_BASE + 4 * ((t + 1) % n) for t in tids]
        res = [HEAP_BASE + 0x1000 + 4 * t for t in tids]
        sm.launch(prog, init_regs={5: tids, 6: slots, 8: neigh, 9: res},
                  warps_per_block=cfg.num_warps)
        for t in tids:
            assert sm.memory.read(HEAP_BASE + 0x1000 + 4 * t, 4) == (t + 1) % n

    def test_atomic_add_counts_all_threads(self):
        sm = StreamingMultiprocessor(small_config())
        tids = thread_ids(sm.cfg)
        prog = [
            Instr(Op.ADDI, rd=7, rs1=0, imm=1),
            Instr(Op.AMOADD_W, rd=9, rs1=6, rs2=7),
            Instr(Op.HALT),
        ]
        counter = [HEAP_BASE] * len(tids)
        stats = sm.launch(prog, init_regs={6: counter})
        assert sm.memory.read(HEAP_BASE, 4) == len(tids)
        assert stats.stall_atomic_serial > 0

    def test_amoswap_returns_old_value(self):
        sm = StreamingMultiprocessor(small_config(num_warps=1))
        sm.memory.write(HEAP_BASE, 4, 0xAA)
        prog = [
            Instr(Op.ADDI, rd=7, rs1=0, imm=5),
            Instr(Op.AMOMAXU_W, rd=9, rs1=6, rs2=7),
            Instr(Op.SW, rs1=8, rs2=9, imm=0),
            Instr(Op.HALT),
        ]
        addrs = [HEAP_BASE + 0x100 + 4 * t for t in range(4)]
        sm.launch(prog, init_regs={6: [HEAP_BASE] * 4, 8: addrs})
        assert sm.memory.read(HEAP_BASE, 4) == 0xAA  # max(0xAA, 5)


class TestScratchpad:
    def test_scratchpad_store_load(self):
        sm = StreamingMultiprocessor(small_config())
        tids = thread_ids(sm.cfg)
        prog = [
            Instr(Op.SW, rs1=6, rs2=5, imm=0),
            Instr(Op.LW, rd=7, rs1=6, imm=0),
            Instr(Op.SW, rs1=8, rs2=7, imm=0),
            Instr(Op.HALT),
        ]
        spad = [SCRATCHPAD_BASE + 4 * t for t in tids]
        out = [HEAP_BASE + 4 * t for t in tids]
        stats = sm.launch(prog, init_regs={5: tids, 6: spad, 8: out})
        for t in tids:
            assert sm.memory.read(HEAP_BASE + 4 * t, 4) == t
        assert stats.scratchpad_accesses > 0

    def test_bank_conflicts_stall(self):
        sm = StreamingMultiprocessor(small_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        # All lanes hit the same bank, different words.
        stride = 4 * lanes
        spad = [SCRATCHPAD_BASE + stride * t for t in range(lanes)]
        prog = [
            Instr(Op.SW, rs1=6, rs2=5, imm=0),
            Instr(Op.HALT),
        ]
        stats = sm.launch(prog, init_regs={5: list(range(lanes)), 6: spad})
        assert stats.stall_bank_conflict == lanes - 1


class TestFloat:
    def test_fadd_fmul(self):
        import struct
        sm = StreamingMultiprocessor(small_config(num_warps=1))
        f = lambda x: struct.unpack("<I", struct.pack("<f", x))[0]
        prog = [
            Instr(Op.FADD_S, rd=7, rs1=5, rs2=6),
            Instr(Op.FMUL_S, rd=8, rs1=7, rs2=6),
            Instr(Op.SW, rs1=9, rs2=8, imm=0),
            Instr(Op.HALT),
        ]
        lanes = sm.cfg.num_lanes
        sm.launch(prog, init_regs={
            5: [f(1.5)] * lanes, 6: [f(2.0)] * lanes,
            9: [HEAP_BASE + 4 * t for t in range(lanes)],
        })
        bits = sm.memory.read(HEAP_BASE, 4)
        assert struct.unpack("<f", struct.pack("<I", bits))[0] == 7.0

    def test_fsqrt_uses_sfu(self):
        import struct
        sm = StreamingMultiprocessor(small_config(num_warps=1))
        f = lambda x: struct.unpack("<I", struct.pack("<f", x))[0]
        prog = [
            Instr(Op.FSQRT_S, rd=7, rs1=5),
            Instr(Op.SW, rs1=9, rs2=7, imm=0),
            Instr(Op.HALT),
        ]
        lanes = sm.cfg.num_lanes
        stats = sm.launch(prog, init_regs={
            5: [f(9.0)] * lanes,
            9: [HEAP_BASE + 4 * t for t in range(lanes)],
        })
        bits = sm.memory.read(HEAP_BASE, 4)
        assert struct.unpack("<f", struct.pack("<I", bits))[0] == 3.0
        assert stats.sfu_requests == lanes


class TestTrap:
    def test_trap_aborts_kernel(self):
        sm = StreamingMultiprocessor(small_config())
        prog = [Instr(Op.TRAP, comment="bounds check failed"), Instr(Op.HALT)]
        with pytest.raises(KernelAbort) as info:
            sm.launch(prog)
        assert "bounds check failed" in str(info.value)
