"""Further CHERI pipeline flows: stalls, sentry calls, PCC-relative ops."""

import pytest

from repro.cheri import Perms, root_capability
from repro.cheri.exceptions import SealViolation, TagViolation
from repro.isa.instructions import Instr, Op
from repro.simt import KernelAbort, SMConfig, StreamingMultiprocessor
from repro.simt.config import HEAP_BASE


def cheri_config(**kwargs):
    kwargs.setdefault("num_warps", 1)
    kwargs.setdefault("num_lanes", 4)
    return SMConfig.cheri_optimised(**kwargs)


def buffer_cap(base, length, perms=None):
    cap, exact = root_capability().set_bounds(base, length)
    assert exact
    if perms is not None:
        cap = cap.and_perms(perms)
    return cap


class TestSharedVrfSerialisation:
    def test_divergent_data_and_metadata_stall(self):
        # A register whose *data* is a general vector and whose *metadata*
        # is divergent (two different buffer caps across lanes) forces the
        # shared-VRF serialisation stall on access.
        sm = StreamingMultiprocessor(cheri_config())
        cap_a = buffer_cap(HEAP_BASE, 64)
        cap_b = buffer_cap(HEAP_BASE + 0x1000, 128)
        # Addresses are scattered (uncompressible) and bounds differ by
        # lane (uncompressible metadata).
        caps = [
            cap_a.set_addr(HEAP_BASE + 36),
            cap_b.set_addr(HEAP_BASE + 0x1000),
            cap_a.set_addr(HEAP_BASE + 4),
            cap_b.set_addr(HEAP_BASE + 0x1040),
        ]
        prog = [
            Instr(Op.CLW, rd=7, rs1=6, imm=0),
            Instr(Op.HALT),
        ]
        stats = sm.launch(prog, init_cap_regs={6: caps})
        assert stats.stall_shared_vrf > 0

    def test_uniform_metadata_does_not_stall(self):
        sm = StreamingMultiprocessor(cheri_config())
        cap = buffer_cap(HEAP_BASE, 256)
        caps = [cap.set_addr(HEAP_BASE + o) for o in (36, 0, 72, 12)]
        prog = [Instr(Op.CLW, rd=7, rs1=6, imm=0), Instr(Op.HALT)]
        stats = sm.launch(prog, init_cap_regs={6: caps})
        assert stats.stall_shared_vrf == 0


class TestSentryCalls:
    def prog_call_and_return(self):
        # main: cjalr through a sentry to 'func'; func returns via cjalr ra.
        return [
            Instr(Op.CJALR, rd=1, rs1=6, imm=0),     # call func
            Instr(Op.ADDI, rd=9, rs1=0, imm=7),      # after return
            Instr(Op.CSW, rs1=10, rs2=9, imm=0),
            Instr(Op.HALT),
            # func at pc 16:
            Instr(Op.ADDI, rd=8, rs1=0, imm=5),
            Instr(Op.CJALR, rd=0, rs1=1, imm=0),     # return via link cap
        ]

    def test_call_through_sentry(self):
        sm = StreamingMultiprocessor(cheri_config())
        lanes = sm.cfg.num_lanes
        func_cap = root_capability(
            Perms.GLOBAL | Perms.EXECUTE | Perms.LOAD).set_addr(16)
        func_cap = func_cap.seal_entry()
        out = buffer_cap(HEAP_BASE, 64)
        sm.launch(self.prog_call_and_return(), init_cap_regs={
            6: [func_cap] * lanes,
            10: [out.set_addr(HEAP_BASE + 4 * t) for t in range(lanes)],
        })
        for t in range(lanes):
            assert sm.memory.read(HEAP_BASE + 4 * t, 4) == 7

    def test_sentry_link_register_is_sealed(self):
        # The link capability written by CJALR must itself be a sentry;
        # using it as a data pointer traps.
        sm = StreamingMultiprocessor(cheri_config())
        lanes = sm.cfg.num_lanes
        func_cap = root_capability(
            Perms.GLOBAL | Perms.EXECUTE | Perms.LOAD).set_addr(8)
        prog = [
            Instr(Op.CJALR, rd=1, rs1=6, imm=0),
            Instr(Op.HALT),
            Instr(Op.CLW, rd=9, rs1=1, imm=0),  # deref the sealed link cap
            Instr(Op.HALT),
        ]
        with pytest.raises(KernelAbort) as info:
            sm.launch(prog, init_cap_regs={6: [func_cap] * lanes})
        assert isinstance(info.value.cause, SealViolation)

    def test_cjalr_untagged_target_traps(self):
        sm = StreamingMultiprocessor(cheri_config())
        lanes = sm.cfg.num_lanes
        bad = root_capability().set_addr(16).with_tag_cleared()
        prog = [Instr(Op.CJALR, rd=1, rs1=6, imm=0), Instr(Op.HALT)]
        with pytest.raises(KernelAbort) as info:
            sm.launch(prog, init_cap_regs={6: [bad] * lanes})
        assert isinstance(info.value.cause, TagViolation)


class TestPccRelative:
    def test_auipcc_produces_executable_capability(self):
        sm = StreamingMultiprocessor(cheri_config())
        lanes = sm.cfg.num_lanes
        out = buffer_cap(HEAP_BASE, 64)
        prog = [
            Instr(Op.AUIPCC, rd=7, imm=0),       # PCC at pc 0
            Instr(Op.CGETTAG, rd=8, rs1=7),
            Instr(Op.CSW, rs1=10, rs2=8, imm=0),
            Instr(Op.CGETPERM, rd=8, rs1=7),
            Instr(Op.CSW, rs1=10, rs2=8, imm=4),
            Instr(Op.HALT),
        ]
        sm.launch(prog, init_cap_regs={
            10: [out.set_addr(HEAP_BASE + 8 * t) for t in range(lanes)],
        })
        assert sm.memory.read(HEAP_BASE, 4) == 1  # tagged
        perms = Perms(sm.memory.read(HEAP_BASE + 4, 4))
        assert Perms.EXECUTE in perms

    def test_cspecialrw_reads_pcc(self):
        sm = StreamingMultiprocessor(cheri_config())
        lanes = sm.cfg.num_lanes
        out = buffer_cap(HEAP_BASE, 64)
        prog = [
            Instr(Op.CSPECIALRW, rd=7, rs1=0, imm=1),
            Instr(Op.CGETLEN, rd=8, rs1=7),
            Instr(Op.CSW, rs1=10, rs2=8, imm=0),
            Instr(Op.HALT),
        ]
        sm.launch(prog, init_cap_regs={
            10: [out.set_addr(HEAP_BASE + 4 * t) for t in range(lanes)],
        })
        # Default kernel PCC covers the whole address space (clamped len).
        assert sm.memory.read(HEAP_BASE, 4) == 0xFFFFFFFF


class TestCapabilitySpillFidelity:
    def test_csc_clc_preserve_integer_null_metadata(self):
        # Spilling an integer register via CSC and reloading via CLC must
        # restore the value with *null* (untagged) metadata.
        sm = StreamingMultiprocessor(cheri_config())
        lanes = sm.cfg.num_lanes
        slots = buffer_cap(HEAP_BASE + 0x1000, 8 * lanes)
        out = buffer_cap(HEAP_BASE, 64)
        prog = [
            Instr(Op.ADDI, rd=7, rs1=0, imm=123),
            Instr(Op.CSC, rs1=6, rs2=7, imm=0),    # spill integer
            Instr(Op.CLC, rd=8, rs1=6, imm=0),     # reload
            Instr(Op.CGETTAG, rd=9, rs1=8),
            Instr(Op.CSW, rs1=10, rs2=9, imm=0),
            Instr(Op.CGETADDR, rd=9, rs1=8),
            Instr(Op.CSW, rs1=10, rs2=9, imm=4),
            Instr(Op.HALT),
        ]
        sm.launch(prog, init_cap_regs={
            6: [slots.set_addr(HEAP_BASE + 0x1000 + 8 * t)
                for t in range(lanes)],
            10: [out.set_addr(HEAP_BASE + 8 * t) for t in range(lanes)],
        })
        assert sm.memory.read(HEAP_BASE, 4) == 0     # untagged
        assert sm.memory.read(HEAP_BASE + 4, 4) == 123
