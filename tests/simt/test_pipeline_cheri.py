"""CHERI-mode pipeline tests: capability accesses, checks, and faults."""

import pytest

from repro.cheri import BoundsViolation, Perms, TagViolation, root_capability
from repro.cheri.exceptions import PermissionViolation
from repro.isa.instructions import Instr, Op
from repro.simt import KernelAbort, SMConfig, StreamingMultiprocessor
from repro.simt.config import HEAP_BASE


def cheri_config(**kwargs):
    kwargs.setdefault("num_warps", 2)
    kwargs.setdefault("num_lanes", 4)
    return SMConfig.cheri_optimised(**kwargs)


def unopt_config(**kwargs):
    kwargs.setdefault("num_warps", 2)
    kwargs.setdefault("num_lanes", 4)
    return SMConfig.cheri(**kwargs)


def buffer_cap(base, length, perms=None):
    cap, exact = root_capability().set_bounds(base, length)
    assert exact, "test buffers must be exactly representable"
    if perms is not None:
        cap = cap.and_perms(perms)
    return cap


def make_sm(cfg=None):
    return StreamingMultiprocessor(cfg or cheri_config())


class TestCapabilityAccess:
    def test_clw_csw_roundtrip(self):
        sm = make_sm()
        tids = list(range(sm.cfg.num_threads))
        for t in tids:
            sm.memory.write(HEAP_BASE + 4 * t, 4, 50 + t)
        cap = buffer_cap(HEAP_BASE, 4 * len(tids))
        caps = [cap.set_addr(HEAP_BASE + 4 * t) for t in tids]
        prog = [
            Instr(Op.CLW, rd=7, rs1=6, imm=0),
            Instr(Op.ADDI, rd=7, rs1=7, imm=1),
            Instr(Op.CSW, rs1=6, rs2=7, imm=0),
            Instr(Op.HALT),
        ]
        sm.launch(prog, init_cap_regs={6: caps})
        for t in tids:
            assert sm.memory.read(HEAP_BASE + 4 * t, 4) == 51 + t

    def test_byte_and_half_accesses(self):
        sm = make_sm(cheri_config(num_warps=1))
        cap = buffer_cap(HEAP_BASE, 64)
        sm.memory.write(HEAP_BASE, 4, 0x80FF)
        prog = [
            Instr(Op.CLB, rd=7, rs1=6, imm=0),   # sign-extended 0xFF
            Instr(Op.CSW, rs1=8, rs2=7, imm=0),
            Instr(Op.CLH, rd=7, rs1=6, imm=0),   # sign-extended 0x80FF
            Instr(Op.CSW, rs1=8, rs2=7, imm=4),
            Instr(Op.CLBU, rd=7, rs1=6, imm=0),
            Instr(Op.CSW, rs1=8, rs2=7, imm=8),
            Instr(Op.HALT),
        ]
        out_cap = buffer_cap(HEAP_BASE + 0x100, 64)
        lanes = sm.cfg.num_lanes
        sm.launch(prog, init_cap_regs={
            6: [cap] * lanes,
            8: [out_cap.set_addr(HEAP_BASE + 0x100 + 16 * t) for t in range(lanes)],
        })
        assert sm.memory.read(HEAP_BASE + 0x100, 4) == 0xFFFFFFFF
        assert sm.memory.read(HEAP_BASE + 0x104, 4) == 0xFFFF80FF
        assert sm.memory.read(HEAP_BASE + 0x108, 4) == 0xFF

    def test_clc_csc_capability_roundtrip(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        data_cap = buffer_cap(HEAP_BASE, 256)
        slot_cap = buffer_cap(HEAP_BASE + 0x1000, 8 * lanes)
        prog = [
            Instr(Op.CSC, rs1=6, rs2=7, imm=0),   # store cap to memory
            Instr(Op.CLC, rd=8, rs1=6, imm=0),    # load it back
            Instr(Op.CGETTAG, rd=9, rs1=8),
            Instr(Op.CSW, rs1=10, rs2=9, imm=0),
            Instr(Op.CGETLEN, rd=9, rs1=8),
            Instr(Op.CSW, rs1=10, rs2=9, imm=4),
            Instr(Op.HALT),
        ]
        out_cap = buffer_cap(HEAP_BASE + 0x2000, 64)
        sm.launch(prog, init_cap_regs={
            6: [slot_cap.set_addr(HEAP_BASE + 0x1000 + 8 * t) for t in range(lanes)],
            7: [data_cap] * lanes,
            10: [out_cap.set_addr(HEAP_BASE + 0x2000 + 8 * t) for t in range(lanes)],
        })
        assert sm.memory.read(HEAP_BASE + 0x2000, 4) == 1     # tag survived
        assert sm.memory.read(HEAP_BASE + 0x2004, 4) == 256   # length survived

    def test_data_overwrite_invalidates_stored_cap(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        data_cap = buffer_cap(HEAP_BASE, 256)
        slot_cap = buffer_cap(HEAP_BASE + 0x1000, 8 * lanes)
        prog = [
            Instr(Op.CSC, rs1=6, rs2=7, imm=0),
            Instr(Op.ADDI, rd=9, rs1=0, imm=123),
            Instr(Op.CSW, rs1=6, rs2=9, imm=0),   # clobber low half
            Instr(Op.CLC, rd=8, rs1=6, imm=0),
            Instr(Op.CGETTAG, rd=9, rs1=8),
            Instr(Op.CSW, rs1=10, rs2=9, imm=0),
            Instr(Op.HALT),
        ]
        out_cap = buffer_cap(HEAP_BASE + 0x2000, 64)
        sm.launch(prog, init_cap_regs={
            6: [slot_cap.set_addr(HEAP_BASE + 0x1000 + 8 * t) for t in range(lanes)],
            7: [data_cap] * lanes,
            10: [out_cap.set_addr(HEAP_BASE + 0x2000 + 8 * t) for t in range(lanes)],
        })
        assert sm.memory.read(HEAP_BASE + 0x2000, 4) == 0  # tag cleared


class TestFaults:
    def run_faulting(self, sm, prog, caps):
        with pytest.raises(KernelAbort) as info:
            sm.launch(prog, init_cap_regs=caps)
        return info.value.cause

    def test_out_of_bounds_load_traps(self):
        sm = make_sm()
        tids = list(range(sm.cfg.num_threads))
        cap = buffer_cap(HEAP_BASE, 4 * len(tids))
        # Last thread points one element past the end.
        caps = [cap.set_addr(HEAP_BASE + 4 * (t + 1)) for t in tids]
        prog = [Instr(Op.CLW, rd=7, rs1=6, imm=0), Instr(Op.HALT)]
        cause = self.run_faulting(sm, prog, {6: caps})
        assert isinstance(cause, BoundsViolation)

    def test_overread_of_adjacent_secret_traps(self):
        # The paper's Figure 1 scenario: ptr points to `data` but is read
        # out of bounds to reach `secret`.
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        sm.memory.write(HEAP_BASE, 4, 0xDA1A)
        sm.memory.write(HEAP_BASE + 4, 4, 0xC0DE)  # the secret
        cap = buffer_cap(HEAP_BASE, 4)
        prog = [Instr(Op.CLW, rd=7, rs1=6, imm=4), Instr(Op.HALT)]
        cause = self.run_faulting(sm, prog, {6: [cap] * lanes})
        assert isinstance(cause, BoundsViolation)

    def test_untagged_capability_traps(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        cap = buffer_cap(HEAP_BASE, 64).with_tag_cleared()
        prog = [Instr(Op.CLW, rd=7, rs1=6, imm=0), Instr(Op.HALT)]
        cause = self.run_faulting(sm, prog, {6: [cap] * lanes})
        assert isinstance(cause, TagViolation)

    def test_store_without_permission_traps(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        ro = buffer_cap(HEAP_BASE, 64, Perms.LOAD | Perms.GLOBAL)
        prog = [
            Instr(Op.ADDI, rd=7, rs1=0, imm=1),
            Instr(Op.CSW, rs1=6, rs2=7, imm=0),
            Instr(Op.HALT),
        ]
        cause = self.run_faulting(sm, prog, {6: [ro] * lanes})
        assert isinstance(cause, PermissionViolation)

    def test_forged_capability_cannot_be_used(self):
        # Build an address by integer arithmetic: metadata is null, so any
        # dereference faults (referential integrity).
        sm = make_sm(cheri_config(num_warps=1))
        prog = [
            Instr(Op.LUI, rd=6, imm=HEAP_BASE >> 12),
            Instr(Op.CLW, rd=7, rs1=6, imm=0),
            Instr(Op.HALT),
        ]
        with pytest.raises(KernelAbort) as info:
            sm.launch(prog)
        assert isinstance(info.value.cause, TagViolation)


class TestCheriOps:
    def test_cincoffset_walks_buffer(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        cap = buffer_cap(HEAP_BASE, 64)
        prog = [
            Instr(Op.CINCOFFSETIMM, rd=6, rs1=6, imm=8),
            Instr(Op.ADDI, rd=7, rs1=0, imm=9),
            Instr(Op.CSW, rs1=6, rs2=7, imm=0),
            Instr(Op.HALT),
        ]
        caps = [cap.set_addr(HEAP_BASE + 16 * t) for t in range(lanes)]
        sm.launch(prog, init_cap_regs={6: caps})
        for t in range(lanes):
            assert sm.memory.read(HEAP_BASE + 16 * t + 8, 4) == 9

    def test_csetbounds_narrows(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        cap = buffer_cap(HEAP_BASE, 256)
        prog = [
            Instr(Op.ADDI, rd=7, rs1=0, imm=16),
            Instr(Op.CSETBOUNDS, rd=8, rs1=6, rs2=7),
            Instr(Op.CGETLEN, rd=9, rs1=8),
            Instr(Op.CSW, rs1=10, rs2=9, imm=0),
            # An access beyond the narrowed bounds must now fail.
            Instr(Op.CLW, rd=11, rs1=8, imm=16),
            Instr(Op.HALT),
        ]
        out = buffer_cap(HEAP_BASE + 0x1000, 64)
        with pytest.raises(KernelAbort) as info:
            sm.launch(prog, init_cap_regs={
                6: [cap] * lanes,
                10: [out.set_addr(HEAP_BASE + 0x1000 + 4 * t) for t in range(lanes)],
            })
        assert isinstance(info.value.cause, BoundsViolation)
        assert sm.memory.read(HEAP_BASE + 0x1000, 4) == 16

    def test_sfu_slow_path_counts_requests(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        cap = buffer_cap(HEAP_BASE, 256)
        prog = [
            Instr(Op.CGETLEN, rd=9, rs1=6),
            Instr(Op.HALT),
        ]
        stats = sm.launch(prog, init_cap_regs={6: [cap] * lanes})
        assert stats.sfu_requests == lanes

    def test_no_sfu_for_bounds_ops_in_unoptimised(self):
        sm = make_sm(unopt_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        cap = buffer_cap(HEAP_BASE, 256)
        prog = [Instr(Op.CGETLEN, rd=9, rs1=6), Instr(Op.HALT)]
        stats = sm.launch(prog, init_cap_regs={6: [cap] * lanes})
        assert stats.sfu_requests == 0

    def test_cgetaddr_and_csetaddr(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        cap = buffer_cap(HEAP_BASE, 64)
        prog = [
            Instr(Op.CGETADDR, rd=7, rs1=6),
            Instr(Op.ADDI, rd=7, rs1=7, imm=4),
            Instr(Op.CSETADDR, rd=8, rs1=6, rs2=7),
            Instr(Op.ADDI, rd=9, rs1=0, imm=77),
            Instr(Op.CSW, rs1=8, rs2=9, imm=0),
            Instr(Op.HALT),
        ]
        sm.launch(prog, init_cap_regs={6: [cap] * lanes})
        assert sm.memory.read(HEAP_BASE + 4, 4) == 77


class TestMetadataRegfile:
    def test_uniform_metadata_is_compressed(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        cap = buffer_cap(HEAP_BASE, 4 * lanes)
        # Same bounds, different addresses: metadata uniform, data affine.
        caps = [cap.set_addr(HEAP_BASE + 4 * t) for t in range(lanes)]
        prog = [
            Instr(Op.CLW, rd=7, rs1=6, imm=0),
            Instr(Op.HALT),
        ]
        stats = sm.launch(prog, init_cap_regs={6: caps})
        assert stats.meta_spills == 0
        assert sm.meta.resident_vectors == 0

    def test_csc_pays_extra_operand_cycle(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        data_cap = buffer_cap(HEAP_BASE, 256)
        slot_cap = buffer_cap(HEAP_BASE + 0x1000, 8 * lanes)
        prog = [Instr(Op.CSC, rs1=6, rs2=7, imm=0), Instr(Op.HALT)]
        stats = sm.launch(prog, init_cap_regs={
            6: [slot_cap.set_addr(HEAP_BASE + 0x1000 + 8 * t) for t in range(lanes)],
            7: [data_cap] * lanes,
        })
        assert stats.stall_csc_operand == 1

    def test_cap_register_tracking_for_figure11(self):
        sm = make_sm(cheri_config(num_warps=1))
        lanes = sm.cfg.num_lanes
        cap = buffer_cap(HEAP_BASE, 64)
        prog = [
            Instr(Op.CMOVE, rd=8, rs1=6),
            Instr(Op.CMOVE, rd=9, rs1=6),
            Instr(Op.HALT),
        ]
        stats = sm.launch(prog, init_cap_regs={6: [cap] * lanes})
        assert stats.cap_regs_per_thread == 3  # regs 6, 8, 9


class TestPCC:
    def test_kernel_pcc_bounds_enforced(self):
        sm = make_sm(cheri_config(num_warps=1))
        # PCC covering only the first instruction: fetching the second traps.
        pcc, exact = root_capability().set_bounds(0, 4)
        assert exact
        prog = [
            Instr(Op.ADDI, rd=5, rs1=0, imm=1),
            Instr(Op.HALT),
        ]
        with pytest.raises(KernelAbort) as info:
            sm.launch(prog, kernel_pcc=pcc)
        assert isinstance(info.value.cause, BoundsViolation)

    def test_non_executable_pcc_traps(self):
        sm = make_sm(cheri_config(num_warps=1))
        pcc = root_capability(Perms.LOAD | Perms.GLOBAL)
        with pytest.raises(KernelAbort) as info:
            sm.launch([Instr(Op.HALT)], kernel_pcc=pcc)
        assert isinstance(info.value.cause, PermissionViolation)
