"""Scalar/vector backend equivalence at the SM level.

The vector backend (``SMConfig.backend == "vector"``) must be
bit-identical to the scalar reference backend — same statistics, same
memory effects, same faults — including the awkward corners these tests
pin down:

- instruction slots whose active-lane set shrinks to a single lane or
  whose static instructions never issue at all (a fully-taken branch);
- divergence and reconvergence across a warp, including the hot-trace
  region machinery that only engages for converged warps;
- capability faults raised by a strict subset of a warp's lanes;
- the NumPy wide-SM path (``num_lanes >= 16``), which evaluates ALU ops
  on uint32 arrays instead of per-lane Python ints.
"""

from dataclasses import asdict

import pytest

from repro.cheri import root_capability
from repro.isa.instructions import Instr, Op
from repro.simt import KernelAbort, SMConfig, StreamingMultiprocessor
from repro.simt.config import HEAP_BASE

from tests.simt.kernels import branch_ladder, frontier_loop


def _config(mode, backend, num_warps, num_lanes, **kwargs):
    factory = (SMConfig.cheri_optimised if mode == "purecap"
               else SMConfig.baseline)
    return factory(num_warps=num_warps, num_lanes=num_lanes,
                   **kwargs).with_(backend=backend)


def _run_one(backend, prog, mode="baseline", num_warps=2, num_lanes=4,
             init_regs=None, init_cap_regs=None, setup=None, **kwargs):
    """One backend's view of a launch: stats, memory, tags, fault."""
    sm = StreamingMultiprocessor(
        _config(mode, backend, num_warps, num_lanes, **kwargs))
    if setup is not None:
        setup(sm)
    fault = None
    try:
        sm.launch(prog, init_regs=init_regs, init_cap_regs=init_cap_regs)
    except KernelAbort as abort:
        cause = abort.cause
        fault = (type(cause).__name__, str(cause))
    return {
        "stats": asdict(sm.stats),
        "words": dict(sm.memory._words),
        "tags": set(sm.memory._tags),
        "fault": fault,
    }


def run_both(prog, **kwargs):
    """Run on both backends and assert every observable matches.

    Returns the scalar observation so tests can make additional
    assertions about what actually happened.
    """
    scalar = _run_one("scalar", prog, **kwargs)
    vector = _run_one("vector", prog, **kwargs)
    assert scalar["fault"] == vector["fault"]
    assert scalar["words"] == vector["words"]
    assert scalar["tags"] == vector["tags"]
    assert scalar["stats"] == vector["stats"]
    return scalar


def heap_slots(num_threads, base=HEAP_BASE):
    return [base + 4 * t for t in range(num_threads)]


class TestMaskedIssueSlots:
    def test_branch_taken_by_all_lanes_skips_a_block(self):
        # rs1 == rs2 for every lane: the fall-through block has zero
        # active lanes and must never issue on either backend.
        prog = [
            Instr(Op.BEQ, rs1=0, rs2=0, imm=12),
            Instr(Op.ADDI, rd=7, rs1=0, imm=99, depth=1),   # never issues
            Instr(Op.SW, rs1=8, rs2=7, imm=0, depth=1),     # never issues
            Instr(Op.SW, rs1=8, rs2=6, imm=0),
            Instr(Op.HALT),
        ]
        obs = run_both(
            prog,
            init_regs={6: [41] * 8, 8: heap_slots(8)},
        )
        assert obs["words"][HEAP_BASE >> 2] == 41
        # The skipped block contributed nothing.
        assert obs["stats"]["opcode_counts"].get(Op.ADDI, 0) == 0

    def test_single_active_lane_then_empty_warp(self):
        # Lanes 0..2 halt immediately; lane 3 runs on alone, so every
        # subsequent slot issues with one active lane, then the warp
        # drains to zero runnable lanes.
        prog = [
            Instr(Op.BEQ, rs1=5, rs2=6, imm=8),
            Instr(Op.HALT),                                  # lanes != 3
            Instr(Op.ADDI, rd=7, rs1=7, imm=5, depth=1),
            Instr(Op.SW, rs1=8, rs2=7, imm=0, depth=1),
            Instr(Op.HALT),
        ]
        lanes = 4
        obs = run_both(
            prog,
            num_warps=2, num_lanes=lanes,
            init_regs={5: [t % lanes for t in range(2 * lanes)],
                       6: [3] * (2 * lanes),
                       8: heap_slots(2 * lanes)},
        )
        for warp in range(2):
            slot = (HEAP_BASE + 4 * (warp * lanes + 3)) >> 2
            assert obs["words"][slot] == 5


class TestDivergenceReconvergence:
    def test_even_odd_split_and_rejoin(self):
        # Even lanes double, odd lanes negate; everyone rejoins for the
        # store.  Exercises select/reconverge on both backends and, via
        # the rejoined tail, the vector backend's converged fast path.
        prog = [
            Instr(Op.ANDI, rd=7, rs1=5, imm=1),
            Instr(Op.BNE, rs1=7, rs2=0, imm=12),
            Instr(Op.ADD, rd=9, rs1=5, rs2=5, depth=1),      # even
            Instr(Op.JAL, rd=0, imm=8, depth=1),
            Instr(Op.SUB, rd=9, rs1=0, rs2=5, depth=1),      # odd
            Instr(Op.SW, rs1=8, rs2=9, imm=0),
            Instr(Op.HALT),
        ]
        lanes = 4
        threads = 2 * lanes
        obs = run_both(
            prog,
            num_warps=2, num_lanes=lanes,
            init_regs={5: list(range(threads)), 8: heap_slots(threads)},
        )
        for t in range(threads):
            expected = 2 * t if t % 2 == 0 else (-t) & 0xFFFFFFFF
            assert obs["words"][(HEAP_BASE + 4 * t) >> 2] == expected

    def test_divergent_loop_trip_counts(self):
        # Per-lane loop trip counts (tid iterations): lanes fall out of
        # the loop one by one, reconverging at the tail store.
        prog = [
            Instr(Op.ADDI, rd=9, rs1=0, imm=0),
            Instr(Op.BGE, rs1=9, rs2=5, imm=12),             # loop head
            Instr(Op.ADDI, rd=9, rs1=9, imm=1, depth=1),
            Instr(Op.JAL, rd=0, imm=-8, depth=1),
            Instr(Op.SW, rs1=8, rs2=9, imm=0),
            Instr(Op.HALT),
        ]
        lanes = 4
        threads = 2 * lanes
        obs = run_both(
            prog,
            num_warps=2, num_lanes=lanes,
            init_regs={5: list(range(threads)), 8: heap_slots(threads)},
        )
        for t in range(threads):
            assert obs["words"][(HEAP_BASE + 4 * t) >> 2] == t


class TestFaultingLaneSubsets:
    def _oob_case(self, bad_lanes, num_lanes=4):
        cap, exact = root_capability().set_bounds(HEAP_BASE, 4 * num_lanes)
        assert exact
        caps = []
        for t in range(num_lanes):
            addr = HEAP_BASE + 4 * t
            if t in bad_lanes:
                addr = HEAP_BASE + 4 * num_lanes  # one past the end
            caps.append(cap.set_addr(addr))
        prog = [Instr(Op.CLW, rd=7, rs1=6, imm=0), Instr(Op.HALT)]
        return prog, {6: caps}

    @pytest.mark.parametrize("bad_lanes", [(3,), (0,), (1, 2)])
    def test_out_of_bounds_lane_subset_faults_identically(self, bad_lanes):
        prog, caps = self._oob_case(set(bad_lanes))
        obs = run_both(prog, mode="purecap", num_warps=1,
                       init_cap_regs=caps)
        assert obs["fault"] is not None
        assert obs["fault"][0] == "BoundsViolation"

    def test_all_lanes_in_bounds_is_clean(self):
        prog, caps = self._oob_case(set())
        obs = run_both(prog, mode="purecap", num_warps=1,
                       init_cap_regs=caps)
        assert obs["fault"] is None

    def test_store_fault_leaves_identical_memory(self):
        # A faulting masked store must leave memory in the same state on
        # both backends (the fault is precise: no partial effects after
        # the faulting slot).
        num_lanes = 4
        cap, exact = root_capability().set_bounds(HEAP_BASE, 4 * num_lanes)
        assert exact
        caps = [cap.set_addr(HEAP_BASE + 8 * t) for t in range(num_lanes)]
        prog = [Instr(Op.CSW, rs1=6, rs2=5, imm=0), Instr(Op.HALT)]
        obs = run_both(prog, mode="purecap", num_warps=1,
                       init_regs={5: [7] * num_lanes}, init_cap_regs={6: caps})
        assert obs["fault"] is not None
        assert obs["fault"][0] == "BoundsViolation"


class TestWideSMNumpyPath:
    """>= 16 lanes engages the vector backend's NumPy array ALU."""

    def test_alu_mix_sixteen_lanes(self):
        lanes = 16
        prog = [
            Instr(Op.ADD, rd=9, rs1=5, rs2=6),
            Instr(Op.SLL, rd=10, rs1=9, rs2=7),
            Instr(Op.XOR, rd=11, rs1=10, rs2=5),
            Instr(Op.SUB, rd=12, rs1=11, rs2=6),
            Instr(Op.SW, rs1=8, rs2=12, imm=0),
            Instr(Op.HALT),
        ]
        obs = run_both(
            prog,
            num_warps=1, num_lanes=lanes,
            init_regs={5: list(range(lanes)),
                       6: [0x01010101 * (t % 3) for t in range(lanes)],
                       7: [t % 5 for t in range(lanes)],
                       8: heap_slots(lanes)},
        )
        for t in range(lanes):
            a, b, sh = t, 0x01010101 * (t % 3), t % 5
            value = ((((a + b) & 0xFFFFFFFF) << sh) & 0xFFFFFFFF) ^ a
            value = (value - b) & 0xFFFFFFFF
            assert obs["words"][(HEAP_BASE + 4 * t) >> 2] == value

    def test_masked_wide_alu(self):
        # Divergence at 16 lanes: the masked NumPy path must scatter
        # results only into active lanes.
        lanes = 16
        prog = [
            Instr(Op.ANDI, rd=7, rs1=5, imm=1),
            Instr(Op.BNE, rs1=7, rs2=0, imm=12),
            Instr(Op.ADD, rd=9, rs1=5, rs2=5, depth=1),
            Instr(Op.JAL, rd=0, imm=8, depth=1),
            Instr(Op.ADDI, rd=9, rs1=5, imm=100, depth=1),
            Instr(Op.SW, rs1=8, rs2=9, imm=0),
            Instr(Op.HALT),
        ]
        obs = run_both(
            prog,
            num_warps=1, num_lanes=lanes,
            init_regs={5: list(range(lanes)), 8: heap_slots(lanes)},
        )
        for t in range(lanes):
            expected = 2 * t if t % 2 == 0 else t + 100
            assert obs["words"][(HEAP_BASE + 4 * t) >> 2] == expected


class TestIrregularKernels:
    """Divergence-stress micro-kernels (shared with the jit stack).

    Both kernels keep a strict subset of each warp's lanes converged on
    a long straight-line block, so the vector backend's masked region
    entries — not just its per-slot masked issue — carry the run."""

    def test_branch_ladder_bit_identical(self):
        prog, regs = branch_ladder()
        obs = run_both(prog, num_warps=2, num_lanes=4, init_regs=regs)
        assert obs["fault"] is None
        # Every lane rejoined and stored its final accumulator.
        for t in range(8):
            assert (HEAP_BASE + 4 * t) >> 2 in obs["words"]

    def test_frontier_loop_bit_identical(self):
        prog, regs = frontier_loop()
        obs = run_both(prog, num_warps=2, num_lanes=4, init_regs=regs)
        assert obs["fault"] is None
        for t in range(8):
            trips = (3 * t) % 7 + 1
            assert obs["words"][(HEAP_BASE + 0x100 + 4 * t) >> 2] == trips

    def test_frontier_loop_wide_numpy_path(self):
        prog, regs = frontier_loop(threads=16)
        obs = run_both(prog, num_warps=1, num_lanes=16, init_regs=regs)
        assert obs["fault"] is None


class TestSubWordMemory:
    def test_byte_halfword_roundtrip(self):
        # Byte and halfword stores/loads with sign extension, strided so
        # lanes hit different bytes of shared words.
        lanes = 4
        prog = [
            Instr(Op.SB, rs1=8, rs2=5, imm=0),
            Instr(Op.LB, rd=9, rs1=8, imm=0),
            Instr(Op.LBU, rd=10, rs1=8, imm=0),
            Instr(Op.SW, rs1=11, rs2=9, imm=0),
            Instr(Op.SW, rs1=12, rs2=10, imm=0),
            Instr(Op.HALT),
        ]
        threads = 2 * lanes
        obs = run_both(
            prog,
            num_warps=2, num_lanes=lanes,
            init_regs={
                5: [0x80 + t for t in range(threads)],  # sign bit set
                8: [HEAP_BASE + t for t in range(threads)],
                11: heap_slots(threads, HEAP_BASE + 0x100),
                12: heap_slots(threads, HEAP_BASE + 0x200),
            },
        )
        for t in range(threads):
            signed = (0x80 + t) - 0x100  # LB sign-extends
            assert obs["words"][(HEAP_BASE + 0x100 + 4 * t) >> 2] == \
                signed & 0xFFFFFFFF
            assert obs["words"][(HEAP_BASE + 0x200 + 4 * t) >> 2] == \
                0x80 + t
