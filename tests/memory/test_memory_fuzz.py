"""Model-based fuzz of TaggedMemory against a plain byte/tag dictionary."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import TaggedMemory

_REGION = 0x1000  # fuzz within a 4 KiB window

ops = st.lists(
    st.one_of(
        st.tuples(st.just("w8"),
                  st.integers(min_value=0, max_value=_REGION - 1),
                  st.integers(min_value=0, max_value=0xFF)),
        st.tuples(st.just("w16"),
                  st.integers(min_value=0, max_value=_REGION // 2 - 1)
                  .map(lambda x: x * 2),
                  st.integers(min_value=0, max_value=0xFFFF)),
        st.tuples(st.just("w32"),
                  st.integers(min_value=0, max_value=_REGION // 4 - 1)
                  .map(lambda x: x * 4),
                  st.integers(min_value=0, max_value=0xFFFFFFFF)),
        st.tuples(st.just("wcap"),
                  st.integers(min_value=0, max_value=_REGION // 8 - 1)
                  .map(lambda x: x * 8),
                  st.integers(min_value=0, max_value=(1 << 64) - 1)),
    ),
    min_size=1, max_size=60,
)


class ByteModel:
    """The obviously-correct reference: one byte per address + tag sets."""

    def __init__(self):
        self.bytes_ = {}
        self.tags = set()

    def write(self, addr, width, value):
        for i in range(width):
            self.bytes_[addr + i] = (value >> (8 * i)) & 0xFF
            self.tags.discard((addr + i) >> 2)

    def write_cap(self, addr, value, tag):
        for i in range(8):
            self.bytes_[addr + i] = (value >> (8 * i)) & 0xFF
        for word in (addr >> 2, (addr >> 2) + 1):
            if tag:
                self.tags.add(word)
            else:
                self.tags.discard(word)

    def read(self, addr, width):
        return sum(self.bytes_.get(addr + i, 0) << (8 * i)
                   for i in range(width))

    def read_cap(self, addr):
        value = sum(self.bytes_.get(addr + i, 0) << (8 * i)
                    for i in range(8))
        tag = (addr >> 2) in self.tags and ((addr >> 2) + 1) in self.tags
        return value, tag


@given(ops)
@settings(max_examples=200)
def test_memory_matches_byte_model(operations):
    mem = TaggedMemory()
    model = ByteModel()
    for op, addr, value in operations:
        if op == "w8":
            mem.write(addr, 1, value)
            model.write(addr, 1, value)
        elif op == "w16":
            mem.write(addr, 2, value)
            model.write(addr, 2, value)
        elif op == "w32":
            mem.write(addr, 4, value)
            model.write(addr, 4, value)
        else:
            tag = bool(value & 1)
            mem.write_cap_raw(addr, value, tag)
            model.write_cap(addr, value, tag)
    # Full-region cross-check at every width.
    for addr in range(0, _REGION, 4):
        assert mem.read(addr, 4) == model.read(addr, 4), hex(addr)
    for addr in range(0, _REGION, 8):
        assert mem.read_cap_raw(addr) == model.read_cap(addr), hex(addr)
    for addr in range(0, _REGION, 1):
        if addr % 2 == 0:
            assert mem.read(addr, 2) == model.read(addr, 2)
        assert mem.read(addr, 1) == model.read(addr, 1)
