"""Tests for the tagged main memory model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemoryError_, TaggedMemory

word_addrs = st.integers(min_value=0, max_value=(1 << 30) - 1).map(lambda x: x * 4)
cap_addrs = st.integers(min_value=0, max_value=(1 << 29) - 1).map(lambda x: x * 8)
words = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestScalarAccess:
    def test_uninitialised_reads_zero(self):
        mem = TaggedMemory()
        assert mem.read(0x1000, 4) == 0

    def test_word_roundtrip(self):
        mem = TaggedMemory()
        mem.write(0x1000, 4, 0xDEADBEEF)
        assert mem.read(0x1000, 4) == 0xDEADBEEF

    def test_byte_lanes(self):
        mem = TaggedMemory()
        mem.write(0x100, 4, 0x44332211)
        assert [mem.read(0x100 + i, 1) for i in range(4)] == [0x11, 0x22, 0x33, 0x44]

    def test_halfword_lanes(self):
        mem = TaggedMemory()
        mem.write(0x100, 4, 0x44332211)
        assert mem.read(0x100, 2) == 0x2211
        assert mem.read(0x102, 2) == 0x4433

    def test_signed_byte(self):
        mem = TaggedMemory()
        mem.write(0x10, 1, 0xFF)
        assert mem.read(0x10, 1, signed=True) == -1
        assert mem.read(0x10, 1, signed=False) == 0xFF

    def test_signed_half(self):
        mem = TaggedMemory()
        mem.write(0x10, 2, 0x8000)
        assert mem.read(0x10, 2, signed=True) == -32768

    def test_partial_write_preserves_neighbours(self):
        mem = TaggedMemory()
        mem.write(0x20, 4, 0xAABBCCDD)
        mem.write(0x21, 1, 0x00)
        assert mem.read(0x20, 4) == 0xAABB00DD

    def test_misaligned_raises(self):
        mem = TaggedMemory()
        with pytest.raises(MemoryError_):
            mem.read(0x1001, 4)
        with pytest.raises(MemoryError_):
            mem.write(0x1002, 4, 0)
        with pytest.raises(MemoryError_):
            mem.read(0x1001, 2)

    @given(word_addrs, words)
    @settings(max_examples=200)
    def test_word_roundtrip_property(self, addr, value):
        mem = TaggedMemory()
        mem.write(addr, 4, value)
        assert mem.read(addr, 4) == value


class TestTags:
    def test_cap_write_sets_both_tags(self):
        mem = TaggedMemory()
        mem.write_cap_raw(0x100, 0x1122334455667788, True)
        assert mem.word_tag(0x100)
        assert mem.word_tag(0x104)
        value, tag = mem.read_cap_raw(0x100)
        assert value == 0x1122334455667788
        assert tag

    def test_data_write_clears_tag(self):
        mem = TaggedMemory()
        mem.write_cap_raw(0x100, 0xABCDEF, True)
        mem.write(0x104, 4, 0)
        _, tag = mem.read_cap_raw(0x100)
        assert not tag

    def test_byte_write_clears_tag(self):
        # Even a one-byte overwrite invalidates the capability: this is the
        # unforgeability property (paper section 2.4).
        mem = TaggedMemory()
        mem.write_cap_raw(0x200, 0xFFFFFFFFFFFFFFFF, True)
        mem.write(0x203, 1, 0x00)
        _, tag = mem.read_cap_raw(0x200)
        assert not tag

    def test_half_tag_is_not_a_valid_cap(self):
        # The 32-bit-granule invariant: both halves must be tagged.
        mem = TaggedMemory()
        mem.write_cap_raw(0x300, 0x1, True)
        mem.write_cap_raw(0x308, 0x2, True)
        mem.write(0x304, 4, 0x99)  # clobber upper half of first cap
        _, tag1 = mem.read_cap_raw(0x300)
        _, tag2 = mem.read_cap_raw(0x308)
        assert not tag1
        assert tag2

    def test_untagged_cap_write(self):
        mem = TaggedMemory()
        mem.write_cap_raw(0x400, 0x5555, True)
        mem.write_cap_raw(0x400, 0x5555, False)
        _, tag = mem.read_cap_raw(0x400)
        assert not tag

    def test_misaligned_cap_access_raises(self):
        mem = TaggedMemory()
        with pytest.raises(MemoryError_):
            mem.read_cap_raw(0x104 + 2)
        with pytest.raises(MemoryError_):
            mem.write_cap_raw(0x104, 0, True)

    @given(cap_addrs, st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.booleans())
    @settings(max_examples=200)
    def test_cap_roundtrip_property(self, addr, value, tag):
        mem = TaggedMemory()
        mem.write_cap_raw(addr, value, tag)
        assert mem.read_cap_raw(addr) == (value, tag)

    def test_tagged_word_count(self):
        mem = TaggedMemory()
        assert mem.tagged_word_count() == 0
        mem.write_cap_raw(0x100, 1, True)
        assert mem.tagged_word_count() == 2


class TestBulkHelpers:
    def test_block_roundtrip(self):
        mem = TaggedMemory()
        data = [1, 2, 3, 0xFFFFFFFF]
        mem.write_block_words(0x2000, data)
        assert mem.read_block_words(0x2000, 4) == data

    def test_block_write_clears_tags(self):
        mem = TaggedMemory()
        mem.write_cap_raw(0x2000, 7, True)
        mem.write_block_words(0x2000, [1, 2])
        _, tag = mem.read_cap_raw(0x2000)
        assert not tag
