"""Tests for the DRAM model and the tag controller."""

from repro.memory import DRAMModel, TaggedMemory, TagController


class TestDRAM:
    def test_single_request_latency(self):
        dram = DRAMModel(latency=40, line_bytes=64, cycles_per_txn=1)
        done = dram.request(cycle=100, is_write=False, n_bytes=64)
        assert done == 100 + 1 + 40

    def test_bandwidth_backpressure(self):
        dram = DRAMModel(latency=10, line_bytes=64, cycles_per_txn=2)
        first = dram.request(0, False, 64)
        second = dram.request(0, False, 64)
        assert second == first + 2

    def test_wide_request_occupies_multiple_slots(self):
        dram = DRAMModel(latency=0, line_bytes=64, cycles_per_txn=1)
        done = dram.request(0, True, 256)
        assert done == 4
        assert dram.stats.write_txns == 4
        assert dram.stats.write_bytes == 256

    def test_counters_split_by_direction(self):
        dram = DRAMModel()
        dram.request(0, False, 32)
        dram.request(0, True, 16)
        assert dram.stats.read_bytes == 32
        assert dram.stats.write_bytes == 16
        assert dram.stats.total_bytes == 48

    def test_spill_traffic_accounted(self):
        dram = DRAMModel()
        dram.request(0, True, 64, spill=True)
        dram.request(0, True, 64)
        assert dram.stats.spill_bytes == 64
        assert dram.stats.write_bytes == 128

    def test_reset_timing_keeps_counters(self):
        dram = DRAMModel()
        dram.request(0, False, 64)
        dram.reset_timing()
        assert dram.stats.read_bytes == 64
        done = dram.request(0, False, 64)
        assert done == 0 + 1 + dram.latency


class TestTagController:
    def make(self):
        mem = TaggedMemory()
        dram = DRAMModel(latency=20)
        return TagController(mem, dram), dram

    def test_capability_free_region_skips_tag_traffic(self):
        tc, dram = self.make()
        done = tc.access(cycle=5, addr=0x1000, is_write=False)
        assert done == 5
        assert tc.zero_region_skips == 1
        assert dram.stats.tag_bytes == 0

    def test_tag_write_marks_region(self):
        tc, dram = self.make()
        tc.access(0, 0x1000, is_write=True, writes_tag=True)
        done = tc.access(0, 0x1004, is_write=False)
        # Second access to a capability-holding region hits the tag cache
        # (the write loaded the line).
        assert tc.hits >= 1 or tc.misses >= 1
        assert done >= 0

    def test_miss_then_hit(self):
        tc, dram = self.make()
        tc.access(0, 0x2000, is_write=True, writes_tag=True)
        misses_after_first = tc.misses
        tc.access(10, 0x2004, is_write=False)
        assert tc.misses == misses_after_first  # same line: a hit
        assert tc.hits >= 1

    def test_distinct_lines_conflict(self):
        tc, dram = self.make()
        stride = tc.line_words * 4 * tc.cache_lines  # maps to same set index
        tc.access(0, 0x0, is_write=True, writes_tag=True)
        tc.access(0, stride, is_write=True, writes_tag=True)
        tc.access(0, 0x0, is_write=True, writes_tag=True)
        assert tc.misses >= 3

    def test_miss_rate_zero_when_no_caps(self):
        tc, _ = self.make()
        for addr in range(0, 0x4000, 4):
            tc.access(0, addr, is_write=False)
        assert tc.miss_rate == 0.0
        assert tc.zero_region_skips == 0x1000
