"""Every example script must run to completion (they self-check)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate what they show"
