"""End-to-end service tests against a real ``repro serve`` subprocess.

One server (1 worker, private disk cache, short job timeout) backs the
whole module; the drain test runs last and shuts it down.  Covers the
acceptance path: concurrent identical submissions execute once (dedup)
and both clients get identical results; a worker killed mid-job is
retried transparently; a hung job is timed out and failed; drain
finishes in-flight work, writes the service manifest, and exits; and
service-path statistics are bit-identical to a direct runner call.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeError

#: Per-job timeout the module's server is started with: long enough for
#: any small-geometry simulation here, short enough to test enforcement.
JOB_TIMEOUT = 6.0

#: Small geometry so simulations take fractions of a second.
GEOMETRY = {"num_warps": 4, "num_lanes": 4}


class ServerUnderTest:
    def __init__(self, process, port, cache_dir, manifest_dir):
        self.process = process
        self.port = port
        self.cache_dir = cache_dir
        self.manifest_dir = manifest_dir

    def client(self, timeout=60.0):
        return ServeClient(port=self.port, timeout=timeout)

    def stats(self):
        with self.client() as client:
            return client.stats()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("simcache"))
    manifest_dir = str(tmp_path_factory.mktemp("serve-manifests"))
    env = dict(os.environ)
    env["REPRO_SIMCACHE_DIR"] = cache_dir
    env["REPRO_MANIFEST_DIR"] = manifest_dir
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in [os.path.join(os.getcwd(), "src"),
                     env.get("PYTHONPATH")] if p])
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--job-timeout", str(JOB_TIMEOUT),
         "--retries", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        text=True)
    line = process.stdout.readline()
    match = re.search(r"listening on [\w.]+:(\d+)", line)
    if not match:
        process.kill()
        raise RuntimeError("server did not announce a port: %r" % line)
    yield ServerUnderTest(process, int(match.group(1)), cache_dir,
                          manifest_dir)
    if process.poll() is None:
        process.terminate()
        process.wait(timeout=15)


def test_ping_reports_protocol_version(server):
    from repro.serve.protocol import PROTOCOL_VERSION
    with server.client() as client:
        reply = client.ping()
    assert reply["pong"] is True
    assert reply["version"] == PROTOCOL_VERSION


def test_service_results_bit_identical_to_direct_run(server):
    with server.client() as client:
        payloads = client.run_grid(benchmarks=["VecAdd"],
                                   configs=["baseline"],
                                   overrides=GEOMETRY)
    assert len(payloads) == 1
    payload = next(iter(payloads.values()))
    assert payload["benchmark"] == "VecAdd"
    assert payload["config"] == "baseline"
    assert payload["stats"]["cycles"] > 0
    # The same cell run directly through the runner must be bit-identical
    # (same geometry, same private disk cache the worker wrote into).
    old = os.environ.get("REPRO_SIMCACHE_DIR")
    os.environ["REPRO_SIMCACHE_DIR"] = server.cache_dir
    try:
        from repro.eval.runner import run_benchmark
        direct = run_benchmark("VecAdd", "baseline", **GEOMETRY)
    finally:
        if old is None:
            os.environ.pop("REPRO_SIMCACHE_DIR", None)
        else:
            os.environ["REPRO_SIMCACHE_DIR"] = old
    assert payload["stats"] == direct.stats.as_dict()


def test_resubmission_is_served_from_memo(server):
    before = server.stats()["stats"]
    with server.client() as client:
        payloads = client.run_grid(benchmarks=["VecAdd"],
                                   configs=["baseline"],
                                   overrides=GEOMETRY)
    after = server.stats()["stats"]
    assert len(payloads) == 1
    assert after["executed"] == before["executed"]
    assert after["memo_hits"] + after["cache_hits"] > \
        before["memo_hits"] + before["cache_hits"]


def test_concurrent_identical_grids_execute_once(server):
    before = server.stats()["stats"]
    barrier = threading.Barrier(2)
    results = [None, None]
    errors = []

    def submit(slot):
        try:
            with server.client() as client:
                barrier.wait()
                results[slot] = client.run_grid(
                    benchmarks=["Reduce"], configs=["baseline"],
                    overrides=GEOMETRY)
        except Exception as exc:  # surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=submit, args=(slot,))
               for slot in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors
    after = server.stats()["stats"]
    # One simulation execution total; the duplicate attached to it.
    assert after["executed"] == before["executed"] + 1
    assert after["dedup_hits"] + after["memo_hits"] > \
        before["dedup_hits"] + before["memo_hits"]
    # Both clients got the same single job with identical payloads.
    assert results[0] is not None and results[1] is not None
    assert list(results[0]) == list(results[1])
    assert results[0] == results[1]


def test_worker_killed_mid_job_is_retried(server):
    before = server.stats()["stats"]
    events = []
    with server.client() as client:
        stream = client.submit_and_stream(kind="sleep", seconds=2.0,
                                          tag="kill-me")
        reply = next(stream)
        job_id = reply["jobs"][0]["id"]
        for message in stream:
            events.append(message)
            if message.get("event") == "started" and \
                    len([e for e in events
                         if e.get("event") == "started"]) == 1:
                # First execution attempt: shoot the worker.
                workers = server.stats()["workers"]
                victim = [w for w in workers if w["job"] == job_id]
                assert victim, "worker table does not show the job"
                os.kill(victim[0]["pid"], signal.SIGKILL)
    names = [message.get("event") for message in events]
    assert "retry" in names
    assert names.count("started") == 2
    assert names[-1] == "grid_done"
    done = [m for m in events if m.get("event") == "done"]
    assert done and done[0]["id"] == job_id
    after = server.stats()["stats"]
    assert after["retries"] == before["retries"] + 1
    with server.client() as client:
        job = client.result(job_id)["job"]
    assert job["state"] == "done"
    assert job["attempts"] == 1


def test_hung_job_times_out_and_fails_without_retry(server):
    before = server.stats()["stats"]
    with server.client(timeout=JOB_TIMEOUT + 30) as client:
        events = list(client.submit_and_stream(kind="sleep",
                                               seconds=600.0,
                                               tag="hang"))
    failed = [m for m in events if m.get("event") == "failed"]
    assert failed
    assert "timed out" in failed[0]["error"]
    names = [message.get("event") for message in events]
    assert "retry" not in names
    after = server.stats()["stats"]
    assert after["timeouts"] == before["timeouts"] + 1
    assert after["failed"] == before["failed"] + 1


def test_error_codes(server):
    with server.client() as client:
        with pytest.raises(ServeError) as excinfo:
            client.submit(benchmarks=["NotABench"])
        assert excinfo.value.code == "bad-request"
        with pytest.raises(ServeError) as excinfo:
            list(client.stream("g9999"))
        assert excinfo.value.code == "unknown-grid"
        with pytest.raises(ServeError) as excinfo:
            client.result("j999999")
        assert excinfo.value.code == "unknown-job"
        with pytest.raises(ServeError) as excinfo:
            client._request("frobnicate")
        assert excinfo.value.code == "bad-request"


def test_metrics_exposition_and_snapshot(server):
    with server.client() as client:
        reply = client.metrics()
    exposition = reply["exposition"]
    assert "# TYPE serve_executed_total counter" in exposition
    assert "# TYPE serve_job_latency_seconds histogram" in exposition
    assert 'serve_job_latency_seconds_bucket{le="+Inf"}' in exposition
    assert "serve_job_latency_seconds_count" in exposition
    assert "serve_workers 1" in exposition
    snapshot = reply["metrics"]
    assert snapshot["serve_job_latency_seconds"]["count"] >= 1
    assert snapshot["serve_executed_total"] >= 1
    assert "+Inf" in snapshot["serve_job_latency_seconds"]["buckets"]


def test_top_once_renders_live_dashboard(server):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in [os.path.join(os.getcwd(), "src"),
                     env.get("PYTHONPATH")] if p])
    top = subprocess.run(
        [sys.executable, "-m", "repro", "top", "--once",
         "--port", str(server.port)],
        capture_output=True, text=True, env=env, timeout=60)
    assert top.returncode == 0, top.stdout + top.stderr
    assert "repro top" in top.stdout
    assert "workers" in top.stdout
    assert "latency" in top.stdout
    # The frame reflects the live session, not a blank server.
    assert "executed 0" not in top.stdout


def test_result_lookup_by_content_key(server):
    with server.client() as client:
        jobs = client.jobs(payloads=True)["jobs"]
        done = [job for job in jobs if job["state"] == "done"]
        assert done
        by_key = client.result(done[0]["key"])["job"]
    assert by_key["id"] == done[0]["id"]


def test_drain_finishes_inflight_work_and_writes_manifest(server):
    # Submit a job, and while it is running ask a second connection to
    # drain: the result must still be delivered, then the server exits.
    stream_events = []
    drain_reply = {}

    def streamer():
        with server.client() as client:
            for message in client.submit_and_stream(kind="sleep",
                                                    seconds=2.0,
                                                    tag="drain-me"):
                stream_events.append(message)

    def drainer():
        with server.client() as client:
            drain_reply.update(client.drain())

    stream_thread = threading.Thread(target=streamer)
    stream_thread.start()
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if any(m.get("event") == "started" for m in stream_events):
            break
        time.sleep(0.05)
    drain_thread = threading.Thread(target=drainer)
    drain_thread.start()
    time.sleep(0.5)  # let the drain request land
    # While draining, new submissions are refused with a stable code.
    with server.client() as client:
        with pytest.raises(ServeError) as excinfo:
            client.submit(kind="sleep", seconds=0.1, tag="too-late")
        assert excinfo.value.code == "draining"
    drain_thread.join(timeout=30)
    stream_thread.join(timeout=30)
    # The in-flight job completed and streamed its result despite drain.
    names = [message.get("event") for message in stream_events]
    assert "done" in names
    assert names[-1] == "grid_done"
    assert drain_reply["drained"] is True
    assert drain_reply["stats"]["draining"] is True
    # Server process exits cleanly and the manifest records the session.
    assert server.process.wait(timeout=30) == 0
    manifest_path = drain_reply["manifest"]
    assert manifest_path and os.path.exists(manifest_path)
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    assert manifest["generator"] == "repro.serve"
    assert manifest["service"]["executed"] >= 3
    assert any(job["label"].startswith("sleep")
               for job in manifest["jobs"])
    # Drain exports the session's telemetry sidecars next to the
    # manifest: span NDJSON, a Perfetto service trace, and the metrics
    # time series.
    telemetry = manifest.get("telemetry") or {}
    for key in ("trace_ndjson", "perfetto_trace", "metrics_ndjson"):
        assert key in telemetry, telemetry
        assert os.path.exists(telemetry[key])
    from repro.obs.perfetto import validate_trace
    with open(telemetry["perfetto_trace"]) as handle:
        assert validate_trace(json.load(handle)) == []
    # One submitted job produced one *connected* trace spanning the
    # client submission, the scheduler's job/queue spans, and the
    # worker-process execution.
    from repro.obs.telemetry import load_ndjson_spans
    spans = load_ndjson_spans(telemetry["trace_ndjson"])
    by_trace = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)
    connected = []
    for trace_spans in by_trace.values():
        names = {span["name"] for span in trace_spans}
        processes = {span["process"] for span in trace_spans}
        ids = {span["span_id"] for span in trace_spans}
        linked = all(span["parent_id"] in ids
                     for span in trace_spans if span["parent_id"])
        if {"serve.submit", "serve.job",
                "worker.execute"} <= names and linked:
            connected.append((names, processes))
    assert connected, "no connected client->scheduler->worker trace"
    names, processes = connected[0]
    assert "client" in processes
    assert "scheduler" in processes
    assert any(process.startswith("worker-") for process in processes)
