"""Unit tests for the service's protocol, job model, metrics, and
scheduler policy (no sockets, no worker processes)."""

import asyncio

import pytest

from repro.serve import protocol
from repro.serve.jobs import (
    CACHED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    VERIFY_GEOMETRY,
    GridError,
    JobSpec,
    compute_key,
    expand_grid,
)
from repro.serve.metrics import ServeMetrics, percentile
from repro.serve.scheduler import Backpressure, Scheduler


# ---------------------------------------------------------------------------
# Wire protocol


class TestFraming:
    def test_encode_decode_roundtrip(self):
        message = {"op": "submit", "benchmarks": ["VecAdd"], "seq": 7}
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert protocol.decode(line) == message

    def test_decode_str_and_bytes(self):
        assert protocol.decode('{"op":"ping"}\n') == {"op": "ping"}
        assert protocol.decode(b'{"op":"ping"}\n') == {"op": "ping"}

    @pytest.mark.parametrize("line", [b"", b"   \n", b"not json\n",
                                      b"[1,2]\n", b"42\n"])
    def test_bad_frames_raise(self, line):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(line)

    def test_oversized_frame_rejected(self):
        line = b'{"pad":"' + b"x" * protocol.MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(line)

    def test_reply_echoes_seq(self):
        assert protocol.reply({"op": "ping", "seq": 3}, pong=True) == \
            {"ok": True, "seq": 3, "pong": True}
        assert protocol.reply({"op": "ping"}, pong=True) == \
            {"ok": True, "pong": True}

    def test_error_carries_stable_code(self):
        message = protocol.error({"seq": 9}, protocol.E_BACKPRESSURE,
                                 "queue full")
        assert message == {"ok": False, "seq": 9,
                           "code": "backpressure", "error": "queue full"}

    def test_event_frame(self):
        assert protocol.event("done", id="j000001") == \
            {"event": "done", "id": "j000001"}


# ---------------------------------------------------------------------------
# Job model


class TestJobSpec:
    def test_eval_roundtrip(self):
        spec = JobSpec(benchmark="VecAdd", config_name="baseline", scale=2,
                       overrides={"num_warps": 4}, verify=True)
        assert JobSpec.from_dict(spec.as_dict()) == spec

    def test_sleep_roundtrip(self):
        spec = JobSpec(kind="sleep", seconds=1.5, tag="t1")
        assert JobSpec.from_dict(spec.as_dict()) == spec

    def test_labels(self):
        assert JobSpec(benchmark="VecAdd", config_name="baseline",
                       scale=1).label() == "VecAdd/baseline/s1"
        assert "verified" in JobSpec(benchmark="VecAdd",
                                     verify=True).label()
        assert "sleep" in JobSpec(kind="sleep", seconds=0.5).label()


class TestExpandGrid:
    def test_full_product(self):
        specs = expand_grid({"benchmarks": ["VecAdd", "MatMul"],
                             "configs": ["baseline", "cheri_opt"],
                             "scales": [1, 2]})
        assert len(specs) == 8
        labels = {spec.label() for spec in specs}
        assert "VecAdd/baseline/s1" in labels
        assert "MatMul/cheri_opt/s2" in labels

    def test_case_insensitive_benchmarks(self):
        specs = expand_grid({"benchmarks": ["vecadd"],
                             "configs": ["baseline"]})
        assert specs[0].benchmark == "VecAdd"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(GridError):
            expand_grid({"benchmarks": ["NotABench"]})

    def test_unknown_config_rejected(self):
        with pytest.raises(GridError):
            expand_grid({"benchmarks": ["VecAdd"],
                         "configs": ["no_such_config"]})

    def test_non_scalar_override_rejected(self):
        with pytest.raises(GridError):
            expand_grid({"benchmarks": ["VecAdd"],
                         "overrides": {"num_warps": [4]}})

    def test_verify_applies_small_geometry(self):
        specs = expand_grid({"benchmarks": ["VecAdd"],
                             "configs": ["cheri_opt"], "verify": True})
        assert specs[0].overrides["num_warps"] == \
            VERIFY_GEOMETRY["num_warps"]
        assert specs[0].verify

    def test_verify_geometry_can_be_overridden(self):
        specs = expand_grid({"benchmarks": ["VecAdd"], "verify": True,
                             "overrides": {"num_warps": 8}})
        assert specs[0].overrides["num_warps"] == 8

    def test_sleep_kind(self):
        specs = expand_grid({"kind": "sleep", "seconds": 2.5, "tag": "x"})
        assert len(specs) == 1
        assert specs[0].kind == "sleep"
        assert specs[0].seconds == 2.5


class TestComputeKey:
    def test_sleep_keys_depend_on_parameters(self):
        one = compute_key(JobSpec(kind="sleep", seconds=1.0, tag="a"))
        same = compute_key(JobSpec(kind="sleep", seconds=1.0, tag="a"))
        other = compute_key(JobSpec(kind="sleep", seconds=1.0, tag="b"))
        assert one == same
        assert one != other
        assert one.startswith("sleep-")

    def test_eval_key_matches_runner_disk_key(self):
        from repro.eval.runner import job_key
        spec = JobSpec(benchmark="VecAdd", config_name="baseline",
                       overrides={"num_warps": 4, "num_lanes": 4})
        assert compute_key(spec) == job_key("VecAdd", "baseline", 1,
                                            num_warps=4, num_lanes=4)

    def test_verified_key_is_distinct(self):
        plain = JobSpec(benchmark="VecAdd", config_name="baseline",
                        overrides={"num_warps": 4, "num_lanes": 4})
        checked = JobSpec(benchmark="VecAdd", config_name="baseline",
                          overrides={"num_warps": 4, "num_lanes": 4},
                          verify=True)
        assert compute_key(checked) == compute_key(plain) + "-lockstep"


# ---------------------------------------------------------------------------
# Metrics


class TestMetrics:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.95) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
        assert percentile([4.0, 1.0, 3.0, 2.0], 0.5) == 3.0

    def test_snapshot_shape(self):
        metrics = ServeMetrics()
        metrics.note_latency(0.5, 0.2)
        metrics.note_pending(3)
        snapshot = metrics.snapshot(num_workers=2, pending=1, running=1)
        for field in ("uptime_seconds", "dedup_hits", "cache_hits",
                      "executed", "queue_depth", "peak_pending",
                      "worker_utilization", "latency_p50_seconds",
                      "latency_p95_seconds", "exec_p50_seconds"):
            assert field in snapshot
        assert snapshot["peak_pending"] == 3
        assert snapshot["queue_depth"] == 1
        assert snapshot["latency_p50_seconds"] == 0.5

    def test_percentiles_remember_full_history(self):
        # The old 4096-sample drop-oldest reservoir forgot everything
        # before the most recent traffic: a burst of fast jobs at the
        # end of a long session erased the slow majority from p99.  The
        # streaming histogram observes every job ever completed.
        metrics = ServeMetrics()
        for _ in range(5904):
            metrics.note_latency(100.0, 100.0)
        for _ in range(4096):          # a full old-reservoir of fast jobs
            metrics.note_latency(0.001, 0.001)
        snapshot = metrics.snapshot()
        assert snapshot["completed_samples"] == 10000
        # 59% of history is slow, so the true p99 is 100s; the reservoir
        # would have reported 0.001s here.
        assert snapshot["latency_p99_seconds"] == 100.0
        assert snapshot["latency_p50_seconds"] == 100.0

    def test_counters_mirrored_into_registry_exposition(self):
        metrics = ServeMetrics()
        metrics.executed += 3
        metrics.note_latency(0.5, 0.2)
        exposition = metrics.registry.exposition()
        assert "serve_executed_total 3" in exposition
        assert "serve_job_latency_seconds_count 1" in exposition

    def test_utilization_clamped(self):
        clock = iter([0.0, 10.0]).__next__
        metrics = ServeMetrics(clock=clock)
        metrics.note_busy(7.0)
        assert metrics.utilization(1) == 0.7


# ---------------------------------------------------------------------------
# Scheduler policy (driven directly, with a fake pool)


class FakeWorker:
    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.job_id = None
        self.kill_reason = None
        self.assigned = []

    def alive(self):
        return True


class FakePool:
    """Deterministic stand-in for WorkerPool: records assignments."""

    def __init__(self, num_workers=1):
        self.workers = [FakeWorker(index) for index in range(num_workers)]
        self.killed = []

    def by_id(self, worker_id):
        for worker in self.workers:
            if worker.worker_id == worker_id:
                return worker
        return None

    def idle_workers(self):
        return [worker for worker in self.workers
                if worker.job_id is None]

    def assign(self, worker, job_id, spec_dict, trace_ctx=None):
        worker.job_id = job_id
        worker.assigned.append((job_id, spec_dict))

    def release(self, worker):
        worker.job_id = None

    def kill(self, worker, reason):
        worker.kill_reason = reason
        self.killed.append((worker.worker_id, reason))


def sleep_cell(tag, seconds=1.0, cached=None):
    spec = JobSpec(kind="sleep", seconds=seconds, tag=tag)
    return (spec, compute_key(spec), cached)


def make_scheduler(num_workers=1, **kwargs):
    pool = FakePool(num_workers)
    scheduler = Scheduler(pool, ServeMetrics(), **kwargs)
    return scheduler, pool


class TestSchedulerAdmission:
    def test_fresh_job_is_dispatched(self):
        scheduler, pool = make_scheduler()
        grid_id, jobs = scheduler.admit([sleep_cell("a")])
        assert grid_id == "g0001"
        assert jobs[0].state == QUEUED
        assert pool.workers[0].job_id == jobs[0].id
        assert scheduler.metrics.jobs_accepted == 1

    def test_duplicate_cells_in_one_grid_make_one_job(self):
        scheduler, _ = make_scheduler()
        _, jobs = scheduler.admit([sleep_cell("a"), sleep_cell("a")])
        assert jobs[0] is jobs[1]
        assert scheduler.metrics.jobs_accepted == 1
        assert scheduler.metrics.dedup_hits == 1

    def test_inflight_dedup_across_submissions(self):
        scheduler, _ = make_scheduler()
        _, first = scheduler.admit([sleep_cell("a")])
        _, second = scheduler.admit([sleep_cell("a")])
        assert first[0] is second[0]
        assert scheduler.metrics.dedup_hits == 1
        assert scheduler.metrics.memo_hits == 0

    def test_terminal_job_serves_as_memo(self):
        scheduler, pool = make_scheduler()
        _, jobs = scheduler.admit([sleep_cell("a")])
        scheduler.on_done(0, jobs[0].id, {"slept": 1.0})
        _, again = scheduler.admit([sleep_cell("a")])
        assert again[0] is jobs[0]
        assert again[0].state == DONE
        assert scheduler.metrics.memo_hits == 1
        assert pool.workers[0].assigned == [(jobs[0].id,
                                             jobs[0].spec.as_dict())]

    def test_cached_payload_completes_without_dispatch(self):
        scheduler, pool = make_scheduler()
        payload = {"stats": {"cycles": 1}, "cache_source": "disk"}
        _, jobs = scheduler.admit([sleep_cell("a", cached=payload)])
        assert jobs[0].state == CACHED
        assert jobs[0].payload is payload
        assert jobs[0].done_event.is_set()
        assert scheduler.metrics.cache_hits == 1
        assert pool.workers[0].assigned == []

    def test_backpressure_rejects_whole_submission(self):
        scheduler, _ = make_scheduler(max_pending=2)
        scheduler.admit([sleep_cell("a"), sleep_cell("b")])
        with pytest.raises(Backpressure):
            scheduler.admit([sleep_cell("c")])
        assert scheduler.metrics.submissions_rejected == 1
        # Duplicates of in-flight keys are not "novel" and still fit.
        _, jobs = scheduler.admit([sleep_cell("a")])
        assert jobs[0].key in scheduler.by_key


class TestSchedulerFailurePolicy:
    def test_crash_requeues_then_gives_up(self):
        scheduler, pool = make_scheduler(max_retries=1)
        _, jobs = scheduler.admit([sleep_cell("a")])
        job = jobs[0]
        # First crash: retried (requeued and immediately redispatched).
        pool.release(pool.workers[0])
        scheduler.on_casualty(job.id, None)
        assert job.state == QUEUED
        assert job.attempts == 1
        assert scheduler.metrics.retries == 1
        scheduler.dispatch()
        # Second crash: retries exhausted -> failed.
        pool.release(pool.workers[0])
        scheduler.on_casualty(job.id, None)
        assert job.state == FAILED
        assert "crashed" in job.error
        assert scheduler.metrics.failed == 1

    def test_timeout_fails_without_retry(self):
        scheduler, pool = make_scheduler(job_timeout=0.0)
        _, jobs = scheduler.admit([sleep_cell("a")])
        job = jobs[0]
        scheduler.on_started(0, job.id)
        assert job.state == RUNNING
        scheduler.check_timeouts()
        assert pool.killed == [(0, "timeout")]
        pool.release(pool.workers[0])
        scheduler.on_casualty(job.id, "timeout")
        assert job.state == FAILED
        assert "timed out" in job.error
        assert scheduler.metrics.timeouts == 1
        assert scheduler.metrics.retries == 0

    def test_worker_exception_fails_immediately(self):
        scheduler, _ = make_scheduler()
        _, jobs = scheduler.admit([sleep_cell("a")])
        scheduler.on_error(0, jobs[0].id, "ValueError: boom")
        assert jobs[0].state == FAILED
        assert "ValueError" in jobs[0].error

    def test_late_result_after_failure_is_dropped(self):
        scheduler, _ = make_scheduler()
        _, jobs = scheduler.admit([sleep_cell("a")])
        scheduler.on_error(0, jobs[0].id, "ValueError: boom")
        scheduler.on_done(0, jobs[0].id, {"slept": 1.0})
        assert jobs[0].state == FAILED
        assert jobs[0].payload is None


class TestSchedulerEvents:
    def drain_queue(self, queue):
        events = []
        while True:
            try:
                events.append(queue.get_nowait())
            except asyncio.QueueEmpty:
                return events

    def test_watcher_sees_lifecycle_through_grid_done(self):
        scheduler, _ = make_scheduler()
        grid_id, jobs = scheduler.admit([sleep_cell("a")])
        queue = asyncio.Queue()
        replay = scheduler.watch(grid_id, queue)
        assert [message["event"] for message in replay] == ["queued"]
        scheduler.on_started(0, jobs[0].id)
        scheduler.on_done(0, jobs[0].id, {"slept": 1.0})
        names = [message["event"] for message in self.drain_queue(queue)]
        assert names == ["started", "done", "progress", "grid_done"]

    def test_replay_of_terminal_job_carries_payload(self):
        scheduler, _ = make_scheduler()
        grid_id, jobs = scheduler.admit([sleep_cell("a")])
        scheduler.on_done(0, jobs[0].id, {"slept": 1.0})
        replay = scheduler.watch(grid_id, asyncio.Queue())
        assert replay[0]["event"] == "done"
        assert replay[0]["payload"] == {"slept": 1.0}

    def test_watch_unknown_grid(self):
        scheduler, _ = make_scheduler()
        assert scheduler.watch("g9999", asyncio.Queue()) is None

    def test_deduped_job_fans_out_to_both_grids(self):
        scheduler, _ = make_scheduler()
        first_grid, jobs = scheduler.admit([sleep_cell("a")])
        second_grid, _ = scheduler.admit([sleep_cell("a")])
        queues = {grid: asyncio.Queue()
                  for grid in (first_grid, second_grid)}
        for grid, queue in queues.items():
            scheduler.watch(grid, queue)
        scheduler.on_started(0, jobs[0].id)
        scheduler.on_done(0, jobs[0].id, {"slept": 1.0})
        for queue in queues.values():
            names = [m["event"] for m in self.drain_queue(queue)]
            assert "done" in names
            assert "grid_done" in names

    def test_grid_done_counts_failures(self):
        scheduler, _ = make_scheduler()
        grid_id, jobs = scheduler.admit([sleep_cell("a")])
        queue = asyncio.Queue()
        scheduler.watch(grid_id, queue)
        scheduler.on_error(0, jobs[0].id, "ValueError: boom")
        done = [message for message in self.drain_queue(queue)
                if message["event"] == "grid_done"]
        assert done[0]["failed"] == 1
        assert scheduler.grid_done(grid_id)

    def test_all_idle_tracks_inflight(self):
        scheduler, _ = make_scheduler()
        assert scheduler.all_idle()
        _, jobs = scheduler.admit([sleep_cell("a")])
        assert not scheduler.all_idle()
        scheduler.on_done(0, jobs[0].id, {"slept": 1.0})
        assert scheduler.all_idle()
