"""Thread-safety of the runner's stats/memo, and the job-key/probe API
the simulation service builds on."""

import threading

import pytest

from repro.eval import runner


@pytest.fixture()
def private_cache(tmp_path, monkeypatch):
    """Point the disk cache at an empty directory and clear the memo."""
    monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path))
    runner.clear_cache()
    yield str(tmp_path)
    runner.clear_cache()


GEOMETRY = {"num_warps": 4, "num_lanes": 4}


class TestRunnerStats:
    def test_bump_is_atomic_under_threads(self):
        stats = runner.RunnerStats()
        threads = [threading.Thread(
            target=lambda: [stats.bump(memo_hits=1, misses=1,
                                       sim_seconds=0.5)
                            for _ in range(1000)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = stats.snapshot()
        assert snapshot["memo_hits"] == 8000
        assert snapshot["misses"] == 8000
        assert snapshot["sim_seconds"] == pytest.approx(4000.0)

    def test_reset_zeroes_counters(self):
        stats = runner.RunnerStats()
        stats.bump(disk_hits=3)
        stats.reset()
        assert stats.snapshot()["disk_hits"] == 0


class TestJobKeyAndProbe:
    def test_job_key_is_stable_and_param_sensitive(self):
        one = runner.job_key("VecAdd", "baseline", **GEOMETRY)
        assert one == runner.job_key("VecAdd", "baseline", **GEOMETRY)
        assert one != runner.job_key("VecAdd", "cheri_opt", **GEOMETRY)
        assert one != runner.job_key("VecAdd", "baseline", 2, **GEOMETRY)
        int(one, 16)  # hex digest

    def test_probe_misses_on_empty_cache(self, private_cache):
        assert runner.probe_disk("VecAdd", "baseline", **GEOMETRY) is None

    def test_probe_returns_cached_result(self, private_cache):
        ran = runner.run_benchmark("VecAdd", "baseline", **GEOMETRY)
        runner.clear_cache()  # drop the memo, keep the disk entry
        probed = runner.probe_disk("VecAdd", "baseline", **GEOMETRY)
        assert probed is not None
        assert probed.stats.as_dict() == ran.stats.as_dict()
        # The probe merges into the memo: a rerun is a memo hit.
        again = runner.run_benchmark("VecAdd", "baseline", **GEOMETRY)
        assert again.stats.as_dict() == ran.stats.as_dict()

    def test_probe_disabled_with_disk_cache(self, private_cache,
                                            monkeypatch):
        runner.run_benchmark("VecAdd", "baseline", **GEOMETRY)
        runner.clear_cache()
        monkeypatch.setattr(runner, "_disk_enabled", False)
        assert runner.probe_disk("VecAdd", "baseline", **GEOMETRY) is None


class TestConcurrentRuns:
    def test_threads_share_one_result(self, private_cache):
        results = [None] * 6
        barrier = threading.Barrier(len(results))

        def work(slot):
            barrier.wait()
            results[slot] = runner.run_benchmark("VecAdd", "baseline",
                                                 **GEOMETRY)

        threads = [threading.Thread(target=work, args=(slot,))
                   for slot in range(len(results))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = [result.stats.as_dict() for result in results]
        assert all(entry == stats[0] for entry in stats)
