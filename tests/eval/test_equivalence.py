"""Equivalence proof for the runner's fast paths.

The hot-path optimizations (decode-cached dispatch, incremental register
file occupancy) and the runner's cache/parallel machinery must never
change a simulated statistic.  These tests pin that property:

- a fresh serial simulation is deterministic, in-process and across
  interpreter processes;
- the parallel ``run_suite`` path produces bit-identical statistics to
  the serial path;
- a disk-cache round trip restores bit-identical statistics.

Statistics are compared as the full :class:`SMStats` field dict (cycles,
per-opcode counts, DRAM byte counters, ...), not just headline numbers.
"""

import hashlib
import os
import subprocess
import sys
from dataclasses import asdict

import pytest

import repro
from repro.eval import runner

#: Small geometry so the six fresh simulations stay quick.
GEOMETRY = dict(num_warps=4, num_lanes=4)
BENCHES = ("VecAdd", "Histogram", "Reduce")
CONFIGS = ("baseline", "cheri_opt")


def _signature(result):
    """Every statistic of a run, as a plain comparable dict."""
    return asdict(result.stats)


def _fresh(name, config_name):
    """Simulate outside every cache layer: the ground-truth result."""
    mode, config = runner.config_for(config_name, **GEOMETRY)
    return runner._simulate(name, config_name, mode, config, scale=1)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk cache at a throwaway dir and reset the memo."""
    monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path / "simcache"))
    was_enabled = runner._disk_enabled
    runner.clear_cache()
    yield
    runner.set_disk_cache(was_enabled)
    runner.clear_cache()


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("name", BENCHES)
class TestPerBenchmark:
    def test_fresh_runs_are_deterministic(self, name, config_name):
        assert _signature(_fresh(name, config_name)) == \
            _signature(_fresh(name, config_name))

    def test_disk_round_trip_is_bit_identical(self, name, config_name):
        reference = _signature(_fresh(name, config_name))
        runner.set_disk_cache(True)
        first = runner.run_benchmark(name, config_name, **GEOMETRY)
        assert first.meta.source == "sim"
        assert _signature(first) == reference
        # Drop the memo so the second call must come from disk.
        runner.clear_cache()
        second = runner.run_benchmark(name, config_name, **GEOMETRY)
        assert second.meta.source == "disk"
        assert _signature(second) == reference


@pytest.fixture
def small_suite(monkeypatch):
    """Limit run_suite to the three test benchmarks to keep this quick.

    The pool and cache-merge machinery is exercised exactly as with the
    full suite; only the fan-out width shrinks.
    """
    monkeypatch.setattr(runner, "BENCHMARK_NAMES", BENCHES)


class TestSuitePaths:
    def test_parallel_suite_matches_serial(self, small_suite):
        runner.set_disk_cache(False)
        serial = runner.run_suite("cheri_opt", jobs=1, **GEOMETRY)
        runner.clear_cache()
        parallel = runner.run_suite("cheri_opt", jobs=2, **GEOMETRY)
        assert list(serial) == list(parallel)
        for name in serial:
            assert _signature(serial[name]) == _signature(parallel[name]), \
                name

    def test_warm_disk_suite_matches_serial(self, small_suite):
        runner.set_disk_cache(False)
        serial = runner.run_suite("baseline", jobs=1, **GEOMETRY)
        runner.set_disk_cache(True)
        runner.clear_cache()
        populate = runner.run_suite("baseline", jobs=1, **GEOMETRY)
        runner.clear_cache()
        warm = runner.run_suite("baseline", jobs=1, **GEOMETRY)
        assert all(r.meta.source == "disk" for r in warm.values())
        for name in serial:
            assert _signature(serial[name]) == _signature(warm[name])
            assert _signature(populate[name]) == _signature(warm[name])


class TestProbeEquivalence:
    """Attaching the observability probes must not perturb a single
    statistic: the hooks only *read* pipeline state (guarded by one
    ``probes is not None`` check), so stats with a full collector stack
    attached are bit-identical to the probe-free hot path."""

    @pytest.mark.parametrize("config_name", CONFIGS)
    @pytest.mark.parametrize("name", BENCHES)
    def test_stats_bit_identical_with_probes_attached(self, name,
                                                      config_name):
        from repro.benchsuite import ALL_BENCHMARKS
        from repro.nocl import NoCLRuntime
        from repro.obs import (
            ProfileCollector,
            TimelineCollector,
            attach,
            detach,
        )
        reference = _signature(_fresh(name, config_name))

        mode, config = runner.config_for(config_name, **GEOMETRY)
        rt = NoCLRuntime(mode, config=config)
        profiler = ProfileCollector()
        attach(rt.sm, profiler, TimelineCollector())
        stats = ALL_BENCHMARKS[name].run(rt, scale=1)
        detach(rt.sm)

        assert asdict(stats) == reference
        # ...and the profile actually observed the run it did not perturb.
        assert profiler.total_attributed() == stats.cycles


class TestTelemetryEquivalence:
    """An installed tracer must not perturb a single statistic: the
    runner's instrumentation only opens spans around the simulation
    (guarded by one ``active_tracer() is None`` check) and never touches
    pipeline state, so stats with telemetry attached are bit-identical
    to the uninstrumented hot path."""

    @pytest.mark.parametrize("config_name", CONFIGS)
    @pytest.mark.parametrize("name", BENCHES)
    def test_stats_bit_identical_with_tracer_installed(self, name,
                                                       config_name):
        from repro.obs.telemetry import Tracer, active_tracer, install
        reference = _signature(_fresh(name, config_name))

        tracer = Tracer(process="test")
        previous = install(tracer)
        try:
            traced = runner.run_benchmark(name, config_name, **GEOMETRY)
        finally:
            install(previous)
        assert active_tracer() is previous

        assert _signature(traced) == reference
        # ...and the tracer actually observed the run it did not perturb.
        names = [span.name for span in tracer.spans]
        assert "simulate" in names
        assert "runner.run" in names
        run_span = next(span for span in tracer.spans
                        if span.name == "runner.run")
        assert run_span.attrs["benchmark"] == name
        assert run_span.duration > 0


class TestLockstepEquivalence:
    """The lockstep cross-checker reads pipeline state through
    side-effect-free accessors only, so benchmark statistics with a
    golden-model checker attached are bit-identical to the probe-free
    hot path — the differential harness observes the real simulator,
    not a perturbed one."""

    @pytest.mark.parametrize("config_name", CONFIGS)
    @pytest.mark.parametrize("name", BENCHES)
    def test_stats_bit_identical_with_checker_attached(self, name,
                                                       config_name):
        from repro.check import check_benchmark
        reference = _signature(_fresh(name, config_name))

        stats, checker = check_benchmark(name, config_name, scale=1,
                                         **GEOMETRY)

        assert asdict(stats) == reference
        # ...and the checker actually cross-checked the run.
        assert checker.retired > 0
        assert checker.launches > 0


class TestCrossProcess:
    def test_fresh_interpreter_reproduces_stats(self):
        """A brand-new Python process computes the exact same statistics.

        Guards the RNG seeding and iteration-order discipline that the
        disk cache relies on: without it, cached results would disagree
        with whatever a fresh process would have simulated.
        """
        reference = _fresh("VecAdd", "cheri_opt")
        digest = hashlib.sha256(
            repr(sorted(asdict(reference.stats).items())).encode()
        ).hexdigest()

        code = (
            "import hashlib\n"
            "from dataclasses import asdict\n"
            "from repro.eval import runner\n"
            "mode, config = runner.config_for('cheri_opt', num_warps=4,"
            " num_lanes=4)\n"
            "r = runner._simulate('VecAdd', 'cheri_opt', mode, config, 1)\n"
            "print(hashlib.sha256(repr(sorted(asdict(r.stats).items()))"
            ".encode()).hexdigest())\n"
        )
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, env=env,
                              check=True)
        assert proc.stdout.strip() == digest


class TestBackendEquivalence:
    """The lane-vectorized backend vs the scalar reference, full suite.

    ``SMConfig.backend`` selects the execution backend; both must
    produce bit-identical :class:`SMStats` for every benchmark in the
    suite (not a sample — the vector backend's fast paths key off value
    patterns, so coverage must include every kernel).  The SM-level
    corner cases live in ``tests/simt/test_backend.py``; this is the
    end-to-end sweep.
    """

    @pytest.mark.parametrize("config_name", CONFIGS)
    @pytest.mark.parametrize("name", sorted(
        __import__("repro.benchsuite", fromlist=["ALL_BENCHMARKS"])
        .ALL_BENCHMARKS))
    def test_full_suite_scalar_vector_bit_identical(self, name,
                                                    config_name):
        runner.set_disk_cache(False)
        scalar = runner.run_benchmark(name, config_name, backend="scalar",
                                      **GEOMETRY)
        vector = runner.run_benchmark(name, config_name, backend="vector",
                                      **GEOMETRY)
        assert _signature(scalar) == _signature(vector)

    @pytest.mark.parametrize("config_name", runner.CONFIG_NAMES)
    @pytest.mark.parametrize("name", sorted(
        __import__("repro.benchsuite", fromlist=["ALL_BENCHMARKS"])
        .ALL_BENCHMARKS))
    def test_full_suite_scalar_jit_bit_identical(self, name, config_name,
                                                 monkeypatch):
        """The trace-JIT tier across all four protection configs.

        Promotion thresholds are lowered so the small test geometry
        actually compiles regions (otherwise nothing would reach the
        fused closures and the sweep would only test the vector tier)."""
        from repro.simt.backend.jit import JITBackend
        monkeypatch.setattr(JITBackend, "_hot_threshold", 4)
        monkeypatch.setattr(JITBackend, "_promote_after", 1)
        runner.set_disk_cache(False)
        scalar = runner.run_benchmark(name, config_name, backend="scalar",
                                      **GEOMETRY)
        jit = runner.run_benchmark(name, config_name, backend="jit",
                                   **GEOMETRY)
        assert _signature(scalar) == _signature(jit)

    def test_multism_scalar_vector_bit_identical(self):
        from repro.nocl import i32
        from repro.nocl.multism import MultiSMRuntime
        from repro.nocl.dsl import KernelSource

        source = KernelSource.from_source(
            "def beq_vecadd(n: i32, a: ptr[i32], b: ptr[i32], "
            "c: ptr[i32]):\n"
            "    i = threadIdx.x + blockIdx.x * blockDim.x\n"
            "    while i < n:\n"
            "        c[i] = a[i] + b[i]\n"
            "        i += blockDim.x * gridDim.x\n"
        )
        n = 128
        per_backend = {}
        for backend in ("scalar", "vector"):
            config = runner.config_for(
                "cheri_opt", backend=backend, **GEOMETRY)[1]
            rt = MultiSMRuntime("purecap", num_sms=2, config=config)
            a, b, c = (rt.alloc(i32, n) for _ in range(3))
            rt.upload(a, list(range(n)))
            rt.upload(b, [7] * n)
            stats = rt.launch(source, grid_dim=4, block_dim=8,
                              args=[n, a, b, c])
            assert rt.download(c) == [i + 7 for i in range(n)]
            per_backend[backend] = [asdict(s) for s in stats.per_sm]
        assert per_backend["scalar"] == per_backend["vector"]
