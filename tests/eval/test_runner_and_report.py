"""Unit tests for the evaluation runner, configurations, and rendering."""

import pytest

from repro.eval.runner import (
    clear_cache,
    config_for,
    geomean,
    run_benchmark,
)
from repro.eval import report


class TestConfigFor:
    def test_baseline(self):
        mode, cfg = config_for("baseline")
        assert mode == "baseline" and not cfg.enable_cheri

    def test_cheri_unoptimised(self):
        mode, cfg = config_for("cheri")
        assert mode == "purecap"
        assert cfg.enable_cheri and not cfg.compress_metadata

    def test_cheri_optimised(self):
        mode, cfg = config_for("cheri_opt")
        assert mode == "purecap" and cfg.nvo and cfg.shared_vrf

    def test_ablation_configs(self):
        _, no_nvo = config_for("cheri_opt_no_nvo")
        assert not no_nvo.nvo and no_nvo.compress_metadata
        _, split = config_for("cheri_opt_split_vrf")
        assert not split.shared_vrf
        _, dual = config_for("cheri_opt_dual_port_srf")
        assert not dual.metadata_srf_single_port
        _, lanes = config_for("cheri_opt_lane_bounds")
        assert not lanes.sfu_cheri_slow_path
        _, dyn = config_for("cheri_opt_dynamic_pcc")
        assert not dyn.static_pc_metadata

    def test_boundscheck(self):
        mode, cfg = config_for("boundscheck")
        assert mode == "boundscheck" and not cfg.enable_cheri

    def test_overrides(self):
        _, cfg = config_for("baseline", vrf_fraction=0.25)
        assert cfg.vrf_fraction == 0.25

    def test_unknown_config(self):
        with pytest.raises(ValueError):
            config_for("turbo")


class TestRunnerCache:
    def test_memoisation(self):
        clear_cache()
        first = run_benchmark("VecAdd", "baseline",
                              num_warps=2, num_lanes=4)
        second = run_benchmark("VecAdd", "baseline",
                               num_warps=2, num_lanes=4)
        assert first is second
        third = run_benchmark("VecAdd", "baseline",
                              num_warps=2, num_lanes=8)
        assert third is not first
        clear_cache()

    def test_result_carries_stats_and_config(self):
        clear_cache()
        result = run_benchmark("VecAdd", "baseline",
                               num_warps=2, num_lanes=4)
        assert result.benchmark == "VecAdd"
        assert result.stats.cycles > 0
        assert result.config.num_lanes == 4
        clear_cache()


class TestGeomean:
    def test_empty(self):
        assert geomean([]) == 0.0

    def test_identity(self):
        assert geomean([0.0, 0.0]) == pytest.approx(0.0)

    def test_symmetric(self):
        # +100% and -50% cancel geometrically.
        assert geomean([1.0, -0.5]) == pytest.approx(0.0)

    def test_single(self):
        assert geomean([0.1]) == pytest.approx(0.1)


class TestReportRendering:
    def test_pct(self):
        assert report.pct(0.016) == "+1.6%"
        assert report.pct(-0.25) == "-25.0%"

    def test_fig6(self):
        text = report.render_fig6([("CLW", 0.1), ("CSC", 0.01)])
        assert "CLW" in text and "10.00%" in text

    def test_table2(self):
        rows = [{"vrf_registers": 768, "fraction": 0.375,
                 "storage_kb": 936, "compress_ratio": 0.46,
                 "cycle_overhead": 0.009, "mem_access_overhead": 0.022}]
        text = report.render_table2(rows)
        assert "768 (3/8)" in text
        assert "1:0.46" in text

    def test_fig10(self):
        text = report.render_fig10([{"benchmark": "VecAdd", "gp": 0.05,
                                     "meta_nvo": 0.0, "meta_no_nvo": 0.01}])
        assert "VecAdd" in text

    def test_fig11(self):
        text = report.render_fig11([("VecAdd", 9)])
        assert "#########" in text

    def test_fig12(self):
        text = report.render_fig12([{"benchmark": "X", "baseline_bytes": 10,
                                     "cheri_bytes": 10, "ratio": 1.0}])
        assert "1.000x" in text

    def test_overheads(self):
        text = report.render_overheads("T", [("A", 0.01)], 0.01)
        assert "geomean" in text

    def test_table3(self):
        text = report.render_table3([("Baseline", 1, 0, 2, 180)])
        assert "Baseline" in text

    def test_fig7(self):
        text = report.render_fig7({"setAddr": 106})
        assert "567" in text
