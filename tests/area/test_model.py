"""Tests for the analytical FPGA area/storage model."""

from repro.area.model import (
    CAPLIB_ALMS,
    MULTIPLIER_ALMS,
    fmax_mhz,
    logic_alms,
    paper_geometry,
    storage_bits,
    synthesis_report,
    table3_rows,
)
from repro.simt.config import SMConfig


class TestTable3Calibration:
    def test_alm_totals_match_paper(self):
        rows = table3_rows()
        assert [r.alms for r in rows] == [126753, 166796, 149356]

    def test_bram_close_to_paper(self):
        rows = table3_rows()
        paper = [2156, 4399, 2394]
        for row, expect in zip(rows, paper):
            assert abs(row.bram_kilobits - expect) / expect < 0.05

    def test_fmax_matches_paper(self):
        rows = table3_rows()
        assert [r.fmax_mhz for r in rows] == [180, 181, 180]

    def test_area_reduction_is_about_44_percent(self):
        base, cheri, opt = table3_rows()
        reduction = 1 - (opt.alms - base.alms) / (cheri.alms - base.alms)
        assert abs(reduction - 0.44) < 0.02

    def test_per_lane_overhead_comparable_to_multiplier(self):
        base, _, opt = table3_rows()
        per_lane = (opt.alms - base.alms) / 32
        assert MULTIPLIER_ALMS < per_lane < 1.5 * MULTIPLIER_ALMS


class TestScaling:
    def test_alms_scale_with_lanes(self):
        small = logic_alms(SMConfig.baseline(num_warps=64, num_lanes=8))
        big = logic_alms(SMConfig.baseline(num_warps=64, num_lanes=32))
        assert big > small
        # Per-lane replication: the delta is linear in lanes.
        delta = (big - small) / 24
        assert delta == 3000

    def test_cheri_overhead_grows_with_lanes_when_unoptimised(self):
        def overhead(lanes, optimised):
            factory = (SMConfig.cheri_optimised if optimised
                       else SMConfig.cheri)
            return (logic_alms(factory(num_warps=64, num_lanes=lanes))
                    - logic_alms(SMConfig.baseline(num_warps=64,
                                                   num_lanes=lanes)))
        # The SFU amortisation benefit grows with lane count.
        saving_8 = overhead(8, False) - overhead(8, True)
        saving_32 = overhead(32, False) - overhead(32, True)
        assert saving_32 > saving_8

    def test_storage_scales_with_warps(self):
        small = storage_bits(SMConfig.baseline(num_warps=16, num_lanes=32))
        big = storage_bits(SMConfig.baseline(num_warps=64, num_lanes=32))
        assert big["gp_vrf"] == 4 * small["gp_vrf"]
        assert big["gp_srf"] == 4 * small["gp_srf"]


class TestStorageBreakdown:
    def test_unoptimised_metadata_is_full_width(self):
        cfg = paper_geometry(SMConfig.cheri)
        bits = storage_bits(cfg)
        assert bits["meta_rf"] == 33 * cfg.num_threads * 32

    def test_optimised_metadata_is_srf_only(self):
        cfg = paper_geometry(SMConfig.cheri_optimised)
        bits = storage_bits(cfg)
        # One single-ported SRF entry per architectural vector register.
        per_entry = bits["meta_rf"] / cfg.arch_vector_regs
        assert per_entry < 80  # vs 33 * 32 lanes uncompressed

    def test_rf_overhead_14_percent(self):
        base = storage_bits(paper_geometry(SMConfig.baseline))
        opt = storage_bits(paper_geometry(SMConfig.cheri_optimised))
        base_rf = base["gp_vrf"] + base["gp_srf"]
        overhead = opt["meta_rf"] / base_rf
        assert 0.10 < overhead < 0.18  # paper: 14%

    def test_static_pcc_is_per_warp(self):
        dynamic = storage_bits(paper_geometry(SMConfig.cheri))
        static = storage_bits(paper_geometry(SMConfig.cheri_optimised))
        assert dynamic["pcc"] == 33 * 2048
        assert static["pcc"] == 33 * 64

    def test_tags_are_one_bit_per_scratchpad_word(self):
        cfg = paper_geometry(SMConfig.cheri_optimised)
        bits = storage_bits(cfg)
        assert bits["scratchpad_tags"] == cfg.scratchpad_bytes // 4


class TestCaplib:
    def test_figure7_constants(self):
        assert CAPLIB_ALMS["setAddr"] == 106
        assert CAPLIB_ALMS["isAccessInBounds"] == 25
        assert CAPLIB_ALMS["setBounds"] == 287
        assert CAPLIB_ALMS["toMem"] == 0

    def test_report_names(self):
        assert synthesis_report(SMConfig.baseline()).name == "Baseline"
        assert synthesis_report(SMConfig.cheri()).name == "CHERI"
        assert synthesis_report(
            SMConfig.cheri_optimised()).name == "CHERI (Optimised)"

    def test_fmax_model(self):
        assert fmax_mhz(SMConfig.baseline()) == 180
        assert fmax_mhz(SMConfig.cheri()) == 181
        assert fmax_mhz(SMConfig.cheri_optimised()) == 180
