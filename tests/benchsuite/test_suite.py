"""Self-tests: every Table 1 benchmark, in every compilation mode.

Each benchmark verifies device results against a host reference, so a pass
here means the compiler, the SIMT pipeline, and (in purecap mode) every
capability check agree end to end — the equivalent of the artifact's
``All tests passed``.
"""

import pytest

from repro.benchsuite import ALL_BENCHMARKS, BENCHMARK_NAMES
from repro.nocl import NoCLRuntime
from repro.simt import SMConfig

MODES = ("baseline", "purecap", "boundscheck")


def runtime_for(mode):
    geometry = dict(num_warps=4, num_lanes=4)
    if mode == "purecap":
        cfg = SMConfig.cheri_optimised(**geometry)
    else:
        cfg = SMConfig.baseline(**geometry)
    return NoCLRuntime(mode, config=cfg)


class TestSuiteCompleteness:
    def test_fourteen_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 14

    def test_table1_names(self):
        assert set(BENCHMARK_NAMES) == {
            "VecAdd", "Histogram", "Reduce", "Scan", "Transpose",
            "MatVecMul", "MatMul", "BitonicSm", "BitonicLa", "SPMV",
            "BlkStencil", "StrStencil", "VecGCD", "MotionEst",
        }

    def test_descriptions_and_origins_present(self):
        for bench in ALL_BENCHMARKS.values():
            assert bench.description
            assert bench.origin


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_self_test(name, mode):
    bench = ALL_BENCHMARKS[name]
    rt = runtime_for(mode)
    stats = bench.run(rt)
    assert stats.instrs_issued > 0
    assert stats.cycles > 0
