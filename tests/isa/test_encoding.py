"""Encode/decode round-trip tests for the full ISA."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instructions import (
    ACCESS_WIDTH,
    AMO_OPS,
    BRANCH_OPS,
    CHERI_OPS,
    FLOAT_OPS,
    LOAD_OPS,
    STORE_OPS,
    Instr,
    Op,
)

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)
uimm12 = st.integers(min_value=0, max_value=4095)
imm_b = st.integers(min_value=-2048, max_value=2047).map(lambda x: x * 2)
imm_u = st.integers(min_value=0, max_value=0xFFFFF)
imm_j = st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1).map(lambda x: x * 2)
shamt = st.integers(min_value=0, max_value=31)

_R_OPS = [Op.ADD, Op.SUB, Op.SLL, Op.SLT, Op.SLTU, Op.XOR, Op.SRL, Op.SRA,
          Op.OR, Op.AND, Op.MUL, Op.MULH, Op.MULHSU, Op.MULHU, Op.DIV,
          Op.DIVU, Op.REM, Op.REMU]
_I_OPS = [Op.ADDI, Op.SLTI, Op.SLTIU, Op.XORI, Op.ORI, Op.ANDI]
_LOADS = [Op.LB, Op.LH, Op.LW, Op.LBU, Op.LHU]
_STORES = [Op.SB, Op.SH, Op.SW]
_CLOADS = [Op.CLB, Op.CLH, Op.CLW, Op.CLBU, Op.CLHU, Op.CLC]
_CSTORES = [Op.CSB, Op.CSH, Op.CSW, Op.CSC]
_FP_RR = [Op.FADD_S, Op.FSUB_S, Op.FMUL_S, Op.FDIV_S, Op.FMIN_S, Op.FMAX_S,
          Op.FEQ_S, Op.FLT_S, Op.FLE_S, Op.FSGNJ_S, Op.FSGNJN_S, Op.FSGNJX_S]
_FP_UNARY = [Op.FSQRT_S, Op.FCVT_W_S, Op.FCVT_WU_S, Op.FCVT_S_W, Op.FCVT_S_WU]
_CHERI_RR = [Op.CSETBOUNDS, Op.CSETBOUNDSEXACT, Op.CANDPERM, Op.CSETFLAGS,
             Op.CSETADDR, Op.CINCOFFSET, Op.CSPECIALRW]
_CHERI_UNARY = [Op.CGETPERM, Op.CGETTYPE, Op.CGETBASE, Op.CGETLEN, Op.CGETTAG,
                Op.CGETSEALED, Op.CGETFLAGS, Op.CRRL, Op.CRAM, Op.CMOVE,
                Op.CCLEARTAG, Op.CGETADDR, Op.CSEALENTRY]


def roundtrip(instr, cheri_mode=False):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    return decode(word, cheri_mode=cheri_mode)


class TestRoundTrips:
    @given(st.sampled_from(_R_OPS), regs, regs, regs)
    @settings(max_examples=200)
    def test_r_type(self, op, rd, rs1, rs2):
        instr = Instr(op, rd=rd, rs1=rs1, rs2=rs2)
        assert roundtrip(instr) == instr

    @given(st.sampled_from(_I_OPS), regs, regs, imm12)
    @settings(max_examples=200)
    def test_i_type(self, op, rd, rs1, imm):
        instr = Instr(op, rd=rd, rs1=rs1, imm=imm)
        assert roundtrip(instr) == instr

    @given(st.sampled_from([Op.SLLI, Op.SRLI, Op.SRAI]), regs, regs, shamt)
    @settings(max_examples=100)
    def test_shifts(self, op, rd, rs1, amount):
        instr = Instr(op, rd=rd, rs1=rs1, imm=amount)
        assert roundtrip(instr) == instr

    @given(st.sampled_from(_LOADS), regs, regs, imm12)
    @settings(max_examples=100)
    def test_loads(self, op, rd, rs1, imm):
        instr = Instr(op, rd=rd, rs1=rs1, imm=imm)
        assert roundtrip(instr) == instr

    @given(st.sampled_from(_STORES), regs, regs, imm12)
    @settings(max_examples=100)
    def test_stores(self, op, rs1, rs2, imm):
        instr = Instr(op, rs1=rs1, rs2=rs2, imm=imm)
        assert roundtrip(instr) == instr

    @given(st.sampled_from(_CLOADS), regs, regs, imm12)
    @settings(max_examples=100)
    def test_cap_loads(self, op, rd, rs1, imm):
        instr = Instr(op, rd=rd, rs1=rs1, imm=imm)
        assert roundtrip(instr) == instr

    @given(st.sampled_from(_CSTORES), regs, regs, imm12)
    @settings(max_examples=100)
    def test_cap_stores(self, op, rs1, rs2, imm):
        instr = Instr(op, rs1=rs1, rs2=rs2, imm=imm)
        assert roundtrip(instr) == instr

    @given(st.sampled_from(sorted(BRANCH_OPS, key=lambda o: o.name)),
           regs, regs, imm_b)
    @settings(max_examples=200)
    def test_branches(self, op, rs1, rs2, imm):
        instr = Instr(op, rs1=rs1, rs2=rs2, imm=imm)
        assert roundtrip(instr) == instr

    @given(regs, imm_u)
    @settings(max_examples=100)
    def test_lui_auipc(self, rd, imm):
        assert roundtrip(Instr(Op.LUI, rd=rd, imm=imm)) == Instr(Op.LUI, rd=rd, imm=imm)
        assert roundtrip(Instr(Op.AUIPC, rd=rd, imm=imm)) == Instr(Op.AUIPC, rd=rd, imm=imm)

    @given(regs, imm_j)
    @settings(max_examples=200)
    def test_jal(self, rd, imm):
        instr = Instr(Op.JAL, rd=rd, imm=imm)
        assert roundtrip(instr) == instr

    @given(regs, regs, imm12)
    @settings(max_examples=100)
    def test_jalr_and_cjalr(self, rd, rs1, imm):
        instr = Instr(Op.JALR, rd=rd, rs1=rs1, imm=imm)
        assert roundtrip(instr) == instr
        cinstr = Instr(Op.CJALR, rd=rd, rs1=rs1, imm=imm)
        assert roundtrip(cinstr) == cinstr

    @given(st.sampled_from(sorted(AMO_OPS - {Op.CAMOADD_W}, key=lambda o: o.name)),
           regs, regs, regs)
    @settings(max_examples=100)
    def test_atomics(self, op, rd, rs1, rs2):
        instr = Instr(op, rd=rd, rs1=rs1, rs2=rs2)
        assert roundtrip(instr) == instr

    @given(st.sampled_from(_FP_RR), regs, regs, regs)
    @settings(max_examples=200)
    def test_fp_two_source(self, op, rd, rs1, rs2):
        instr = Instr(op, rd=rd, rs1=rs1, rs2=rs2)
        assert roundtrip(instr) == instr

    @given(st.sampled_from(_FP_UNARY), regs, regs)
    @settings(max_examples=100)
    def test_fp_unary(self, op, rd, rs1):
        instr = Instr(op, rd=rd, rs1=rs1)
        assert roundtrip(instr) == instr

    @given(st.sampled_from(_CHERI_RR), regs, regs, regs)
    @settings(max_examples=200)
    def test_cheri_two_source(self, op, rd, rs1, rs2):
        instr = Instr(op, rd=rd, rs1=rs1, rs2=rs2)
        assert roundtrip(instr) == instr

    @given(st.sampled_from(_CHERI_UNARY), regs, regs)
    @settings(max_examples=200)
    def test_cheri_unary(self, op, rd, rs1):
        instr = Instr(op, rd=rd, rs1=rs1)
        assert roundtrip(instr) == instr

    @given(regs, regs, imm12)
    @settings(max_examples=100)
    def test_cincoffsetimm(self, rd, rs1, imm):
        instr = Instr(Op.CINCOFFSETIMM, rd=rd, rs1=rs1, imm=imm)
        assert roundtrip(instr) == instr

    @given(regs, regs, uimm12)
    @settings(max_examples=100)
    def test_csetboundsimm(self, rd, rs1, imm):
        instr = Instr(Op.CSETBOUNDSIMM, rd=rd, rs1=rs1, imm=imm)
        assert roundtrip(instr) == instr

    def test_system_ops(self):
        for op in (Op.FENCE, Op.ECALL, Op.EBREAK):
            assert roundtrip(Instr(op)).op is op

    def test_sim_ops(self):
        for op in (Op.BARRIER, Op.HALT, Op.TRAP):
            assert roundtrip(Instr(op)).op is op


class TestCheriModeAliases:
    def test_auipc_decodes_as_auipcc(self):
        word = encode(Instr(Op.AUIPC, rd=5, imm=0x1000))
        assert decode(word, cheri_mode=True).op is Op.AUIPCC
        assert decode(word, cheri_mode=False).op is Op.AUIPC

    def test_auipcc_encodes_like_auipc(self):
        assert encode(Instr(Op.AUIPCC, rd=5, imm=1)) == \
            encode(Instr(Op.AUIPC, rd=5, imm=1))

    def test_jal_decodes_as_cjal(self):
        word = encode(Instr(Op.JAL, rd=1, imm=8))
        assert decode(word, cheri_mode=True).op is Op.CJAL

    def test_amoadd_decodes_as_camoadd(self):
        word = encode(Instr(Op.AMOADD_W, rd=5, rs1=6, rs2=7))
        assert decode(word, cheri_mode=True).op is Op.CAMOADD_W


class TestErrors:
    def test_bad_immediate_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instr(Op.ADDI, rd=1, rs1=1, imm=4096))

    def test_odd_branch_offset_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instr(Op.BEQ, rs1=1, rs2=2, imm=3))

    def test_missing_register_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instr(Op.ADD, rd=1, rs1=None, rs2=2))

    def test_garbage_word_rejected(self):
        with pytest.raises(EncodingError):
            decode(0xFFFFFFFF)

    def test_negative_setboundsimm_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instr(Op.CSETBOUNDSIMM, rd=1, rs1=1, imm=-1))


class TestClassifications:
    def test_every_mem_op_has_a_width(self):
        for op in LOAD_OPS | STORE_OPS | AMO_OPS:
            assert op in ACCESS_WIDTH, op

    def test_cap_accesses_are_8_bytes(self):
        assert ACCESS_WIDTH[Op.CLC] == 8
        assert ACCESS_WIDTH[Op.CSC] == 8

    def test_cheri_ops_match_figure4(self):
        # Figure 4 of the paper names these mnemonics; all must exist.
        for name in ("CGETTAG", "CCLEARTAG", "CGETPERM", "CANDPERM",
                     "CGETBASE", "CGETLEN", "CSETBOUNDS", "CSETBOUNDSIMM",
                     "CSETBOUNDSEXACT", "CGETADDR", "CSETADDR", "CINCOFFSET",
                     "CINCOFFSETIMM", "CGETTYPE", "CGETSEALED", "CGETFLAGS",
                     "CSETFLAGS", "CSEALENTRY", "CMOVE", "AUIPCC", "CJALR",
                     "CJAL", "CSPECIALRW", "CRRL", "CRAM", "CLB", "CLH",
                     "CLW", "CLBU", "CLHU", "CSB", "CSH", "CSW", "CLC", "CSC"):
            assert Op[name] in CHERI_OPS

    def test_float_ops_not_cheri(self):
        assert not (FLOAT_OPS & CHERI_OPS)


class TestDisasm:
    def test_formats_do_not_crash(self):
        from repro.isa.disasm import format_program
        prog = [
            Instr(Op.ADDI, rd=5, rs1=0, imm=42),
            Instr(Op.LW, rd=6, rs1=5, imm=0),
            Instr(Op.SW, rs1=5, rs2=6, imm=4),
            Instr(Op.BEQ, rs1=5, rs2=6, imm=-8),
            Instr(Op.CINCOFFSETIMM, rd=7, rs1=7, imm=4, comment="p++"),
            Instr(Op.HALT),
        ]
        text = format_program(prog)
        assert "addi t0, zero, 42" in text
        assert "# p++" in text
        assert "halt" in text
