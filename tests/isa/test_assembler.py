"""Tests for the text assembler (asm -> Instr, inverse of disasm)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import AssemblerError, assemble_text
from repro.isa.disasm import format_instr
from repro.isa.instructions import Instr, Op
from repro.simt import SMConfig, StreamingMultiprocessor
from repro.simt.config import HEAP_BASE


class TestBasicSyntax:
    def test_alu_and_immediates(self):
        prog = assemble_text("""
            addi t0, zero, 42
            add  t1, t0, t0
            mul  t2, t1, t0
        """)
        assert prog[0] == Instr(Op.ADDI, rd=5, rs1=0, imm=42)
        assert prog[1] == Instr(Op.ADD, rd=6, rs1=5, rs2=5)
        assert prog[2] == Instr(Op.MUL, rd=7, rs1=6, rs2=5)

    def test_memory_syntax(self):
        prog = assemble_text("""
            lw  t0, 8(sp)
            sw  t0, -4(a0)
            clc t1, 16(gp)
        """)
        assert prog[0] == Instr(Op.LW, rd=5, rs1=2, imm=8)
        assert prog[1] == Instr(Op.SW, rs1=10, rs2=5, imm=-4)
        assert prog[2] == Instr(Op.CLC, rd=6, rs1=3, imm=16)

    def test_labels_and_branches(self):
        prog = assemble_text("""
            addi t0, zero, 0
        loop:
            addi t0, t0, 1
            blt  t0, a0, loop
            halt
        """)
        assert prog[2].op is Op.BLT
        assert prog[2].imm == -4

    def test_numeric_registers(self):
        prog = assemble_text("add x5, x6, x7")
        assert prog[0] == Instr(Op.ADD, rd=5, rs1=6, rs2=7)

    def test_comments_and_blank_lines(self):
        prog = assemble_text("""
            # a comment
            halt   # trailing comment

        """)
        assert len(prog) == 1

    def test_dotted_mnemonics(self):
        prog = assemble_text("""
            amoadd.w t0, t1, t2
            fadd.s   t0, t1, t2
            fsqrt.s  t0, t1
        """)
        assert [i.op for i in prog] == [Op.AMOADD_W, Op.FADD_S, Op.FSQRT_S]

    def test_cheri_forms(self):
        prog = assemble_text("""
            cincoffset    t0, t1, t2
            cincoffsetimm t0, t1, 8
            csetboundsimm t0, t0, 64
            cgettag       t1, t0
        """)
        assert [i.op for i in prog] == [Op.CINCOFFSET, Op.CINCOFFSETIMM,
                                        Op.CSETBOUNDSIMM, Op.CGETTAG]

    def test_depth_directive(self):
        prog = assemble_text("""
            addi t0, zero, 0
            @depth 1
            addi t0, t0, 1
            @depth 0
            halt
        """)
        assert prog[0].depth == 0
        assert prog[1].depth == 1


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble_text("frobnicate t0, t1, t2")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            assemble_text("add t0, t1, t9")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble_text("lw t0, t1")

    def test_unknown_label(self):
        from repro.nocl.ir import AsmError
        with pytest.raises(AsmError):
            assemble_text("jal zero, nowhere")


class TestRoundTrip:
    _R_OPS = [Op.ADD, Op.SUB, Op.XOR, Op.MUL, Op.SLT, Op.CINCOFFSET,
              Op.CSETBOUNDS, Op.FADD_S, Op.AMOADD_W]

    @given(st.sampled_from(_R_OPS),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31))
    @settings(max_examples=150)
    def test_disasm_text_reassembles(self, op, rd, rs1, rs2):
        instr = Instr(op, rd=rd, rs1=rs1, rs2=rs2)
        again = assemble_text(format_instr(instr))[0]
        assert again == instr

    def test_loads_stores_roundtrip(self):
        for instr in (Instr(Op.CLW, rd=9, rs1=4, imm=-12),
                      Instr(Op.CSC, rs1=2, rs2=30, imm=48),
                      Instr(Op.LBU, rd=17, rs1=28, imm=2047)):
            assert assemble_text(format_instr(instr))[0] == instr


class TestExecution:
    def test_assembled_program_runs(self):
        # Sum 1..10 per thread, store to HEAP + 4*tid.
        prog = assemble_text("""
            addi t0, zero, 0      # acc
            addi t1, zero, 1      # i
            addi t2, zero, 10
        loop:
            bgt_placeholder:      # (label exercising odd names)
            add  t0, t0, t1
            addi t1, t1, 1
            bge  t2, t1, loop
            sw   t0, 0(a1)
            halt
        """)
        sm = StreamingMultiprocessor(
            SMConfig.baseline(num_warps=1, num_lanes=4))
        addrs = [HEAP_BASE + 4 * t for t in range(4)]
        sm.launch(prog, init_regs={11: addrs})
        for t in range(4):
            assert sm.memory.read(HEAP_BASE + 4 * t, 4) == 55
