"""Disassembler coverage: every opcode renders a sensible mnemonic."""

from repro.isa.disasm import format_instr, format_program
from repro.isa.instructions import (
    ACCESS_WIDTH,
    BRANCH_OPS,
    LOAD_OPS,
    STORE_OPS,
    Instr,
    Op,
)


def representative(op):
    """Build a plausible instance of any opcode for rendering."""
    if op in LOAD_OPS:
        return Instr(op, rd=5, rs1=6, imm=8)
    if op in STORE_OPS:
        return Instr(op, rs1=6, rs2=5, imm=8)
    if op in BRANCH_OPS:
        return Instr(op, rs1=5, rs2=6, imm=-8)
    if op in (Op.LUI, Op.AUIPC, Op.AUIPCC):
        return Instr(op, rd=5, imm=0x10)
    if op in (Op.JAL, Op.CJAL):
        return Instr(op, rd=1, imm=16)
    return Instr(op, rd=5, rs1=6, rs2=7, imm=None)


class TestMnemonics:
    def test_every_opcode_renders(self):
        for op in Op:
            text = format_instr(representative(op))
            assert text, op
            assert text == text.lower() or "#" in text

    def test_dotted_mnemonics(self):
        assert format_instr(Instr(Op.AMOADD_W, rd=5, rs1=6, rs2=7)) \
            .startswith("amoadd.w")
        assert format_instr(Instr(Op.FADD_S, rd=5, rs1=6, rs2=7)) \
            .startswith("fadd.s")
        assert format_instr(Instr(Op.FCVT_W_S, rd=5, rs1=6)) \
            .startswith("fcvt.w.s")

    def test_load_store_address_syntax(self):
        assert format_instr(Instr(Op.CLW, rd=5, rs1=6, imm=12)) == \
            "clw t0, 12(t1)"
        assert format_instr(Instr(Op.CSC, rs1=6, rs2=5, imm=-8)) == \
            "csc t0, -8(t1)"

    def test_branch_syntax(self):
        assert format_instr(Instr(Op.BLTU, rs1=5, rs2=6, imm=32)) == \
            "bltu t0, t1, 32"

    def test_comment_column(self):
        text = format_instr(Instr(Op.ADDI, rd=5, rs1=0, imm=1,
                                  comment="hello"))
        assert text.endswith("# hello")

    def test_program_has_pc_labels(self):
        text = format_program([Instr(Op.HALT)] * 3, start_pc=0x100)
        assert "100:" in text and "108:" in text

    def test_width_table_complete_for_renderable_memops(self):
        for op in LOAD_OPS | STORE_OPS:
            assert ACCESS_WIDTH[op] in (1, 2, 4, 8)
