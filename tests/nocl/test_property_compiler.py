"""Property test: random expression kernels vs direct RV32 semantics.

Hypothesis generates arbitrary integer expression trees; each is rendered
to kernel source, compiled, and executed on the simulated SM in baseline
and purecap modes.  The reference evaluates the same tree directly with
the ALU's RV32 semantics (wrapping arithmetic, truncating division,
masked shifts), so any disagreement pinpoints a compiler or pipeline bug.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nocl import NoCLRuntime
from repro.nocl.compiler import compile_kernel
from repro.nocl.dsl import KernelSource
from repro.simt import SMConfig
from repro.simt.alu import int_op, to_u32

_LEAVES = ("x", "y", "z")
_BINARY = ("+", "-", "*", "&", "|", "^", "//", "%")


def _exprs(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from(_LEAVES),
            st.integers(min_value=-100, max_value=100),
        )
    sub = _exprs(depth - 1)
    return st.one_of(
        st.sampled_from(_LEAVES),
        st.integers(min_value=-100, max_value=100),
        st.tuples(st.sampled_from(_BINARY), sub, sub),
        st.tuples(st.just("<<"), sub, st.integers(min_value=0, max_value=7)),
        st.tuples(st.just(">>"), sub, st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("neg"), sub),
        st.tuples(st.just("min"), sub, sub),
        st.tuples(st.just("max"), sub, sub),
    )


def render(node):
    if isinstance(node, str):
        return node
    if isinstance(node, int):
        return "(%d)" % node
    if node[0] == "neg":
        return "(-%s)" % render(node[1])
    if node[0] in ("min", "max"):
        return "%s_(%s, %s)" % (node[0], render(node[1]), render(node[2]))
    return "(%s %s %s)" % (render(node[1]), node[0], render(node[2]))


_OP_NAMES = {"+": "add", "-": "sub", "*": "mul", "&": "and", "|": "or",
             "^": "xor", "//": "div", "%": "rem", "<<": "sll", ">>": "sra"}


def reference(node, env):
    """Evaluate with the ALU's RV32 semantics (32-bit patterns)."""
    if isinstance(node, str):
        return env[node]
    if isinstance(node, int):
        return to_u32(node)
    if node[0] == "neg":
        return int_op("sub", 0, reference(node[1], env))
    if node[0] in ("min", "max"):
        a = reference(node[1], env)
        b = reference(node[2], env)
        lt = int_op("slt", a, b)
        if node[0] == "min":
            return a if lt else b
        return b if lt else a
    a = reference(node[1], env)
    b = reference(node[2], env)
    return int_op(_OP_NAMES[node[0]], a, b)


_TEMPLATE = """
def generated(n: i32, a: ptr[i32], b: ptr[i32], c: ptr[i32],
              out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        x = a[i]
        y = b[i]
        z = c[i]
        out[i] = %s
"""


def run_generated(mode, expr, xs, ys, zs):
    from repro.nocl.dsl import i32
    source = KernelSource.from_source(_TEMPLATE % render(expr))
    cfg = (SMConfig.cheri_optimised(num_warps=1, num_lanes=4)
           if mode == "purecap"
           else SMConfig.baseline(num_warps=1, num_lanes=4))
    rt = NoCLRuntime(mode, config=cfg)
    n = len(xs)
    a, b, c, out = (rt.alloc(i32, n) for _ in range(4))
    rt.upload(a, xs)
    rt.upload(b, ys)
    rt.upload(c, zs)
    rt.launch(source, 1, 4, [n, a, b, c, out])
    return [v & 0xFFFFFFFF for v in rt.download(out)]


values = st.lists(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
                  min_size=4, max_size=4)


class TestCompilerAgainstSemantics:
    @given(_exprs(3), values, values, values)
    @settings(max_examples=30, deadline=None)
    def test_baseline_matches_reference(self, expr, xs, ys, zs):
        got = run_generated("baseline", expr, xs, ys, zs)
        expect = [
            reference(expr, {"x": to_u32(x), "y": to_u32(y),
                             "z": to_u32(z)})
            for x, y, z in zip(xs, ys, zs)
        ]
        assert got == expect, render(expr)

    @given(_exprs(3), values, values, values)
    @settings(max_examples=20, deadline=None)
    def test_purecap_matches_reference(self, expr, xs, ys, zs):
        got = run_generated("purecap", expr, xs, ys, zs)
        expect = [
            reference(expr, {"x": to_u32(x), "y": to_u32(y),
                             "z": to_u32(z)})
            for x, y, z in zip(xs, ys, zs)
        ]
        assert got == expect, render(expr)

    @given(_exprs(2), values, values, values)
    @settings(max_examples=10, deadline=None)
    def test_modes_agree_with_each_other(self, expr, xs, ys, zs):
        base = run_generated("baseline", expr, xs, ys, zs)
        checked = run_generated("boundscheck", expr, xs, ys, zs)
        assert base == checked, render(expr)


def test_from_source_matches_decorator():
    src = KernelSource.from_source(_TEMPLATE % "x + y * z")
    compiled = compile_kernel(src, "baseline")
    assert compiled.name == "generated"
    assert len(compiled.arg_slots) == 5
