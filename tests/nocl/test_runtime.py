"""Unit tests for the host runtime: allocation, marshalling, validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cheri import concentrate, root_capability
from repro.nocl import NoCLRuntime, f32, i32, i8, kernel, ptr, u16, u8
from repro.nocl.runtime import LaunchError
from repro.simt import SMConfig


def runtime(mode="baseline"):
    cfg = (SMConfig.cheri_optimised(num_warps=2, num_lanes=4)
           if mode == "purecap"
           else SMConfig.baseline(num_warps=2, num_lanes=4))
    return NoCLRuntime(mode, config=cfg)


@kernel
def trivial(a: ptr[i32]):
    if threadIdx.x == 0 and blockIdx.x == 0:
        a[0] = 1


class TestAllocator:
    @given(st.integers(min_value=1, max_value=1 << 16))
    @settings(max_examples=100)
    def test_allocations_are_cheri_exact(self, count):
        # Any allocation must be representable exactly as a capability:
        # that is the point of CRRL/CRAM-based alignment.
        rt = runtime()
        buf = rt.alloc(i32, count)
        cap, exact = root_capability().set_bounds(buf.addr,
                                                  buf.padded_bytes)
        assert exact
        assert cap.base == buf.addr
        assert cap.top == buf.addr + buf.padded_bytes

    def test_allocations_do_not_overlap(self):
        rt = runtime()
        buffers = [rt.alloc(i8, n) for n in (3, 100, 64, 1000, 1)]
        spans = sorted((b.addr, b.addr + b.padded_bytes) for b in buffers)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_padded_bytes_cover_requested(self):
        rt = runtime()
        buf = rt.alloc(u16, 1001)
        assert buf.padded_bytes >= 2002
        assert buf.padded_bytes == max(4, concentrate.crrl(2002))

    def test_rejects_non_scalar_type(self):
        rt = runtime()
        with pytest.raises(TypeError):
            rt.alloc(int, 4)


class TestMarshalling:
    def test_i32_signed_roundtrip(self):
        rt = runtime()
        buf = rt.alloc(i32, 4)
        rt.upload(buf, [-1, -(1 << 31), (1 << 31) - 1, 0])
        assert rt.download(buf) == [-1, -(1 << 31), (1 << 31) - 1, 0]

    def test_u8_packing(self):
        rt = runtime()
        buf = rt.alloc(u8, 7)
        rt.upload(buf, [1, 2, 3, 4, 5, 6, 7])
        assert rt.download(buf) == [1, 2, 3, 4, 5, 6, 7]
        # Bytes must actually be packed 4-per-word.
        assert rt.sm.memory.read(buf.addr, 4) == 0x04030201

    def test_i8_sign_roundtrip(self):
        rt = runtime()
        buf = rt.alloc(i8, 3)
        rt.upload(buf, [-1, -128, 127])
        assert rt.download(buf) == [-1, -128, 127]

    def test_f32_roundtrip(self):
        rt = runtime()
        buf = rt.alloc(f32, 3)
        rt.upload(buf, [1.5, -0.25, 1e10])
        got = rt.download(buf)
        assert got[0] == 1.5 and got[1] == -0.25
        assert got[2] == pytest.approx(1e10, rel=1e-6)

    def test_partial_download(self):
        rt = runtime()
        buf = rt.alloc(i32, 10)
        rt.upload(buf, list(range(10)))
        assert rt.download(buf, count=3) == [0, 1, 2]

    def test_upload_overflow_rejected(self):
        rt = runtime()
        buf = rt.alloc(i32, 2)
        with pytest.raises(ValueError):
            rt.upload(buf, [1, 2, 3])


class TestLaunchValidation:
    def test_block_not_multiple_of_warp(self):
        rt = runtime()
        a = rt.alloc(i32, 4)
        with pytest.raises(LaunchError):
            rt.launch(trivial, 1, 3, [a])

    def test_block_exceeding_threads(self):
        rt = runtime()
        a = rt.alloc(i32, 4)
        with pytest.raises(LaunchError):
            rt.launch(trivial, 1, 64, [a])

    def test_wrong_arg_count(self):
        rt = runtime()
        a = rt.alloc(i32, 4)
        with pytest.raises(LaunchError):
            rt.launch(trivial, 1, 4, [a, 5])

    def test_scalar_for_pointer_rejected(self):
        rt = runtime()
        with pytest.raises(LaunchError):
            rt.launch(trivial, 1, 4, [123])

    def test_buffer_for_scalar_rejected(self):
        @kernel
        def scalar_kernel(n: i32, a: ptr[i32]):
            a[0] = n

        rt = runtime()
        a = rt.alloc(i32, 4)
        with pytest.raises(LaunchError):
            rt.launch(scalar_kernel, 1, 4, [a, a])

    def test_purecap_mode_requires_cheri_config(self):
        with pytest.raises(ValueError):
            NoCLRuntime("purecap", config=SMConfig.baseline())

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            NoCLRuntime("managed")

    def test_float_scalar_args(self):
        @kernel
        def scaled(k: f32, a: ptr[f32]):
            if threadIdx.x == 0 and blockIdx.x == 0:
                a[0] = k * 2.0

        rt = runtime()
        a = rt.alloc(f32, 1)
        rt.launch(scaled, 1, 4, [1.25, a])
        assert rt.download(a) == [2.5]

    def test_compiled_is_cached(self):
        rt = runtime()
        first = rt.compiled(trivial)
        second = rt.compiled(trivial)
        assert first is second
