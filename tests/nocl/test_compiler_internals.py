"""Unit tests for compiler internals: IR assembly, DCE, regalloc, layout."""

import pytest

from repro.isa.instructions import Instr, Op
from repro.nocl import CompileError, compile_kernel, i32, kernel, ptr
from repro.nocl.ir import AsmError, FIRST_VREG, VInstr, VLabel, VLoadImm, assemble
from repro.nocl.regalloc import (
    ALLOCATABLE,
    SCRATCH_A,
    allocate,
    eliminate_dead_code,
)


class TestAssemble:
    def test_label_resolution_forward_and_back(self):
        items = [
            VLabel("top"),
            VInstr(Op.ADDI, rd=5, rs1=0, imm=1),
            VInstr(Op.BEQ, rs1=5, rs2=0, target="end"),
            VInstr(Op.JAL, rd=0, target="top"),
            VLabel("end"),
            VInstr(Op.HALT),
        ]
        out = assemble(items)
        assert out[1].imm == 8    # BEQ at pc=4 -> end at pc=12
        assert out[2].imm == -8   # JAL at pc=8 -> top at pc=0
        assert out[3].op is Op.HALT

    def test_li_small_expands_to_addi(self):
        out = assemble([VLoadImm(5, 42)])
        assert len(out) == 1
        assert out[0].op is Op.ADDI and out[0].imm == 42

    def test_li_negative(self):
        out = assemble([VLoadImm(5, 0xFFFFFFFF)])
        assert len(out) == 1
        assert out[0].imm == -1

    def test_li_large_expands_to_lui_addi(self):
        out = assemble([VLoadImm(5, 0x12345678)])
        assert [i.op for i in out] == [Op.LUI, Op.ADDI]

    def test_li_page_aligned_is_single_lui(self):
        out = assemble([VLoadImm(5, 0x12345000)])
        assert [i.op for i in out] == [Op.LUI]

    def test_li_lengths_affect_label_offsets(self):
        items = [
            VInstr(Op.JAL, rd=0, target="end"),
            VLoadImm(5, 0x12345678),   # two instructions
            VLabel("end"),
            VInstr(Op.HALT),
        ]
        out = assemble(items)
        assert out[0].imm == 12

    def test_unknown_label_raises(self):
        with pytest.raises(AsmError):
            assemble([VInstr(Op.JAL, rd=0, target="nowhere")])

    def test_duplicate_label_raises(self):
        with pytest.raises(AsmError):
            assemble([VLabel("x"), VLabel("x")])


class TestDeadCodeElimination:
    def test_unused_li_removed(self):
        items = [
            VLoadImm(FIRST_VREG, 42),
            VInstr(Op.HALT),
        ]
        assert len(eliminate_dead_code(items)) == 1

    def test_used_li_kept(self):
        items = [
            VLoadImm(FIRST_VREG, 42),
            VInstr(Op.ADDI, rd=FIRST_VREG + 1, rs1=FIRST_VREG, imm=0),
            VInstr(Op.SW, rs1=2, rs2=FIRST_VREG + 1, imm=0),
        ]
        assert len(eliminate_dead_code(items)) == 3

    def test_transitive_chain_removed(self):
        items = [
            VLoadImm(FIRST_VREG, 1),
            VInstr(Op.ADDI, rd=FIRST_VREG + 1, rs1=FIRST_VREG, imm=2),
            VInstr(Op.MUL, rd=FIRST_VREG + 2, rs1=FIRST_VREG + 1,
                   rs2=FIRST_VREG + 1),
            VInstr(Op.HALT),
        ]
        assert len(eliminate_dead_code(items)) == 1

    def test_stores_and_physical_writes_never_removed(self):
        items = [
            VInstr(Op.SW, rs1=2, rs2=0, imm=0),
            VInstr(Op.ADDI, rd=5, rs1=0, imm=1),  # physical rd
        ]
        assert len(eliminate_dead_code(items)) == 2

    def test_loads_never_removed(self):
        # Loads have observable timing/fault side effects.
        items = [VInstr(Op.LW, rd=FIRST_VREG, rs1=2, imm=0)]
        assert len(eliminate_dead_code(items)) == 1


class TestRegalloc:
    def test_simple_allocation_maps_to_physical(self):
        items = [
            VLoadImm(FIRST_VREG, 7),
            VInstr(Op.ADDI, rd=FIRST_VREG + 1, rs1=FIRST_VREG, imm=1),
            VInstr(Op.SW, rs1=2, rs2=FIRST_VREG + 1, imm=0),
        ]
        out, frame = allocate(items, [], set(), cap_spills=False)
        assert frame == 0
        for item in out:
            for reg in item.regs_read() + item.regs_written():
                assert reg < 32

    def test_register_reuse_after_death(self):
        items = []
        for i in range(100):
            vreg = FIRST_VREG + i
            items.append(VLoadImm(vreg, i))
            items.append(VInstr(Op.SW, rs1=2, rs2=vreg, imm=0))
        out, frame = allocate(items, [], set(), cap_spills=False)
        assert frame == 0  # sequential lifetimes: no spills needed

    def test_spills_when_pressure_exceeds_pool(self):
        live = len(ALLOCATABLE) + 4
        items = [VLoadImm(FIRST_VREG + i, i) for i in range(live)]
        # One instruction reading all of them keeps them simultaneously live.
        for i in range(live):
            items.append(VInstr(Op.SW, rs1=2, rs2=FIRST_VREG + i, imm=0))
        out, frame = allocate(items, [], set(), cap_spills=False)
        assert frame > 0
        reload_ops = [i for i in out
                      if isinstance(i, VInstr) and i.comment == "reload"]
        assert reload_ops
        assert all(i.op is Op.LW for i in reload_ops)

    def test_purecap_spills_use_capability_ops(self):
        live = len(ALLOCATABLE) + 2
        items = [VLoadImm(FIRST_VREG + i, i) for i in range(live)]
        for i in range(live):
            items.append(VInstr(Op.SW, rs1=2, rs2=FIRST_VREG + i, imm=0))
        out, frame = allocate(items, [], set(), cap_spills=True)
        spill_ops = {i.op for i in out
                     if isinstance(i, VInstr) and i.comment in ("spill",
                                                                "reload")}
        assert spill_ops <= {Op.CSC, Op.CLC}
        assert frame % 8 == 0

    def test_loop_span_extends_variable_liveness(self):
        # vreg defined before the loop, used early inside: without the span
        # extension another interval could steal its register mid-loop.
        var = FIRST_VREG
        clobber = FIRST_VREG + 1
        items = [
            VLoadImm(var, 1),
            VLabel("loop"),
            VInstr(Op.ADDI, rd=clobber, rs1=var, imm=0),
            VInstr(Op.SW, rs1=2, rs2=clobber, imm=0),
            VInstr(Op.JAL, rd=0, target="loop"),
        ]
        out, _ = allocate(items, [(1, 5)], {var}, cap_spills=False)
        # var must not share a register with anything defined in the loop.
        li = [i for i in out if isinstance(i, VLoadImm)][0]
        addi = [i for i in out if isinstance(i, VInstr)
                and i.op is Op.ADDI][0]
        assert addi.rs1 == li.rd
        assert addi.rd != li.rd


class TestCompileDriver:
    def test_arg_slot_layout_baseline(self):
        @kernel
        def k(n: i32, a: ptr[i32], m: i32):
            a[0] = n + m

        compiled = compile_kernel(k, "baseline")
        offsets = [(s.name, s.offset) for s in compiled.arg_slots]
        assert offsets == [("n", 8), ("a", 12), ("m", 16)]

    def test_arg_slot_layout_purecap_is_8_aligned(self):
        @kernel
        def k(n: i32, a: ptr[i32], m: i32):
            a[0] = n + m

        compiled = compile_kernel(k, "purecap")
        for slot in compiled.arg_slots:
            assert slot.offset % 8 == 0

    def test_arg_slot_layout_boundscheck_pointers_are_wide(self):
        @kernel
        def k(n: i32, a: ptr[i32], m: i32):
            a[0] = n + m

        compiled = compile_kernel(k, "boundscheck")
        names = {s.name: s.offset for s in compiled.arg_slots}
        assert names["m"] - names["a"] == 8

    def test_program_ends_with_halt(self):
        @kernel
        def k(a: ptr[i32]):
            a[0] = 1

        for mode in ("baseline", "purecap", "boundscheck"):
            compiled = compile_kernel(k, mode)
            assert compiled.instrs[-1].op is Op.HALT

    def test_unknown_mode_rejected(self):
        @kernel
        def k(a: ptr[i32]):
            a[0] = 1

        with pytest.raises(ValueError):
            compile_kernel(k, "hybrid")

    def test_listing_renders(self):
        @kernel
        def k(a: ptr[i32]):
            a[0] = 1

        listing = compile_kernel(k, "purecap").listing()
        assert "csw" in listing
        assert "halt" in listing

    def test_shared_hoisted_out_of_block_loop(self):
        @kernel
        def k(a: ptr[i32]):
            tile = shared(i32, 64)
            tile[threadIdx.x] = 1
            a[threadIdx.x] = tile[threadIdx.x]

        compiled = compile_kernel(k, "purecap")
        setbounds = [i for i, instr in enumerate(compiled.instrs)
                     if instr.op in (Op.CSETBOUNDS, Op.CSETBOUNDSIMM)]
        branches = [i for i, instr in enumerate(compiled.instrs)
                    if instr.op is Op.BGE]
        assert setbounds, "purecap shared arrays derive via CSetBounds"
        assert setbounds[0] < branches[0], \
            "shared-array derivation must precede the block loop"


class TestCompileErrors:
    def check_raises(self, source, mode="baseline"):
        with pytest.raises(CompileError):
            compile_kernel(source, mode)

    def test_undefined_variable(self):
        @kernel
        def k(a: ptr[i32]):
            a[0] = nowhere  # noqa: F821

        self.check_raises(k)

    def test_pointer_arithmetic_rejected(self):
        @kernel
        def k(a: ptr[i32]):
            a += 1

        self.check_raises(k)

    def test_float_int_mix_rejected(self):
        @kernel
        def k(a: ptr[i32], n: i32):
            a[0] = n + 1.5

        self.check_raises(k)

    def test_plain_division_rejected(self):
        @kernel
        def k(a: ptr[i32], n: i32):
            a[0] = n / 2

        self.check_raises(k)

    def test_variable_type_change_rejected(self):
        @kernel
        def k(a: ptr[i32], n: i32):
            x = n
            x = 1.5
            a[0] = 0

        self.check_raises(k)

    def test_return_value_rejected(self):
        @kernel
        def k(a: ptr[i32]):
            return 5

        self.check_raises(k)

    def test_shared_with_dynamic_size_rejected(self):
        @kernel
        def k(a: ptr[i32], n: i32):
            tile = shared(i32, n)
            a[0] = 0

        self.check_raises(k)
