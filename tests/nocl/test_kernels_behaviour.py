"""Behavioural compiler tests: language features end to end on the SM.

Each test compiles a small kernel exercising one language feature and runs
it in baseline and purecap modes, checking results agree with Python.
"""

import pytest

from repro.nocl import NoCLRuntime, f32, i32, kernel, ptr, u32
from repro.simt import SMConfig

MODES = ("baseline", "purecap")


def runtime(mode):
    cfg = (SMConfig.cheri_optimised(num_warps=2, num_lanes=4)
           if mode == "purecap"
           else SMConfig.baseline(num_warps=2, num_lanes=4))
    return NoCLRuntime(mode, config=cfg)


def run_map_kernel(mode, source, inputs, n=8, extra_args=()):
    rt = runtime(mode)
    a = rt.alloc(i32, n)
    out = rt.alloc(i32, n)
    rt.upload(a, inputs)
    rt.launch(source, 2, 4, [n, *extra_args, a, out])
    return rt.download(out)


@kernel
def k_for_range(n: i32, a: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        acc = 0
        for j in range(1, 5):
            acc += a[i] * j
        out[i] = acc


@kernel
def k_for_step(n: i32, a: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        acc = 0
        for j in range(10, 0, -2):
            acc += j
        out[i] = acc + a[i]


@kernel
def k_break_continue(n: i32, a: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        acc = 0
        j = 0
        while True:
            j += 1
            if j > 20:
                break
            if (j & 1) == 1:
                continue
            acc += j
        out[i] = acc + a[i]


@kernel
def k_ternary(n: i32, a: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        v = a[i]
        out[i] = v if v > 50 else -v


@kernel
def k_boolops(n: i32, a: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        v = a[i]
        if v > 10 and v < 90 and (v & 1) == 0:
            out[i] = 1
        elif v <= 10 or v >= 90:
            out[i] = 2
        else:
            out[i] = 3


@kernel
def k_minmax(n: i32, a: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        out[i] = min_(a[i], 40) + max_(a[i], 60)


@kernel
def k_shifty(n: i32, a: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        v = a[i]
        out[i] = ((v << 3) | (v >> 2)) ^ (~v & 0xFF)


@kernel
def k_early_return(n: i32, a: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i >= n:
        return
    if a[i] < 0:
        out[i] = 0
        return
    out[i] = a[i] * 2


@kernel
def k_float_mix(n: i32, a: ptr[f32], out: ptr[f32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        x = a[i]
        y = fsqrt(x * x + 1.0)
        out[i] = fmax_(y, 0.0) - fmin_(y, 0.0) + f32(i32(x))


@kernel
def k_unsigned(n: i32, a: ptr[u32], out: ptr[u32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        v = a[i]
        out[i] = (v >> 1) + (v % 7) + (v // 3)


INPUTS = [3, 97, 42, 8, 55, 71, 12, 60]


@pytest.mark.parametrize("mode", MODES)
class TestLanguageFeatures:
    def test_for_range(self, mode):
        got = run_map_kernel(mode, k_for_range, INPUTS)
        assert got == [v * (1 + 2 + 3 + 4) for v in INPUTS]

    def test_for_negative_step(self, mode):
        got = run_map_kernel(mode, k_for_step, INPUTS)
        assert got == [30 + v for v in INPUTS]

    def test_break_continue(self, mode):
        expect_acc = sum(j for j in range(1, 21) if j % 2 == 0)
        got = run_map_kernel(mode, k_break_continue, INPUTS)
        assert got == [expect_acc + v for v in INPUTS]

    def test_ternary(self, mode):
        got = run_map_kernel(mode, k_ternary, INPUTS)
        assert got == [v if v > 50 else -v for v in INPUTS]

    def test_boolops(self, mode):
        def ref(v):
            if 10 < v < 90 and v % 2 == 0:
                return 1
            if v <= 10 or v >= 90:
                return 2
            return 3
        got = run_map_kernel(mode, k_boolops, INPUTS)
        assert got == [ref(v) for v in INPUTS]

    def test_minmax(self, mode):
        got = run_map_kernel(mode, k_minmax, INPUTS)
        assert got == [min(v, 40) + max(v, 60) for v in INPUTS]

    def test_shifts_and_bitops(self, mode):
        def ref(v):
            return (((v << 3) | (v >> 2)) ^ (~v & 0xFF)) & 0xFFFFFFFF
        got = run_map_kernel(mode, k_shifty, INPUTS)
        assert [g & 0xFFFFFFFF for g in got] == [ref(v) for v in INPUTS]

    def test_early_return(self, mode):
        inputs = [5, -3, 10, -1, 0, 7, -9, 2]
        got = run_map_kernel(mode, k_early_return, inputs)
        assert got == [0 if v < 0 else v * 2 for v in inputs]

    def test_float_mix(self, mode):
        import math
        rt = runtime(mode)
        n = 8
        vals = [1.5, 2.0, 0.25, 3.0, 9.0, 0.5, 4.0, 7.5]
        a = rt.alloc(f32, n)
        out = rt.alloc(f32, n)
        rt.upload(a, vals)
        rt.launch(k_float_mix, 2, 4, [n, a, out])
        got = rt.download(out)
        for g, x in zip(got, vals):
            y = math.sqrt(x * x + 1.0)
            # fmax_(y, 0) == y and fmin_(y, 0) == 0 for positive y.
            assert g == pytest.approx(y + float(int(x)), rel=1e-5)

    def test_unsigned_semantics(self, mode):
        rt = runtime(mode)
        n = 8
        vals = [0xFFFFFFFF, 0x80000000, 7, 100, 0, 3, 0xFFFFFFF0, 13]
        a = rt.alloc(u32, n)
        out = rt.alloc(u32, n)
        rt.upload(a, vals)
        rt.launch(k_unsigned, 2, 4, [n, a, out])
        got = rt.download(out)
        assert got == [((v >> 1) + (v % 7) + (v // 3)) & 0xFFFFFFFF
                       for v in vals]
