"""Tests for multi-SM execution (the paper's single-SM limitation lifted)."""

import pytest

from repro.benchsuite import ALL_BENCHMARKS
from repro.nocl import NoCLRuntime, i32, kernel, ptr
from repro.nocl.multism import MultiSMRuntime
from repro.simt import SMConfig


@kernel
def msm_vecadd(n: i32, a: ptr[i32], b: ptr[i32], c: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        c[i] = a[i] + b[i]
        i += blockDim.x * gridDim.x


@kernel
def msm_histogram(n: i32, data: ptr[i32], bins: ptr[i32]):
    sh = shared(i32, 64)
    i = threadIdx.x
    while i < 64:
        sh[i] = 0
        i += blockDim.x
    syncthreads()
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        atomic_add(sh, data[i] & 63, 1)
        i += blockDim.x * gridDim.x
    syncthreads()
    i = threadIdx.x
    while i < 64:
        atomic_add(bins, i, sh[i])
        i += blockDim.x


def geometry(mode):
    if mode == "purecap":
        return SMConfig.cheri_optimised(num_warps=2, num_lanes=4)
    return SMConfig.baseline(num_warps=2, num_lanes=4)


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["baseline", "purecap"])
    @pytest.mark.parametrize("num_sms", [1, 2, 4])
    def test_vecadd_across_sms(self, num_sms, mode):
        rt = MultiSMRuntime(mode, num_sms=num_sms, config=geometry(mode))
        n = 256
        a, b, c = (rt.alloc(i32, n) for _ in range(3))
        rt.upload(a, list(range(n)))
        rt.upload(b, [5] * n)
        stats = rt.launch(msm_vecadd, grid_dim=4 * num_sms, block_dim=8,
                          args=[n, a, b, c])
        assert rt.download(c) == [i + 5 for i in range(n)]
        assert len(stats.per_sm) == num_sms
        assert all(s.instrs_issued > 0 for s in stats.per_sm)

    @pytest.mark.parametrize("mode", ["baseline", "purecap"])
    def test_shared_memory_blocks_have_private_scratchpads(self, mode):
        # One block per SM, both blocks running the shared-memory
        # histogram: private scratchpad windows must not interfere.
        rt = MultiSMRuntime(mode, num_sms=2, config=geometry(mode))
        n = 512
        data = [(3 * i) % 64 for i in range(n)]
        buf = rt.alloc(i32, n)
        bins = rt.alloc(i32, 64)
        rt.upload(buf, data)
        rt.upload(bins, [0] * 64)
        rt.launch(msm_histogram, grid_dim=2, block_dim=8,
                  args=[n, buf, bins])
        expect = [0] * 64
        for value in data:
            expect[value & 63] += 1
        assert rt.download(bins) == expect


class TestScaling:
    def test_more_sms_fewer_cycles(self):
        results = {}
        for num_sms in (1, 4):
            rt = MultiSMRuntime("baseline", num_sms=num_sms,
                                config=geometry("baseline"))
            n = 2048
            a, b, c = (rt.alloc(i32, n) for _ in range(3))
            rt.upload(a, [1] * n)
            rt.upload(b, [2] * n)
            stats = rt.launch(msm_vecadd, grid_dim=8 * num_sms, block_dim=8,
                              args=[n, a, b, c])
            results[num_sms] = stats.cycles
        assert results[4] < results[1]

    def test_cheri_dram_projection_holds_multi_sm(self):
        # The paper's section 4.4 projection: a multi-SM memory subsystem
        # is similarly unaffected by CHERI.
        traffic = {}
        for mode in ("baseline", "purecap"):
            rt = MultiSMRuntime(mode, num_sms=2, config=geometry(mode))
            n = 1024
            a, b, c = (rt.alloc(i32, n) for _ in range(3))
            rt.upload(a, [3] * n)
            rt.upload(b, [4] * n)
            stats = rt.launch(msm_vecadd, grid_dim=8, block_dim=8,
                              args=[n, a, b, c])
            traffic[mode] = stats.dram_total_bytes
        ratio = traffic["purecap"] / traffic["baseline"]
        assert 0.95 <= ratio <= 1.10


class TestValidation:
    def test_zero_sms_rejected(self):
        with pytest.raises(ValueError):
            MultiSMRuntime("baseline", num_sms=0)

    def test_multism_benchmark_compat(self):
        # A full Table 1 benchmark runs unmodified on a 2-SM device.
        bench = ALL_BENCHMARKS["VecAdd"]
        rt = MultiSMRuntime("baseline", num_sms=2,
                            config=geometry("baseline"))
        stats = bench.run(rt)
        assert stats.instrs_issued > 0
