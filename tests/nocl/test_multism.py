"""Tests for multi-SM execution (the paper's single-SM limitation lifted)."""

import pytest

from repro.benchsuite import ALL_BENCHMARKS
from repro.nocl import NoCLRuntime, i32, kernel, ptr
from repro.nocl.multism import MultiSMRuntime, MultiSMStats
from repro.simt import SMConfig, SMStats
from repro.simt.config import SCRATCHPAD_BASE, STACK_BASE


@kernel
def msm_vecadd(n: i32, a: ptr[i32], b: ptr[i32], c: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        c[i] = a[i] + b[i]
        i += blockDim.x * gridDim.x


@kernel
def msm_histogram(n: i32, data: ptr[i32], bins: ptr[i32]):
    sh = shared(i32, 64)
    i = threadIdx.x
    while i < 64:
        sh[i] = 0
        i += blockDim.x
    syncthreads()
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        atomic_add(sh, data[i] & 63, 1)
        i += blockDim.x * gridDim.x
    syncthreads()
    i = threadIdx.x
    while i < 64:
        atomic_add(bins, i, sh[i])
        i += blockDim.x


def geometry(mode):
    if mode == "purecap":
        return SMConfig.cheri_optimised(num_warps=2, num_lanes=4)
    return SMConfig.baseline(num_warps=2, num_lanes=4)


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["baseline", "purecap"])
    @pytest.mark.parametrize("num_sms", [1, 2, 4])
    def test_vecadd_across_sms(self, num_sms, mode):
        rt = MultiSMRuntime(mode, num_sms=num_sms, config=geometry(mode))
        n = 256
        a, b, c = (rt.alloc(i32, n) for _ in range(3))
        rt.upload(a, list(range(n)))
        rt.upload(b, [5] * n)
        stats = rt.launch(msm_vecadd, grid_dim=4 * num_sms, block_dim=8,
                          args=[n, a, b, c])
        assert rt.download(c) == [i + 5 for i in range(n)]
        assert len(stats.per_sm) == num_sms
        assert all(s.instrs_issued > 0 for s in stats.per_sm)

    @pytest.mark.parametrize("mode", ["baseline", "purecap"])
    def test_shared_memory_blocks_have_private_scratchpads(self, mode):
        # One block per SM, both blocks running the shared-memory
        # histogram: private scratchpad windows must not interfere.
        rt = MultiSMRuntime(mode, num_sms=2, config=geometry(mode))
        n = 512
        data = [(3 * i) % 64 for i in range(n)]
        buf = rt.alloc(i32, n)
        bins = rt.alloc(i32, 64)
        rt.upload(buf, data)
        rt.upload(bins, [0] * 64)
        rt.launch(msm_histogram, grid_dim=2, block_dim=8,
                  args=[n, buf, bins])
        expect = [0] * 64
        for value in data:
            expect[value & 63] += 1
        assert rt.download(bins) == expect


class TestScaling:
    def test_more_sms_fewer_cycles(self):
        results = {}
        for num_sms in (1, 4):
            rt = MultiSMRuntime("baseline", num_sms=num_sms,
                                config=geometry("baseline"))
            n = 2048
            a, b, c = (rt.alloc(i32, n) for _ in range(3))
            rt.upload(a, [1] * n)
            rt.upload(b, [2] * n)
            stats = rt.launch(msm_vecadd, grid_dim=8 * num_sms, block_dim=8,
                              args=[n, a, b, c])
            results[num_sms] = stats.cycles
        assert results[4] < results[1]

    def test_cheri_dram_projection_holds_multi_sm(self):
        # The paper's section 4.4 projection: a multi-SM memory subsystem
        # is similarly unaffected by CHERI.
        traffic = {}
        for mode in ("baseline", "purecap"):
            rt = MultiSMRuntime(mode, num_sms=2, config=geometry(mode))
            n = 1024
            a, b, c = (rt.alloc(i32, n) for _ in range(3))
            rt.upload(a, [3] * n)
            rt.upload(b, [4] * n)
            stats = rt.launch(msm_vecadd, grid_dim=8, block_dim=8,
                              args=[n, a, b, c])
            traffic[mode] = stats.dram_total_bytes
        ratio = traffic["purecap"] / traffic["baseline"]
        assert 0.95 <= ratio <= 1.10


class TestStatsAggregation:
    """MultiSMStats reduction semantics: cycles are the critical path
    (max over SMs), work and traffic are totals (sum over SMs)."""

    def test_empty_aggregate_is_zero(self):
        stats = MultiSMStats()
        assert stats.per_sm == []
        assert stats.cycles == 0
        assert stats.instrs_issued == 0
        assert stats.dram_total_bytes == 0

    def test_cycles_is_max_others_are_sums(self):
        stats = MultiSMStats(per_sm=[
            SMStats(cycles=100, instrs_issued=40,
                    dram_read_bytes=64, dram_write_bytes=32),
            SMStats(cycles=250, instrs_issued=10,
                    dram_read_bytes=128, dram_write_bytes=0),
            SMStats(cycles=175, instrs_issued=25,
                    dram_read_bytes=0, dram_write_bytes=256),
        ])
        assert stats.cycles == 250
        assert stats.instrs_issued == 40 + 10 + 25
        assert stats.dram_total_bytes == (64 + 32) + 128 + 256

    def test_single_sm_aggregate_is_identity(self):
        one = SMStats(cycles=7, instrs_issued=3, dram_read_bytes=16)
        stats = MultiSMStats(per_sm=[one])
        assert stats.cycles == one.cycles
        assert stats.instrs_issued == one.instrs_issued
        assert stats.dram_total_bytes == one.dram_total_bytes

    def test_launch_aggregate_matches_manual_reduction(self):
        rt = MultiSMRuntime("baseline", num_sms=3,
                            config=geometry("baseline"))
        n = 192
        a, b, c = (rt.alloc(i32, n) for _ in range(3))
        rt.upload(a, [2] * n)
        rt.upload(b, [9] * n)
        stats = rt.launch(msm_vecadd, grid_dim=6, block_dim=8,
                          args=[n, a, b, c])
        assert stats.cycles == max(s.cycles for s in stats.per_sm)
        assert stats.instrs_issued == sum(s.instrs_issued
                                          for s in stats.per_sm)
        assert stats.dram_total_bytes == sum(s.dram_total_bytes
                                             for s in stats.per_sm)


class TestPartitioning:
    """Each SM gets a private scratchpad window and stack region carved
    out of the shared address space by a fixed stride."""

    @pytest.mark.parametrize("mode", ["baseline", "purecap"])
    def test_scratch_base_stride(self, mode):
        rt = MultiSMRuntime(mode, num_sms=4, config=geometry(mode))
        stride = rt.config.scratchpad_bytes
        for index in range(4):
            assert rt._scratch_base(index) == SCRATCHPAD_BASE + \
                index * stride

    @pytest.mark.parametrize("mode", ["baseline", "purecap"])
    def test_stack_base_stride(self, mode):
        rt = MultiSMRuntime(mode, num_sms=4, config=geometry(mode))
        stride = rt.config.num_threads * rt.config.stack_bytes_per_thread
        for index in range(4):
            assert rt._stack_base(index) == STACK_BASE + index * stride

    def test_scratchpad_windows_do_not_overlap(self):
        rt = MultiSMRuntime("baseline", num_sms=4,
                            config=geometry("baseline"))
        windows = [(sm.scratchpad.base,
                    sm.scratchpad.base + sm.scratchpad.size_bytes)
                   for sm in rt.sms]
        assert windows == sorted(windows)
        for (_, end), (start, _) in zip(windows, windows[1:]):
            assert end <= start

    def test_sm_scratchpads_use_partitioned_bases(self):
        rt = MultiSMRuntime("baseline", num_sms=3,
                            config=geometry("baseline"))
        for index, sm in enumerate(rt.sms):
            assert sm.scratchpad.base == rt._scratch_base(index)

    def test_stack_regions_do_not_overlap_scratchpads(self):
        # The per-SM stack stride keeps every stack region below the
        # first scratchpad window for any realistic SM count.
        rt = MultiSMRuntime("baseline", num_sms=4,
                            config=geometry("baseline"))
        stack_span = rt.config.num_threads * \
            rt.config.stack_bytes_per_thread
        top = rt._stack_base(rt.num_sms - 1) + stack_span
        assert top <= SCRATCHPAD_BASE


class TestValidation:
    def test_zero_sms_rejected(self):
        with pytest.raises(ValueError):
            MultiSMRuntime("baseline", num_sms=0)

    def test_multism_benchmark_compat(self):
        # A full Table 1 benchmark runs unmodified on a 2-SM device.
        bench = ALL_BENCHMARKS["VecAdd"]
        rt = MultiSMRuntime("baseline", num_sms=2,
                            config=geometry("baseline"))
        stats = bench.run(rt)
        assert stats.instrs_issued > 0
