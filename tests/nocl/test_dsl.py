"""Tests for the kernel DSL surface (types, decorator, signatures)."""

import pytest

from repro.nocl import f32, i32, kernel, ptr, u32, u8
from repro.nocl.dsl import (
    BUILTIN_DIMS,
    KernelSource,
    PtrType,
    SCALAR_TYPES,
    ScalarType,
    blockDim,
    i16,
    i8,
    threadIdx,
    u16,
)


class TestScalarTypes:
    def test_widths(self):
        assert i8.width == 1 and u8.width == 1
        assert i16.width == 2 and u16.width == 2
        assert i32.width == 4 and u32.width == 4 and f32.width == 4

    def test_signedness(self):
        assert i8.signed and not u8.signed
        assert i32.signed and not u32.signed

    def test_float_flag(self):
        assert f32.is_float
        assert not i32.is_float

    def test_registry(self):
        assert SCALAR_TYPES["i32"] is i32
        assert SCALAR_TYPES["f32"] is f32
        assert len(SCALAR_TYPES) == 7

    def test_cast_outside_kernel_raises(self):
        with pytest.raises(TypeError):
            i32(5)


class TestPtrType:
    def test_subscription(self):
        p = ptr[i32]
        assert isinstance(p, PtrType)
        assert p.elem is i32

    def test_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            ptr[list]

    def test_repr(self):
        assert repr(ptr[u8]) == "ptr[u8]"


class TestBuiltins:
    def test_dim_names(self):
        assert set(BUILTIN_DIMS) == {"threadIdx", "blockIdx", "blockDim",
                                     "gridDim"}

    def test_dims_unusable_outside_kernels(self):
        with pytest.raises(RuntimeError):
            _ = threadIdx.x
        with pytest.raises(RuntimeError):
            _ = blockDim.x


class TestKernelDecorator:
    def test_captures_signature(self):
        @kernel
        def k(n: i32, a: ptr[f32]):
            a[0] = 0.0

        assert isinstance(k, KernelSource)
        assert k.name == "k"
        assert [p.name for p in k.params] == ["n", "a"]
        assert not k.params[0].is_pointer
        assert k.params[1].is_pointer

    def test_missing_annotation_rejected(self):
        with pytest.raises(TypeError):
            @kernel
            def k(n):
                pass

    def test_narrow_scalar_param_rejected(self):
        with pytest.raises(TypeError):
            @kernel
            def k(n: u8):
                pass

    def test_unsupported_annotation_rejected(self):
        with pytest.raises(TypeError):
            @kernel
            def k(n: int):
                pass

    def test_repr(self):
        @kernel
        def k(n: i32):
            pass

        assert "kernel k" in repr(k)
