"""Binary-encoding integration: every compiled kernel encodes and decodes.

The simulator executes decoded instruction objects, but a real TCIM holds
32-bit words; these tests prove the ISA encoding is complete for every
instruction any benchmark kernel emits in any mode, and that a program
round-tripped through its binary image still computes the same results.
"""

import pytest

from repro.benchsuite import ALL_BENCHMARKS, BENCHMARK_NAMES
from repro.nocl import NoCLRuntime, compile_kernel, i32, kernel, ptr
from repro.nocl.compiler import MODES
from repro.simt import SMConfig

from repro.benchsuite.histogram import histogram_kernel
from repro.benchsuite.matmul import matmul_kernel
from repro.benchsuite.vecadd import vecadd_kernel

ALL_KERNEL_SOURCES = {
    "VecAdd": vecadd_kernel,
    "Histogram": histogram_kernel,
    "MatMul": matmul_kernel,
}


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_every_benchmark_kernel_encodes(name, mode):
    # Compile via the runtime cache path so multi-kernel benchmarks are
    # covered too, then encode/decode the full program.
    bench = ALL_BENCHMARKS[name]
    # Square thread count: the tiled kernels need an integral tile size.
    cfg = (SMConfig.cheri_optimised(num_warps=4, num_lanes=4)
           if mode == "purecap"
           else SMConfig.baseline(num_warps=4, num_lanes=4))
    rt = NoCLRuntime(mode, config=cfg)
    bench.run(rt)
    for compiled in rt._compiled.values():
        words = compiled.to_binary()
        assert all(0 <= w < (1 << 32) for w in words)
        decoded = compiled.from_binary_roundtrip()
        assert [i.op for i in decoded] == [i.op for i in compiled.instrs]
        assert [i.depth for i in decoded] == \
            [i.depth for i in compiled.instrs]


@kernel
def rt_kernel(n: i32, a: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        acc = 0
        for j in range(4):
            acc += a[i] * (j + 1)
        out[i] = acc
        i += blockDim.x * gridDim.x


@pytest.mark.parametrize("mode", MODES)
def test_decoded_program_computes_identically(mode):
    cfg = (SMConfig.cheri_optimised(num_warps=2, num_lanes=4)
           if mode == "purecap"
           else SMConfig.baseline(num_warps=2, num_lanes=4))
    compiled = compile_kernel(rt_kernel, mode)
    decoded = compiled.from_binary_roundtrip()

    def run(program_instrs):
        rt = NoCLRuntime(mode, config=cfg)
        rt._compiled[id(rt_kernel)] = compiled
        n = 32
        a = rt.alloc(i32, n)
        out = rt.alloc(i32, n)
        rt.upload(a, list(range(n)))
        # Substitute the instruction stream under test.
        compiled_backup = compiled.instrs
        compiled.instrs = program_instrs
        try:
            rt.launch(rt_kernel, 2, 8, [n, a, out])
        finally:
            compiled.instrs = compiled_backup
        return rt.download(out)

    original = run(compiled.instrs)
    roundtripped = run(decoded)
    assert original == roundtripped == [10 * i for i in range(32)]
