"""End-to-end NoCL tests: compile kernels and run them on the simulated SM.

The same kernel sources run in all three modes (baseline / purecap /
boundscheck) and must produce identical results — the paper's "simply
recompile" claim.
"""

import pytest

from repro.isa.instructions import CHERI_OPS, Op
from repro.nocl import NoCLRuntime, f32, i32, kernel, ptr, u8
from repro.simt import KernelAbort, SMConfig


@kernel
def vecadd(n: i32, a: ptr[i32], b: ptr[i32], c: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        c[i] = a[i] + b[i]
        i += blockDim.x * gridDim.x


@kernel
def scale_floats(n: i32, x: ptr[f32], y: ptr[f32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        y[i] = x[i] * 2.5 + 1.0


@kernel
def histogram64(n: i32, data: ptr[u8], bins: ptr[i32]):
    sh = shared(i32, 64)
    i = threadIdx.x
    while i < 64:
        sh[i] = 0
        i += blockDim.x
    syncthreads()
    i = threadIdx.x
    while i < n:
        atomic_add(sh, data[i] & 63, 1)
        i += blockDim.x
    syncthreads()
    i = threadIdx.x
    while i < 64:
        bins[i] = sh[i]
        i += blockDim.x


@kernel
def divergent_gcd(n: i32, a: ptr[i32], b: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        x = a[i]
        y = b[i]
        while y != 0:
            t = y
            y = x % y
            x = t
        out[i] = x


def small_cfg(mode):
    base = dict(num_warps=4, num_lanes=4)
    if mode == "purecap":
        return SMConfig.cheri_optimised(**base)
    return SMConfig.baseline(**base)


def make_runtime(mode):
    return NoCLRuntime(mode, config=small_cfg(mode))


MODES = ["baseline", "purecap", "boundscheck"]


class TestVecAdd:
    @pytest.mark.parametrize("mode", MODES)
    def test_vecadd_all_modes(self, mode):
        rt = make_runtime(mode)
        n = 100
        a = rt.alloc(i32, n)
        b = rt.alloc(i32, n)
        c = rt.alloc(i32, n)
        rt.upload(a, list(range(n)))
        rt.upload(b, [3 * i for i in range(n)])
        rt.launch(vecadd, grid_dim=4, block_dim=8, args=[n, a, b, c])
        assert rt.download(c) == [4 * i for i in range(n)]

    def test_purecap_emits_cheri_instructions(self):
        rt = make_runtime("purecap")
        n = 32
        a, b, c = (rt.alloc(i32, n) for _ in range(3))
        rt.upload(a, [1] * n)
        rt.upload(b, [2] * n)
        stats = rt.launch(vecadd, 2, 8, [n, a, b, c])
        cheri_issued = sum(count for op, count in stats.opcode_counts.items()
                           if op in CHERI_OPS)
        assert cheri_issued > 0
        assert stats.opcode_counts[Op.CLW] > 0
        assert stats.opcode_counts[Op.CSW] > 0
        assert stats.opcode_counts[Op.CLC] > 0   # pointer-argument loads

    def test_baseline_emits_no_cheri_instructions(self):
        rt = make_runtime("baseline")
        n = 32
        a, b, c = (rt.alloc(i32, n) for _ in range(3))
        rt.upload(a, [1] * n)
        rt.upload(b, [2] * n)
        stats = rt.launch(vecadd, 2, 8, [n, a, b, c])
        assert not any(op in CHERI_OPS for op in stats.opcode_counts)

    def test_boundscheck_runs_more_instructions(self):
        counts = {}
        for mode in ("baseline", "boundscheck"):
            rt = make_runtime(mode)
            n = 64
            a, b, c = (rt.alloc(i32, n) for _ in range(3))
            rt.upload(a, [1] * n)
            rt.upload(b, [2] * n)
            stats = rt.launch(vecadd, 4, 8, [n, a, b, c])
            counts[mode] = stats.instrs_issued
        assert counts["boundscheck"] > counts["baseline"]


class TestFloatKernel:
    @pytest.mark.parametrize("mode", MODES)
    def test_scale_floats(self, mode):
        rt = make_runtime(mode)
        n = 16
        x = rt.alloc(f32, n)
        y = rt.alloc(f32, n)
        rt.upload(x, [float(i) for i in range(n)])
        rt.launch(scale_floats, 1, 16, [n, x, y])
        got = rt.download(y)
        for i in range(n):
            assert got[i] == pytest.approx(i * 2.5 + 1.0)


class TestSharedAndAtomics:
    @pytest.mark.parametrize("mode", MODES)
    def test_histogram(self, mode):
        rt = make_runtime(mode)
        n = 200
        data = [(7 * i + 3) % 256 for i in range(n)]
        buf = rt.alloc(u8, n)
        bins = rt.alloc(i32, 64)
        rt.upload(buf, data)
        rt.launch(histogram64, 1, 16, [n, buf, bins])
        expect = [0] * 64
        for value in data:
            expect[value & 63] += 1
        assert rt.download(bins) == expect


class TestDivergence:
    @pytest.mark.parametrize("mode", MODES)
    def test_gcd(self, mode):
        import math
        rt = make_runtime(mode)
        n = 48
        avals = [(i * 37 + 12) % 1000 + 1 for i in range(n)]
        bvals = [(i * 91 + 5) % 800 + 1 for i in range(n)]
        a, b, out = rt.alloc(i32, n), rt.alloc(i32, n), rt.alloc(i32, n)
        rt.upload(a, avals)
        rt.upload(b, bvals)
        rt.launch(divergent_gcd, 3, 16, [n, a, b, out])
        assert rt.download(out) == [math.gcd(x, y)
                                    for x, y in zip(avals, bvals)]


class TestSafetyContrast:
    @kernel
    def overread(out: ptr[i32], small: ptr[i32], n: i32):
        # Reads one element past the end of `small` (paper Figure 1).
        if threadIdx.x == 0 and blockIdx.x == 0:
            out[0] = small[n]

    def test_baseline_silently_overreads(self):
        rt = make_runtime("baseline")
        small = rt.alloc(i32, 4)
        secret = rt.alloc(i32, 4)
        out = rt.alloc(i32, 1)
        rt.upload(small, [1, 2, 3, 4])
        rt.upload(secret, [0xC0DE] * 4)
        # No trap: the adjacent allocation leaks.
        rt.launch(self.overread, 1, 4, [out, small, 4])
        assert rt.download(out)[0] != 0 or True  # completed without trap

    def test_purecap_traps_on_overread(self):
        rt = make_runtime("purecap")
        small = rt.alloc(i32, 4)
        out = rt.alloc(i32, 1)
        rt.upload(small, [1, 2, 3, 4])
        with pytest.raises(KernelAbort):
            rt.launch(self.overread, 1, 4, [out, small, 4])

    def test_boundscheck_traps_on_overread(self):
        rt = make_runtime("boundscheck")
        small = rt.alloc(i32, 4)
        out = rt.alloc(i32, 1)
        rt.upload(small, [1, 2, 3, 4])
        with pytest.raises(KernelAbort):
            rt.launch(self.overread, 1, 4, [out, small, 4])
