"""Tests for ``repro.nocl.opt``: the dataflow framework and pass pipeline.

Three layers, mirroring the package's own guarantees:

- analysis units on small hand-built IR (CFG shape, dominators, natural
  loops, reaching defs, liveness, available checks, value ranges);
- per-pass golden behaviour on hand-built IR (LICM, CSE, strength
  reduction including the div-mod recombination, bounds-check
  elimination, DCE);
- whole-pipeline guarantees: ``-O0`` output byte-identical to the
  default compile, every benchmark x mode self-checking at ``-O1``,
  lockstep agreement at ``-O1``, and an O0-vs-O1 differential fuzz
  case.
"""

import pytest

from repro.isa.instructions import Op
from repro.nocl import NoCLRuntime
from repro.nocl.ir import FIRST_VREG, VInstr, VLabel, VLoadImm
from repro.nocl.opt import (
    AvailableChecks,
    Interval,
    Liveness,
    RangeAnalysis,
    ReachingDefs,
    build_cfg,
    def_sites,
)
from repro.nocl.opt.passes import (
    cse,
    dce,
    eliminate_bounds_checks,
    find_checks,
    licm,
    strength_reduce,
)
from repro.simt import SMConfig
from repro.simt.config import MAX_BLOCK_DIM

GEOMETRY = dict(num_warps=4, num_lanes=4)


def counted_loop():
    """``for i in range(10): acc += i`` with an invariant MUL inside.

    Block structure: B0 preheader, B1 header (guard), B2 body, B3 exit.
    """
    return [
        VLoadImm(rd=32, value=0),                          # 0: i = 0
        VLoadImm(rd=33, value=10),                         # 1: n = 10
        VLoadImm(rd=34, value=0),                          # 2: acc = 0
        VLabel("head"),                                    # 3
        VInstr(Op.BGE, rs1=32, rs2=33, target="exit"),     # 4
        VInstr(Op.MUL, rd=36, rs1=33, rs2=33),             # 5: invariant
        VInstr(Op.ADD, rd=34, rs1=34, rs2=32),             # 6
        VInstr(Op.ADDI, rd=32, rs1=32, imm=1),             # 7: i += 1
        VInstr(Op.JAL, rd=0, target="head"),               # 8
        VLabel("exit"),                                    # 9
        VInstr(Op.ADD, rd=35, rs1=34, rs2=36),             # 10
    ]


class TestCFG:
    def test_blocks_and_edges(self):
        cfg = build_cfg(counted_loop())
        assert len(cfg.blocks) == 4
        assert [b.start for b in cfg.blocks] == [0, 3, 5, 9]
        assert cfg.blocks[0].succs == [1]
        assert sorted(cfg.blocks[1].succs) == [2, 3]
        assert cfg.blocks[2].succs == [1]
        assert cfg.blocks[3].succs == []
        assert sorted(cfg.blocks[1].preds) == [0, 2]

    def test_dominators(self):
        cfg = build_cfg(counted_loop())
        assert cfg.idom[1] == 0
        assert cfg.idom[2] == 1
        assert cfg.idom[3] == 1
        assert cfg.dominates(1, 2)
        assert not cfg.dominates(2, 3)
        # Item-level: the preheader defs dominate the body; the body
        # does not dominate the exit.
        assert cfg.instr_dominates(0, 6)
        assert not cfg.instr_dominates(6, 10)

    def test_natural_loops(self):
        cfg = build_cfg(counted_loop())
        assert len(cfg.loops) == 1
        header, body = cfg.loops[0]
        assert header == 1
        assert body == {1, 2}
        assert cfg.loop_item_span(body) == (3, 9)


class TestReachingDefs:
    def test_loop_carried_defs_reach_header(self):
        items = counted_loop()
        cfg = build_cfg(items)
        rd = ReachingDefs(cfg)
        # At the guard, both the initial def of i (item 0) and the
        # increment (item 7) can reach.
        assert rd.defs_of(32, 4) == {0, 7}
        # Inside the body only the *current* iteration's defs apply to
        # acc: init (2) and the body add (6).
        assert rd.defs_of(34, 6) == {2, 6}

    def test_def_sites(self):
        sites = def_sites(counted_loop())
        assert sites[32] == [0, 7]
        assert sites[36] == [5]


class TestLiveness:
    def test_loop_variables_live_through_backedge(self):
        items = counted_loop()
        cfg = build_cfg(items)
        lv = Liveness(cfg)
        # i, n, acc circulate through the loop.
        assert {32, 33, 34} <= lv.live_in[1]
        # The MUL result is only read after the loop.
        assert 36 in lv.live_out[2] or 36 in lv.live_in[3]
        # Nothing is live out of the exit block.
        assert lv.live_out[3] == set()


def check_triple(idx, ln, label):
    return [
        VInstr(Op.BLTU, rs1=idx, rs2=ln, target=label,
               comment="bounds check"),
        VInstr(Op.TRAP, comment="index out of bounds"),
        VLabel(label),
    ]


class TestAvailableChecks:
    def test_dominating_check_is_available(self):
        items = (
            [VLoadImm(rd=40, value=100)]
            + check_triple(41, 40, "ok1")
            + check_triple(41, 40, "ok2")
        )
        cfg = build_cfg(items)
        checks = find_checks(items)
        assert [c[0] for c in checks] == [1, 4]
        av = AvailableChecks(cfg, checks)
        assert (41, 40) not in av.available_before(1)
        assert (41, 40) in av.available_before(4)

    def test_redefinition_kills_availability(self):
        items = (
            [VLoadImm(rd=40, value=100)]
            + check_triple(41, 40, "ok1")
            + [VInstr(Op.ADDI, rd=41, rs1=41, imm=1)]
            + check_triple(41, 40, "ok2")
        )
        cfg = build_cfg(items)
        av = AvailableChecks(cfg, find_checks(items))
        assert (41, 40) not in av.available_before(5)


class TestRanges:
    def test_loop_counter_converges_to_guard_bound(self):
        items = counted_loop()
        ra = RangeAnalysis(build_cfg(items))
        # In the body, the guard's fall-through refinement pins i.
        assert ra.interval_before(6, 32) == Interval(0, 9)
        # At the exit, i >= n.
        assert ra.interval_before(10, 32).lo == 10

    def test_threadidx_seed(self):
        items = [VInstr(Op.ADDI, rd=32, rs1=10, imm=0)]
        ra = RangeAnalysis(build_cfg(items))
        assert ra.interval_before(0, 10) == Interval(0, MAX_BLOCK_DIM - 1)

    def test_seed_dropped_when_register_is_written(self):
        items = [
            VInstr(Op.ADDI, rd=10, rs1=0, imm=-1),
            VInstr(Op.ADDI, rd=32, rs1=10, imm=0),
        ]
        ra = RangeAnalysis(build_cfg(items))
        assert ra.interval_before(0, 10).is_top

    def test_header_word_loads(self):
        items = [
            VInstr(Op.LW, rd=32, rs1=3, imm=4, comment="blockDim.x"),
            VInstr(Op.LW, rd=33, rs1=3, imm=0, comment="gridDim.x"),
            VInstr(Op.LW, rd=34, rs1=3, imm=8, comment="arg n"),
            VInstr(Op.ADD, rd=35, rs1=32, rs2=33),
        ]
        ra = RangeAnalysis(build_cfg(items))
        assert ra.interval_before(3, 32) == Interval(1, MAX_BLOCK_DIM)
        assert ra.interval_before(3, 33) == Interval(1, 0x7FFFFFFF)
        assert ra.interval_before(3, 34).is_top

    def test_narrow_loads(self):
        items = [
            VInstr(Op.LBU, rd=32, rs1=36, imm=0),
            VInstr(Op.LHU, rd=33, rs1=36, imm=0),
            VInstr(Op.ADD, rd=34, rs1=32, rs2=33),
        ]
        ra = RangeAnalysis(build_cfg(items))
        assert ra.interval_before(2, 32) == Interval(0, 0xFF)
        assert ra.interval_before(2, 33) == Interval(0, 0xFFFF)

    def test_bltu_refinement(self):
        items = [
            VLoadImm(rd=40, value=64),
            VInstr(Op.BLTU, rs1=41, rs2=40, target="ok"),
            VInstr(Op.TRAP),
            VLabel("ok"),
            VInstr(Op.ADDI, rd=42, rs1=41, imm=0),
        ]
        ra = RangeAnalysis(build_cfg(items))
        assert ra.interval_before(4, 41) == Interval(0, 63)


class TestPasses:
    def test_licm_hoists_invariant(self):
        items = counted_loop()
        out, moved = licm(items)
        assert moved >= 1
        mul_at = next(i for i, it in enumerate(out)
                      if isinstance(it, VInstr) and it.op == Op.MUL)
        head_at = next(i for i, it in enumerate(out)
                       if isinstance(it, VLabel) and it.name == "head")
        assert mul_at < head_at

    def test_licm_disabled_at_zero_budget(self):
        items = counted_loop()
        out, moved = licm(items, pressure_target=0)
        assert moved == 0
        assert out == items

    def test_cse_merges_duplicate(self):
        items = [
            VLoadImm(rd=32, value=7),
            VInstr(Op.ADDI, rd=33, rs1=32, imm=5),
            VInstr(Op.ADDI, rd=34, rs1=32, imm=5),   # duplicate
            VInstr(Op.ADD, rd=35, rs1=33, rs2=34),
        ]
        out, removed = cse(items)
        assert removed == 1
        add = next(it for it in out
                   if isinstance(it, VInstr) and it.op == Op.ADD)
        assert add.rs1 == add.rs2 == 33

    def test_strength_reduces_power_of_two(self):
        items = [
            VLoadImm(rd=32, value=8),
            VInstr(Op.MUL, rd=33, rs1=40, rs2=32),
            VInstr(Op.DIVU, rd=34, rs1=40, rs2=32),
            VInstr(Op.REMU, rd=35, rs1=40, rs2=32),
        ]
        out, rewritten = strength_reduce(items)
        assert rewritten == 3
        assert [it.op for it in out[1:]] == [Op.SLLI, Op.SRLI, Op.ANDI]
        assert out[1].imm == 3 and out[3].imm == 7

    @pytest.mark.parametrize("div_op,rem_op", [(Op.DIVU, Op.REMU),
                                               (Op.DIV, Op.REM)])
    def test_divmod_recombination(self, div_op, rem_op):
        # (x / y) * y + x % y == x; x and y via fresh copies, the way
        # the frontend spells repeated mentions of one variable.
        items = [
            VInstr(Op.ADDI, rd=32, rs1=10, imm=0),   # x copy 1
            VInstr(Op.ADDI, rd=33, rs1=10, imm=0),   # x copy 2
            VInstr(Op.LW, rd=34, rs1=3, imm=8),      # y (runtime arg)
            VInstr(div_op, rd=35, rs1=32, rs2=34),
            VInstr(Op.MUL, rd=36, rs1=35, rs2=34),
            VInstr(rem_op, rd=37, rs1=33, rs2=34),
            VInstr(Op.ADD, rd=38, rs1=36, rs2=37),
        ]
        out, rewritten = strength_reduce(items)
        assert rewritten == 1
        assert out[6].op == Op.ADDI and out[6].imm == 0
        assert out[6].rs1 == 33

    def test_divmod_recombination_needs_matching_operands(self):
        items = [
            VInstr(Op.ADDI, rd=32, rs1=10, imm=0),
            VInstr(Op.LW, rd=34, rs1=3, imm=8),
            VInstr(Op.LW, rd=39, rs1=3, imm=12),     # a different y
            VInstr(Op.DIVU, rd=35, rs1=32, rs2=34),
            VInstr(Op.MUL, rd=36, rs1=35, rs2=34),
            VInstr(Op.REMU, rd=37, rs1=32, rs2=39),
            VInstr(Op.ADD, rd=38, rs1=36, rs2=37),
        ]
        out, rewritten = strength_reduce(items)
        assert rewritten == 0
        assert out[6].op == Op.ADD

    def test_eliminate_dominated_check(self):
        items = (
            [VLoadImm(rd=40, value=100)]
            + check_triple(41, 40, "ok1")
            + check_triple(41, 40, "ok2")
            + [VInstr(Op.ADD, rd=42, rs1=41, rs2=41)]
        )
        out, dominated, proved = eliminate_bounds_checks(items)
        assert (dominated, proved) == (1, 0)
        assert len(find_checks(out)) == 1

    def test_eliminate_range_proved_check(self):
        items = (
            [
                VLoadImm(rd=40, value=100),
                VInstr(Op.ANDI, rd=41, rs1=43, imm=63),
            ]
            + check_triple(41, 40, "ok1")
            + [VInstr(Op.ADD, rd=42, rs1=41, rs2=41)]
        )
        out, dominated, proved = eliminate_bounds_checks(items)
        assert (dominated, proved) == (0, 1)
        assert not find_checks(out)

    def test_unprovable_check_survives(self):
        items = (
            [VInstr(Op.LW, rd=40, rs1=3, imm=8)]
            + check_triple(41, 40, "ok1")
        )
        out, dominated, proved = eliminate_bounds_checks(items)
        assert (dominated, proved) == (0, 0)
        assert len(find_checks(out)) == 1

    def test_dce_removes_dead_chain(self):
        items = [
            VLoadImm(rd=32, value=1),
            VInstr(Op.ADDI, rd=33, rs1=32, imm=1),   # dead chain
            VLoadImm(rd=34, value=2),
            VInstr(Op.SW, rs1=2, rs2=34, imm=0),     # store keeps 34
        ]
        out, removed = dce(items)
        assert removed == 2
        ops = [it.op for it in out if isinstance(it, VInstr)]
        assert Op.ADDI not in ops


def _compile(bench_module, kernel_name, mode, opt):
    from repro.nocl.compiler import compile_kernel
    import importlib
    mod = importlib.import_module("repro.benchsuite.%s" % bench_module)
    return compile_kernel(getattr(mod, kernel_name), mode, opt=opt)


class TestPipeline:
    KERNELS = [
        ("vecadd", "vecadd_kernel"),
        ("histogram", "histogram_kernel"),
        ("matmul", "matmul_kernel"),
    ]

    @pytest.mark.parametrize("mode", ["baseline", "purecap", "boundscheck"])
    def test_o0_is_byte_identical_to_default(self, mode):
        for bench_module, kernel_name in self.KERNELS:
            default = _compile(bench_module, kernel_name, mode, 0)
            from repro.nocl.compiler import compile_kernel
            import importlib
            mod = importlib.import_module(
                "repro.benchsuite.%s" % bench_module)
            plain = compile_kernel(getattr(mod, kernel_name), mode)
            assert plain.instrs == default.instrs
            assert plain.opt == 0 and plain.opt_report is None

    def test_o1_reports_passes(self):
        compiled = _compile("histogram", "histogram_kernel",
                            "boundscheck", 1)
        assert compiled.opt == 1
        report = compiled.opt_report
        assert report is not None
        assert report["items_before"] >= report["items_after"]
        assert report["passes"]["boundscheck"] > 0

    def test_o1_drops_static_check_sites(self):
        o0 = _compile("histogram", "histogram_kernel", "boundscheck", 0)
        o1 = _compile("histogram", "histogram_kernel", "boundscheck", 1)
        assert len(o1.bounds_check_pcs) < len(o0.bounds_check_pcs)


def _runtime(mode, opt):
    factory = SMConfig.cheri if mode == "purecap" else SMConfig.baseline
    return NoCLRuntime(mode, config=factory(opt=opt, **GEOMETRY))


@pytest.mark.parametrize("mode", ["baseline", "purecap", "boundscheck"])
def test_o1_benchmark_sweep_architectural_results(mode):
    """Every Table 1 benchmark self-checks its outputs at ``-O1``.

    Each ``Benchmark.run`` downloads the kernel's results and compares
    them against a host-computed expectation, so a pass here means the
    optimized binary produced bit-identical architectural results.
    """
    from repro.benchsuite import ALL_BENCHMARKS
    for name, bench in ALL_BENCHMARKS.items():
        bench.run(_runtime(mode, opt=1), scale=1)


def test_lockstep_clean_at_o1():
    from repro.check.lockstep import lockstep_case
    for config_name in ("baseline", "boundscheck"):
        name, _, ok, message, _ = lockstep_case("Histogram", config_name,
                                                opt=1)
        assert ok, "%s/%s: %s" % (name, config_name, message)


def test_fuzz_differential_o0_vs_o1():
    from repro.check.fuzz import SCHEDULE, generate_case, run_case
    stride = len(SCHEDULE)
    kernel_index = SCHEDULE.index("kernel")
    failures = []
    for i in range(3):  # three generated kernels, each run at O0 and O1
        case = generate_case(seed=7, index=kernel_index + i * stride)
        assert case.kind == "kernel"
        failures.append(run_case(case, opt_levels=(0, 1)))
    assert failures == [None, None, None]


def test_opt_report_survives_disk_cache(tmp_path, monkeypatch):
    """Manifests carry per-pass reports whether a run simulated or hit disk.

    Optimizer reports are deterministic per (kernel, config), so
    ``_disk_load`` must thread the pickled ``RunMeta.opt`` through the
    relabelled disk-hit meta instead of dropping it.
    """
    from repro.eval import runner
    monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path))
    runner.clear_cache()
    cold = runner.run_benchmark("Histogram", "boundscheck", opt=1)
    assert cold.meta.source == "sim"
    assert cold.meta.opt and "histogram_kernel" in cold.meta.opt
    runner.clear_cache()  # drop the memo; force the disk path
    warm = runner.run_benchmark("Histogram", "boundscheck", opt=1)
    assert warm.meta.source == "disk"
    assert warm.meta.opt == cold.meta.opt
