"""Tests for the Capability value type and CHERI derivation semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cheri import Capability, Perms, root_capability
from repro.cheri.capability import CAP_NULL, OTYPE_SENTRY, OTYPE_UNSEALED

FULL = 1 << 32


def derived(base, length):
    cap, _ = root_capability().set_bounds(base, length)
    return cap


class TestPacking:
    def test_null_cap_packs_to_zero(self):
        assert CAP_NULL.to_mem() == 0

    def test_from_mem_roundtrip_null(self):
        assert Capability.from_mem(0) == CAP_NULL

    def test_root_roundtrip(self):
        root = root_capability()
        assert Capability.from_mem(root.to_mem()) == root

    @given(st.integers(min_value=0, max_value=FULL - 1),
           st.integers(min_value=0, max_value=1 << 20))
    @settings(max_examples=200)
    def test_derived_caps_roundtrip_through_memory(self, base, length):
        if base + length > FULL:
            return
        cap = derived(base, length)
        again = Capability.from_mem(cap.to_mem())
        assert again == cap
        assert again.base == cap.base
        assert again.top == cap.top

    def test_meta_word_is_address_independent(self):
        a = derived(0x1000, 0x100).set_addr(0x1000)
        b = derived(0x1000, 0x100).set_addr(0x10ff)
        assert a.meta_word() == b.meta_word()
        assert a.addr != b.addr

    def test_untagged_pattern_preserved(self):
        cap = derived(0x2000, 64).with_tag_cleared()
        again = Capability.from_mem(cap.to_mem())
        assert not again.tag
        assert again.meta_word() == cap.meta_word()


class TestRoot:
    def test_root_covers_address_space(self):
        root = root_capability()
        assert root.tag
        assert root.base == 0
        assert root.top == FULL
        assert root.length == FULL

    def test_root_has_all_perms(self):
        root = root_capability()
        for perm in Perms:
            assert perm in root.perms

    def test_restricted_root(self):
        ro = root_capability(Perms.LOAD | Perms.GLOBAL)
        assert Perms.STORE not in ro.perms


class TestSetBounds:
    def test_narrowing_keeps_tag(self):
        cap, exact = root_capability().set_bounds(0x4000, 0x1000)
        assert cap.tag
        assert exact
        assert (cap.base, cap.top) == (0x4000, 0x5000)

    def test_widening_clears_tag(self):
        small = derived(0x4000, 0x100)
        grown, _ = small.set_bounds(0x3000, 0x2000)
        assert not grown.tag

    def test_monotonic_nested_derivation(self):
        outer = derived(0x10000, 0x1000)
        inner, _ = outer.set_bounds(0x10100, 0x100)
        assert inner.tag
        assert inner.base >= outer.base
        assert inner.top <= outer.top

    def test_exact_variant_clears_tag_on_rounding(self):
        parent = derived(0, 1 << 20)
        inexact, was_exact = parent.set_bounds(1, 1001, exact=True)
        assert not was_exact
        assert not inexact.tag

    def test_inexact_rounding_keeps_tag_when_inside_parent(self):
        parent = derived(0, 1 << 20)
        cap, was_exact = parent.set_bounds(4096, 1001)
        assert not was_exact
        assert cap.tag
        assert cap.base <= 4096
        assert cap.top >= 4096 + 1001

    def test_set_bounds_on_untagged_stays_untagged(self):
        cap, _ = derived(0, 256).with_tag_cleared().set_bounds(0, 16)
        assert not cap.tag

    @given(st.integers(min_value=0, max_value=FULL - 1),
           st.integers(min_value=0, max_value=1 << 24),
           st.integers(min_value=0, max_value=1 << 24))
    @settings(max_examples=200)
    def test_derivation_never_grows_authority(self, base, length, sub):
        if base + length > FULL:
            return
        parent = derived(base, length)
        child, _ = parent.set_bounds(base, min(sub, length))
        if child.tag:
            assert child.base >= parent.base
            assert child.top <= parent.top


class TestSetAddr:
    def test_in_bounds_move_keeps_tag(self):
        cap = derived(0x8000, 0x1000)
        moved = cap.set_addr(0x8800)
        assert moved.tag
        assert moved.addr == 0x8800
        assert (moved.base, moved.top) == (cap.base, cap.top)

    def test_one_past_end_keeps_tag(self):
        cap = derived(0x8000, 64)
        assert cap.set_addr(0x8040).tag

    def test_far_oob_clears_tag(self):
        cap = derived(0x100000, 0x100000)
        wandered = cap.set_addr(0xF0000000)
        assert not wandered.tag

    def test_inc_addr_matches_set_addr(self):
        cap = derived(0x8000, 0x1000)
        assert cap.inc_addr(0x10) == cap.set_addr(0x8010)

    def test_inc_addr_wraps_modulo(self):
        cap = derived(0, 64)
        wrapped = cap.inc_addr(FULL + 8)
        assert wrapped.addr == 8

    def test_sealed_cap_addr_change_clears_tag(self):
        cap = derived(0x8000, 64).seal_entry()
        assert not cap.set_addr(0x8008).tag


class TestPermsAndSeal:
    def test_and_perms_only_removes(self):
        cap = derived(0, 256)
        ro = cap.and_perms(Perms.LOAD | Perms.LOAD_CAP | Perms.GLOBAL)
        assert ro.tag
        assert Perms.LOAD in ro.perms
        assert Perms.STORE not in ro.perms

    def test_and_perms_cannot_add(self):
        ro = root_capability(Perms.LOAD)
        still_ro = ro.and_perms(Perms.all_perms())
        assert Perms.STORE not in still_ro.perms

    def test_seal_entry_sets_otype(self):
        cap = derived(0x1000, 64).seal_entry()
        assert cap.is_sealed
        assert cap.is_sentry
        assert cap.otype == OTYPE_SENTRY

    def test_unseal_entry_restores(self):
        cap = derived(0x1000, 64).seal_entry().unseal_entry()
        assert not cap.is_sealed
        assert cap.otype == OTYPE_UNSEALED

    def test_sealed_set_bounds_clears_tag(self):
        cap = derived(0x1000, 256).seal_entry()
        child, _ = cap.set_bounds(0x1000, 16)
        assert not child.tag

    def test_sealed_and_perms_clears_tag(self):
        cap = derived(0x1000, 256).seal_entry()
        assert not cap.and_perms(Perms.LOAD).tag

    def test_set_flags(self):
        cap = derived(0, 64).set_flags(1)
        assert cap.flags == 1
        assert cap.tag
