"""Decode totality: arbitrary bit patterns never crash the capability model.

Untagged memory can hold any 64-bit pattern, and CClearTag'd capabilities
retain arbitrary encodings — every operation on them must be total
(returning untagged results), never raise, because hardware has no way to
refuse to decode a register.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cheri import Capability
from repro.cheri.concentrate import CapBounds, decode_bounds

any64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
any_addr = st.integers(min_value=0, max_value=(1 << 32) - 1)
any_bounds = st.builds(
    CapBounds,
    ie=st.integers(min_value=0, max_value=1),
    b_field=st.integers(min_value=0, max_value=0xFF),
    t_field=st.integers(min_value=0, max_value=0x3F),
)


class TestDecodeTotality:
    @given(any_bounds, any_addr)
    @settings(max_examples=500)
    def test_any_pattern_decodes(self, bounds, addr):
        base, top = decode_bounds(bounds, addr)
        assert 0 <= base < (1 << 32)
        assert 0 <= top < (1 << 33)

    @given(any64, any_addr)
    @settings(max_examples=300)
    def test_untagged_capability_operations_are_total(self, raw, addr):
        cap = Capability.from_mem(raw)  # tag bit absent: untagged
        assert not cap.tag
        # Every derivation stays total and untagged.
        assert not cap.set_addr(addr).tag
        assert not cap.inc_addr(12345).tag
        child, _ = cap.set_bounds(cap.addr, 16)
        assert not child.tag
        assert not cap.and_perms(0).tag
        _ = cap.base, cap.top, cap.length, cap.is_sealed
        # Round trip preserves the raw pattern.
        assert cap.to_mem() == raw & ((1 << 64) - 1)

    @given(any64)
    @settings(max_examples=300)
    def test_mem_roundtrip_any_pattern(self, raw):
        cap = Capability.from_mem(raw)
        assert Capability.from_mem(cap.to_mem()) == cap
