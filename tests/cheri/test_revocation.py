"""Tests for temporal safety: quarantine and revocation sweeps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cheri import root_capability
from repro.cheri.revocation import Quarantine, sweep_memory
from repro.memory import TaggedMemory


def derived(base, length):
    cap, _ = root_capability().set_bounds(base, length)
    return cap


def store_cap(memory, slot_addr, cap):
    memory.write_cap_raw(slot_addr, cap.to_mem() & ((1 << 64) - 1), cap.tag)


class TestQuarantine:
    def test_overlap_detection(self):
        q = Quarantine()
        q.add(0x1000, 0x2000)
        assert q.overlaps(0x1800, 0x1900)
        assert q.overlaps(0x0F00, 0x1001)
        assert q.overlaps(0x1FFF, 0x3000)
        assert not q.overlaps(0x2000, 0x3000)  # half-open intervals
        assert not q.overlaps(0x0F00, 0x1000)

    def test_empty_region_rejected(self):
        q = Quarantine()
        with pytest.raises(ValueError):
            q.add(0x1000, 0x1000)

    def test_drain(self):
        q = Quarantine()
        q.add(0, 16)
        assert q
        assert q.drain() == [(0, 16)]
        assert not q


class TestSweep:
    def test_revokes_overlapping_capability(self):
        mem = TaggedMemory()
        victim = derived(0x1000, 0x100)
        store_cap(mem, 0x8000, victim)
        q = Quarantine()
        q.add(0x1000, 0x1100)
        assert sweep_memory(mem, q) == 1
        _, tag = mem.read_cap_raw(0x8000)
        assert not tag

    def test_spares_disjoint_capability(self):
        mem = TaggedMemory()
        survivor = derived(0x4000, 0x100)
        store_cap(mem, 0x8000, survivor)
        q = Quarantine()
        q.add(0x1000, 0x1100)
        assert sweep_memory(mem, q) == 0
        _, tag = mem.read_cap_raw(0x8000)
        assert tag

    def test_out_of_bounds_cursor_does_not_hide_capability(self):
        # Revocation keys on *bounds*, not the cursor: a cap pointing
        # elsewhere but bounded over freed memory must still die.
        mem = TaggedMemory()
        sneaky = derived(0x1000, 0x100).set_addr(0x1000 + 0x80)
        store_cap(mem, 0x8000, sneaky)
        q = Quarantine()
        q.add(0x1000, 0x1100)
        assert sweep_memory(mem, q) == 1

    def test_untagged_data_untouched(self):
        mem = TaggedMemory()
        mem.write(0x8000, 4, 0x1050)  # integer that looks like an address
        q = Quarantine()
        q.add(0x1000, 0x1100)
        assert sweep_memory(mem, q) == 0
        assert mem.read(0x8000, 4) == 0x1050

    def test_sweep_preserves_capability_bits(self):
        # Only the tag dies; the bit pattern stays (diagnosability).
        mem = TaggedMemory()
        victim = derived(0x1000, 0x100)
        store_cap(mem, 0x8000, victim)
        q = Quarantine()
        q.add(0x1000, 0x1100)
        sweep_memory(mem, q)
        raw, tag = mem.read_cap_raw(0x8000)
        assert not tag
        assert raw == victim.to_mem() & ((1 << 64) - 1)

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=0xFFFF).map(lambda x: x * 0x100),
        st.sampled_from([0x40, 0x80, 0x100])), min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_sweep_is_complete_and_precise(self, caps):
        mem = TaggedMemory()
        q = Quarantine()
        q.add(0x100000, 0x200000)
        expect_revoked = 0
        for slot, (base, length) in enumerate(caps):
            cap = derived(base, length)
            store_cap(mem, 0x800000 + 8 * slot, cap)
            if base < 0x200000 and base + length > 0x100000:
                expect_revoked += 1
        assert sweep_memory(mem, q) == expect_revoked
        for slot, (base, length) in enumerate(caps):
            _, tag = mem.read_cap_raw(0x800000 + 8 * slot)
            overlaps = base < 0x200000 and base + length > 0x100000
            assert tag == (not overlaps)


class TestRuntimeUseAfterFree:
    def test_use_after_free_traps_after_revocation(self):
        from repro.nocl import NoCLRuntime, i32, kernel, ptr
        from repro.simt import KernelAbort, SMConfig

        @kernel
        def stash(buf: ptr[i32], slots: ptr[i32]):
            # Store the buffer capability itself into memory... the DSL has
            # no pointer-to-pointer stores, so emulate a dangling use by
            # just reading the buffer after free+revoke instead.
            if threadIdx.x == 0 and blockIdx.x == 0:
                slots[0] = buf[0]

        rt = NoCLRuntime("purecap",
                         config=SMConfig.cheri_optimised(num_warps=1,
                                                         num_lanes=4))
        buf = rt.alloc(i32, 16)
        out = rt.alloc(i32, 4)
        rt.upload(buf, [7] * 16)
        # First use is fine.
        rt.launch(stash, 1, 4, [buf, out])
        assert rt.download(out)[0] == 7
        # Free + revoke: the *argument block* still holds the capability
        # from the previous launch; the sweep must kill it.
        rt.free(buf)
        revoked = rt.revoke()
        assert revoked >= 1
        # Launching again with the stale buffer: the runtime would re-derive
        # a fresh capability, so instead verify the stored one is dead.
        from repro.simt.config import ARG_BASE
        compiled = rt.compiled(stash)
        slot = next(s for s in compiled.arg_slots if s.name == "buf")
        _, tag = rt.sm.memory.read_cap_raw(ARG_BASE + slot.offset)
        assert not tag
