"""Unit and property tests for the CHERI Concentrate bounds codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cheri.concentrate import (
    ADDR_BITS,
    MAX_EXP,
    NULL_BOUNDS,
    crml,
    crrl,
    decode_bounds,
    encode_bounds,
    is_representable,
)

FULL = 1 << ADDR_BITS

addresses = st.integers(min_value=0, max_value=FULL - 1)
lengths = st.integers(min_value=0, max_value=FULL)


def regions():
    return st.tuples(addresses, lengths).map(
        lambda pair: (pair[0], min(pair[0] + pair[1], FULL))
    )


class TestEncodeDecodeBasics:
    def test_null_bounds_decode_to_empty_at_zero(self):
        assert decode_bounds(NULL_BOUNDS, 0) == (0, 0)

    def test_full_address_space_is_exact(self):
        bounds, exact, base, top = encode_bounds(0, FULL)
        assert exact
        assert (base, top) == (0, FULL)
        assert decode_bounds(bounds, 0) == (0, FULL)
        assert decode_bounds(bounds, FULL - 1) == (0, FULL)

    def test_small_region_is_exact(self):
        bounds, exact, base, top = encode_bounds(0x1234, 0x1234 + 63)
        assert exact
        assert bounds.ie == 0
        assert decode_bounds(bounds, 0x1234) == (0x1234, 0x1234 + 63)

    def test_boundary_length_63_is_ie0(self):
        bounds, exact, _, _ = encode_bounds(100, 163)
        assert bounds.ie == 0 and exact

    def test_boundary_length_64_uses_internal_exponent(self):
        bounds, exact, base, top = encode_bounds(0, 64)
        assert bounds.ie == 1
        assert exact
        assert decode_bounds(bounds, 0) == (0, 64)

    def test_unaligned_large_region_rounds_outward(self):
        req_base, req_top = 1001, 1001 + 1000
        bounds, exact, base, top = encode_bounds(req_base, req_top)
        assert not exact
        assert base <= req_base
        assert top >= req_top
        assert decode_bounds(bounds, req_base) == (base, top)

    def test_zero_length_region(self):
        bounds, exact, base, top = encode_bounds(0x8000, 0x8000)
        assert exact
        assert decode_bounds(bounds, 0x8000) == (0x8000, 0x8000)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            encode_bounds(10, 5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            encode_bounds(0, FULL + 1)

    def test_exponent_field_round_trips_large_exponents(self):
        # A half-address-space region needs a big exponent; make sure the
        # split E storage (low bits of B and T) reassembles correctly.
        bounds, _, base, top = encode_bounds(0, FULL // 2)
        assert decode_bounds(bounds, 0) == (base, top)
        bounds, _, base, top = encode_bounds(FULL // 2, FULL)
        assert decode_bounds(bounds, FULL // 2) == (base, top)

    def test_encoding_is_address_independent(self):
        # Two capabilities to the same region have identical metadata no
        # matter where their addresses point - the value-regularity property
        # the metadata register file exploits.
        b1, _, _, _ = encode_bounds(0x4000, 0x8000)
        b2, _, _, _ = encode_bounds(0x4000, 0x8000)
        assert b1 == b2


class TestDecodeWithinRegion:
    @given(regions(), st.data())
    @settings(max_examples=300)
    def test_any_in_bounds_address_decodes_same_bounds(self, region, data):
        req_base, req_top = region
        bounds, _, base, top = encode_bounds(req_base, req_top)
        hi = max(base, min(top, FULL) - 1)
        addr = data.draw(st.integers(min_value=base, max_value=hi))
        assert decode_bounds(bounds, addr) == (base, top)

    @given(regions())
    @settings(max_examples=300)
    def test_roundtrip_contains_requested_region(self, region):
        req_base, req_top = region
        bounds, exact, base, top = encode_bounds(req_base, req_top)
        assert base <= req_base
        assert top >= req_top
        if exact:
            assert (base, top) == (req_base, req_top)

    @given(regions())
    @settings(max_examples=300)
    def test_rounding_slack_is_bounded(self, region):
        # Concentrate loses at most one granule at each end.  The granule
        # is 2**(E+3) with L > 112 * 2**(E-1) after a worst-case exponent
        # bump, so total slack is below 2L/7 (and zero below 64 bytes).
        req_base, req_top = region
        _, _, base, top = encode_bounds(req_base, req_top)
        length = req_top - req_base
        slack = (req_base - base) + (top - req_top)
        if length < 64:
            assert slack == 0
        else:
            assert slack <= max(32, (2 * length) // 7)


class TestRepresentability:
    def test_in_bounds_moves_are_representable(self):
        bounds, _, base, top = encode_bounds(0x10000, 0x20000)
        assert is_representable(bounds, 0x10000, top - 1)
        assert is_representable(bounds, 0x10000, base)

    def test_one_past_the_end_is_representable(self):
        # C/C++ pointers may point one past the object (paper section 2.4).
        bounds, _, base, top = encode_bounds(0x10000, 0x10040)
        assert is_representable(bounds, 0x10000, top)

    def test_far_out_of_bounds_is_not_representable(self):
        bounds, _, base, top = encode_bounds(0x100000, 0x200000)
        assert not is_representable(bounds, 0x100000, 0x80000000)

    @given(regions(), addresses)
    @settings(max_examples=300)
    def test_representable_iff_decode_unchanged(self, region, new_addr):
        req_base, req_top = region
        bounds, _, base, top = encode_bounds(req_base, req_top)
        rep = is_representable(bounds, req_base, new_addr)
        same = decode_bounds(bounds, new_addr) == (base, top)
        assert rep == same


class TestCrrlCrml:
    @pytest.mark.parametrize("length", [0, 1, 63, 64, 65, 100, 1000, 4096,
                                        1 << 20, (1 << 20) + 3, FULL])
    def test_crrl_crml_consistency(self, length):
        rounded = crrl(length)
        mask = crml(length)
        assert rounded >= length
        # A CRAM-aligned base with a CRRL-rounded length is always exact.
        base = 0x40000000 & mask
        _, exact, actual_base, actual_top = encode_bounds(
            base, min(base + rounded, FULL)
        )
        if base + rounded <= FULL:
            assert exact, (length, rounded, hex(mask))

    def test_small_lengths_are_unchanged(self):
        for length in range(64):
            assert crrl(length) == length
            assert crml(length) == FULL - 1

    @given(lengths)
    @settings(max_examples=300)
    def test_crrl_idempotent_and_monotone(self, length):
        rounded = crrl(length)
        assert crrl(rounded) == rounded
        assert rounded >= length

    @given(lengths, st.integers(min_value=0, max_value=FULL - 1))
    @settings(max_examples=300)
    def test_aligned_base_plus_crrl_is_exact(self, length, base):
        mask = crml(length)
        rounded = crrl(length)
        aligned = base & mask
        if aligned + rounded > FULL:
            return
        _, exact, _, _ = encode_bounds(aligned, aligned + rounded)
        assert exact

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            crrl(FULL + 1)
        with pytest.raises(ValueError):
            crml(-1)


class TestExponentBump:
    def test_rounding_overflow_bumps_exponent(self):
        # Length just under a power of two with misaligned ends forces the
        # encoder's mantissa-overflow path (exponent bump).
        length = (1 << 20) - 1
        base = 5
        bounds, exact, actual_base, actual_top = encode_bounds(base, base + length)
        assert not exact
        assert actual_top - actual_base >= length
        assert decode_bounds(bounds, base) == (actual_base, actual_top)

    @given(st.integers(min_value=0, max_value=MAX_EXP),
           st.integers(min_value=8, max_value=15),
           st.integers(min_value=0, max_value=FULL - 1))
    @settings(max_examples=300)
    def test_canonical_mantissa_regions_decode_exactly(self, exp, mant8, base):
        # With an internal exponent the mantissa has 8-byte granularity
        # (its low 3 bits store E), so exact lengths are 8*k << exp with
        # the mantissa length in [64, 128).
        length = (mant8 * 8) << exp
        base &= ~((1 << (exp + 3)) - 1)
        if base + length > FULL:
            return
        bounds, exact, actual_base, actual_top = encode_bounds(base, base + length)
        assert exact
        assert decode_bounds(bounds, base) == (base, base + length)
