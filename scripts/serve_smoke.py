#!/usr/bin/env python
"""CI smoke test for the simulation service.

Starts ``repro serve``, submits a small benchmark grid and asserts the
streamed lifecycle reaches completion; then restarts the server on the
same disk cache, resubmits the identical grid and asserts every cell is
served as a cache hit without touching a worker; both server sessions
are drained cleanly (the drain must write a service manifest).

Exits non-zero on the first violated expectation.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--keep TMPDIR]
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.serve.client import ServeClient  # noqa: E402

GRID = dict(benchmarks=["VecAdd", "Reduce"], configs=["baseline"],
            overrides={"num_warps": 4, "num_lanes": 4})


def start_server(workdir):
    env = dict(os.environ)
    env["REPRO_SIMCACHE_DIR"] = os.path.join(workdir, "simcache")
    env["REPRO_MANIFEST_DIR"] = os.path.join(workdir, "manifests")
    env["PYTHONPATH"] = os.pathsep.join(
        [path for path in (sys.path[0], env.get("PYTHONPATH")) if path])
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        text=True)
    line = process.stdout.readline()
    match = re.search(r"listening on [\w.]+:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit("serve did not announce a port: %r" % line)
    return process, int(match.group(1))


def run_session(workdir, expect_cached):
    process, port = start_server(workdir)
    phase = "cached" if expect_cached else "fresh"
    try:
        with ServeClient(port=port, timeout=300.0) as client:
            events = []
            for message in client.submit_and_stream(stream=True, **GRID):
                if "event" in message:
                    events.append(message)
                    print("[%s] %s %s" % (phase, message["event"],
                                          message.get("label", "")))
        names = [message["event"] for message in events]
        terminal = [message for message in events
                    if message["event"] in ("done", "cached")]
        assert names[-1] == "grid_done", "stream must end with grid_done"
        assert len(terminal) == 2, "both grid cells must complete"
        assert all("payload" in message for message in terminal)
        assert all(message["payload"]["stats"]["cycles"] > 0
                   for message in terminal)
        if expect_cached:
            assert names.count("cached") == 2, \
                "restart must serve the grid from the disk cache, " \
                "got events %r" % names
        else:
            assert names.count("done") == 2, \
                "fresh submission must simulate, got events %r" % names
        with ServeClient(port=port, timeout=60.0) as client:
            exposition = client.metrics()["exposition"]
            for metric in ("serve_submissions_total", "serve_executed_total",
                           "serve_job_latency_seconds_bucket",
                           "serve_workers"):
                assert metric in exposition, \
                    "metrics exposition is missing %s" % metric
            print("[%s] metrics exposition: %d lines"
                  % (phase, len(exposition.splitlines())))
            reply = client.drain()
        assert reply["drained"] is True
        assert reply["manifest"] and os.path.exists(reply["manifest"]), \
            "drain must write the service manifest"
        stats = reply["stats"]
        if expect_cached:
            assert stats["executed"] == 0 and stats["cache_hits"] == 2, \
                "cached session ran %d job(s)" % stats["executed"]
        else:
            assert stats["executed"] == 2
        check_telemetry(reply["manifest"], phase,
                        expect_worker=not expect_cached)
        code = process.wait(timeout=30)
        assert code == 0, "server exited with %d" % code
        print("[%s] drained cleanly: executed=%d cache_hits=%d"
              % (phase, stats["executed"], stats["cache_hits"]))
    finally:
        if process.poll() is None:
            process.kill()


def check_telemetry(manifest_path, phase, expect_worker):
    """The drain manifest must point at telemetry sidecars, and the
    fresh session's trace must connect client -> scheduler -> worker
    under one trace id."""
    with open(manifest_path) as stream:
        manifest = json.load(stream)
    telemetry = manifest.get("telemetry") or {}
    for key in ("metrics_ndjson", "trace_ndjson", "perfetto_trace"):
        assert telemetry.get(key) and os.path.exists(telemetry[key]), \
            "manifest telemetry is missing %s" % key
    with open(telemetry["trace_ndjson"]) as stream:
        spans = [json.loads(line) for line in stream if line.strip()]
    traces = {}
    for span in spans:
        traces.setdefault(span["trace_id"], []).append(span)
    if expect_worker:
        connected = [
            trace for trace in traces.values()
            if {"serve.submit", "serve.job", "worker.execute"}
            <= {span["name"] for span in trace}
            and all(span.get("parent_id") is None
                    or span["parent_id"] in {s["span_id"] for s in trace}
                    for span in trace)
        ]
        assert connected, \
            "no connected client->scheduler->worker trace among %d " \
            "trace(s)" % len(traces)
        processes = {span["process"] for span in connected[0]}
        assert "client" in processes and "scheduler" in processes, \
            "connected trace is missing a process tier: %r" % processes
    print("[%s] telemetry sidecars ok: %d span(s), %d trace(s)"
          % (phase, len(spans), len(traces)))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep", metavar="TMPDIR", default=None,
                        help="use (and keep) this work directory")
    args = parser.parse_args()
    workdir = args.keep or tempfile.mkdtemp(prefix="repro-serve-smoke-")
    os.makedirs(workdir, exist_ok=True)
    try:
        run_session(workdir, expect_cached=False)
        run_session(workdir, expect_cached=True)
        print("serve smoke: OK")
        return 0
    finally:
        if not args.keep:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
