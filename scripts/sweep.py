#!/usr/bin/env python
"""Artifact-style sweep over the paper's three SIMTight configurations.

Mirrors the paper artifact's ``scripts/sweep.py`` (appendix A.5):

    python scripts/sweep.py test    # run the full suite per configuration
    python scripts/sweep.py bench   # write one .bench file per config

``test`` runs every Table 1 benchmark under Baseline, CHERI, and CHERI
(Optimised) and reports the artifact's "All tests passed" per
configuration.  ``bench`` additionally records per-benchmark performance
counters into ``results/<config>.bench``.
"""

import pathlib
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.benchsuite import ALL_BENCHMARKS          # noqa: E402
from repro.eval.runner import config_for             # noqa: E402
from repro.nocl import NoCLRuntime                   # noqa: E402

#: The artifact's three configurations (paper section 4.1).
CONFIGURATIONS = (
    ("Baseline", "baseline"),
    ("CHERI", "cheri"),
    ("CHERI (Optimised)", "cheri_opt"),
)


def run_configuration(label, config_name, record=None):
    print("=== %s ===" % label)
    failures = 0
    for bench in ALL_BENCHMARKS.values():
        mode, config = config_for(config_name)
        runtime = NoCLRuntime(mode, config=config)
        started = time.time()
        try:
            stats = bench.run(runtime)
        except Exception as exc:  # pragma: no cover - failure path
            failures += 1
            print("  %-12s FAILED: %s" % (bench.name, exc))
            continue
        elapsed = time.time() - started
        print("  %-12s ok   cycles=%-9d instrs=%-9d (%.1fs)"
              % (bench.name, stats.cycles, stats.instrs_issued, elapsed))
        if record is not None:
            record.append("%s cycles=%d instrs=%d ipc=%.3f dram_bytes=%d"
                          % (bench.name, stats.cycles, stats.instrs_issued,
                             stats.ipc, stats.dram_total_bytes))
    if failures:
        print("%d TESTS FAILED" % failures)
        return False
    print("All tests passed")
    return True


def main(argv):
    command = argv[1] if len(argv) > 1 else "test"
    if command not in ("test", "bench"):
        print(__doc__)
        return 2
    ok = True
    results_dir = REPO / "results"
    results_dir.mkdir(exist_ok=True)
    for label, config_name in CONFIGURATIONS:
        record = [] if command == "bench" else None
        ok &= run_configuration(label, config_name, record)
        if record is not None:
            path = results_dir / ("%s.bench" % config_name)
            record.append("All tests passed")
            path.write_text("\n".join(record) + "\n")
            print("  wrote %s" % path)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
