#!/usr/bin/env python
"""The optimizer's bounds-check gap: boundscheck mode at -O0 vs -O1.

    python scripts/opt_gap.py [--warps N] [--lanes N] [--scale N]

Runs every Table 1 benchmark in ``boundscheck`` mode (software
array-bounds checks, the paper's software point of comparison for CHERI
hardware checking) at both compiler opt levels, with a
:class:`repro.obs.BoundsCheckCounter` attached, and records per
benchmark:

- dynamic per-thread instructions executed,
- dynamic bounds checks executed (guard retires x lanes),
- cycles,

at -O0 and -O1 plus the relative deltas.  Writes
``results/opt_boundscheck_gap.txt`` (human-readable table) and
``results/opt_boundscheck_gap.json`` (machine-readable, including each
kernel's per-pass optimizer report).
"""

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.benchsuite import ALL_BENCHMARKS          # noqa: E402
from repro.nocl import NoCLRuntime                   # noqa: E402
from repro.obs import BoundsCheckCounter, attach, detach  # noqa: E402
from repro.simt import SMConfig                      # noqa: E402


def run_cell(bench, opt, warps, lanes, scale):
    config = SMConfig.baseline(num_warps=warps, num_lanes=lanes, opt=opt)
    rt = NoCLRuntime("boundscheck", config=config)
    counter = BoundsCheckCounter()
    attach(rt.sm, counter)
    try:
        bench.run(rt, scale=scale)
    finally:
        detach(rt.sm)
    stats = rt.stats
    reports = {program.name: program.opt_report
               for program in rt._compiled.values()
               if program.opt_report is not None}
    return {
        "thread_instrs": stats.thread_instrs,
        "cycles": stats.cycles,
        "checks_executed": counter.checks_executed,
        "static_check_sites": counter.static_sites,
        "opt_reports": reports or None,
    }


def pct(old, new):
    return 100.0 * (new - old) / old if old else 0.0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--warps", type=int, default=4)
    parser.add_argument("--lanes", type=int, default=4)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--out", default=str(REPO / "results"))
    args = parser.parse_args(argv)

    rows = []
    for name, bench in ALL_BENCHMARKS.items():
        o0 = run_cell(bench, 0, args.warps, args.lanes, args.scale)
        o1 = run_cell(bench, 1, args.warps, args.lanes, args.scale)
        rows.append({
            "benchmark": name,
            "o0": {k: v for k, v in o0.items() if k != "opt_reports"},
            "o1": {k: v for k, v in o1.items() if k != "opt_reports"},
            "opt_reports": o1["opt_reports"],
            "delta_pct": {
                "thread_instrs": round(pct(o0["thread_instrs"],
                                           o1["thread_instrs"]), 3),
                "cycles": round(pct(o0["cycles"], o1["cycles"]), 3),
                "checks_executed": round(pct(o0["checks_executed"],
                                             o1["checks_executed"]), 3),
            },
        })
        print("%-12s checks %8d -> %8d (%+6.1f%%)  instrs %+6.1f%%  "
              "cycles %+6.1f%%"
              % (name, o0["checks_executed"], o1["checks_executed"],
                 rows[-1]["delta_pct"]["checks_executed"],
                 rows[-1]["delta_pct"]["thread_instrs"],
                 rows[-1]["delta_pct"]["cycles"]))

    reduced = sum(1 for row in rows
                  if row["o1"]["checks_executed"]
                  < row["o0"]["checks_executed"])
    summary = {
        "mode": "boundscheck",
        "geometry": {"num_warps": args.warps, "num_lanes": args.lanes},
        "scale": args.scale,
        "benchmarks_with_fewer_dynamic_checks": reduced,
        "benchmarks_total": len(rows),
        "rows": rows,
    }

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / "opt_boundscheck_gap.json"
    with open(json_path, "w") as stream:
        json.dump(summary, stream, indent=1, sort_keys=True)
        stream.write("\n")

    lines = [
        "Software bounds-check gap: boundscheck mode, -O0 vs -O1",
        "(geometry %dx%d, scale %d; dynamic counts are per-thread)"
        % (args.warps, args.lanes, args.scale),
        "",
        "%-12s %22s %22s %22s" % ("benchmark", "bounds checks (O0->O1)",
                                  "thread instrs (O0->O1)",
                                  "cycles (O0->O1)"),
    ]
    for row in rows:
        lines.append(
            "%-12s %9d->%-9d%+5.1f%% %9d->%-9d%+5.1f%% "
            "%9d->%-9d%+5.1f%%"
            % (row["benchmark"],
               row["o0"]["checks_executed"], row["o1"]["checks_executed"],
               row["delta_pct"]["checks_executed"],
               row["o0"]["thread_instrs"], row["o1"]["thread_instrs"],
               row["delta_pct"]["thread_instrs"],
               row["o0"]["cycles"], row["o1"]["cycles"],
               row["delta_pct"]["cycles"]))
    lines.append("")
    lines.append("%d of %d benchmarks execute fewer dynamic bounds checks "
                 "at -O1" % (reduced, len(rows)))
    lines.append("")
    text_path = out_dir / "opt_boundscheck_gap.txt"
    text_path.write_text("\n".join(lines))
    print("\n%d of %d benchmarks execute fewer dynamic bounds checks "
          "at -O1" % (reduced, len(rows)))
    print("wrote %s and %s" % (text_path, json_path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
