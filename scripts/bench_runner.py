"""Measure runner wall-clock and write the BENCH_runner.json trajectory.

Measures, in this order:

1. ``cold_serial``   — ``run_suite("cheri_opt", scale=1, jobs=1)`` with the
   memo empty and the disk cache bypassed: pure simulation speed.
2. ``cold_parallel`` — the same suite from a fresh memo with the default
   job count (``os.cpu_count()``), disk cache still bypassed.
3. ``warm_disk``     — the same suite from a fresh memo with the disk
   cache enabled and populated by a prior run.
4. ``warm_memo``     — the same suite again in-process (memo hits only).

Results append to ``BENCH_runner.json`` in the repository root so the
performance trajectory of the simulator survives across commits.

Each record carries the execution backend, the NumPy version (the
vector backend's wide-SM path uses it) and a per-benchmark breakdown of
the cold serial phase, so regressions can be attributed.  Records are
always appended; a corrupt history file is preserved as ``.bak`` rather
than silently discarded.

Usage::

    PYTHONPATH=src python scripts/bench_runner.py [--config cheri_opt]
        [--scale 1] [--backend vector] [--label "short description"]
"""

import argparse
import json
import os
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT_PATH = os.path.join(ROOT, "BENCH_runner.json")


def _git_rev():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except Exception:
        return None


def _cpu_model():
    """The CPU model string (``/proc/cpuinfo`` where available)."""
    try:
        with open("/proc/cpuinfo") as stream:
            for line in stream:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    import platform
    return platform.processor() or platform.machine()


def host_provenance(numpy_version=None):
    """Where a record was measured: wall-clock numbers are only
    comparable across records from the same host, so the trend report
    (``repro obs report``) groups on this."""
    import platform
    return {
        "cpu_model": _cpu_model(),
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "numpy_version": numpy_version,
        "platform": platform.system(),
        "machine": platform.machine(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", default="cheri_opt")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--backend", default=None,
                        choices=("scalar", "vector", "jit"),
                        help="execution backend (default: the SMConfig "
                             "default)")
    parser.add_argument("--label", default=None,
                        help="free-form note stored with the record")
    args = parser.parse_args(argv)

    from repro.eval import runner

    overrides = {} if args.backend is None else {"backend": args.backend}
    _, config = runner.config_for(args.config, **overrides)
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None

    record = {
        "config": args.config,
        "scale": args.scale,
        "backend": config.backend,
        "numpy_version": numpy_version,
        "git_rev": _git_rev(),
        "cpu_count": os.cpu_count(),
        "host": host_provenance(numpy_version),
        "label": args.label,
    }

    # 1. cold serial: simulation speed only.
    runner.set_disk_cache(False)
    runner.clear_cache()
    runner.RUNNER_STATS.reset()
    start = time.perf_counter()
    results = runner.run_suite(args.config, scale=args.scale, jobs=1,
                               **overrides)
    cold_wall = time.perf_counter() - start
    # One-time codegen/warm-up cost (the jit backend's compile time) is
    # split out of the steady-state number: it is paid once per program
    # digest and amortised by the cross-launch code cache.
    breakdown = {}
    overhead_total = 0.0
    for name, result in results.items():
        meta = result.meta
        sim = meta.wall_seconds if meta else 0.0
        jit = getattr(meta, "jit", None) if meta else None
        overhead = jit.get("codegen_seconds", 0.0) if jit else 0.0
        overhead_total += overhead
        breakdown[name] = {
            "cold_serial_seconds": round(sim - overhead, 3),
            "first_launch_overhead_seconds": round(overhead, 3),
        }
    record["cold_serial_seconds"] = round(cold_wall - overhead_total, 3)
    record["first_launch_overhead_seconds"] = round(overhead_total, 3)
    record["cold_serial_breakdown"] = breakdown

    # 2. cold parallel (default job count; on a 1-CPU box this simply
    # repeats the serial path).
    runner.clear_cache()
    runner.RUNNER_STATS.reset()
    start = time.perf_counter()
    runner.run_suite(args.config, scale=args.scale, **overrides)
    record["cold_parallel_seconds"] = round(time.perf_counter() - start, 3)

    # 3. warm disk: populate, then read back from a fresh memo.
    runner.set_disk_cache(True)
    runner.clear_cache()
    runner.run_suite(args.config, scale=args.scale, jobs=1, **overrides)
    runner.clear_cache()
    runner.RUNNER_STATS.reset()
    start = time.perf_counter()
    runner.run_suite(args.config, scale=args.scale, **overrides)
    record["warm_disk_seconds"] = round(time.perf_counter() - start, 3)
    record["warm_disk_counters"] = runner.RUNNER_STATS.snapshot()

    # 4. warm memo.
    start = time.perf_counter()
    runner.run_suite(args.config, scale=args.scale, **overrides)
    record["warm_memo_seconds"] = round(time.perf_counter() - start, 3)

    history = []
    if os.path.exists(OUT_PATH):
        try:
            with open(OUT_PATH) as stream:
                history = json.load(stream)
            if not isinstance(history, list):
                raise ValueError("history is not a list")
        except (OSError, ValueError) as exc:
            # Never clobber an unreadable trajectory: keep the evidence
            # and start a fresh history alongside it.
            backup = OUT_PATH + ".bak"
            try:
                os.replace(OUT_PATH, backup)
                print("warning: %s was unreadable (%s); moved to %s"
                      % (OUT_PATH, exc, backup), file=sys.stderr)
            except OSError:
                pass
            history = []
    history.append(record)
    with open(OUT_PATH, "w") as stream:
        json.dump(history, stream, indent=2)
        stream.write("\n")
    print(json.dumps(record, indent=2))
    print("appended to", OUT_PATH)
    return 0


if __name__ == "__main__":
    sys.exit(main())
