"""cProfile harness for the simulator hot path.

Runs one benchmark/configuration under cProfile (bypassing every result
cache, so the simulation really executes) and prints the top cumulative
hot spots.  This is the tool that motivated the pipeline's decode-cached
dispatch and the register files' incremental occupancy counters; keep
using it before and after touching the issue loop.

Usage::

    PYTHONPATH=src python scripts/profile.py [BENCH] [CONFIG] [--top N]
    PYTHONPATH=src python scripts/profile.py --suite [CONFIG]

Defaults: MatMul under cheri_opt, top 20 by cumulative time.
"""

import argparse
import os
import sys

# This file shadows the stdlib ``profile`` module (which cProfile imports)
# when scripts/ leads sys.path; drop that entry before importing cProfile.
_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path = [p for p in sys.path
            if os.path.abspath(p or os.getcwd()) != _HERE]
sys.modules.pop("profile", None)

import cProfile  # noqa: E402
import pstats  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmark", nargs="?", default="MatMul")
    parser.add_argument("config", nargs="?", default="cheri_opt")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the profile to print (default 20)")
    parser.add_argument("--suite", action="store_true",
                        help="profile the whole suite instead of one "
                             "benchmark")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key")
    parser.add_argument("--scale", type=int, default=1)
    args = parser.parse_args(argv)

    from repro.eval import runner

    # Profile real simulation work, not cache lookups.
    runner.set_disk_cache(False)
    runner.clear_cache()

    if args.suite:
        target = "runner.run_suite(%r, scale=%d, jobs=1)" % (args.config,
                                                             args.scale)
    else:
        target = "runner.run_benchmark(%r, %r, scale=%d)" % (
            args.benchmark, args.config, args.scale)
    print("profiling:", target)
    profiler = cProfile.Profile()
    profiler.enable()
    if args.suite:
        runner.run_suite(args.config, scale=args.scale, jobs=1)
    else:
        runner.run_benchmark(args.benchmark, args.config, scale=args.scale)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
