"""Shared fixtures for the table/figure regeneration harness.

Simulation results are memoised process-wide (see repro.eval.runner), so
the suite of experiments shares benchmark runs.  Each experiment prints
the paper's rows/series and also writes them under ``results/``.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session", autouse=True)
def prewarm_runner_caches():
    """Fill the runner's memo/disk caches before any experiment runs.

    Cold simulations fan out across worker processes and land in the
    persistent disk cache, so each individual experiment below is a pure
    cache hit no matter which one pytest happens to schedule first.
    """
    from repro.eval.experiments import prewarm
    prewarm()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Print an experiment's table and persist it to results/<name>.txt.

    Pass ``data=`` to additionally write the raw rows as
    ``results/<name>.json`` (via :func:`repro.eval.report.write_structured`)
    so plots and diffs never have to re-parse the text tables.
    """

    def _record(name, text, data=None):
        print()
        print(text)
        (results_dir / ("%s.txt" % name)).write_text(text + "\n")
        if data is not None:
            from repro.eval.report import write_structured
            write_structured(results_dir, name, data)

    return _record
