"""Figure 11: number of registers per thread used to hold capabilities."""

from repro.eval.experiments import fig11_capability_registers
from repro.eval.report import render_fig11


def test_fig11_capability_registers(benchmark, record_result):
    series = benchmark.pedantic(fig11_capability_registers,
                                rounds=1, iterations=1)
    record_result("fig11_cap_registers", render_fig11(series),
                  data=series)
    counts = dict(series)
    # The paper's key observation: no benchmark uses more than half of the
    # 32 registers to hold capabilities, so a half-size metadata SRF is
    # enough (7% storage overhead instead of 14%).
    for name, count in counts.items():
        assert 0 < count <= 16, (name, count)
