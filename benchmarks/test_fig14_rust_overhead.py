"""Figure 14: software bounds checking (the like-for-like Rust port)."""

from repro.eval.experiments import (
    fig13_execution_overhead,
    fig14_boundscheck_overhead,
)
from repro.eval.report import render_overheads


def test_fig14_boundscheck_overhead(benchmark, record_result):
    rows, mean = benchmark.pedantic(fig14_boundscheck_overhead,
                                    rounds=1, iterations=1)
    record_result(
        "fig14_rust_overhead",
        render_overheads("Figure 14: software bounds-checking overhead "
                         "vs Baseline (Rust-style per-access checks)",
                         rows, mean),
        data={"rows": rows, "geomean": mean})
    # The paper's comparison: software bounds checking is expensive in
    # low-level GPU code (34% geomean for checks alone) - an order of
    # magnitude above CHERI's hardware-enforced 1.6%.
    assert mean > 0.10, mean
    _, cheri_mean = fig13_execution_overhead()
    assert mean > 4 * max(cheri_mean, 0.005), (mean, cheri_mean)
