"""Figure 12: DRAM bandwidth usage with and without CHERI."""

from repro.eval.experiments import fig12_dram_traffic
from repro.eval.report import render_fig12


def test_fig12_dram_traffic(benchmark, record_result):
    rows = benchmark.pedantic(fig12_dram_traffic, rounds=1, iterations=1)
    record_result("fig12_dram_traffic", render_fig12(rows), data=rows)
    # The paper's finding: CHERI does not significantly affect DRAM
    # bandwidth usage (inlined kernels, tag cache hierarchical zeroes,
    # compressed metadata avoiding spills).
    for row in rows:
        assert 0.9 <= row["ratio"] <= 1.25, row
    mean_ratio = sum(r["ratio"] for r in rows) / len(rows)
    assert mean_ratio < 1.1
