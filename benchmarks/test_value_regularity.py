"""Background experiment: value regularity of register writes (section 2.2).

The paper's whole design rests on two empirical facts: SIMT workloads
write many uniform/affine vectors (Collange et al.: ~15% uniform, ~28%
affine), and capability metadata is dramatically more regular than data.
This bench measures both on the suite.
"""

from repro.eval.experiments import value_regularity


def render(rows):
    lines = ["Value regularity of register-file writes",
             "  %-12s %10s %10s %14s %14s" % (
                 "benchmark", "gp unif", "gp affine", "meta unif",
                 "meta p-null")]
    for row in rows:
        lines.append("  %-12s %9.1f%% %9.1f%% %13.1f%% %13.1f%%" % (
            row["benchmark"], 100 * row["gp_uniform"],
            100 * row["gp_affine"], 100 * row["meta_uniform"],
            100 * row["meta_partial_null"]))
    return "\n".join(lines)


def test_value_regularity(benchmark, record_result):
    rows = benchmark.pedantic(value_regularity, rounds=1, iterations=1)
    record_result("value_regularity", render(rows))
    for row in rows:
        data_regular = row["gp_uniform"] + row["gp_affine"]
        meta_regular = row["meta_uniform"] + row["meta_partial_null"]
        # Substantial data regularity (the premise of compression);
        # MotionEst is the least regular at ~18%.
        assert data_regular > 0.15, row
        # ...and metadata nearly total regularity (the paper's key claim).
        assert meta_regular > 0.95, row
        assert meta_regular >= data_regular - 1e-9, row
    mean_uniform = sum(r["gp_uniform"] for r in rows) / len(rows)
    # Same ballpark as Collange et al.'s 15% uniform writes.
    assert 0.05 < mean_uniform < 0.9
