"""Figure 10: proportion of registers stored as vectors in the VRF."""

from repro.eval.experiments import fig10_vrf_residency
from repro.eval.report import render_fig10


def test_fig10_vrf_residency(benchmark, record_result):
    rows = benchmark.pedantic(fig10_vrf_residency, rounds=1, iterations=1)
    record_result("fig10_vrf_occupancy", render_fig10(rows), data=rows)
    by_name = {row["benchmark"]: row for row in rows}
    # Capability metadata is far more compressible than data: with the
    # NVO, essentially no benchmark except BlkStencil keeps metadata in
    # the VRF (paper section 4.3).
    for row in rows:
        if row["benchmark"] == "BlkStencil":
            continue
        assert row["meta_nvo"] <= 0.02, row
    # BlkStencil's pointer select creates genuine metadata divergence.
    assert by_name["BlkStencil"]["meta_nvo"] > 0.0
    # The NVO only ever helps.
    for row in rows:
        assert row["meta_nvo"] <= row["meta_no_nvo"] + 1e-9, row
    # Data registers are much less compressible than metadata overall.
    mean_gp = sum(r["gp"] for r in rows) / len(rows)
    mean_meta = sum(r["meta_nvo"] for r in rows) / len(rows)
    assert mean_meta < mean_gp
