"""Ablation benches: what each section-3 technique buys.

DESIGN.md calls out the design choices of the optimised configuration;
this harness disables them one at a time and measures the run-time,
logic-area, and storage consequences.
"""

from repro.eval.ablations import (
    hardware_ablation,
    render_ablation,
    runtime_ablation,
)


def test_ablations(benchmark, record_result):
    runtime_rows = benchmark.pedantic(runtime_ablation,
                                      rounds=1, iterations=1)
    hardware_rows = hardware_ablation()
    record_result("ablations", render_ablation(runtime_rows, hardware_rows))

    # --- hardware deltas (paper-geometry area model) ----------------------
    # Moving bounds logic back into every lane costs hundreds of ALMs per
    # lane (Figure 7's setBounds alone is 287).
    assert hardware_rows["lane_bounds"]["alms_delta"] > 32 * 400
    # Dynamic PC metadata restores per-warp PCC comparators and per-thread
    # PCC storage.
    assert hardware_rows["dynamic_pcc"]["alms_delta"] > 0
    assert hardware_rows["dynamic_pcc"]["storage_delta_kb"] > 0
    # A private metadata VRF duplicates slot storage the shared VRF avoids.
    assert hardware_rows["split_vrf"]["storage_delta_kb"] > 0
    # A dual-ported metadata SRF doubles its SRAM.
    assert hardware_rows["dual_port_srf"]["storage_delta_kb"] > 0
    # Dropping compression entirely is the big one: back to ~double RF
    # storage (the 103% overhead the paper starts from).
    assert hardware_rows["no_metadata_compression"]["storage_delta_kb"] > 1500

    # --- runtime deltas ------------------------------------------------------
    # None of the hardware-saving techniques costs meaningful performance:
    # that is the paper's whole argument.  Each ablation's speed effect is
    # within a small band around zero.
    for name, row in runtime_rows.items():
        assert abs(row["overhead"]) < 0.05, (name, row["overhead"])
    # The SFU slow path can only *help* the ablated design (per-lane bounds
    # logic has no serialisation), so lane_bounds must not be slower than
    # the SFU design by more than noise.
    assert runtime_rows["lane_bounds"]["overhead"] < 0.02
