"""Figure 13: execution-time overhead of optimised CHERI vs baseline."""

from repro.eval.experiments import fig13_execution_overhead
from repro.eval.report import render_overheads


def test_fig13_execution_overhead(benchmark, record_result):
    rows, mean = benchmark.pedantic(fig13_execution_overhead,
                                    rounds=1, iterations=1)
    record_result(
        "fig13_exec_overhead",
        render_overheads("Figure 13: CHERI (Optimised) execution-time "
                         "overhead vs Baseline", rows, mean),
        data={"rows": rows, "geomean": mean})
    overheads = dict(rows)
    # Headline result: small single-digit geomean overhead (paper: 1.6%).
    assert -0.02 <= mean <= 0.08, mean
    # Every benchmark individually stays low...
    for name, overhead in rows:
        assert overhead < 0.25, (name, overhead)
    # ...and BlkStencil is the outlier (metadata divergence + CSC stalls).
    worst = max(overheads, key=overheads.get)
    assert worst == "BlkStencil" or overheads["BlkStencil"] >= mean, \
        overheads
