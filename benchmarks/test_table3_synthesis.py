"""Table 3: synthesis results for the three SM configurations."""

from repro.eval.experiments import table3_synthesis
from repro.eval.report import render_table3


def test_table3_synthesis(benchmark, record_result):
    rows = benchmark(table3_synthesis)
    record_result("table3_synthesis", render_table3(rows), data=rows)
    (b_name, b_alms, _, b_bram, b_fmax), \
        (c_name, c_alms, _, c_bram, c_fmax), \
        (o_name, o_alms, _, o_bram, o_fmax) = rows
    # Area ordering and the ~44% overhead reduction.
    assert b_alms < o_alms < c_alms
    reduction = 1.0 - (o_alms - b_alms) / (c_alms - b_alms)
    assert 0.40 <= reduction <= 0.48, reduction
    # The optimised per-lane overhead is comparable to (but slightly
    # larger than) one 32-bit multiplier (567 ALMs) per vector lane.
    from repro.area.model import MULTIPLIER_ALMS
    per_lane = (o_alms - b_alms) / 32
    assert MULTIPLIER_ALMS < per_lane < 2 * MULTIPLIER_ALMS
    # The BRAM overhead is largely eliminated by metadata compression:
    # unoptimised CHERI roughly doubles storage; optimised adds ~10%.
    assert c_bram > 1.8 * b_bram
    assert o_bram < 1.15 * b_bram
    # Fmax essentially unchanged.
    assert abs(c_fmax - b_fmax) <= 2 and abs(o_fmax - b_fmax) <= 2
