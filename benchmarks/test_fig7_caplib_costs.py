"""Figure 7: CheriCapLib function costs (and functional spot checks)."""

from repro.area.model import MULTIPLIER_ALMS
from repro.cheri import concentrate
from repro.eval.experiments import fig7_caplib_costs
from repro.eval.report import render_fig7


def _exercise_caplib():
    """Run every CheriCapLib-equivalent function once (functional check)."""
    bounds, exact, base, top = concentrate.encode_bounds(0x1000, 0x2000)
    assert exact
    assert concentrate.decode_bounds(bounds, 0x1000) == (base, top)
    assert concentrate.is_representable(bounds, 0x1000, 0x1ff0)
    assert concentrate.crrl(0x1001) >= 0x1001
    assert concentrate.crml(0x1001) != 0
    return fig7_caplib_costs()


def test_fig7_caplib_costs(benchmark, record_result):
    costs = benchmark(_exercise_caplib)
    record_result("fig7_caplib_costs", render_fig7(costs))
    # The headline relation of Figure 7: checking an access against
    # partially-decompressed bounds is far cheaper than decompressing
    # (getBase/getTop) and comparing.
    assert costs["isAccessInBounds"] < costs["getBase"] + costs["getTop"]
    # setBounds is the expensive one - the motivation for the SFU slow path.
    assert costs["setBounds"] == max(costs.values())
    # The whole fast path costs less than one 32-bit multiplier.
    fast_path = (costs["fromMem"] + costs["toMem"] + costs["setAddr"]
                 + costs["isAccessInBounds"])
    assert fast_path < MULTIPLIER_ALMS
