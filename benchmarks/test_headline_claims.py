"""The abstract's headline numbers, measured end to end."""

from repro.eval.experiments import headline_summary


def test_headline_claims(benchmark, record_result):
    summary = benchmark.pedantic(headline_summary, rounds=1, iterations=1)
    lines = ["Headline claims (paper abstract) vs this reproduction:"]
    lines.append("  register-file storage overhead: paper 14%%  -> %.1f%%"
                 % (100 * summary["rf_storage_overhead"]))
    lines.append("  ... with half-size metadata SRF: paper 7%%  -> %.1f%%"
                 % (100 * summary["rf_storage_overhead_halved_srf"]))
    lines.append("  logic-area overhead reduction:  paper 44%% -> %.1f%%"
                 % (100 * summary["area_overhead_reduction"]))
    lines.append("  execution-time overhead:        paper 1.6%% -> %.2f%%"
                 % (100 * summary["execution_overhead"]))
    lines.append("  software bounds-check overhead: paper 34%% -> %.1f%%"
                 % (100 * summary["boundscheck_overhead"]))
    record_result("headline_claims", "\n".join(lines))
    assert 0.08 <= summary["rf_storage_overhead"] <= 0.20
    assert 0.40 <= summary["area_overhead_reduction"] <= 0.48
    assert summary["execution_overhead"] < 0.08
    assert summary["boundscheck_overhead"] > 0.10
