"""Figure 6: execution frequency of CHERI instructions on GPU workloads."""

from repro.eval.experiments import fig6_cheri_instruction_frequency
from repro.eval.report import render_fig6


def test_fig6_cheri_instruction_frequency(benchmark, record_result):
    series = benchmark.pedantic(fig6_cheri_instruction_frequency,
                                rounds=1, iterations=1)
    record_result("fig6_cheri_instr_freq", render_fig6(series),
                  data=series)
    freq = dict(series)
    # Shape checks against the paper's histogram: capability loads/stores
    # and pointer arithmetic dominate; get/set-bounds are rare (that is
    # what justifies the SFU slow path).
    assert freq, "CHERI instructions must execute under purecap"
    hot = {"CLW", "CSW", "CINCOFFSET", "CINCOFFSETIMM", "CLB", "CLBU"}
    hottest = series[0][0]
    assert hottest in hot
    bounds_ops = sum(freq.get(name, 0.0)
                     for name in ("CSETBOUNDS", "CSETBOUNDSIMM",
                                  "CSETBOUNDSEXACT", "CGETBASE", "CGETLEN"))
    assert bounds_ops < 0.01, "bounds manipulation must be off the hot path"
    # CSC (store capability) is infrequent -- the premise of the
    # one-read-port metadata SRF (paper reports about 2%).
    assert freq.get("CSC", 0.0) < 0.05
