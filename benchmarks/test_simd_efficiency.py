"""Background experiment: SIMD lane utilisation under divergence.

Not a paper figure, but the control-flow-regularity premise of section
2.1 made measurable: convergent kernels keep every vector lane busy;
data-dependent control flow (VecGCD's per-element Euclid loops, SPMV's
irregular row lengths) wastes lanes.
"""

from repro.eval.experiments import simd_efficiency


def render(rows):
    lines = ["SIMD lane utilisation (fraction of lanes active per issue)"]
    for name, eff in rows:
        lines.append("  %-12s %6.1f%%  %s" % (name, 100 * eff,
                                              "#" * int(40 * eff)))
    return "\n".join(lines)


def test_simd_efficiency(benchmark, record_result):
    rows = benchmark.pedantic(simd_efficiency, rounds=1, iterations=1)
    record_result("simd_efficiency", render(rows))
    eff = dict(rows)
    # Structured, convergent kernels run essentially full warps.
    for name in ("VecAdd", "Transpose", "MatMul", "Histogram"):
        assert eff[name] > 0.9, (name, eff[name])
    # Divergent kernels measurably waste lanes.
    assert eff["VecGCD"] < 0.9
    assert eff["VecGCD"] < eff["VecAdd"]
    # Everything still does useful work.
    for name, value in rows:
        assert value > 0.3, (name, value)
