"""Table 2: register-file compression vs VRF size in the baseline."""

from repro.eval.experiments import table2_rf_compression
from repro.eval.report import render_table2


def test_table2_rf_compression(benchmark, record_result):
    rows = benchmark.pedantic(table2_rf_compression, rounds=1, iterations=1)
    record_result("table2_rf_compression", render_table2(rows), data=rows)
    half, three_eighths, quarter, eighth, sixteenth = rows
    # Storage shrinks with the VRF fraction; the paper's 3/8 point saves
    # roughly half of the register-file storage (ratio ~0.45).
    assert half["storage_kb"] > three_eighths["storage_kb"] > \
        quarter["storage_kb"] > eighth["storage_kb"]
    assert 0.35 < three_eighths["compress_ratio"] < 0.55
    # The crossover shape: generous VRFs are essentially free...
    assert half["cycle_overhead"] < 0.02
    assert three_eighths["cycle_overhead"] < 0.02
    assert quarter["cycle_overhead"] < 0.03
    # ...then a cliff appears once live uncompressible vectors no longer
    # fit: spill traffic floods DRAM and cycles climb (the paper's 1/4
    # row; here at 1/16 because this compiler's register pressure is
    # lower than Clang 13's).
    assert sixteenth["cycle_overhead"] > quarter["cycle_overhead"]
    assert sixteenth["mem_access_overhead"] > 0.10
    assert sixteenth["mem_access_overhead"] > \
        three_eighths["mem_access_overhead"]
