"""The scalar (reference) execution backend.

Per-lane interpretation of every instruction: the per-lane scalar loops
formerly inlined in ``pipeline.py`` live here, behind the
:class:`~repro.simt.backend.base.Backend` interface.  This backend is the
semantic reference the vectorized backend is checked against, so it stays
deliberately simple: no run-ahead scheduling, no operand-form tricks.

Dispatch is decode-cached: at launch every static instruction is decoded
once into a ``(handler, aux)`` pair — the handler is a bound method for
the instruction's execution group and ``aux`` carries the pre-resolved
per-lane function and immediates — so the issue loop never re-classifies
an opcode.
"""

from repro.cheri.capability import Capability, Perms
from repro.isa.instructions import (
    ACCESS_WIDTH,
    AMO_OPS,
    BRANCH_OPS,
    CHERI_SLOW_OPS,
    LOAD_OPS,
    SFU_OPS,
    STORE_OPS,
    Op,
)
from repro.cheri import concentrate
from repro.simt import alu
from repro.simt.backend.base import Backend
from repro.simt.coalescer import atomic_conflicts
from repro.cheri.exceptions import (
    PermissionViolation,
    SealViolation,
    TagViolation,
)

MASK32 = 0xFFFFFFFF
_FAR_FUTURE = 1 << 62

_INT_R = {
    Op.ADD: "add", Op.SUB: "sub", Op.SLL: "sll", Op.SRL: "srl",
    Op.SRA: "sra", Op.XOR: "xor", Op.OR: "or", Op.AND: "and",
    Op.SLT: "slt", Op.SLTU: "sltu", Op.MUL: "mul", Op.MULH: "mulh",
    Op.MULHSU: "mulhsu", Op.MULHU: "mulhu", Op.DIV: "div", Op.DIVU: "divu",
    Op.REM: "rem", Op.REMU: "remu",
}
_INT_I = {
    Op.ADDI: "add", Op.SLTI: "slt", Op.SLTIU: "sltu", Op.XORI: "xor",
    Op.ORI: "or", Op.ANDI: "and", Op.SLLI: "sll", Op.SRLI: "srl",
    Op.SRAI: "sra",
}
_FLOAT_RR = {
    Op.FADD_S: "fadd", Op.FSUB_S: "fsub", Op.FMUL_S: "fmul",
    Op.FDIV_S: "fdiv", Op.FMIN_S: "fmin", Op.FMAX_S: "fmax",
    Op.FEQ_S: "feq", Op.FLT_S: "flt", Op.FLE_S: "fle",
    Op.FSGNJ_S: "fsgnj", Op.FSGNJN_S: "fsgnjn", Op.FSGNJX_S: "fsgnjx",
}
_FLOAT_UNARY = {
    Op.FSQRT_S: "fsqrt", Op.FCVT_W_S: "fcvt.w.s", Op.FCVT_WU_S: "fcvt.wu.s",
    Op.FCVT_S_W: "fcvt.s.w", Op.FCVT_S_WU: "fcvt.s.wu",
}
_AMO_FN = {
    Op.AMOADD_W: lambda old, v: alu.to_u32(old + v),
    Op.CAMOADD_W: lambda old, v: alu.to_u32(old + v),
    Op.AMOSWAP_W: lambda old, v: v,
    Op.AMOAND_W: lambda old, v: old & v,
    Op.AMOOR_W: lambda old, v: old | v,
    Op.AMOXOR_W: lambda old, v: old ^ v,
    Op.AMOMIN_W: lambda old, v: old if alu.to_signed(old) <= alu.to_signed(v) else v,
    Op.AMOMAX_W: lambda old, v: old if alu.to_signed(old) >= alu.to_signed(v) else v,
    Op.AMOMINU_W: lambda old, v: min(old, v),
    Op.AMOMAXU_W: lambda old, v: max(old, v),
}

# Decode-time dispatch tables: op -> per-lane function.  Resolved once at
# module import so the handlers call straight through with no name lookup.
_INT_R_FN = {op: alu.INT_FNS[name] for op, name in _INT_R.items()}
_INT_I_FN = {op: alu.INT_FNS[name] for op, name in _INT_I.items()}
_FLOAT_RR_FN = {op: alu.FLOAT_FNS[name] for op, name in _FLOAT_RR.items()}
_FLOAT_UNARY_FN = {op: alu.FLOAT_FNS[name] for op, name in _FLOAT_UNARY.items()}
_BRANCH_FN = {op: alu.BRANCH_FNS[op.name.lower()] for op in BRANCH_OPS}

_SIGNED_LOADS = (Op.LB, Op.LH, Op.CLB, Op.CLH)

_CGET_FN = {
    Op.CGETTAG: lambda cap: int(cap.tag),
    Op.CGETPERM: lambda cap: int(cap.perms),
    Op.CGETBASE: lambda cap: cap.base,
    Op.CGETLEN: lambda cap: min(cap.length, MASK32),
    Op.CGETADDR: lambda cap: cap.addr,
    Op.CGETTYPE: lambda cap: cap.otype,
    Op.CGETSEALED: lambda cap: int(cap.is_sealed),
    Op.CGETFLAGS: lambda cap: cap.flags,
}
_CRR_FN = {
    # CRRL is an XLEN-wide result: crrl(0xFFFFFFFF) = 2^32 truncates to 0
    # (the CHERI-RISC-V CRoundRepresentableLength semantics), it does not
    # saturate.  CGetLen above is the one that saturates.
    Op.CRRL: lambda v: concentrate.crrl(v) & MASK32,
    Op.CRAM: concentrate.crml,
}
_CMOD1_FN = {
    Op.CCLEARTAG: lambda cap: cap.with_tag_cleared(),
    Op.CMOVE: lambda cap: cap,
    Op.CSEALENTRY: lambda cap: cap.seal_entry(),
}
_CMOD2_FN = {
    Op.CANDPERM: lambda cap, v: cap.and_perms(v),
    Op.CSETFLAGS: lambda cap, v: cap.set_flags(v),
    Op.CSETADDR: lambda cap, v: cap.set_addr(v),
    Op.CINCOFFSET: lambda cap, v: cap.inc_addr(v),
    Op.CSETBOUNDS: lambda cap, v: cap.set_bounds(cap.addr, v)[0],
    Op.CSETBOUNDSEXACT: lambda cap, v: cap.set_bounds(cap.addr, v, exact=True)[0],
}
_CIMM_FN = {
    Op.CINCOFFSETIMM: lambda cap, imm: cap.inc_addr(imm),
    Op.CSETBOUNDSIMM: lambda cap, imm: cap.set_bounds(cap.addr, imm)[0],
}


class ScalarBackend(Backend):
    """Reference per-lane interpreter (see module docstring)."""

    name = "scalar"

    # ------------------------------------------------------------------
    # Scheduler loop
    # ------------------------------------------------------------------

    def run(self, max_cycles):
        """Barrel-schedule the launched program to completion.

        Returns the final cycle count.  On a capability fault or software
        trap, records the precise abort cycle in ``self.fault_cycle`` and
        re-raises for the SM to wrap into a KernelAbort.
        """
        from repro.cheri.exceptions import CapabilityFault
        from repro.simt.pipeline import KernelAbort, SoftwareTrap

        sm = self.sm
        cycle = 0
        rotation = 0
        warps = sm.warps
        count = len(warps)
        live = count
        issue = self.issue
        probes = sm.probes
        try:
            while live:
                picked = None
                for i in range(count):
                    warp = warps[(rotation + i) % count]
                    if not warp.done and not warp.in_barrier and \
                            warp.ready_at <= cycle:
                        picked = warp
                        break
                if picked is None:
                    next_ready = min(
                        (w.ready_at for w in warps
                         if not w.done and not w.in_barrier),
                        default=None,
                    )
                    if next_ready is None:
                        raise KernelAbort("deadlock: all warps blocked on a "
                                          "barrier", cycle)
                    advanced = max(cycle + 1, next_ready)
                    if probes is not None:
                        probes.idle(cycle, advanced)
                    cycle = advanced
                    continue
                rotation = picked.index + 1
                cycle = issue(picked, cycle)
                if picked.done:
                    live -= 1
                if cycle > max_cycles:
                    raise KernelAbort("cycle limit exceeded", cycle)
        except (CapabilityFault, SoftwareTrap):
            if self.fault_cycle is None:
                self.fault_cycle = cycle
            raise
        return cycle

    # ------------------------------------------------------------------
    # Issue: one instruction for one warp
    # ------------------------------------------------------------------

    def issue(self, warp, cycle):
        sm = self.sm
        cfg = sm.cfg
        stats = sm.stats
        pc, lanes = sm._select_threads(warp)
        if pc is None:
            warp.done = True
            warp.ready_at = _FAR_FUTURE
            return cycle
        index = pc >> 2
        if not 0 <= index < len(sm.program):
            from repro.simt.pipeline import SoftwareTrap
            raise SoftwareTrap("instruction fetch from unmapped pc 0x%x" % pc,
                               thread=warp.index * cfg.num_lanes + lanes[0],
                               pc=pc)
        if cfg.enable_cheri:
            sm._check_pcc(warp, pc, lanes)
        instr = sm.program[index]

        # Per-issue accumulators, consumed by the SM helpers.
        sm._cycle = cycle
        sm._mem_ready = cycle
        sm._extra_issue = 0
        sm._gp_vec_touch = False
        sm._meta_vec_touch = False

        probes = sm.probes
        if probes is not None:
            pre_stalls = (stats.stall_shared_vrf, stats.stall_csc_operand,
                          stats.stall_bank_conflict,
                          stats.stall_atomic_serial)

        if lanes is sm._all_lanes:
            mask = sm._full_mask
        else:
            mask = 0
            for lane in lanes:
                mask |= 1 << lane

        handler, aux = sm._decoded[index]
        handler(warp, instr, pc, lanes, mask, aux)

        # Shared-VRF serialisation: accessing an uncompressed data vector
        # and an uncompressed metadata vector in one instruction costs an
        # extra cycle (section 3.2).
        if cfg.shared_vrf and sm._gp_vec_touch and sm._meta_vec_touch:
            sm._extra_issue += 1
            stats.stall_shared_vrf += 1
        # One-read-port metadata SRF: CSC needs both cs1 and cs2 metadata,
        # costing an extra operand-fetch cycle (section 3.2).
        if cfg.metadata_srf_single_port and instr.op is Op.CSC:
            sm._extra_issue += 1
            stats.stall_csc_operand += 1

        stats.instrs_issued += 1
        stats.thread_instrs += len(lanes)
        stats.opcode_counts[instr.op] += 1
        if sm.trace is not None:
            sm.trace.record(cycle, warp.index, pc, instr, lanes)

        completion = max(cycle + cfg.pipeline_depth, sm._mem_ready)
        warp.ready_at = completion
        if all(warp.halted):
            warp.done = True
            warp.ready_at = _FAR_FUTURE

        # VRF occupancy integral (for Figure 10): resident vectors during
        # the issue slot(s) just consumed.
        width = 1 + sm._extra_issue
        stats.gp_vrf_occupancy_integral += sm.gp.resident_vectors * width
        if sm.meta is not None:
            stats.meta_vrf_occupancy_integral += \
                sm.meta.resident_vectors * width
        if probes is not None:
            probes.issue(
                cycle, warp.index, pc, instr, len(lanes), width, completion,
                (stats.stall_shared_vrf - pre_stalls[0],
                 stats.stall_csc_operand - pre_stalls[1],
                 stats.stall_bank_conflict - pre_stalls[2],
                 stats.stall_atomic_serial - pre_stalls[3]))
            # Retirement: architectural effects are fully applied at this
            # point, so lockstep checkers can diff state per instruction.
            probes.retire(cycle, warp, pc, instr, lanes)
        return cycle + width

    # ------------------------------------------------------------------
    # Decode: one (handler, aux) pair per static instruction
    # ------------------------------------------------------------------

    def decode(self, instr):
        """Classify ``instr`` once; returns (bound handler, aux data).

        ``aux`` packs everything the handler needs that is knowable at
        decode time: the per-lane ALU/branch/AMO function, masked
        immediates, SFU routing flags.  The CHERI slow-path flag is baked
        in here because the configuration is fixed per SM instance.
        """
        op = instr.op
        fn = _INT_R_FN.get(op)
        if fn is not None:
            return self._h_int_r, (fn, op in SFU_OPS)
        fn = _INT_I_FN.get(op)
        if fn is not None:
            return self._h_int_i, (fn, (instr.imm or 0) & MASK32)
        fn = _BRANCH_FN.get(op)
        if fn is not None:
            return self._h_branch, (fn, instr.imm)
        if op in LOAD_OPS or op in STORE_OPS or op in AMO_OPS:
            return self._h_memory, (
                ACCESS_WIDTH[op],
                op.name.startswith("C"),
                op in STORE_OPS,
                op in AMO_OPS,
                _AMO_FN.get(op),
                op in _SIGNED_LOADS,
                instr.imm or 0,
            )
        fn = _FLOAT_RR_FN.get(op)
        if fn is not None:
            return self._h_float_rr, (fn, op in SFU_OPS)
        fn = _FLOAT_UNARY_FN.get(op)
        if fn is not None:
            return self._h_float_unary, (fn, op in SFU_OPS)
        slow = self.sm.cfg.sfu_cheri_slow_path and op in CHERI_SLOW_OPS
        fn = _CGET_FN.get(op)
        if fn is not None:
            return self._h_cget, (fn, slow)
        fn = _CRR_FN.get(op)
        if fn is not None:
            return self._h_crr, (fn, slow)
        fn = _CMOD1_FN.get(op)
        if fn is not None:
            return self._h_cmod1, fn
        fn = _CMOD2_FN.get(op)
        if fn is not None:
            return self._h_cmod2, (fn, slow)
        fn = _CIMM_FN.get(op)
        if fn is not None:
            return self._h_cimm, (fn, instr.imm or 0, slow)
        if op is Op.LUI:
            return self._h_lui, (instr.imm << 12) & MASK32
        if op is Op.AUIPC:
            return self._h_auipc, instr.imm << 12
        if op is Op.AUIPCC:
            return self._h_auipcc, instr.imm << 12
        if op in (Op.JAL, Op.CJAL):
            return self._h_jal, (instr.imm, op is Op.CJAL)
        if op is Op.JALR:
            return self._h_jalr, instr.imm or 0
        if op is Op.CJALR:
            return self._h_cjalr, instr.imm or 0
        if op is Op.CSPECIALRW:
            return self._h_cspecialrw, None
        if op is Op.BARRIER:
            return self._h_barrier, None
        if op is Op.HALT:
            return self._h_halt, None
        if op in (Op.TRAP, Op.EBREAK, Op.ECALL):
            return self._h_trap, None
        if op is Op.FENCE:
            return self._h_fence, None
        return self._h_unimplemented, None

    # ------------------------------------------------------------------
    # Execution (functional semantics + per-op timing hooks)
    # ------------------------------------------------------------------

    # --- integer ALU -------------------------------------------------

    def _h_int_r(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, is_sfu = aux
        a = sm._read_gp(warp, instr.rs1)
        b = sm._read_gp(warp, instr.rs2)
        out = [0] * sm._num_lanes
        for lane in lanes:
            out[lane] = fn(a[lane], b[lane])
        sm._write_rd(warp, instr.rd, out, mask)
        if is_sfu:
            sm._sfu_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    def _h_int_i(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, imm = aux
        a = sm._read_gp(warp, instr.rs1)
        out = [0] * sm._num_lanes
        for lane in lanes:
            out[lane] = fn(a[lane], imm)
        sm._write_rd(warp, instr.rd, out, mask)
        sm._advance(warp, lanes, pc + 4)

    def _h_lui(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        sm._write_rd(warp, instr.rd, [aux] * sm._num_lanes, mask)
        sm._advance(warp, lanes, pc + 4)

    def _h_auipc(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        value = (pc + aux) & MASK32
        sm._write_rd(warp, instr.rd, [value] * sm._num_lanes, mask)
        sm._advance(warp, lanes, pc + 4)

    def _h_auipcc(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        # rd := PCC with address pc + imm<<12 (a capability result).
        addr = (pc + aux) & MASK32
        caps = []
        for lane in sm._lane_range:
            meta = warp.pcc_meta[lane]
            pcc = Capability.from_meta_word(meta & MASK32, pc,
                                            bool(meta >> 32))
            caps.append(pcc.set_addr(addr))
        sm._write_rd(warp, instr.rd, [addr] * sm._num_lanes, mask,
                     caps=caps)
        sm._advance(warp, lanes, pc + 4)

    # --- branches and jumps -------------------------------------------

    def _h_branch(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, imm = aux
        a = sm._read_gp(warp, instr.rs1)
        b = sm._read_gp(warp, instr.rs2)
        taken_pc = (pc + imm) & MASK32
        next_pc = pc + 4
        pcs = warp.pcs
        for lane in lanes:
            pcs[lane] = taken_pc if fn(a[lane], b[lane]) else next_pc

    def _h_jal(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        imm, is_cjal = aux
        next_pc = pc + 4
        if instr.rd:
            if is_cjal:
                caps = []
                for lane in sm._lane_range:
                    meta = warp.pcc_meta[lane]
                    link = Capability.from_meta_word(
                        meta & MASK32, next_pc, bool(meta >> 32))
                    caps.append(link.seal_entry())
                sm._write_rd(warp, instr.rd,
                             [next_pc] * sm._num_lanes, mask, caps=caps)
            else:
                sm._write_rd(warp, instr.rd,
                             [next_pc] * sm._num_lanes, mask)
        target = (pc + imm) & MASK32
        sm._advance(warp, lanes, target)

    def _h_jalr(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        imm = aux
        a = sm._read_gp(warp, instr.rs1)
        next_pc = pc + 4
        targets = [0] * sm._num_lanes
        for lane in lanes:
            targets[lane] = (a[lane] + imm) & ~1 & MASK32
        if instr.rd:
            sm._write_rd(warp, instr.rd, [next_pc] * sm._num_lanes, mask)
        pcs = warp.pcs
        for lane in lanes:
            pcs[lane] = targets[lane]

    def _h_cjalr(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        imm = aux
        cfg = sm.cfg
        caps = sm._read_caps(warp, instr.rs1)
        next_pc = pc + 4
        targets = [0] * sm._num_lanes
        link_caps = []
        for lane in sm._lane_range:
            meta = warp.pcc_meta[lane]
            link = Capability.from_meta_word(meta & MASK32, next_pc,
                                             bool(meta >> 32))
            link_caps.append(link.seal_entry())
        for lane in lanes:
            cap = caps[lane]
            thread = warp.index * cfg.num_lanes + lane
            if not cap.tag:
                raise TagViolation("CJALR via untagged capability",
                                   thread=thread, pc=pc)
            if cap.is_sealed and not cap.is_sentry:
                raise SealViolation("CJALR via sealed capability",
                                    thread=thread, pc=pc)
            if Perms.EXECUTE not in cap.perms:
                raise PermissionViolation("CJALR target lacks execute",
                                          thread=thread, pc=pc)
            target_cap = cap.unseal_entry() if cap.is_sentry else cap
            target = (target_cap.addr + imm) & ~1 & MASK32
            targets[lane] = target
            warp.pcc_meta[lane] = (target_cap.meta_word()
                                   | (int(target_cap.tag) << 32))
        if instr.rd:
            sm._write_rd(warp, instr.rd, [next_pc] * sm._num_lanes,
                         mask, caps=link_caps)
        pcs = warp.pcs
        for lane in lanes:
            pcs[lane] = targets[lane]

    # --- floating point -------------------------------------------------

    def _h_float_rr(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, is_sfu = aux
        a = sm._read_gp(warp, instr.rs1)
        b = sm._read_gp(warp, instr.rs2)
        out = [0] * sm._num_lanes
        for lane in lanes:
            out[lane] = fn(a[lane], b[lane])
        sm._write_rd(warp, instr.rd, out, mask)
        if is_sfu:
            sm._sfu_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    def _h_float_unary(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, is_sfu = aux
        a = sm._read_gp(warp, instr.rs1)
        out = [0] * sm._num_lanes
        for lane in lanes:
            out[lane] = fn(a[lane])
        sm._write_rd(warp, instr.rd, out, mask)
        if is_sfu:
            sm._sfu_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    # --- memory ----------------------------------------------------------

    def _h_memory(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        width, is_cap_addressed, is_store, is_amo, amo_fn, signed, imm = aux

        if is_cap_addressed:
            caps = sm._read_caps(warp, instr.rs1)
            bases = None
        else:
            caps = None
            bases = sm._read_gp(warp, instr.rs1)
        self._memory_core(warp, instr, pc, lanes, mask, aux, caps, bases)

    def _memory_core(self, warp, instr, pc, lanes, mask, aux, caps, bases):
        """Memory semantics after operand fetch (shared with the vector
        backend's fallback paths, which read operands as forms first)."""
        sm = self.sm
        cfg = sm.cfg
        op = instr.op
        width, is_cap_addressed, is_store, is_amo, amo_fn, signed, imm = aux

        if is_cap_addressed:
            accesses = [(lane, (caps[lane].addr + imm) & MASK32, width)
                        for lane in lanes]
        else:
            accesses = [(lane, (bases[lane] + imm) & MASK32, width)
                        for lane in lanes]

        # Capability checks (one per active lane).
        if is_cap_addressed:
            check = sm._check_cap
            num_lanes = cfg.num_lanes
            for lane, addr, _ in accesses:
                thread = warp.index * num_lanes + lane
                if is_amo:
                    check(caps[lane], addr, width, Perms.LOAD,
                          thread, pc, op.name)
                    check(caps[lane], addr, width, Perms.STORE,
                          thread, pc, op.name)
                elif is_store:
                    check(caps[lane], addr, width, Perms.STORE,
                          thread, pc, op.name)
                else:
                    check(caps[lane], addr, width, Perms.LOAD,
                          thread, pc, op.name)

        if is_amo:
            values = sm._read_gp(warp, instr.rs2)
            out = [0] * sm._num_lanes
            memory = sm.memory
            # Same-address atomics serialise deterministically in lane order.
            for lane, addr, _ in accesses:
                old = memory.read(addr, 4)
                memory.write(addr, 4, amo_fn(old, values[lane]))
                out[lane] = old
            conflicts = atomic_conflicts([a for _, a, _ in accesses])
            sm._extra_issue += conflicts
            sm.stats.stall_atomic_serial += conflicts
            sm._write_rd(warp, instr.rd, out, mask)
            sm._memory_access(op, accesses, warp, is_write=True)
            sm._advance(warp, lanes, pc + 4)
            return

        if is_store:
            if op is Op.CSC:
                store_caps = sm._read_caps(warp, instr.rs2)
                for lane, addr, _ in accesses:
                    thread = warp.index * cfg.num_lanes + lane
                    cap2 = store_caps[lane]
                    if cap2.tag and Perms.STORE_CAP not in caps[lane].perms:
                        raise PermissionViolation(
                            "CSC lacks STORE_CAP permission",
                            address=addr, thread=thread, pc=pc)
                    sm.memory.write_cap_raw(addr, cap2.to_mem()
                                            & ((1 << 64) - 1), cap2.tag)
            else:
                values = sm._read_gp(warp, instr.rs2)
                memory = sm.memory
                value_mask = (1 << (8 * width)) - 1
                for lane, addr, _ in accesses:
                    memory.write(addr, width, values[lane] & value_mask)
            sm._memory_access(op, accesses, warp, is_write=True)
            sm._advance(warp, lanes, pc + 4)
            return

        # Loads.
        if op is Op.CLC:
            out = [0] * sm._num_lanes
            metas = [None] * sm._num_lanes
            for lane, addr, _ in accesses:
                raw, tag = sm.memory.read_cap_raw(addr)
                if tag and Perms.LOAD_CAP not in caps[lane].perms:
                    tag = False  # lacking LOAD_CAP strips the loaded tag
                loaded = Capability.from_mem(raw | (int(tag) << 64))
                out[lane] = loaded.addr
                metas[lane] = loaded
            sm._write_rd(warp, instr.rd, out, mask, caps=metas)
        else:
            out = [0] * sm._num_lanes
            memory = sm.memory
            for lane, addr, _ in accesses:
                out[lane] = memory.read(addr, width, signed) & MASK32
            sm._write_rd(warp, instr.rd, out, mask)
        sm._memory_access(op, accesses, warp, is_write=False)
        sm._advance(warp, lanes, pc + 4)

    # --- CHERI non-memory --------------------------------------------------

    def _h_cget(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, slow = aux
        caps = sm._read_caps(warp, instr.rs1)
        self._cget_core(warp, instr, pc, lanes, mask, fn, slow, caps)

    def _cget_core(self, warp, instr, pc, lanes, mask, fn, slow, caps):
        sm = self.sm
        out = [0] * sm._num_lanes
        for lane in lanes:
            out[lane] = fn(caps[lane])
        sm._write_rd(warp, instr.rd, out, mask)
        if slow:
            sm._sfu_cheri_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    def _h_crr(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, slow = aux
        a = sm._read_gp(warp, instr.rs1)
        out = [0] * sm._num_lanes
        for lane in lanes:
            out[lane] = fn(a[lane])
        sm._write_rd(warp, instr.rd, out, mask)
        if slow:
            sm._sfu_cheri_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    def _h_cmod1(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn = aux
        caps = sm._read_caps(warp, instr.rs1)
        self._cmod1_core(warp, instr, pc, lanes, mask, fn, caps)

    def _cmod1_core(self, warp, instr, pc, lanes, mask, fn, caps):
        sm = self.sm
        out = [0] * sm._num_lanes
        result = [None] * sm._num_lanes
        for lane in lanes:
            cap = fn(caps[lane])
            out[lane] = cap.addr
            result[lane] = cap
        sm._write_rd(warp, instr.rd, out, mask, caps=result)
        sm._advance(warp, lanes, pc + 4)

    def _h_cmod2(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, slow = aux
        caps = sm._read_caps(warp, instr.rs1)
        b = sm._read_gp(warp, instr.rs2)
        self._cmod2_core(warp, instr, pc, lanes, mask, fn, slow, caps, b)

    def _cmod2_core(self, warp, instr, pc, lanes, mask, fn, slow, caps, b):
        sm = self.sm
        out = [0] * sm._num_lanes
        result = [None] * sm._num_lanes
        for lane in lanes:
            cap = fn(caps[lane], b[lane])
            out[lane] = cap.addr
            result[lane] = cap
        sm._write_rd(warp, instr.rd, out, mask, caps=result)
        if slow:
            sm._sfu_cheri_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    def _h_cimm(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, imm, slow = aux
        caps = sm._read_caps(warp, instr.rs1)
        self._cimm_core(warp, instr, pc, lanes, mask, fn, imm, slow, caps)

    def _cimm_core(self, warp, instr, pc, lanes, mask, fn, imm, slow, caps):
        sm = self.sm
        out = [0] * sm._num_lanes
        result = [None] * sm._num_lanes
        for lane in lanes:
            cap = fn(caps[lane], imm)
            out[lane] = cap.addr
            result[lane] = cap
        sm._write_rd(warp, instr.rd, out, mask, caps=result)
        if slow:
            sm._sfu_cheri_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    def _h_cspecialrw(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        # Only reading the PCC special register is supported.
        out = [0] * sm._num_lanes
        result = [None] * sm._num_lanes
        for lane in lanes:
            meta = warp.pcc_meta[lane]
            pcc = Capability.from_meta_word(meta & MASK32, pc,
                                            bool(meta >> 32))
            out[lane] = pc
            result[lane] = pcc
        sm._write_rd(warp, instr.rd, out, mask, caps=result)
        sm._advance(warp, lanes, pc + 4)

    # --- SIMT / system -------------------------------------------------------

    def _h_barrier(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        sm._advance(warp, lanes, pc + 4)
        sm._enter_barrier(warp)

    def _h_halt(self, warp, instr, pc, lanes, mask, aux):
        halted = warp.halted
        for lane in lanes:
            halted[lane] = True

    def _h_trap(self, warp, instr, pc, lanes, mask, aux):
        from repro.simt.pipeline import SoftwareTrap
        thread = warp.index * self.sm.cfg.num_lanes + lanes[0]
        raise SoftwareTrap(
            "software trap (%s)%s" % (
                instr.op.name.lower(),
                "" if not instr.comment else ": " + instr.comment),
            thread=thread, pc=pc)

    def _h_fence(self, warp, instr, pc, lanes, mask, aux):
        self.sm._advance(warp, lanes, pc + 4)

    def _h_unimplemented(self, warp, instr, pc, lanes, mask, aux):
        from repro.simt.pipeline import SoftwareTrap
        raise SoftwareTrap("unimplemented op %s" % instr.op, pc=pc)
