"""The trace-JIT execution tier: codegen fused closures for hot regions.

Layered on the lane-vectorized backend, this tier goes one step further
than pre-decoded dispatch: when a straight-line region crosses the hot
threshold, it *generates Python source* specialized to the region's
decoded instructions and ``compile()``/``exec``-utes it once.

What the generated code buys over the vectorized handlers:

- **constants inlined** — register numbers, immediates, lane counts,
  pipeline depth and the full-warp mask are literals; the per-issue aux
  tuple unpack, dispatch-table lookups and guard cascades disappear;
- **checks hoisted or batched** — each step's operand-pattern guards are
  reduced to the shapes the region actually produces: a *pure* arm for
  compact uniform/affine forms (one evaluation, one capability
  *k*-window decode per warp) and a *lane* arm for resident vectors,
  with the generic vectorized handler kept as a per-step fallback so
  any other shape replays the reference semantics exactly;
- **stats updates coalesced** — "pure" steps (width-1, no memory/SFU or
  stall traffic) account with a single cycle bump, skipping the
  per-step pipeline-state resets the generic driver needs.

The region compiles to one **convoy frame** ``c<K>`` per step: the step
body plus the scheduler bookkeeping (cycle/width accounting, ready-at,
step-queue advance) fused into one call.  Two drivers dispatch them:

- :meth:`JITBackend._convoy_run` — when every runnable warp sits inside
  the same region, the JIT replays the barrel schedule itself (exact
  pick order, exact cycles) without the generic loop's per-step
  dispatch;
- :meth:`JITBackend._run_region` — a solo warp drains a region
  back-to-back through the same frames, replacing the generic
  run-ahead driver.

Keeping the module to one artefact per step (rather than also emitting
standalone step closures and an unrolled region driver) keeps
``compile()`` time — the dominant codegen cost — proportional to what
actually runs hot.

Compiled code objects are cached keyed by ``(program digest, region
start)`` so recompilation survives re-launches of the same kernel; a
per-step signature (op fields plus handler/aux function identities)
guards the cache against monkeypatched dispatch tables.  Launch-scoped
objects (instruction objects, handlers, aux tuples) are re-bound by
re-running the cached module's ``_make`` hook, never by regenerating
source.

Every fast arm only commits after all checks pass and falls back to the
generic vectorized handler otherwise — operand reads up to that point
are side-effect-free dict peeks, so the fallback is an exact replay.
Faulting lanes therefore bail out of a compiled region with the same
fault PC, kind and statistics as the interpreter.  This is enforced by
``tests/simt/test_jit.py``, the full-suite scalar-vs-JIT equivalence
sweep and ``repro lockstep --backend jit``.

An annotated (abbreviated) example frame for ``ADDI x9, x9, 1`` at
pc 0x8, step 1 of a hot region on an 8-lane SM::

    def c1(warp, rq, cycle, icounts):
        wk = warp.index << 8
        fast = 0
        e1 = gpe_get(wk | 9)            # peek the compact operand form
        if e1 is None:
            e1 = NULL
        if type(e1) is _S:              # uniform/affine: stay symbolic
            wrf(warp, 9, _S((e1.base + 1) & 4294967295, e1.stride))
            fast = 1
        if fast:                        # width-1, no stalls: accounting
            warp.pcs[:] = N1            #   collapses to one cycle bump
            warp.ready_at = cycle + 6
            icounts[2] += 1
            stats.thread_instrs += 8
            rq[1] = 2                   # advance the region step queue
            return cycle + 1
        sm._cycle = cycle               # otherwise: exact step_quiet
        sm._mem_ready = cycle           #   replay — resets, lane arm or
        ...                             #   vectorized handler fallback,
        return cycle + width            #   stall/width accounting

Dump the full generated source with ``--jit-dump-dir`` on the run/bench
CLIs for debugging.
"""

import hashlib
import time

from repro.cheri.exceptions import CapabilityFault
from repro.isa.instructions import Op
from repro.simt.backend.vector import (
    MASK32,
    VectorBackend,
    _FAR_FUTURE,
    _ADD,
    _FN_CCLEARTAG,
    _FN_CGETADDR,
    _FN_CINCOFFSET,
    _FN_CINCOFFSETIMM,
    _FN_CMOVE,
    _FN_CSETADDR,
    _P_LOAD,
    _P_STORE,
    _SYM_RR,
)
from repro.simt.regfile.compressed import (
    _NULL_SCALAR,
    _Scalar,
    _Spilled,
    _Vector,
)

#: Word-sized plain/capability loads and stores the memory fast arm
#: transcribes (sub-word, capability-width and AMO ops stay generic).
_MEM_ARM_OPS = frozenset((Op.LW, Op.SW, Op.CLW, Op.CSW))

_M32 = "4294967295"
_LIM = "4294967296"

from repro.simt.alu import (  # noqa: E402  (grouped with the tables below)
    _f_fadd,
    _f_fmul,
    _f_fsub,
    _int_add,
    _int_and,
    _int_mul,
    _int_or,
    _int_sll,
    _int_sltu,
    _int_srl,
    _int_sub,
    _int_xor,
    _pack_arith,
    bits_to_f32,
    f32_to_bits,
)

#: Per-lane fns whose bodies are inlined into the lane comprehension,
#: saving one Python call per lane.  Each template is the alu fn's body
#: verbatim over the ``{x}``/``{y}`` operand expressions (``btf`` is
#: ``bits_to_f32`` and ``fpk`` is ``_pack_arith`` — binary32 rounding
#: plus NaN canonicalization, exactly like the wrapped fns).
_INLINE_RR = {
    _int_add: "({x} + {y}) & " + _M32,
    _int_sub: "({x} - {y}) & " + _M32,
    _int_sll: "({x} << ({y} & 31)) & " + _M32,
    _int_srl: "({x} & " + _M32 + ") >> ({y} & 31)",
    _int_xor: "({x} ^ {y}) & " + _M32,
    _int_or: "({x} | {y}) & " + _M32,
    _int_and: "({x} & {y}) & " + _M32,
    _int_sltu: "(1 if ({x} & " + _M32 + ") < ({y} & " + _M32 + ") else 0)",
    _int_mul: "({x} * {y}) & " + _M32,
    _f_fadd: "fpk(btf({x}) + btf({y}))",
    _f_fsub: "fpk(btf({x}) - btf({y}))",
    _f_fmul: "fpk(btf({x}) * btf({y}))",
}


class _Arm(object):
    """One step's specialized fast paths.

    ``pure_lines`` handle compact (uniform/affine) operand forms through
    ``write_form`` only — no memory traffic, no stall flags, width 1 —
    so callers may account them with a coalesced single-cycle frame.
    ``vec_lines`` handle lane-resident operands; they need the per-step
    pipeline-state resets done first and the full accounting after
    (spills, stall flags and memory timing are all possible).  Either
    tier may be None.  Both set ``fast = 1`` on success and must be
    side-effect-free until that commit point; ``vec_lines`` may assume
    ``pure_lines``' operand reads (``e1``/``e2``) are in scope when both
    tiers exist.
    """

    __slots__ = ("pure_lines", "vec_lines", "binds")

    def __init__(self, pure_lines, vec_lines, binds):
        self.pure_lines = pure_lines
        self.vec_lines = vec_lines
        self.binds = binds      # launch-independent name -> value binds


class _RegionCodegen(object):
    """Generates the source module for one region.

    The output is deterministic for a fixed (config, program, region):
    arm selection keys off instruction fields and dispatch-function
    identities only, and all emitted constants derive from the frozen SM
    config, so the golden tests can pin the generated source.
    """

    def __init__(self, backend, index, steps, lanes=None, mask=None):
        sm = backend.sm
        self.backend = backend
        self.index = index
        self.steps = steps
        self.nl = sm._num_lanes
        self.full_mask = sm._full_mask
        self.depth = sm.cfg.pipeline_depth
        self.shared_vrf = sm.cfg.shared_vrf
        self.single_port = sm.cfg.metadata_srf_single_port
        self.has_meta = sm.meta is not None
        self.gp_pool = getattr(sm.gp, "pool", None) is not None
        self.meta_pool = (self.has_meta and
                          getattr(sm.meta, "pool", None) is not None)
        #: Masked variant state: ``mask_lanes`` is the ascending active
        #: lane list of one mask class (None = the full-warp module).
        #: A masked module uses the handlers' partial-mask semantics —
        #: merge writes through ``wrd``/``adv`` instead of full-warp
        #: form writes — and separate RC counter slots, so full-mask
        #: codegen is byte-identical to what it was without masking.
        self.mask_lanes = list(lanes) if lanes is not None else None
        if lanes is not None:
            self.mask = mask
            self.active = len(self.mask_lanes)
            self.rc_calls, self.rc_steps, self.rc_miss = 4, 5, 6
        else:
            self.mask = self.full_mask
            self.active = self.nl
            self.rc_calls, self.rc_steps, self.rc_miss = 0, 1, 2
        self.plan = []          # per-step launch-independent binds
        self.arms = []          # per-step _Arm or None

    # -- per-step arm selection ---------------------------------------

    def _read_gp(self, lines, var, reg):
        if reg == 0:
            lines.append("%s = NULL" % var)
            return
        lines.append("%s = gpe_get(wk | %d)" % (var, reg))
        lines.append("if %s is None:" % var)
        lines.append("    %s = NULL" % var)

    def _read_meta(self, lines, var, reg):
        if reg == 0:
            lines.append("%s = NULL" % var)
            return
        lines.append("%s = me_get(wk | %d)" % (var, reg))
        lines.append("if %s is None:" % var)
        lines.append("    %s = NULL" % var)

    def _lanes_of(self, lines, tvar, evar, avar):
        """Expand one already-read operand form into a lane list bound
        to ``avar`` (None when the form needs the reference path: a
        spilled entry's reload is costed, so the handler owns it)."""
        lines.append("%s = type(%s)" % (tvar, evar))
        lines.append("if %s is _V:" % tvar)
        lines.append("    sm._gp_vec_touch = True")
        lines.append("    %s = %s.values" % (avar, evar))
        lines.append("elif %s is list:" % tvar)
        lines.append("    %s = %s" % (avar, evar))
        lines.append("elif %s is _S:" % tvar)
        lines.append("    %s = %s.expand(%d, %s)" % (avar, evar, self.nl,
                                                     _M32))
        lines.append("else:")
        lines.append("    %s = None" % avar)

    def _plan_arm(self, k, step):
        pc, instr, handler, aux, _is_csc, op = step
        fn_name = getattr(handler, "__func__", handler).__name__
        prefix = "_arm" if self.mask_lanes is None else "_marm"
        method = getattr(self, prefix + fn_name, None)
        if method is None:
            return None
        return method(k, pc, instr, aux)

    def _arm_v_int_i(self, k, pc, instr, aux):
        fn, imm = aux
        rd = instr.rd or 0
        pure = []
        binds = {}
        if instr.rs1 == 0:
            # Constant-folded: the uniform path's single evaluation.
            cst = _Scalar(fn(0, imm) & MASK32, 0)
            binds["CST%d" % k] = cst
            if rd:
                pure.append("wrf(warp, %d, CST%d)" % (rd, k))
            pure.append("fast = 1")
            return _Arm(pure, None, binds)
        self._read_gp(pure, "e1", instr.rs1)
        if fn is _ADD:
            pure.append("if type(e1) is _S:")
            pure.append("    wrf(warp, %d, _S((e1.base + %d) & %s, "
                        "e1.stride))" % (rd, imm, _M32))
            pure.append("    fast = 1")
        elif fn in _SYM_RR:
            binds["SYM%d" % k] = _SYM_RR[fn]
            pure.append("if type(e1) is _S:")
            pure.append("    if e1.stride == 0:")
            pure.append("        wrf(warp, %d, _S(FN%d(e1.base, %d) & %s, "
                        "0))" % (rd, k, imm, _M32))
            pure.append("        fast = 1")
            pure.append("    else:")
            pure.append("        out = SYM%d(e1.base, e1.stride, %d, 0, %d)"
                        % (k, imm, self.nl))
            pure.append("        if out is not None:")
            pure.append("            wrf(warp, %d, out)" % rd)
            pure.append("            fast = 1")
        else:
            pure.append("if type(e1) is _S and e1.stride == 0:")
            pure.append("    wrf(warp, %d, _S(FN%d(e1.base, %d) & %s, 0))"
                        % (rd, k, imm, _M32))
            pure.append("    fast = 1")
        binds["FN%d" % k] = fn
        tpl = _INLINE_RR.get(fn)
        if tpl is not None:
            lane = tpl.format(x="x", y="(%d)" % imm)
        else:
            lane = "FN%d(x, %d)" % (k, imm)
        vec = []
        self._lanes_of(vec, "t1", "e1", "a")
        vec.append("if a is not None:")
        vec.append("    wrd(warp, %d, [%s for x in a], %d)"
                   % (rd, lane, self.full_mask))
        vec.append("    fast = 1")
        return _Arm(pure, vec, binds)

    def _arm_v_int_r(self, k, pc, instr, aux):
        fn, is_sfu = aux
        if is_sfu:
            return None
        rd = instr.rd or 0
        pure = []
        binds = {"FN%d" % k: fn}
        self._read_gp(pure, "e1", instr.rs1)
        self._read_gp(pure, "e2", instr.rs2)
        pure.append("if type(e1) is _S and type(e2) is _S:")
        pure.append("    if e1.stride == 0 and e2.stride == 0:")
        pure.append("        wrf(warp, %d, _S(FN%d(e1.base, e2.base) & %s, "
                    "0))" % (rd, k, _M32))
        pure.append("        fast = 1")
        if fn in _SYM_RR:
            binds["SYM%d" % k] = _SYM_RR[fn]
            pure.append("    else:")
            pure.append("        out = SYM%d(e1.base, e1.stride, e2.base, "
                        "e2.stride, %d)" % (k, self.nl))
            pure.append("        if out is not None:")
            pure.append("            wrf(warp, %d, out)" % rd)
            pure.append("            fast = 1")
        return _Arm(pure, self._vec_rr(k, rd, fn), binds)

    def _vec_rr(self, k, rd, fn=None):
        """Lane tier for a two-source op: both operands expanded, the
        per-lane fn (inlined when its body is in ``_INLINE_RR``) zipped
        across, full-mask write."""
        tpl = _INLINE_RR.get(fn)
        if tpl is not None:
            lane = tpl.format(x="x", y="y")
        else:
            lane = "FN%d(x, y)" % k
        vec = []
        self._lanes_of(vec, "t1", "e1", "a")
        vec.append("if a is not None:")
        sub = []
        self._lanes_of(sub, "t2", "e2", "b")
        sub.append("if b is not None:")
        sub.append("    wrd(warp, %d, [%s for x, y in zip(a, b)], "
                   "%d)" % (rd, lane, self.full_mask))
        sub.append("    fast = 1")
        vec += ["    " + line for line in sub]
        return vec

    # -- masked (partial-warp) arms -----------------------------------
    #
    # A masked arm transcribes the vectorized handler's *own*
    # partial-mask path for compact ``_S`` operand forms, with the
    # active lane subset unrolled as literal assignments: the masked
    # merge write (``wrd``) and the per-lane PC advance (``adv``) are
    # the very calls the handler makes, so the commit is bit-exact.
    # Lane-resident (_V/list) and spilled operands stay on the handler
    # fallback, exactly like the full-mask pure tier.

    def _marm_v_int_i(self, k, pc, instr, aux):
        fn, imm = aux
        rd = instr.rd or 0
        lines = []
        binds = {"FN%d" % k: fn}
        self._read_gp(lines, "e1", instr.rs1)
        lines.append("if type(e1) is _S:")
        lines.append("    if e1.stride == 0:")
        lines.append("        wrd(warp, %d, [FN%d(e1.base, %d)] * %d, %d)"
                     % (rd, k, imm, self.nl, self.mask))
        lines.append("    else:")
        lines.append("        b = e1.base")
        lines.append("        s = e1.stride")
        lines.append("        v = [0] * %d" % self.nl)
        tpl = _INLINE_RR.get(fn)
        for lane in self.mask_lanes:
            x = "((b + %d * s) & %s)" % (lane, _M32)
            expr = (tpl.format(x=x, y="(%d)" % imm) if tpl is not None
                    else "FN%d(%s, %d)" % (k, x, imm))
            lines.append("        v[%d] = %s" % (lane, expr))
        lines.append("        wrd(warp, %d, v, %d)" % (rd, self.mask))
        lines.append("    fast = 1")
        return _Arm(None, lines, binds)

    def _marm_v_int_r(self, k, pc, instr, aux):
        fn, is_sfu = aux
        if is_sfu:
            return None
        rd = instr.rd or 0
        lines = []
        binds = {"FN%d" % k: fn}
        self._read_gp(lines, "e1", instr.rs1)
        self._read_gp(lines, "e2", instr.rs2)
        lines.append("if type(e1) is _S and type(e2) is _S:")
        lines.append("    if e1.stride == 0 and e2.stride == 0:")
        lines.append("        wrd(warp, %d, [FN%d(e1.base, e2.base)] * "
                     "%d, %d)" % (rd, k, self.nl, self.mask))
        lines.append("    else:")
        lines.append("        b1 = e1.base")
        lines.append("        s1 = e1.stride")
        lines.append("        b2 = e2.base")
        lines.append("        s2 = e2.stride")
        lines.append("        v = [0] * %d" % self.nl)
        tpl = _INLINE_RR.get(fn)
        for lane in self.mask_lanes:
            x = "((b1 + %d * s1) & %s)" % (lane, _M32)
            y = "((b2 + %d * s2) & %s)" % (lane, _M32)
            expr = (tpl.format(x=x, y=y) if tpl is not None
                    else "FN%d(%s, %s)" % (k, x, y))
            lines.append("        v[%d] = %s" % (lane, expr))
        lines.append("        wrd(warp, %d, v, %d)" % (rd, self.mask))
        lines.append("    fast = 1")
        return _Arm(None, lines, binds)

    def _arm_v_lui(self, k, pc, instr, aux):
        return self._const_arm(k, instr, _Scalar(aux, 0))

    def _arm_v_auipc(self, k, pc, instr, aux):
        return self._const_arm(k, instr, _Scalar((pc + aux) & MASK32, 0))

    def _const_arm(self, k, instr, cst):
        rd = instr.rd or 0
        lines = []
        binds = {}
        if rd:
            binds["CST%d" % k] = cst
            lines.append("wrf(warp, %d, CST%d)" % (rd, k))
        lines.append("fast = 1")
        return _Arm(lines, None, binds)

    def _arm_v_float_rr(self, k, pc, instr, aux):
        fn, is_sfu = aux
        if is_sfu:
            return None
        rd = instr.rd or 0
        pure = []
        self._read_gp(pure, "e1", instr.rs1)
        self._read_gp(pure, "e2", instr.rs2)
        pure.append("if type(e1) is _S and e1.stride == 0 and "
                    "type(e2) is _S and e2.stride == 0:")
        pure.append("    wrf(warp, %d, _S(FN%d(e1.base, e2.base) & %s, 0))"
                    % (rd, k, _M32))
        pure.append("    fast = 1")
        return _Arm(pure, self._vec_rr(k, rd, fn), {"FN%d" % k: fn})

    def _arm_v_float_unary(self, k, pc, instr, aux):
        fn, is_sfu = aux
        if is_sfu:
            return None
        rd = instr.rd or 0
        pure, binds = self._unary_pure(k, instr, fn)
        vec = []
        self._lanes_of(vec, "t1", "e1", "a")
        vec.append("if a is not None:")
        vec.append("    wrd(warp, %d, [FN%d(x) for x in a], %d)"
                   % (rd, k, self.full_mask))
        vec.append("    fast = 1")
        return _Arm(pure, vec, binds)

    def _arm_v_crr(self, k, pc, instr, aux):
        fn, slow = aux
        if slow:
            return None
        pure, binds = self._unary_pure(k, instr, fn)
        return _Arm(pure, None, binds)

    def _unary_pure(self, k, instr, fn):
        rd = instr.rd or 0
        lines = []
        self._read_gp(lines, "e1", instr.rs1)
        lines.append("if type(e1) is _S and e1.stride == 0:")
        lines.append("    wrf(warp, %d, _S(FN%d(e1.base) & %s, 0))"
                     % (rd, k, _M32))
        lines.append("    fast = 1")
        return lines, {"FN%d" % k: fn}

    def _arm_v_cget(self, k, pc, instr, aux):
        fn, slow = aux
        if slow or fn is not _FN_CGETADDR or not self.has_meta:
            return None
        rd = instr.rd or 0
        lines = []
        self._read_gp(lines, "e1", instr.rs1)
        # A spilled metadata entry would be a costed reload in the
        # handler's _meta_form read: keep that on the reference path.
        if instr.rs1 == 0:
            lines.append("if type(e1) is _S:")
        else:
            lines.append("if type(e1) is _S and "
                         "type(me_get(wk | %d)) is not _SP:" % instr.rs1)
        lines.append("    wrf(warp, %d, _S(e1.base, e1.stride))" % rd)
        lines.append("    fast = 1")
        return _Arm(lines, None, {})

    def _arm_v_cmod1(self, k, pc, instr, aux):
        fn = aux
        if not self.has_meta or (fn is not _FN_CMOVE and
                                 fn is not _FN_CCLEARTAG):
            return None
        rd = instr.rd or 0
        lines = []
        self._read_gp(lines, "e1", instr.rs1)
        self._read_meta(lines, "m1", instr.rs1)
        lines.append("if type(m1) is _S and m1.stride == 0 and "
                     "type(e1) is _S:")
        meta_expr = "m1.base" if fn is _FN_CMOVE else "m1.base & " + _M32
        lines.append("    wrcf(warp, %d, _S(e1.base, e1.stride), %s)"
                     % (rd, meta_expr))
        lines.append("    fast = 1")
        return _Arm(lines, None, {})

    def _arm_v_cmod2(self, k, pc, instr, aux):
        fn, slow = aux
        if slow or not self.has_meta:
            return None
        if fn is _FN_CINCOFFSET:
            nb = "(e1.base + e2.base) & " + _M32
            aff = "e1.base + e2.base, e1.stride + e2.stride"
        elif fn is _FN_CSETADDR:
            nb = "e2.base & " + _M32
            aff = "e2.base, e2.stride"
        else:
            return None
        rd = instr.rd or 0
        lines = []
        self._read_gp(lines, "e1", instr.rs1)
        self._read_gp(lines, "e2", instr.rs2)
        self._read_meta(lines, "m1", instr.rs1)
        lines.append("if type(e1) is _S and type(e2) is _S and "
                     "type(m1) is _S and m1.stride == 0:")
        lines.append("    m = m1.base")
        lines.append("    if e1.stride == 0 and e2.stride == 0:")
        lines.append("        nb = " + nb)
        lines += self._uniform_addr_lines(rd)
        lines.append("    elif saw(warp, %d, m, e1, %s):" % (rd, aff))
        lines.append("        fast = 1")
        return _Arm(lines, None, {})

    def _arm_v_cimm(self, k, pc, instr, aux):
        fn, imm, slow = aux
        if slow or not self.has_meta or fn is not _FN_CINCOFFSETIMM:
            return None
        rd = instr.rd or 0
        lines = []
        self._read_gp(lines, "e1", instr.rs1)
        self._read_meta(lines, "m1", instr.rs1)
        lines.append("if type(e1) is _S and type(m1) is _S and "
                     "m1.stride == 0:")
        lines.append("    m = m1.base")
        lines.append("    if e1.stride == 0:")
        lines.append("        nb = (e1.base + %d) & %s" % (imm, _M32))
        lines += self._uniform_addr_lines(rd)
        lines.append("    elif saw(warp, %d, m, e1, e1.base + %d, "
                     "e1.stride):" % (rd, imm))
        lines.append("        fast = 1")
        return _Arm(lines, None, {})

    def _uniform_addr_lines(self, rd):
        """Transcribed ``_uniform_addr_meta``: untagged and sealed keep
        the meta word (sealed also clears the tag); a tagged unsealed
        move staying in one *k*-window keeps everything.  A *k*-window
        miss falls back to the exact Capability path."""
        return [
            "        info = ci(m)",
            "        if not info[0]:",
            "            wrcf(warp, %d, _S(nb, 0), m)" % rd,
            "            fast = 1",
            "        elif info[1] != 0:",
            "            wrcf(warp, %d, _S(nb, 0), m & %s)" % (rd, _M32),
            "            fast = 1",
            "        elif ((e1.base >> info[4]) - info[5]) >> 8 == "
            "((nb >> info[4]) - info[5]) >> 8:",
            "            wrcf(warp, %d, _S(nb, 0), m)" % rd,
            "            fast = 1",
        ]

    def _arm_v_memory(self, k, pc, instr, aux):
        width, is_cap, is_store, is_amo, _amo_fn, _signed, imm = aux
        op = instr.op
        if is_amo or width != 4 or op not in _MEM_ARM_OPS:
            return None
        if is_cap and not self.has_meta:
            return None
        nl = self.nl
        lines = []
        binds = {"OP%d" % k: op}
        self._read_gp(lines, "e1", instr.rs1)
        if is_cap:
            self._read_meta(lines, "m1", instr.rs1)
            lines.append("if type(e1) is _S and type(m1) is _S and "
                         "m1.stride == 0:")
        else:
            lines.append("if type(e1) is _S:")
        lines.append("    base = e1.base")
        lines.append("    stride = e1.stride")
        lines.append("    span = %d * stride" % (nl - 1))
        lines.append("    c_lo = base + (span if stride < 0 else 0)")
        lines.append("    c_hi = base + (span if stride > 0 else 0)")
        lines.append("    a_lo = c_lo + %d" % imm)
        lines.append("    a_hi = c_hi + %d" % imm)
        lines.append("    if c_lo >= 0 and c_hi + 4 <= %s and a_lo >= 0 "
                     "and a_hi + 4 <= %s and not a_lo %% 4 and "
                     "not stride %% 4:" % (_LIM, _LIM))
        body_indent = "        "
        if is_cap:
            need = _P_STORE if is_store else _P_LOAD
            lines.append("        info = ci(m1.base)")
            lines.append("        if info[0] and info[1] == 0 and "
                         "info[2] & %d and ((c_lo >> info[4]) - info[5]) "
                         ">> 8 == ((c_hi >> info[4]) - info[5]) >> 8:"
                         % need)
            lines.append("            bt = dbs(m1.base, info[3], info[4], "
                         "info[5], c_lo)")
            lines.append("            if bt[0] <= a_lo and "
                         "a_hi + 4 <= bt[1]:")
            body_indent = "                "
        body = (self._store_body(k, instr, imm) if is_store
                else self._load_body(k, instr, imm))
        lines += [body_indent + b for b in body]
        return _Arm(None, lines, binds)

    def _load_body(self, k, instr, imm):
        nl = self.nl
        rd = instr.rd or 0
        return [
            "addr = base + %d" % imm,
            "if stride == 0:",
            "    out = [wget(addr >> 2, 0)] * %d" % nl,
            "else:",
            "    out = [0] * %d" % nl,
            "    for i in range(%d):" % nl,
            "        out[i] = wget(addr >> 2, 0)",
            "        addr += stride",
            "wrd(warp, %d, out, %d)" % (rd, self.full_mask),
            "fmt(OP%d, base + %d, stride, 4, %d, False, warp)"
            % (k, imm, nl),
            "fast = 1",
        ]

    def _store_body(self, k, instr, imm):
        nl = self.nl
        rs2 = instr.rs2 or 0
        lines = []
        if rs2 == 0:
            lines.append("e2 = NULL")
        else:
            lines.append("e2 = gpe_get(wk | %d)" % rs2)
            lines.append("if e2 is None:")
            lines.append("    e2 = NULL")
        lines += [
            "t2 = type(e2)",
            "if t2 is not _SP:",
            "    if t2 is _V:",
            "        sm._gp_vec_touch = True",
            "        v2 = e2.values",
            "    elif t2 is list:",
            "        v2 = e2",
            "    else:",
            "        v2 = None",
            "    addr = base + %d" % imm,
            "    if stride == 0:",
            "        index = addr >> 2",
            "        if v2 is None:",
            "            words[index] = (e2.base + %d * e2.stride) & %s"
            % (nl - 1, _M32),
            "        else:",
            "            words[index] = v2[%d] & %s" % (nl - 1, _M32),
            "        tdis(index)",
            "    elif v2 is None:",
            "        b2 = e2.base",
            "        s2 = e2.stride",
            "        for i in range(%d):" % nl,
            "            index = addr >> 2",
            "            words[index] = (b2 + i * s2) & %s" % _M32,
            "            tdis(index)",
            "            addr += stride",
            "    else:",
            "        for i in range(%d):" % nl,
            "            index = addr >> 2",
            "            words[index] = v2[i] & %s" % _M32,
            "            tdis(index)",
            "            addr += stride",
            "    fmt(OP%d, base + %d, stride, 4, %d, True, warp)"
            % (k, imm, nl),
            "    fast = 1",
        ]
        return lines

    # -- module assembly ----------------------------------------------

    def generate(self):
        steps = self.steps
        for k, step in enumerate(steps):
            arm = self._plan_arm(k, step)
            self.arms.append(arm)
            self.plan.append(arm.binds if arm is not None else {})
        out = []
        w = out.append
        w("# JIT region @0x%x: %s" % (
            self.index << 2,
            " ".join(step[5].name for step in steps)))
        w("# generated by repro.simt.backend.jit (deterministic for a")
        w("# fixed config + program; do not edit)")
        w("")
        w("")
        w("def _make(B):")
        for name in self._global_binds():
            w("    %s = B[%r]" % (name, name))
        for k, step in enumerate(steps):
            for name in ("I%d" % k, "h%d" % k, "A%d" % k, "N%d" % k):
                w("    %s = B[%r]" % (name, name))
            for name in sorted(self.plan[k]):
                w("    %s = B[%r]" % (name, name))
        w("")
        for k, step in enumerate(steps):
            self._emit_convoy_fn(w, k, step)
        self._emit_drain_fn(w)
        w("    return (%sd)" % "".join("c%d, " % k
                                       for k in range(len(steps))))
        return "\n".join(out) + "\n"

    def _global_binds(self):
        names = ["sm", "stats", "gp", "meta", "gpe_get", "me_get",
                 "words", "wget", "tdis", "wrd", "wrf", "wrcf", "saw",
                 "ci", "dbs", "fmt", "NULL", "_S", "_V", "_SP", "lanes",
                 "btf", "ftb", "fpk", "RC", "adv", "BK", "CF"]
        if self.gp_pool:
            names.append("gp_cget")
        if self.meta_pool:
            names.append("meta_cget")
        return names

    def _resets(self):
        """The per-step pipeline-state resets ``step_quiet`` does before
        dispatching a handler (required by lane arms and fallbacks:
        spills and memory timing read/raise these fields)."""
        return [
            "sm._cycle = cycle",
            "sm._mem_ready = cycle",
            "sm._extra_issue = 0",
            "sm._gp_vec_touch = False",
            "sm._meta_vec_touch = False",
        ]

    def _full_accounting(self, is_csc):
        """Post-dispatch width/stall/ready-at accounting, transcribed
        from ``step_quiet`` with the config flags resolved statically."""
        lines = ["extra = sm._extra_issue"]
        if self.shared_vrf:
            lines += [
                "if sm._gp_vec_touch and sm._meta_vec_touch:",
                "    extra += 1",
                "    stats.stall_shared_vrf += 1",
            ]
        if self.single_port and is_csc:
            lines += [
                "extra += 1",
                "stats.stall_csc_operand += 1",
            ]
        lines += [
            "completion = cycle + %d" % self.depth,
            "if sm._mem_ready > completion:",
            "    completion = sm._mem_ready",
            "warp.ready_at = completion",
            "width = 1 + extra",
        ]
        return lines

    def _fast_advance(self, k, pc):
        """The PC advance a committed fast arm owes: the full-warp
        module uses the prebuilt next-PC fill; a masked module replays
        the handler's per-lane ``_advance`` over the active subset."""
        if self.mask_lanes is None:
            return "warp.pcs[:] = N%d" % k
        return "adv(warp, lanes, %d)" % (pc + 4)

    def _emit_slow_step(self, w, pad, k, step):
        """Resets + lane arm (when present) + handler fallback — the
        un-accounted step body shared by convoy and region frames.
        Assumes the pure tier (if any) already ran and missed, leaving
        its operand reads in scope for the lane tier."""
        pc, _instr, _handler, _aux, _is_csc, _op = step
        arm = self.arms[k]
        call = "h%d(warp, I%d, %d, lanes, %d, A%d)" % (
            k, k, pc, self.mask, k)
        for line in self._resets():
            w(pad + line)
        if arm is not None and arm.vec_lines:
            w(pad + "fast = 0")
            for line in arm.vec_lines:
                w(pad + line)
            w(pad + "if fast:")
            w(pad + "    " + self._fast_advance(k, pc))
            w(pad + "else:")
            w(pad + "    RC[%d] += 1" % self.rc_miss)
            w(pad + "    " + call)
        elif arm is not None:
            # A pure-only arm that fell through: specialization missed.
            w(pad + "RC[%d] += 1" % self.rc_miss)
            w(pad + call)
        else:
            # No arm exists for this op: the handler call is the plan,
            # not a miss.
            w(pad + call)

    def _emit_convoy_fn(self, w, k, step):
        """``c<K>``: one barrel-scheduler slot for one warp — the step
        body plus the exact ``step_quiet`` bookkeeping (issue counts,
        thread instrs, occupancy, ready-at, step-queue advance) —
        returning the cycle after the consumed issue slot(s)."""
        pc, _instr, _handler, _aux, is_csc, _op = step
        arm = self.arms[k]
        last = k == len(self.steps) - 1
        if self.mask_lanes is None or last:
            advance = ["warp.rq = None"] if last \
                else ["rq[1] = %d" % (k + 1)]
        else:
            # A masked entry may queue a *prefix* of the compiled
            # region (the dominance window shrinks with competitor
            # groups), so the queue advance is resolved against the
            # runtime step list, exactly like the interpreter's.
            advance = ["if %d < len(rq[0]):" % (k + 1),
                       "    rq[1] = %d" % (k + 1),
                       "else:",
                       "    warp.rq = None"]
        w("    def c%d(warp, rq, cycle, icounts):" % k)
        w("        wk = warp.index << 8")
        if arm is not None and arm.pure_lines:
            w("        fast = 0")
            for line in arm.pure_lines:
                w("        " + line)
            w("        if fast:")
            w("            warp.pcs[:] = N%d" % k)
            w("            warp.ready_at = cycle + %d" % self.depth)
            w("            icounts[%d] += 1" % (pc >> 2))
            w("            stats.thread_instrs += %d" % self.nl)
            for line in self._occ_lines(""):
                w("            " + line)
            w("            RC[%d] += 1" % self.rc_steps)
            for line in advance:
                w("            " + line)
            w("            return cycle + 1")
        self._emit_slow_step(w, "        ", k, step)
        for line in self._full_accounting(is_csc):
            w("        " + line)
        w("        icounts[%d] += 1" % (pc >> 2))
        w("        stats.thread_instrs += %d" % self.active)
        for line in self._occ_lines(" * width"):
            w("        " + line)
        w("        RC[%d] += 1" % self.rc_steps)
        for line in advance:
            w("        " + line)
        w("        return cycle + width")
        w("")

    def _emit_drain_fn(self, w):
        """``d``: the cross-step fused drain.  A solo runnable warp
        drains its whole (remaining) region in ONE call instead of one
        frame dispatch per step: the per-step bodies of ``c<k>`` ..
        ``c<N-1>`` are laid out back-to-back with the solo driver's
        bookkeeping (cycle-limit abort, ready-at catch-up, early exit
        as soon as another warp's wake time arrives) fused in between.
        Bit-identical to dispatching the frames through the generic
        drain loop: ``cycle`` only advances at the end of each step
        body, so a faulting step pins its slot-entry cycle exactly
        like a frame call would (``SoftwareTrap`` escapes un-pinned,
        also like the generic driver); the queue cursor is only
        written when control leaves mid-region."""
        steps = self.steps
        masked = self.mask_lanes is not None
        w("    def d(warp, rq, cycle, icounts, others, max_cycles, ka):")
        w("        wk = warp.index << 8")
        w("        k = rq[1]")
        if masked:
            w("        n = len(rq[0])")
        w("        RC[%d] += 1" % self.rc_calls)
        w("        try:")
        for k, step in enumerate(steps):
            pc, _instr, _handler, _aux, is_csc, _op = step
            arm = self.arms[k]
            if masked and k < len(steps) - 1:
                w("            if k <= %d and n > %d:" % (k, k))
            else:
                w("            if k <= %d:" % k)
            pad = "                "
            if arm is not None and arm.pure_lines:
                w(pad + "fast = 0")
                for line in arm.pure_lines:
                    w(pad + line)
                w(pad + "if fast:")
                sub = pad + "    "
                w(sub + "warp.pcs[:] = N%d" % k)
                w(sub + "warp.ready_at = cycle + %d" % self.depth)
                w(sub + "icounts[%d] += 1" % (pc >> 2))
                w(sub + "stats.thread_instrs += %d" % self.nl)
                for line in self._occ_lines(""):
                    w(sub + line)
                w(sub + "RC[%d] += 1" % self.rc_steps)
                w(sub + "cycle += 1")
                w(pad + "else:")
                self._emit_slow_body(w, sub, k, step, is_csc)
            else:
                self._emit_slow_body(w, pad, k, step, is_csc)
            self._emit_drain_epilogue(w, pad, k)
        w("        except CF:")
        w("            if BK.fault_cycle is None:")
        w("                BK.fault_cycle = cycle")
        w("            raise")
        w("")

    def _emit_slow_body(self, w, pad, k, step, is_csc):
        """The slow step plus its full accounting, advancing ``cycle``
        in place (the drain's non-returning form of a ``c<k>`` tail)."""
        pc, _instr, _handler, _aux, _is_csc, _op = step
        self._emit_slow_step(w, pad, k, step)
        for line in self._full_accounting(is_csc):
            w(pad + line)
        w(pad + "icounts[%d] += 1" % (pc >> 2))
        w(pad + "stats.thread_instrs += %d" % self.active)
        for line in self._occ_lines(" * width"):
            w(pad + line)
        w(pad + "RC[%d] += 1" % self.rc_steps)
        w(pad + "cycle += width")

    def _emit_drain_epilogue(self, w, pad, k):
        """Between-step bookkeeping transcribed from the generic solo
        drain: abort past the cycle limit, park back on the queue when
        another warp's wake time arrives, clear the queue after the
        last step.  A masked region's length is runtime (``n``), so a
        statically non-last step re-checks which case it is."""
        last_lines = [
            "warp.rq = None",
            "if cycle > max_cycles:",
            "    raise ka('cycle limit exceeded', cycle)",
            "return cycle",
        ]
        more_lines = [
            "if cycle > max_cycles:",
            "    rq[1] = %d" % (k + 1),
            "    raise ka('cycle limit exceeded', cycle)",
            "completion = warp.ready_at",
            "nxt = cycle if cycle >= completion else completion",
            "if nxt >= others:",
            "    rq[1] = %d" % (k + 1),
            "    return cycle",
            "cycle = nxt",
        ]
        statically_last = k == len(self.steps) - 1
        if statically_last:
            for line in last_lines:
                w(pad + line)
        elif self.mask_lanes is None:
            for line in more_lines:
                w(pad + line)
        else:
            w(pad + "if n > %d:" % (k + 1))
            for line in more_lines:
                w(pad + "    " + line)
            w(pad + "else:")
            for line in last_lines:
                w(pad + "    " + line)

    def _occ_lines(self, mult):
        lines = []
        if self.gp_pool:
            lines.append("stats.gp_vrf_occupancy_integral += "
                         "gp_cget(gp, 0)" + mult)
        if self.meta_pool:
            lines.append("stats.meta_vrf_occupancy_integral += "
                         "meta_cget(meta, 0)" + mult)
        return lines

class JITBackend(VectorBackend):
    """Codegen trace-JIT tier (see module docstring)."""

    name = "jit"

    #: Drive attempts (convoy formations or solo drains) a formed region
    #: must accumulate before codegen runs.  Keeps compile time off
    #: regions that merely crossed the fetch-count hot threshold.
    _promote_after = 3

    #: Frame executions a compiled region must accumulate before its
    #: arm-miss ratio is trusted for demotion.
    _demote_floor = 512

    def __init__(self, sm):
        super().__init__(sm)
        #: (program digest, region start index) ->
        #: (signature, source, code object, plan).
        self._code_cache = {}
        #: (program digest, region start index, entry mask) -> same,
        #: for the per-mask-class variants diverged warps enter under.
        self._masked_code_cache = {}
        #: region start pc ->
        #: (fused region fn, installed step list, convoy frames).
        self._fused = {}
        #: (digest, index) -> [fused calls, fused steps, arm misses,
        #: demoted latch, masked calls, masked steps, masked arm
        #: misses, masked demoted latch] (persistent across launches,
        #: bound into the generated region fns; the masked slots are
        #: tracked separately so a mask class whose arms miss demotes
        #: without dragging the full-warp fast path down with it).
        self._region_counters = {}
        #: (digest, index) -> static region facts for the report.
        self._region_info = {}
        #: region start pc -> reason codegen declined it.
        self._rejects = {}
        #: program digest -> banked hot-pc counts from earlier launches,
        #: re-seeded on re-launch so short repeated kernels (multi-pass
        #: benchmarks) don't re-heat every region from zero each time.
        self._heat = {}
        #: (digest, index) -> drive attempts accumulated across launches
        #: while the region awaits codegen promotion.
        self._drive_counts = {}
        #: (digest, index, mask) -> masked entries accumulated while a
        #: mask class awaits its own variant's promotion.  Compile time
        #: is only paid for mask classes that recur (hot masks);
        #: one-shot divergence shapes drive the interpreted tier.
        self._mask_drives = {}
        self._program_digest = ""
        self.compiled_regions = 0
        self.compiled_masked = 0
        self.codegen_seconds = 0.0
        self.cache_hits = 0
        #: When set (e.g. via ``--jit-dump-dir``), every compiled
        #: region's source is written there for debugging.
        self.jit_dump_dir = None
        # The pipeline module is fully initialized by the time a backend
        # is constructed; capture the trap type the convoy must record
        # fault cycles for (mirrors run()'s late import).
        from repro.simt.pipeline import SoftwareTrap
        self._trap_type = SoftwareTrap
        self._convoy = self._convoy_run

    def on_launch(self):
        # Bank the outgoing program's heat before the base class wipes
        # it: re-launching the same program (digest match below) then
        # re-forms its regions after a single fetch instead of
        # re-heating every pc from zero.  Heat only affects *when* a
        # region forms, never the simulated statistics, so seeding is
        # observationally neutral.
        if self._program_digest and self._hot:
            self._heat.setdefault(self._program_digest, {}).update(
                self._hot)
        super().on_launch()
        self._fused = {}
        h = hashlib.sha256()
        for instr in self.sm.program:
            h.update(("%s|%r|%r|%r|%r|%r;" % (
                instr.op.name, instr.rd, instr.rs1, instr.rs2, instr.imm,
                instr.depth)).encode())
        self._program_digest = h.hexdigest()
        seed = self._heat.get(self._program_digest)
        if seed:
            # Seeds may sit at or past the threshold (banked full-warp
            # heat plus masked entries accumulate on one counter); the
            # promotion check is ``>=`` with the regions-dict entry as
            # the once-only sentinel, so overshot counters still
            # promote — on the first fetch — and build exactly once.
            self._hot.update(seed)

    # -- region compilation -------------------------------------------

    def _region_signature(self, steps):
        return tuple(
            (pc, op, instr.rd, instr.rs1, instr.rs2, instr.imm,
             getattr(handler, "__func__", handler), aux)
            for pc, instr, handler, aux, _is_csc, op in steps)

    def _build_region(self, index):
        steps = VectorBackend._build_region(self, index)
        if not steps:
            self._rejects.setdefault(
                index << 2, "straight-line run shorter than 2 steps")
            return steps
        key = (self._program_digest, index)
        rc = self._region_counters.setdefault(
            key, [0, 0, 0, 0, 0, 0, 0, 0])
        # Codegen is deferred until the region proves hot in *execution*
        # (``_promote_after`` drive attempts), not just in fetch count:
        # one-shot regions — kernel prologues where every warp trips the
        # hot threshold exactly once — never pay compile time.  Until
        # promotion the entry drives through the interpreted vector tier.
        # ``entry[4]`` maps an entry mask to its promoted masked-variant
        # frames for this launch.
        entry = [steps, None, rc, key, {}]
        self._fused[index << 2] = entry
        if self._code_cache.get(key) is not None:
            # Already compiled by an earlier launch: rebinding the
            # frames is an exec of the cached code object, far cheaper
            # than a compile, so skip the drive-count probation.
            self._promote(index, entry)
        return steps

    def _promote(self, index, entry):
        """Generate, compile and install the convoy frames for a region
        that has crossed the execution-drive threshold."""
        steps = entry[0]
        key = (self._program_digest, index)
        signature = self._region_signature(steps)
        cached = self._code_cache.get(key)
        if cached is not None and cached[0] == signature:
            _sig, source, code, plan = cached
            self.cache_hits += 1
        else:
            started = time.perf_counter()
            gen = _RegionCodegen(self, index, steps)
            source = gen.generate()
            code = compile(source, "<jit:%s+0x%x>"
                           % (self._program_digest[:12], index << 2),
                           "exec")
            plan = gen.plan
            self.codegen_seconds += time.perf_counter() - started
            self._code_cache[key] = (signature, source, code, plan)
            self.compiled_regions += 1
            self._region_info[key] = {
                "pc": index << 2,
                "length": len(steps),
                "specialized": sum(1 for p, a in zip(plan, gen.arms)
                                   if a is not None),
                "ops": [step[5].name for step in steps],
                "lines": sorted({step[1].line for step in steps
                                 if step[1].line is not None}),
            }
            if self.jit_dump_dir:
                self._dump_source(index, source)
        namespace = {}
        exec(code, namespace)
        cframes = namespace["_make"](self._bindings(steps, plan))
        entry[1] = cframes
        return cframes

    def _promote_masked(self, index, entry, lanes, mask):
        """Generate, compile and install one mask class's closure
        variant for an already-promoted region.  The source depends
        only on (config, program, region, mask) — the active lane set
        is the mask's bit positions — so variants cache and re-bind
        across launches exactly like the full-warp module."""
        steps = entry[0]
        key = (self._program_digest, index, mask)
        signature = self._region_signature(steps)
        cached = self._masked_code_cache.get(key)
        if cached is not None and cached[0] == signature:
            _sig, source, code, plan = cached
            self.cache_hits += 1
        else:
            started = time.perf_counter()
            gen = _RegionCodegen(self, index, steps, lanes, mask)
            source = gen.generate()
            code = compile(source, "<jit:%s+0x%x~m%x>"
                           % (self._program_digest[:12], index << 2,
                              mask), "exec")
            plan = gen.plan
            self.codegen_seconds += time.perf_counter() - started
            self._masked_code_cache[key] = (signature, source, code,
                                            plan)
            self.compiled_masked += 1
            if self.jit_dump_dir:
                self._dump_source(index, source, mask)
        namespace = {}
        exec(code, namespace)
        mframes = namespace["_make"](
            self._bindings(steps, plan, lanes))
        entry[4][mask] = mframes
        return mframes

    def _bindings(self, steps, plan, lanes=None):
        sm = self.sm
        gp = sm.gp
        meta = sm.meta
        memory = sm.memory
        binds = {
            "sm": sm, "stats": sm.stats, "gp": gp, "meta": meta,
            "gpe_get": gp._entries.get,
            "me_get": meta._entries.get if meta is not None else None,
            "words": memory._words, "wget": memory._words.get,
            "tdis": memory._tags.discard,
            "wrd": sm._write_rd, "wrf": self._write_rd_form,
            "wrcf": self._write_rd_cap_form,
            "saw": self._set_addr_window,
            "ci": self._cap_info, "dbs": self._decoded_bounds,
            "fmt": self._fast_mem_timing,
            "NULL": _NULL_SCALAR, "_S": _Scalar, "_V": _Vector,
            "_SP": _Spilled,
            "lanes": list(lanes) if lanes is not None else sm._all_lanes,
            "btf": bits_to_f32, "ftb": f32_to_bits, "fpk": _pack_arith,
            "RC": self._region_counters[
                (self._program_digest, steps[0][0] >> 2)],
            "adv": sm._advance, "BK": self, "CF": CapabilityFault,
        }
        gp_pool = getattr(gp, "pool", None)
        if gp_pool is not None:
            binds["gp_cget"] = gp_pool._counts.get
        meta_pool = getattr(meta, "pool", None) if meta is not None \
            else None
        if meta_pool is not None:
            binds["meta_cget"] = meta_pool._counts.get
        num_lanes = sm._num_lanes
        for k, (step, extra) in enumerate(zip(steps, plan)):
            pc, instr, handler, aux, _is_csc, _op = step
            binds["I%d" % k] = instr
            binds["h%d" % k] = handler
            binds["A%d" % k] = aux
            binds["N%d" % k] = [pc + 4] * num_lanes
            binds.update(extra)
        return binds

    def _dump_source(self, index, source, mask=None):
        import os
        os.makedirs(self.jit_dump_dir, exist_ok=True)
        name = "region_%s_0x%x" % (self._program_digest[:12], index << 2)
        if mask is not None:
            name += "_m%x" % mask
        path = os.path.join(self.jit_dump_dir, name + ".py")
        with open(path, "w") as fh:
            fh.write(source)

    def _demoted(self, rc):
        """True when a compiled region's arms mostly miss.  Missing
        frames pay their specialization guards *and* the handler
        fallback, which is slower than plain ``step_quiet``, so such
        regions go back to the interpreted vector tier.  The decision
        latches (``rc[3]``): without the latch the frozen miss ratio
        would sit exactly at the gate and the region would oscillate
        between tiers.  Counters persist across launches, so the
        demotion sticks."""
        if rc[3]:
            return True
        if rc[1] >= self._demote_floor and rc[2] * 2 > rc[1]:
            rc[3] = 1
            return True
        return False

    def _masked_demoted(self, rc):
        """Masked-tier demotion, decided on the masked counter slots
        only: a region whose full-warp arms hit fine but whose masked
        arms mostly miss (operands go lane-resident once the warp
        diverges) drops just its masked variants back to the
        interpreter.  Latches like :meth:`_demoted`."""
        if rc[7]:
            return True
        if rc[5] >= self._demote_floor and rc[6] * 2 > rc[5]:
            rc[7] = 1
            return True
        return False

    def _entry_for(self, steps):
        """The fused entry whose installed region ``steps`` is, or is a
        prefix of (masked entries queue the dominance prefix — the
        slice shares its step tuples, so identity on the ends is
        enough).  Mid-region *suffixes* (a barrel-interleaved warp
        going solo) don't match and drive the generic tier."""
        entry = self._fused.get(steps[0][0])
        if entry is None:
            return None
        full = entry[0]
        if full is steps:
            return entry
        n = len(steps)
        if n <= len(full) and full[0] is steps[0] and \
                full[n - 1] is steps[n - 1]:
            return entry
        return None

    def _rq_frames(self, steps):
        """Resolve the compiled per-slot frames at region entry (queued
        as ``rq[2]`` by the generic scheduler).  Every entry of a
        not-yet-promoted region counts as one drive attempt, so regions
        that execute slot-by-slot (partial warp occupancy, divergent
        neighbours) still cross the promotion bar."""
        entry = self._fused.get(steps[0][0])
        if entry is None or entry[0] is not steps:
            return None
        cframes = entry[1]
        if cframes is None:
            drives = self._drive_counts
            n = drives.get(entry[3], 0) + 1
            drives[entry[3]] = n
            if n < self._promote_after:
                return None
            cframes = self._promote(steps[0][0] >> 2, entry)
        if self._demoted(entry[2]):
            return None
        return cframes

    def _rq_frames_masked(self, sub, steps, lanes, mask):
        """Resolve one mask class's compiled frames at a masked region
        entry (queued as ``rq[2]``).  Masked entries count toward the
        region's shared promotion bar — a region only ever entered
        diverged still compiles — and then toward a per-mask bar, so
        each variant's compile time is only paid once its mask class
        proves recurrent.  Returns None (interpreted masked stepping)
        until both bars are cleared or once the masked tier demotes."""
        entry = self._fused.get(steps[0][0])
        if entry is None or entry[0] is not steps:
            return None
        if entry[1] is None:
            drives = self._drive_counts
            n = drives.get(entry[3], 0) + 1
            drives[entry[3]] = n
            if n < self._promote_after:
                return None
            self._promote(steps[0][0] >> 2, entry)
        rc = entry[2]
        if self._masked_demoted(rc):
            return None
        mframes = entry[4].get(mask)
        if mframes is None:
            mkey = (entry[3][0], entry[3][1], mask)
            cached = self._masked_code_cache.get(mkey)
            if cached is None:
                md = self._mask_drives
                n = md.get(mkey, 0) + 1
                md[mkey] = n
                if n < self._promote_after:
                    return None
            mframes = self._promote_masked(steps[0][0] >> 2, entry,
                                           lanes, mask)
        return mframes

    # -- convoy scheduling --------------------------------------------

    def _convoy_run(self, picked, rq, cycle, icounts, max_cycles,
                    kernel_abort):
        """Drive the barrel schedule while every runnable warp is inside
        one compiled region.

        Replays the generic run() loop exactly — same pick order (first
        ready warp at or after the rotation point), same idle advance,
        same per-slot accounting (each ``c<K>`` frame is ``step_quiet``
        specialized to its step) — so simulated statistics are
        bit-identical.  Returns the ``(cycle, rotation)`` scheduler
        state for run() to resume from as soon as a warp leaves the
        region (run()'s rescan from that rotation reproduces the same
        pick), or None when the convoy can't form.

        Regions contain no control flow, halts or barriers, so member
        warps can't retire, park on a barrier or release one mid-convoy:
        done/in_barrier flags and the scheduler epoch are stable for the
        whole drive, and non-member in_barrier warps can't wake up.
        """
        steps = rq[0]
        entry = self._fused.get(steps[0][0])
        if entry is None or entry[0] is not steps:
            return None
        warps = self.sm.warps
        for w in warps:
            if w.done or w.in_barrier:
                continue
            wrq = w.rq
            if wrq is None or wrq[0] is not steps or wrq[3] is not None:
                # Masked members step under their own variants; the
                # convoy's full-warp frames don't apply to them.
                return None
        cframes = entry[1]
        if cframes is None:
            drives = self._drive_counts
            n = drives.get(entry[3], 0) + 1
            drives[entry[3]] = n
            if n < self._promote_after:
                return None
            cframes = self._promote(steps[0][0] >> 2, entry)
        rc = entry[2]
        if self._demoted(rc):
            return None
        count = len(warps)
        # run() already picked this warp for this slot and advanced the
        # rotation past it; execute its pending step, then take over.
        rot = picked.index + 1
        r0 = rot
        sel = picked
        wrq = rq
        trap = self._trap_type
        rc[0] += 1
        while True:
            try:
                cycle = cframes[wrq[1]](sel, wrq, cycle, icounts)
            except (CapabilityFault, trap):
                # run()'s own handler would record its stale entry
                # cycle; pin the exact slot cycle first (matching
                # what step_quiet under the generic loop reports).
                if self.fault_cycle is None:
                    self.fault_cycle = cycle
                raise
            if cycle > max_cycles:
                raise kernel_abort("cycle limit exceeded", cycle)
            while True:
                if rot >= count:
                    rot = 0
                r0 = rot
                sel = None
                for i in range(rot, count):
                    w = warps[i]
                    if w.ready_at <= cycle and not w.in_barrier:
                        sel = w
                        break
                if sel is None:
                    for i in range(rot):
                        w = warps[i]
                        if w.ready_at <= cycle and not w.in_barrier:
                            sel = w
                            break
                if sel is None:
                    next_ready = _FAR_FUTURE
                    for w in warps:
                        if not w.done and not w.in_barrier and \
                                w.ready_at < next_ready:
                            next_ready = w.ready_at
                    if next_ready == _FAR_FUTURE:
                        # Unreachable while members are runnable;
                        # let the generic loop raise its deadlock
                        # abort.
                        return cycle, r0
                    cycle = max(cycle + 1, next_ready)
                    continue
                break
            wrq = sel.rq
            if wrq is None or wrq[0] is not steps:
                # This warp finished the region: hand the exact
                # scheduler state back so run() re-picks it.
                return cycle, r0
            rot = sel.index + 1

    # -- fused solo drain ---------------------------------------------

    def _run_region(self, warp, steps, cycle, others, max_cycles,
                    kernel_abort, icounts, lanes=None, mask=0):
        entry = self._entry_for(steps)
        if entry is None:
            # Mid-region suffixes (a barrel-interleaved warp going solo)
            # run through the generic driver; they are rare because the
            # convoy usually carries a warp to its region end.
            return VectorBackend._run_region(self, warp, steps, cycle,
                                             others, max_cycles,
                                             kernel_abort, icounts,
                                             lanes, mask)
        if lanes is not None:
            mframes = self._rq_frames_masked(steps, entry[0], lanes,
                                             mask)
            if mframes is None:
                return VectorBackend._run_region(self, warp, steps,
                                                 cycle, others,
                                                 max_cycles,
                                                 kernel_abort, icounts,
                                                 lanes, mask)
            rq = [steps, 0, mframes, lanes, mask]
            return mframes[-1](warp, rq, cycle, icounts, others,
                               max_cycles, kernel_abort)
        cframes = entry[1]
        if cframes is None:
            drives = self._drive_counts
            n = drives.get(entry[3], 0) + 1
            drives[entry[3]] = n
            if n < self._promote_after:
                return VectorBackend._run_region(self, warp, steps, cycle,
                                                 others, max_cycles,
                                                 kernel_abort, icounts)
            cframes = self._promote(steps[0][0] >> 2, entry)
        if self._demoted(entry[2]):
            return VectorBackend._run_region(self, warp, steps, cycle,
                                             others, max_cycles,
                                             kernel_abort, icounts)
        # Cross-step fusion: the whole region drains in one generated
        # call (identical per-slot accounting and early exits to
        # dispatching the frames one by one — see ``_emit_drain_fn``).
        rq = [steps, 0, cframes, None, 0]
        return cframes[-1](warp, rq, cycle, icounts, others, max_cycles,
                           kernel_abort)

    def _drain_rq(self, warp, rq, cycle, others, max_cycles, kernel_abort,
                  icounts):
        """Drain a solo warp's queued region through the region's fused
        drain closure, keeping ``rq`` live: an early exit (another warp
        waking up) parks the queue cursor in place, so the generic loop
        resumes per-slot frame dispatch instead of re-fetching and
        re-interpreting the region tail."""
        cframes = rq[2]
        if cframes is None:
            return VectorBackend._drain_rq(self, warp, rq, cycle, others,
                                           max_cycles, kernel_abort,
                                           icounts)
        return cframes[-1](warp, rq, cycle, icounts, others, max_cycles,
                           kernel_abort)

    # -- observability ------------------------------------------------

    def generated_source(self, pc):
        """The generated source for the region starting at ``pc`` under
        the current program, or None."""
        entry = self._code_cache.get((self._program_digest, pc >> 2))
        return entry[1] if entry is not None else None

    def jit_summary(self):
        """JSON-safe counters for manifests and ``repro profile``."""
        counts = self._pc_issue_counts
        steps_total = sum(counts.values())
        # Overlapping regions share instructions: count each covered
        # static instruction once.
        covered_pcs = set()
        regions = 0
        for (digest, index), info in self._region_info.items():
            if digest != self._program_digest:
                continue
            regions += 1
            covered_pcs.update(range(index, index + info["length"]))
        covered = sum(counts.get(i, 0) for i in covered_pcs)
        rcs = self._region_counters.values()
        fused_calls = sum(rc[0] for rc in rcs)
        fused_steps = sum(rc[1] for rc in rcs)
        arm_misses = sum(rc[2] for rc in rcs)
        demoted = sum(1 for rc in rcs if self._demoted(rc))
        masked_demoted = sum(1 for rc in rcs
                             if self._masked_demoted(rc))
        return {
            "compiled_regions": self.compiled_regions,
            "compiled_masked_variants": self.compiled_masked,
            "active_regions": regions,
            "cache_hits": self.cache_hits,
            "codegen_seconds": round(self.codegen_seconds, 6),
            "fused_calls": fused_calls,
            "fused_steps": fused_steps,
            "arm_misses": arm_misses,
            "masked_calls": sum(rc[4] for rc in rcs),
            "masked_steps": sum(rc[5] for rc in rcs),
            "masked_arm_misses": sum(rc[6] for rc in rcs),
            "demoted_regions": demoted,
            "masked_demoted_regions": masked_demoted,
            "steps_total": steps_total,
            "steps_outside_regions": max(0, steps_total - covered),
            "step_coverage": (round(covered / steps_total, 4)
                              if steps_total else 0.0),
        }

    def region_report(self):
        """Per-region rows for ``repro profile --regions``."""
        counts = self._pc_issue_counts
        entry_masks = self._entry_masks
        full_mask = self.sm._full_mask
        rows = []
        for (digest, index), info in sorted(self._region_info.items()):
            if digest != self._program_digest:
                continue
            rc = self._region_counters.get(
                (digest, index), [0, 0, 0, 0, 0, 0, 0, 0])
            retired = sum(counts.get(i, 0)
                          for i in range(index, index + info["length"]))
            pc = info["pc"]
            masks = {
                "0x%x" % mask: count
                for (epc, mask), count in entry_masks.items()
                if epc == pc
            }
            variants = sum(
                1 for (d, i, _mask) in self._masked_code_cache
                if d == digest and i == index)
            rows.append({
                "pc": pc,
                "length": info["length"],
                "specialized_steps": info["specialized"],
                "ops": info["ops"],
                "source_lines": info["lines"],
                "steps_retired": retired,
                "fused_calls": rc[0],
                "fused_steps": rc[1],
                "arm_misses": rc[2],
                "masked_calls": rc[4],
                "masked_steps": rc[5],
                "masked_arm_misses": rc[6],
                "masked_variants": variants,
                "entry_masks": masks,
                "full_entries": entry_masks.get((pc, full_mask), 0),
                "masked_entries": sum(
                    count for (epc, mask), count in entry_masks.items()
                    if epc == pc and mask != full_mask),
                "demoted": self._demoted(rc),
                "masked_demoted": self._masked_demoted(rc),
                "interpreted_steps": max(0, retired - rc[1] - rc[5]),
            })
        hot_misses = []
        regions = self._regions
        for idx, count in sorted(self._hot.items()):
            if regions.get(idx):
                entry = self._fused.get(idx << 2)
                if entry is not None and entry[1] is None:
                    # Formed but never promoted: the interpreted vector
                    # tier drove it (if at all) below the drive bar.
                    hot_misses.append({
                        "pc": idx << 2,
                        "count": count,
                        "reason": "formed, not compiled: %d drive "
                                  "attempt(s) < %d"
                                  % (self._drive_counts.get(entry[3], 0),
                                     self._promote_after),
                    })
                continue
            hot_misses.append({
                "pc": idx << 2,
                "count": count,
                "reason": self._rejects.get(
                    idx << 2, "below hot threshold (%d < %d)"
                    % (count, self._hot_threshold)),
            })
        histogram = {}
        for (pc, mask), count in sorted(self._entry_masks.items()):
            histogram.setdefault("0x%x" % pc, {})["0x%x" % mask] = count
        summary = self.jit_summary()
        return {
            "regions": rows,
            "uncompiled_hot_pcs": hot_misses,
            "entry_mask_histogram": histogram,
            "steps_outside_regions": summary["steps_outside_regions"],
            "steps_total": summary["steps_total"],
        }
