"""Pluggable execution backends for the SIMT pipeline.

A backend owns instruction decode and the issue/scheduler loop of one
:class:`~repro.simt.pipeline.StreamingMultiprocessor`; the SM keeps the
shared plumbing (register files, memory system, capability checks) that
every backend drives.  Two backends exist:

- ``scalar`` — the reference per-lane interpreter (one Python-level loop
  over active lanes per instruction).
- ``vector`` — lane-vectorized execution: symbolic uniform/affine operand
  forms, NumPy lane arrays on wide SMs, fast-path capability checks and a
  hot-trace specializer, falling back to the scalar semantics per-op for
  rare cases.  Bit-identical to ``scalar`` by construction.

Backends are selected by :attr:`repro.simt.config.SMConfig.backend`.
"""


def create_backend(name, sm):
    """Instantiate the backend ``name`` bound to ``sm``."""
    if name == "scalar":
        from repro.simt.backend.scalar import ScalarBackend
        return ScalarBackend(sm)
    if name == "vector":
        from repro.simt.backend.vector import VectorBackend
        return VectorBackend(sm)
    raise ValueError("unknown backend %r (choose scalar or vector)" % (name,))


BACKEND_NAMES = ("scalar", "vector")
