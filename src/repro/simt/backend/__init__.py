"""Pluggable execution backends for the SIMT pipeline.

A backend owns instruction decode and the issue/scheduler loop of one
:class:`~repro.simt.pipeline.StreamingMultiprocessor`; the SM keeps the
shared plumbing (register files, memory system, capability checks) that
every backend drives.  Three backends exist:

- ``scalar`` — the reference per-lane interpreter (one Python-level loop
  over active lanes per instruction).
- ``vector`` — lane-vectorized execution: symbolic uniform/affine operand
  forms, NumPy lane arrays on wide SMs, fast-path capability checks and a
  hot-trace specializer, falling back to the scalar semantics per-op for
  rare cases.  Bit-identical to ``scalar`` by construction.
- ``jit`` — the codegen trace-JIT tier layered on ``vector``: hot
  straight-line regions are compiled into fused Python closures
  specialized to the decoded instructions (constants inlined, capability
  checks hoisted, stats coalesced), cached by program digest so
  recompilation survives re-launches.  Bit-identical to ``scalar`` by
  construction, with the vectorized handlers as per-step fallback.

Backends are selected by :attr:`repro.simt.config.SMConfig.backend`,
whose default honours the ``REPRO_BACKEND`` environment variable.
"""


def create_backend(name, sm):
    """Instantiate the backend ``name`` bound to ``sm``."""
    if name == "scalar":
        from repro.simt.backend.scalar import ScalarBackend
        return ScalarBackend(sm)
    if name == "vector":
        from repro.simt.backend.vector import VectorBackend
        return VectorBackend(sm)
    if name == "jit":
        from repro.simt.backend.jit import JITBackend
        return JITBackend(sm)
    raise ValueError("unknown backend %r (choose scalar, vector or jit)"
                     % (name,))


BACKEND_NAMES = ("scalar", "vector", "jit")
