"""The execution-backend interface.

A backend is bound to one SM and provides three entry points:

- :meth:`Backend.decode` — classify one static instruction into a
  ``(handler, aux)`` pair, called once per instruction per launch;
- :meth:`Backend.issue` — execute one instruction for one warp at a given
  cycle, returning the cycle after the consumed issue slot(s);
- :meth:`Backend.run` — the barrel-scheduler loop, running the launched
  program to completion and returning the final cycle.

Backends must produce bit-identical simulated statistics, probe events and
fault semantics; only wall-clock speed may differ.  Tiers may subclass
each other (the ``jit`` tier extends ``vector``) and hook region
formation via :meth:`Backend.on_launch` plus backend-private state — the
bit-identity contract applies to every tier alike.  ``fault_cycle``
records the exact scheduler cycle at which a capability fault or software
trap escaped :meth:`run`, so the SM can report the same abort cycle
regardless of how the backend batches work internally.
"""


class Backend:
    """Base class for execution backends (see module docstring)."""

    #: Human-readable backend name (mirrors ``SMConfig.backend``).
    name = "base"

    def __init__(self, sm):
        self.sm = sm
        #: Cycle at which a fault escaped :meth:`run` (None = no fault).
        self.fault_cycle = None

    def on_launch(self):
        """Reset per-launch state (decode caches, hot counters)."""
        self.fault_cycle = None

    def decode(self, instr):
        raise NotImplementedError

    def issue(self, warp, cycle):
        raise NotImplementedError

    def run(self, max_cycles):
        raise NotImplementedError
