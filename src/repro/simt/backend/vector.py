"""The lane-vectorized execution backend.

Executes each issued instruction across all active lanes at once instead
of looping per lane, exploiting the same value regularity the compressed
register file detects (paper section 2.2):

- **symbolic forms** — operands are read as their stored compact forms
  (uniform / affine base+stride); uniform x uniform ALU ops evaluate the
  per-lane function once, affine forms propagate algebraically through
  add/sub/shift/mul, and results are written back as forms without ever
  expanding to per-lane lists;
- **object-free capability fast paths** — bounds, seal, permission and
  representability checks for a warp's uniform-metadata capability are
  evaluated once per issue from the packed metadata word using the
  CHERI Concentrate *k*-window: the decoded bounds are a pure function of
  the encoded bounds and ``k = ((addr >> E) - r) >> 8``, so equal *k*
  across lanes means one decode covers the warp;
- **vectorized memory lanes** — affine word-aligned address streams
  gather/scatter straight against the sparse word store, with O(1)
  coalescing and bank-conflict equivalents of the per-lane timing model;
- **NumPy lane arrays** — on wide SMs (>= 16 lanes) uncompressed integer
  operands run through uint32 array arithmetic;
- **run-ahead scheduling** — when one warp is solo-runnable (every other
  warp is blocked strictly further in the future), the scheduler issues
  it back-to-back without rescanning, which is exact because the barrel
  scheduler is deterministic and ties lose to the other warps;
- **hot-trace specialisation** — straight-line decoded regions that
  retire more than a threshold are compiled into a fused step list that
  chains the vectorized handlers without per-instruction scheduling,
  invalidated on every launch (programs are re-decoded per launch).

Any case the fast paths do not cover (divergence, faulting lane subsets,
sub-word or misaligned accesses, non-uniform metadata, CJALR, AMOs, ...)
falls back to the scalar reference path mid-instruction — operands
already read as forms are expanded and handed to the shared ``*_core``
helpers so no register is read twice — keeping the two backends
bit-identical in every simulated statistic, probe event and fault.  This
is enforced by the equivalence tests and ``repro lockstep``.
"""

from repro.cheri.capability import Capability, Perms
from repro.cheri import concentrate
from repro.cheri.exceptions import CapabilityFault
from repro.isa.instructions import Op
from repro.simt import alu
from repro.simt.backend.scalar import (
    ScalarBackend,
    _CGET_FN,
    _CIMM_FN,
    _CMOD1_FN,
    _CMOD2_FN,
)
from repro.simt.regfile.compressed import (
    _NULL_SCALAR,
    _Scalar,
    _Spilled,
    _Vector,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is expected in the image
    _np = None

MASK32 = 0xFFFFFFFF
MASK33 = (1 << 33) - 1
_FAR_FUTURE = 1 << 62

#: Minimum lane count before NumPy array arithmetic beats plain lists
#: (list<->array conversion dominates below this).
_NUMPY_MIN_LANES = 16

#: Consecutive converged solo visits to one static instruction before the
#: straight-line region starting there is compiled into a fused step list.
_HOT_THRESHOLD = 32

#: Upper bound on fused-region length (keeps step lists cache-friendly).
_MAX_REGION = 64

_P_LOAD = int(Perms.LOAD)
_P_STORE = int(Perms.STORE)
_P_LOAD_CAP = int(Perms.LOAD_CAP)
_P_STORE_CAP = int(Perms.STORE_CAP)

_ADD = alu.INT_FNS["add"]
_SUB = alu.INT_FNS["sub"]
_SLL = alu.INT_FNS["sll"]
_MUL = alu.INT_FNS["mul"]

#: NumPy-safe two-source integer ops (uint32 wraparound matches the
#: per-lane functions exactly; mulh/div/rem corner cases excluded).
_NP_RR = {}
if _np is not None:
    _NP_RR = {alu.INT_FNS[k]: k for k in (
        "add", "sub", "xor", "or", "and", "sll", "srl", "sra",
        "slt", "sltu", "mul")}

# Original (unpatched) capability-op lambdas, captured at import for the
# identity checks guarding semantics-specific fast paths.  A test that
# monkeypatches a dispatch-table entry automatically fails these checks
# and takes the generic path, which calls the patched function.
_FN_CGETADDR = _CGET_FN[Op.CGETADDR]
_META_ONLY_CGET = frozenset((
    _CGET_FN[Op.CGETTAG], _CGET_FN[Op.CGETPERM], _CGET_FN[Op.CGETTYPE],
    _CGET_FN[Op.CGETSEALED], _CGET_FN[Op.CGETFLAGS],
))
_FN_CMOVE = _CMOD1_FN[Op.CMOVE]
_FN_CCLEARTAG = _CMOD1_FN[Op.CCLEARTAG]
_FN_CINCOFFSET = _CMOD2_FN[Op.CINCOFFSET]
_FN_CSETADDR = _CMOD2_FN[Op.CSETADDR]
_FN_CINCOFFSETIMM = _CIMM_FN[Op.CINCOFFSETIMM]


def _affine(base, stride, lanes):
    """Canonical affine form, or None when the stride does not fit the
    SRF stride field (the expansion would not compress either)."""
    if lanes == 1 or stride == 0:
        return _Scalar(base & MASK32, 0)
    if -128 <= stride <= 127:
        return _Scalar(base & MASK32, stride)
    return None


def _signed_stride(stride32):
    stride32 &= MASK32
    return stride32 - (1 << 32) if stride32 >> 31 else stride32


def _sym_add(b1, s1, b2, s2, lanes):
    return _affine(b1 + b2, s1 + s2, lanes)


def _sym_sub(b1, s1, b2, s2, lanes):
    return _affine(b1 - b2, s1 - s2, lanes)


def _sym_mul(b1, s1, b2, s2, lanes):
    # (b1 + i*s1) * b2 = b1*b2 + i*(s1*b2) when one side is uniform.
    if s2 == 0:
        return _affine(b1 * b2, _signed_stride(s1 * b2), lanes)
    if s1 == 0:
        return _affine(b1 * b2, _signed_stride(b1 * s2), lanes)
    return None


def _sym_sll(b1, s1, b2, s2, lanes):
    if s2:
        return None
    k = b2 & 31
    return _affine(b1 << k, _signed_stride((s1 << k) & MASK32), lanes)


#: Affine-capable symbolic rules, keyed by the (unpatched) per-lane
#: function so a monkeypatched table entry bypasses them.
_SYM_RR = {_ADD: _sym_add, _SUB: _sym_sub, _MUL: _sym_mul, _SLL: _sym_sll}


def _expand(form, lanes):
    """Per-lane values of a form (a plain register file hands back its
    raw lane list and a VRF-resident vector its stored one, so callers
    must not mutate the result)."""
    t = type(form)
    if t is list:
        return form
    if t is _Vector:
        return form.values
    return form.expand(lanes, MASK32)


def _expand_meta(form, lanes):
    t = type(form)
    if t is list:
        return form
    if t is _Vector:
        return form.values
    return form.expand(lanes, MASK33)


class VectorBackend(ScalarBackend):
    """Lane-vectorized backend (see module docstring)."""

    name = "vector"

    #: Region-formation knobs, overridable per instance (tests lower the
    #: threshold; the JIT tier inherits both).
    _hot_threshold = _HOT_THRESHOLD
    _max_region = _MAX_REGION

    def __init__(self, sm):
        super().__init__(sm)
        #: meta register value -> (tag, otype, perms, bounds, exp, r).
        self._meta_info = {}
        #: (meta value, k-window) -> decoded (base, top).
        self._bounds_memo = {}
        self._hot = {}
        self._regions = {}
        #: (region start pc, entry mask) -> entry count.  Every region
        #: entry — full-warp or masked — lands here, so divergence
        #: starvation is visible per mask class in the region report.
        self._entry_masks = {}
        #: Cumulative per-static-instruction issue counts (index -> n),
        #: flushed alongside opcode_counts; feeds region coverage stats.
        self._pc_issue_counts = {}
        #: Optional multi-warp region driver hook (set by the JIT tier):
        #: called as ``convoy(picked, rq, cycle, icounts, max_cycles,
        #: KernelAbort)`` and returns ``(cycle, rotation)`` or None.
        self._convoy = None

    def on_launch(self):
        super().on_launch()
        # Hot-trace state is per program: launch re-decodes, so fused
        # regions from the previous program are invalid.
        self._hot = {}
        self._regions = {}
        self._entry_masks = {}
        # The metadata memos are program-independent (pure functions of
        # the packed word); just bound their growth.
        if len(self._bounds_memo) > (1 << 15):
            self._bounds_memo = {}
            self._meta_info = {}

    # ------------------------------------------------------------------
    # Decode: route to the vectorized handlers
    # ------------------------------------------------------------------

    def decode(self, instr):
        handler, aux = super().decode(instr)
        v = _VECTOR_FOR.get(handler.__func__)
        if v is not None:
            return getattr(self, v), aux
        return handler, aux

    # ------------------------------------------------------------------
    # Operand-form helpers
    # ------------------------------------------------------------------

    def _gp_form(self, warp, reg):
        if reg == 0:
            return _NULL_SCALAR
        sm = self.sm
        # Inline read_form's no-side-effect cases; only a spilled vector
        # needs the full reload-and-cost path.
        entry = sm.gp._entries.get((warp.index << 8) | reg)
        if entry is None:
            return _NULL_SCALAR
        t = type(entry)
        if t is _Vector:
            sm._gp_vec_touch = True
            return entry
        if t is not _Spilled:
            return entry
        form, report = sm.gp.read_form(warp.index, reg)
        if report is not None:
            sm._account_rf(report)
        if type(form) is _Vector:
            sm._gp_vec_touch = True
        return form

    def _meta_form(self, warp, reg):
        if reg == 0:
            return _NULL_SCALAR
        sm = self.sm
        entry = sm.meta._entries.get((warp.index << 8) | reg)
        if entry is None:
            return _NULL_SCALAR
        t = type(entry)
        if t is _Vector or t is list:
            sm._meta_vec_touch = True
            return entry
        if t is not _Spilled:
            return entry
        form, report = sm.meta.read_form(warp.index, reg)
        if report is not None:
            sm._account_rf(report)
        if type(form) is _Vector or type(form) is list:
            sm._meta_vec_touch = True
        return form

    def _forms_to_caps(self, f1, meta_f):
        """Materialise per-lane capabilities from already-read forms
        (mirrors ``sm._read_caps`` without touching the register files
        again — the forms carry the same values)."""
        n = self.sm._num_lanes
        addrs = _expand(f1, n)
        metas = _expand_meta(meta_f, n)
        from_meta_word = Capability.from_meta_word
        return [
            from_meta_word(metas[i] & MASK32, addrs[i], metas[i] > MASK32)
            for i in range(n)
        ]

    def _write_rd_form(self, warp, reg, form):
        """Full-mask write of a non-capability compact result."""
        if reg is None or reg == 0:
            return
        sm = self.sm
        sm.gp.write_form(warp.index, reg, form)
        meta = sm.meta
        if meta is not None:
            meta.write_form(warp.index, reg, _NULL_SCALAR)
            if sm._meta_plain:
                sm._meta_vec_touch = True

    def _write_rd_cap_form(self, warp, reg, gp_form, meta_val):
        """Full-mask write of a capability result with uniform metadata."""
        if reg is None or reg == 0:
            return
        sm = self.sm
        sm.gp.write_form(warp.index, reg, gp_form)
        meta = sm.meta
        if meta_val > MASK32:
            sm.stats.note_cap_register(warp.index, reg)
        meta.write_form(warp.index, reg, _Scalar(meta_val, 0))
        if sm._meta_plain:
            sm._meta_vec_touch = True

    def _write_rd_raw(self, warp, reg, values, mask, metas, tagged):
        """Mirror of ``sm._write_rd`` with precomputed metadata values
        (object-free CLC: no per-lane Capability construction)."""
        if reg is None or reg == 0:
            return
        sm = self.sm
        windex = warp.index
        gp = sm.gp
        report = gp.write(windex, reg, values, mask)
        if report.spills or report.reloads:
            sm._account_rf(report)
        if gp.is_uncompressed(windex, reg):
            sm._gp_vec_touch = True
        meta = sm.meta
        if tagged:
            sm.stats.note_cap_register(windex, reg)
        report = meta.write(windex, reg, metas, mask)
        if report.spills or report.reloads:
            sm._account_rf(report)
        if meta.is_uncompressed(windex, reg):
            sm._meta_vec_touch = True

    # ------------------------------------------------------------------
    # Object-free capability metadata
    # ------------------------------------------------------------------

    def _cap_info(self, meta_val):
        """(tag, otype, perms, bounds, exp, r) for a packed meta value."""
        info = self._meta_info.get(meta_val)
        if info is None:
            cap = Capability.from_meta_word(meta_val & MASK32, 0,
                                           meta_val > MASK32)
            bounds = cap.bounds
            exp, b8, _t8 = concentrate._reconstruct_mantissas(bounds)
            r = (b8 - 32) & 0xFF
            info = (cap.tag, cap.otype, int(cap.perms), bounds, exp, r)
            self._meta_info[meta_val] = info
        return info

    def _decoded_bounds(self, meta_val, bounds, exp, r, addr):
        """(base, top) decoded at ``addr``, memoised by the *k*-window
        (the decode is constant while ``((addr >> exp) - r) >> 8`` is)."""
        k = ((addr >> exp) - r) >> 8
        key = (meta_val, k)
        bt = self._bounds_memo.get(key)
        if bt is None:
            bt = concentrate.decode_bounds(bounds, addr)
            self._bounds_memo[key] = bt
        return bt

    # ------------------------------------------------------------------
    # Integer ALU
    # ------------------------------------------------------------------

    def _v_int_r(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, is_sfu = aux
        f1 = self._gp_form(warp, instr.rs1)
        f2 = self._gp_form(warp, instr.rs2)
        num_lanes = sm._num_lanes
        full = mask == sm._full_mask
        out = None
        if type(f1) is _Scalar and type(f2) is _Scalar:
            s1 = f1.stride
            s2 = f2.stride
            if s1 == 0 and s2 == 0:
                if full:
                    out = _Scalar(fn(f1.base, f2.base) & MASK32, 0)
                else:
                    # Masked uniform: one evaluation; the masked write
                    # ignores the inactive positions of the value list.
                    sm._write_rd(warp, instr.rd,
                                 [fn(f1.base, f2.base)] * num_lanes, mask)
                    if is_sfu:
                        sm._sfu_issue(lanes)
                    sm._advance(warp, lanes, pc + 4)
                    return
            elif full:
                sym = _SYM_RR.get(fn)
                if sym is not None:
                    out = sym(f1.base, s1, f2.base, s2, num_lanes)
        if out is not None:
            self._write_rd_form(warp, instr.rd, out)
        else:
            a = _expand(f1, num_lanes)
            b = _expand(f2, num_lanes)
            if full:
                values = self._int_lanes(fn, a, b, num_lanes)
            else:
                values = [0] * num_lanes
                for lane in lanes:
                    values[lane] = fn(a[lane], b[lane])
            sm._write_rd(warp, instr.rd, values, mask)
        if is_sfu:
            sm._sfu_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    def _v_int_i(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, imm = aux
        f1 = self._gp_form(warp, instr.rs1)
        num_lanes = sm._num_lanes
        full = mask == sm._full_mask
        out = None
        if type(f1) is _Scalar:
            s1 = f1.stride
            if s1 == 0:
                if full:
                    out = _Scalar(fn(f1.base, imm) & MASK32, 0)
                else:
                    sm._write_rd(warp, instr.rd,
                                 [fn(f1.base, imm)] * num_lanes, mask)
                    sm._advance(warp, lanes, pc + 4)
                    return
            elif not full:
                pass
            elif fn is _ADD:
                out = _Scalar((f1.base + imm) & MASK32, s1)
            else:
                sym = _SYM_RR.get(fn)
                if sym is not None:
                    out = sym(f1.base, s1, imm, 0, num_lanes)
        if out is not None:
            self._write_rd_form(warp, instr.rd, out)
        else:
            a = _expand(f1, num_lanes)
            if full:
                values = self._int_lanes(fn, a, imm, num_lanes)
            else:
                values = [0] * num_lanes
                for lane in lanes:
                    values[lane] = fn(a[lane], imm)
            sm._write_rd(warp, instr.rd, values, mask)
        sm._advance(warp, lanes, pc + 4)

    def _int_lanes(self, fn, a, b, num_lanes):
        """Full-mask per-lane integer compute; NumPy arrays on wide SMs."""
        if num_lanes >= _NUMPY_MIN_LANES:
            key = _NP_RR.get(fn)
            if key is not None:
                return _np_int(key, a, b)
        if type(b) is int:
            return [fn(a[i], b) for i in range(num_lanes)]
        return [fn(a[i], b[i]) for i in range(num_lanes)]

    def _v_lui(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        if mask != sm._full_mask:
            return self._h_lui(warp, instr, pc, lanes, mask, aux)
        self._write_rd_form(warp, instr.rd, _Scalar(aux, 0))
        sm._advance(warp, lanes, pc + 4)

    def _v_auipc(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        if mask != sm._full_mask:
            return self._h_auipc(warp, instr, pc, lanes, mask, aux)
        self._write_rd_form(warp, instr.rd, _Scalar((pc + aux) & MASK32, 0))
        sm._advance(warp, lanes, pc + 4)

    # ------------------------------------------------------------------
    # Branches and jumps
    # ------------------------------------------------------------------

    def _v_branch(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, imm = aux
        f1 = self._gp_form(warp, instr.rs1)
        f2 = self._gp_form(warp, instr.rs2)
        pcs = warp.pcs
        if type(f1) is _Scalar and f1.stride == 0 and \
                type(f2) is _Scalar and f2.stride == 0:
            target = (pc + imm) & MASK32 if fn(f1.base, f2.base) else pc + 4
            for lane in lanes:
                pcs[lane] = target
            return
        num_lanes = sm._num_lanes
        a = _expand(f1, num_lanes)
        b = _expand(f2, num_lanes)
        taken_pc = (pc + imm) & MASK32
        next_pc = pc + 4
        for lane in lanes:
            pcs[lane] = taken_pc if fn(a[lane], b[lane]) else next_pc

    def _v_jal(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        imm, is_cjal = aux
        next_pc = pc + 4
        full = mask == sm._full_mask
        if instr.rd:
            if is_cjal:
                metas = warp.pcc_meta
                m = metas[0]
                if metas.count(m) != sm._num_lanes:
                    return self._h_jal(warp, instr, pc, lanes, mask, aux)
                link = Capability.from_meta_word(m & MASK32, next_pc,
                                                bool(m >> 32)).seal_entry()
                mv = link.meta_word() | (link.tag << 32)
                if full:
                    self._write_rd_cap_form(
                        warp, instr.rd, _Scalar(next_pc & MASK32, 0), mv)
                else:
                    num_lanes = sm._num_lanes
                    self._write_rd_raw(warp, instr.rd,
                                       [next_pc] * num_lanes, mask,
                                       [mv] * num_lanes, bool(link.tag))
            elif full:
                self._write_rd_form(warp, instr.rd,
                                    _Scalar(next_pc & MASK32, 0))
            else:
                sm._write_rd(warp, instr.rd,
                             [next_pc] * sm._num_lanes, mask)
        sm._advance(warp, lanes, (pc + imm) & MASK32)

    def _v_jalr(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        full = mask == sm._full_mask
        f1 = self._gp_form(warp, instr.rs1)
        if type(f1) is not _Scalar or f1.stride != 0:
            num_lanes = sm._num_lanes
            a = _expand(f1, num_lanes)
            targets = [0] * num_lanes
            for lane in lanes:
                targets[lane] = (a[lane] + aux) & ~1 & MASK32
            if instr.rd:
                if full:
                    self._write_rd_form(warp, instr.rd,
                                        _Scalar((pc + 4) & MASK32, 0))
                else:
                    sm._write_rd(warp, instr.rd,
                                 [pc + 4] * num_lanes, mask)
            pcs = warp.pcs
            for lane in lanes:
                pcs[lane] = targets[lane]
            return
        target = (f1.base + aux) & ~1 & MASK32
        if instr.rd:
            if full:
                self._write_rd_form(warp, instr.rd,
                                    _Scalar((pc + 4) & MASK32, 0))
            else:
                sm._write_rd(warp, instr.rd,
                             [pc + 4] * sm._num_lanes, mask)
        pcs = warp.pcs
        for lane in lanes:
            pcs[lane] = target

    # ------------------------------------------------------------------
    # Floating point.  No NumPy here: the uniform path calls the scalar
    # function once, keeping NaN payloads and rounding bit-exact.
    # ------------------------------------------------------------------

    def _v_float_rr(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, is_sfu = aux
        f1 = self._gp_form(warp, instr.rs1)
        f2 = self._gp_form(warp, instr.rs2)
        num_lanes = sm._num_lanes
        full = mask == sm._full_mask
        if type(f1) is _Scalar and f1.stride == 0 and \
                type(f2) is _Scalar and f2.stride == 0:
            if full:
                self._write_rd_form(warp, instr.rd,
                                    _Scalar(fn(f1.base, f2.base) & MASK32, 0))
            else:
                sm._write_rd(warp, instr.rd,
                             [fn(f1.base, f2.base)] * num_lanes, mask)
        else:
            a = _expand(f1, num_lanes)
            b = _expand(f2, num_lanes)
            if full:
                values = [fn(a[i], b[i]) for i in range(num_lanes)]
            else:
                values = [0] * num_lanes
                for lane in lanes:
                    values[lane] = fn(a[lane], b[lane])
            sm._write_rd(warp, instr.rd, values, mask)
        if is_sfu:
            sm._sfu_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    def _v_float_unary(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, is_sfu = aux
        f1 = self._gp_form(warp, instr.rs1)
        num_lanes = sm._num_lanes
        full = mask == sm._full_mask
        if type(f1) is _Scalar and f1.stride == 0:
            if full:
                self._write_rd_form(warp, instr.rd,
                                    _Scalar(fn(f1.base) & MASK32, 0))
            else:
                sm._write_rd(warp, instr.rd,
                             [fn(f1.base)] * num_lanes, mask)
        else:
            a = _expand(f1, num_lanes)
            if full:
                values = [fn(a[i]) for i in range(num_lanes)]
            else:
                values = [0] * num_lanes
                for lane in lanes:
                    values[lane] = fn(a[lane])
            sm._write_rd(warp, instr.rd, values, mask)
        if is_sfu:
            sm._sfu_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def _v_memory(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        width, is_cap, is_store, is_amo, amo_fn, signed, imm = aux
        if is_amo:
            return self._h_memory(warp, instr, pc, lanes, mask, aux)

        # Operand fetch in the scalar order: rs1 address word(s), then
        # rs1 metadata for capability addressing.
        f1 = self._gp_form(warp, instr.rs1)
        meta_f = self._meta_form(warp, instr.rs1) if is_cap else None
        if (mask != sm._full_mask or type(f1) is not _Scalar or
                (is_cap and (type(meta_f) is not _Scalar or
                             meta_f.stride != 0))):
            # Any-mask / any-pattern path; it handles per-lane metadata
            # through the decode memos too.
            return self._v_memory_general(warp, instr, pc, lanes, mask, aux,
                                          f1, meta_f)

        op = instr.op
        num_lanes = sm._num_lanes
        base = f1.base
        stride = f1.stride
        span = (num_lanes - 1) * stride
        # Wrap-free capability address range (pre-immediate) and access
        # range, so plain int arithmetic stands in for mod-2^32 (this
        # also implies the memory model's own range check passes).
        c_lo = base + (span if stride < 0 else 0)
        c_hi = base + (span if stride > 0 else 0)
        a_lo = c_lo + imm
        a_hi = c_hi + imm
        if c_lo < 0 or c_hi + width > (1 << 32) or \
                a_lo < 0 or a_hi + width > (1 << 32):
            return self._memory_fallback(warp, instr, pc, lanes, mask, aux,
                                         f1, meta_f)
        if a_lo % width or stride % width:
            # Misaligned lanes (which fault lane-first in the memory
            # model) stay on the reference path.
            return self._memory_fallback(warp, instr, pc, lanes, mask, aux,
                                         f1, meta_f)

        if is_cap:
            meta_val = meta_f.base
            tag, otype, perms, bounds, exp, r = self._cap_info(meta_val)
            need = _P_STORE if is_store else _P_LOAD
            if not tag or otype != 0 or not (perms & need):
                # Exact per-lane fault ordering and message.
                return self._memory_fallback(warp, instr, pc, lanes, mask,
                                             aux, f1, meta_f)
            if (((c_lo >> exp) - r) >> 8) != (((c_hi >> exp) - r) >> 8):
                return self._memory_fallback(warp, instr, pc, lanes, mask,
                                             aux, f1, meta_f)
            dec_base, dec_top = self._decoded_bounds(meta_val, bounds,
                                                    exp, r, c_lo)
            if not (dec_base <= a_lo and a_hi + width <= dec_top):
                return self._memory_fallback(warp, instr, pc, lanes, mask,
                                             aux, f1, meta_f)

        memory = sm.memory
        words = memory._words
        if op is Op.CSC:
            f2 = self._gp_form(warp, instr.rs2)
            meta2 = self._meta_form(warp, instr.rs2)
            addrs2 = _expand(f2, num_lanes)
            metas2 = _expand_meta(meta2, num_lanes)
            if not (perms & _P_STORE_CAP) and \
                    any(m > MASK32 for m in metas2):
                # Per-lane STORE_CAP fault: replay on the reference path
                # (the fault ordering depends on the faulting lane).
                return self._memory_core(
                    warp, instr, pc, lanes, mask, aux,
                    self._forms_to_caps(f1, meta_f), None)
            # Inline write_cap_raw: alignment and range were verified
            # above (width 8, aligned base and stride, in-range span), so
            # the model's _check can never fire here.
            tags = memory._tags
            tags_add = tags.add
            tags_discard = tags.discard
            addr = base + imm
            for i in range(num_lanes):
                m2 = metas2[i]
                index = addr >> 2
                words[index] = addrs2[i] & MASK32
                words[index + 1] = m2 & MASK32
                if m2 > MASK32:
                    tags_add(index)
                    tags_add(index + 1)
                else:
                    tags_discard(index)
                    tags_discard(index + 1)
                addr += stride
            self._fast_mem_timing(op, base + imm, stride, width, num_lanes,
                                  True, warp)
            sm._advance(warp, lanes, pc + 4)
            return
        if op is Op.CLC:
            # Inline read_cap_raw (same pre-verified-_check argument as the
            # CSC path above); lo/hi words are < 2**32 so the raw 64-bit
            # reassembly splits back into exactly (hi, lo).
            get = words.get
            tags = memory._tags
            strip = not (perms & _P_LOAD_CAP)
            out = [0] * num_lanes
            metas = [0] * num_lanes
            tagged = False
            addr = base + imm
            for i in range(num_lanes):
                index = addr >> 2
                addr += stride
                hi = get(index + 1, 0)
                if not strip and index in tags and index + 1 in tags:
                    tagged = True
                    metas[i] = hi | (1 << 32)
                else:
                    metas[i] = hi
                out[i] = get(index, 0)
            self._write_rd_raw(warp, instr.rd, out, mask, metas, tagged)
            self._fast_mem_timing(op, base + imm, stride, width, num_lanes,
                                  False, warp)
            sm._advance(warp, lanes, pc + 4)
            return

        if is_store:
            f2 = self._gp_form(warp, instr.rs2)
            discard = memory._tags.discard
            if width < 4:
                # Sub-word read-modify-write in lane order (later lanes
                # legitimately overwrite earlier lanes' bytes of the same
                # word; lane order is the model's order).
                get = words.get
                wbits = width * 8
                vmask = (1 << wbits) - 1
                values = _expand(f2, num_lanes)
                addr = base + imm
                for i in range(num_lanes):
                    index = addr >> 2
                    shift = (addr & 3) * 8
                    m = vmask << shift
                    words[index] = (get(index, 0) & ~m) | \
                        ((values[i] & vmask) << shift)
                    discard(index)
                    addr += stride
            elif stride == 0:
                # Lane-serial writes to one address: the last lane wins.
                if type(f2) is _Scalar:
                    value = (f2.base + (num_lanes - 1) * f2.stride) & MASK32
                else:
                    value = _expand(f2, num_lanes)[num_lanes - 1] & MASK32
                index = (base + imm) >> 2
                words[index] = value
                discard(index)
            else:
                values = _expand(f2, num_lanes)
                addr = base + imm
                for i in range(num_lanes):
                    index = addr >> 2
                    words[index] = values[i] & MASK32
                    discard(index)
                    addr += stride
            self._fast_mem_timing(op, base + imm, stride, width, num_lanes,
                                  True, warp)
            sm._advance(warp, lanes, pc + 4)
            return

        # Loads (word, halfword, byte).
        get = words.get
        addr = base + imm
        if width < 4:
            wbits = width * 8
            vmask = (1 << wbits) - 1
            sbit = 1 << (wbits - 1)
            out = [0] * num_lanes
            for i in range(num_lanes):
                value = (get(addr >> 2, 0) >> ((addr & 3) * 8)) & vmask
                if signed and value & sbit:
                    value -= 1 << wbits
                out[i] = value & MASK32
                addr += stride
        elif stride == 0:
            out = [get(addr >> 2, 0)] * num_lanes
        else:
            out = [0] * num_lanes
            for i in range(num_lanes):
                out[i] = get(addr >> 2, 0)
                addr += stride
        sm._write_rd(warp, instr.rd, out, mask)
        self._fast_mem_timing(op, base + imm, stride, width, num_lanes,
                              False, warp)
        sm._advance(warp, lanes, pc + 4)

    def _v_memory_general(self, warp, instr, pc, lanes, mask, aux, f1,
                          meta_f):
        """Any-mask, any-address-pattern word accesses (uniform metadata).

        Per-lane bounds decodes hit the *k*-window memo, gathers/scatters
        go straight against the word store, and timing is charged per
        coalesced line.  Every check for every active lane completes
        before any mutation, so a fallback mid-check is an exact replay
        of the reference path.
        """
        sm = self.sm
        width, is_cap, is_store, _is_amo, _amo_fn, signed, imm = aux
        num_lanes = sm._num_lanes
        vals = _expand(f1, num_lanes)
        addrs = []
        append = addrs.append
        limit = (1 << 32) - width
        for lane in lanes:
            a = (vals[lane] + imm) & MASK32
            if a % width or a > limit:
                # Misaligned lanes fault lane-first in the memory model;
                # end-of-space accesses wrap there too.
                return self._memory_fallback(warp, instr, pc, lanes, mask,
                                             aux, f1, meta_f)
            append(a)
        op = instr.op
        lane_perms = None
        if is_cap:
            need = _P_STORE if is_store else _P_LOAD
            decoded = self._decoded_bounds
            if type(meta_f) is _Scalar and meta_f.stride == 0:
                meta_val = meta_f.base
                tag, otype, perms, bounds, exp, r = self._cap_info(meta_val)
                if not tag or otype != 0 or not (perms & need):
                    # Exact per-lane fault ordering and message.
                    return self._memory_fallback(warp, instr, pc, lanes,
                                                 mask, aux, f1, meta_f)
                # Inline the k-window memo; gather lanes usually share
                # one window, so the previous lane's decode is cached in
                # locals before the dict is consulted.
                memo_get = self._bounds_memo.get
                memo = self._bounds_memo
                last_k = dec_base = dec_top = None
                for j, lane in enumerate(lanes):
                    va = vals[lane]
                    k = ((va >> exp) - r) >> 8
                    if k != last_k:
                        key = (meta_val, k)
                        bt = memo_get(key)
                        if bt is None:
                            bt = concentrate.decode_bounds(bounds, va)
                            memo[key] = bt
                        dec_base, dec_top = bt
                        last_k = k
                    a = addrs[j]
                    if not (dec_base <= a and a + width <= dec_top):
                        return self._memory_fallback(warp, instr, pc, lanes,
                                                     mask, aux, f1, meta_f)
            else:
                # Per-lane metadata: same lane-ordered check sequence as
                # the reference path (tag, seal, permission, bounds per
                # lane, next lane), so the first failing lane is the one
                # the replay faults on.
                metas = _expand_meta(meta_f, num_lanes)
                cap_info = self._cap_info
                lane_perms = [0] * num_lanes
                for j, lane in enumerate(lanes):
                    meta_val = metas[lane]
                    tag, otype, perms, bounds, exp, r = cap_info(meta_val)
                    if not tag or otype != 0 or not (perms & need):
                        return self._memory_fallback(warp, instr, pc, lanes,
                                                     mask, aux, f1, meta_f)
                    dec_base, dec_top = decoded(meta_val, bounds, exp, r,
                                                vals[lane])
                    a = addrs[j]
                    if not (dec_base <= a and a + width <= dec_top):
                        return self._memory_fallback(warp, instr, pc, lanes,
                                                     mask, aux, f1, meta_f)
                    lane_perms[lane] = perms
        memory = sm.memory
        words = memory._words
        if op is Op.CSC:
            f2 = self._gp_form(warp, instr.rs2)
            meta2 = self._meta_form(warp, instr.rs2)
            addrs2 = _expand(f2, num_lanes)
            metas2 = _expand_meta(meta2, num_lanes)
            if lane_perms is None:
                if not (perms & _P_STORE_CAP):
                    for lane in lanes:
                        if metas2[lane] > MASK32:
                            # Per-lane STORE_CAP fault: replay on the
                            # reference path (nothing written yet).
                            return self._memory_core(
                                warp, instr, pc, lanes, mask, aux,
                                self._forms_to_caps(f1, meta_f), None)
            else:
                for lane in lanes:
                    if metas2[lane] > MASK32 and \
                            not (lane_perms[lane] & _P_STORE_CAP):
                        return self._memory_core(
                            warp, instr, pc, lanes, mask, aux,
                            self._forms_to_caps(f1, meta_f), None)
            # Inline write_cap_raw: per-lane alignment and range were
            # verified in the address loop above, so _check cannot fire.
            tags = memory._tags
            tags_add = tags.add
            tags_discard = tags.discard
            for j, lane in enumerate(lanes):
                m2 = metas2[lane]
                index = addrs[j] >> 2
                words[index] = addrs2[lane] & MASK32
                words[index + 1] = m2 & MASK32
                if m2 > MASK32:
                    tags_add(index)
                    tags_add(index + 1)
                else:
                    tags_discard(index)
                    tags_discard(index + 1)
            self._mem_timing_addrs(op, addrs, width, True, warp, lanes)
            sm._advance(warp, lanes, pc + 4)
            return
        if op is Op.CLC:
            # Inline read_cap_raw (pre-verified _check, split hi/lo reads
            # as in the affine path).
            get = words.get
            tags = memory._tags
            out = [0] * num_lanes
            out_metas = [0] * num_lanes
            tagged = False
            if lane_perms is None:
                strip = not (perms & _P_LOAD_CAP)
                for j, lane in enumerate(lanes):
                    index = addrs[j] >> 2
                    hi = get(index + 1, 0)
                    if not strip and index in tags and index + 1 in tags:
                        tagged = True
                        out_metas[lane] = hi | (1 << 32)
                    else:
                        out_metas[lane] = hi
                    out[lane] = get(index, 0)
            else:
                for j, lane in enumerate(lanes):
                    index = addrs[j] >> 2
                    hi = get(index + 1, 0)
                    if (lane_perms[lane] & _P_LOAD_CAP) and \
                            index in tags and index + 1 in tags:
                        tagged = True
                        out_metas[lane] = hi | (1 << 32)
                    else:
                        out_metas[lane] = hi
                    out[lane] = get(index, 0)
            self._write_rd_raw(warp, instr.rd, out, mask, out_metas, tagged)
            self._mem_timing_addrs(op, addrs, width, False, warp, lanes)
            sm._advance(warp, lanes, pc + 4)
            return
        if is_store:
            f2 = self._gp_form(warp, instr.rs2)
            values = _expand(f2, num_lanes)
            discard = memory._tags.discard
            if width < 4:
                # Sub-word read-modify-write in lane order.
                get = words.get
                wbits = width * 8
                vmask = (1 << wbits) - 1
                for j, lane in enumerate(lanes):
                    a = addrs[j]
                    index = a >> 2
                    shift = (a & 3) * 8
                    m = vmask << shift
                    words[index] = (get(index, 0) & ~m) | \
                        ((values[lane] & vmask) << shift)
                    discard(index)
            else:
                for j, lane in enumerate(lanes):
                    index = addrs[j] >> 2
                    words[index] = values[lane] & MASK32
                    discard(index)
            self._mem_timing_addrs(op, addrs, width, True, warp, lanes)
            sm._advance(warp, lanes, pc + 4)
            return
        get = words.get
        out = [0] * num_lanes
        if width < 4:
            wbits = width * 8
            vmask = (1 << wbits) - 1
            sbit = 1 << (wbits - 1)
            for j, lane in enumerate(lanes):
                a = addrs[j]
                value = (get(a >> 2, 0) >> ((a & 3) * 8)) & vmask
                if signed and value & sbit:
                    value -= 1 << wbits
                out[lane] = value & MASK32
        else:
            for j, lane in enumerate(lanes):
                out[lane] = get(addrs[j] >> 2, 0)
        sm._write_rd(warp, instr.rd, out, mask)
        self._mem_timing_addrs(op, addrs, width, False, warp, lanes)
        sm._advance(warp, lanes, pc + 4)

    def _mem_timing_addrs(self, op, addrs, width, is_write, warp, lanes):
        """Timing for an explicit active-lane address list: the general
        path's equivalent of ``sm._memory_access`` (same stats, same DRAM
        request order)."""
        sm = self.sm
        if sm.probes is not None:
            sm._memory_access(
                op, [(lanes[j], addrs[j], width)
                     for j in range(len(addrs))], warp, is_write)
            return
        cfg = sm.cfg
        lo = min(addrs)
        hi = max(addrs)
        scratchpad = sm.scratchpad
        sp_base = scratchpad.base
        sp_end = sp_base + scratchpad.size_bytes
        if sp_base <= lo and hi < sp_end:
            conflicts = scratchpad.conflict_cycles(addrs)
            sm._extra_issue += conflicts
            stats = sm.stats
            stats.stall_bank_conflict += conflicts
            stats.scratchpad_accesses += len(addrs)
            ready = sm._cycle + cfg.scratchpad_latency
            if ready > sm._mem_ready:
                sm._mem_ready = ready
            if width == 8:
                sm._extra_issue += 1
            return
        line_bytes = cfg.dram_line_bytes
        stack = sm.stack_cache
        if (hi + width > sp_base and lo < sp_end) or \
                (stack is not None and hi + width > stack.base and
                 lo < stack.base + stack.size_bytes) or \
                line_bytes % width:
            # Mixed scratchpad/global, stateful stack cache, or lines the
            # alignment guard cannot rule out straddling: reference path.
            sm._memory_access(
                op, [(lanes[j], addrs[j], width)
                     for j in range(len(addrs))], warp, is_write)
            return
        writes_tag = is_write and op is Op.CSC
        sm._mem_ready = self._charge_lines(
            sm._cycle, sorted({a // line_bytes for a in addrs}), line_bytes,
            is_write, writes_tag, sm._mem_ready)
        if width == 8:
            sm._extra_issue += 1

    def _memory_fallback(self, warp, instr, pc, lanes, mask, aux, f1,
                         meta_f):
        """Reference-path memory semantics from already-read operands."""
        if meta_f is None:
            bases = _expand(f1, self.sm._num_lanes)
            return self._memory_core(warp, instr, pc, lanes, mask, aux,
                                     None, bases)
        return self._memory_core(warp, instr, pc, lanes, mask, aux,
                                 self._forms_to_caps(f1, meta_f), None)

    def _fast_mem_timing(self, op, addr0, stride, width, n, is_write, warp):
        """O(1)-per-line equivalent of ``sm._memory_access`` for a
        wrap-free affine access stream (same stats, same DRAM order)."""
        sm = self.sm
        if sm.probes is not None:
            # The probe bus sees one mem_txn event per coalesced line;
            # keep the reference path authoritative for observed runs.
            return self._materialised_timing(op, addr0, stride, width, n,
                                             is_write, warp)
        cfg = sm.cfg
        span = (n - 1) * stride
        lo = addr0 + (span if stride < 0 else 0)
        hi = addr0 + (span if stride > 0 else 0)
        scratchpad = sm.scratchpad
        sp_base = scratchpad.base
        sp_end = sp_base + scratchpad.size_bytes
        if sp_base <= lo and hi < sp_end:
            # Entirely in scratchpad (the lane range is an interval).
            if stride == 0 or \
                    (stride in (4, -4) and n <= scratchpad.num_banks):
                conflicts = 0
            else:
                conflicts = scratchpad.conflict_cycles(
                    [addr0 + i * stride for i in range(n)])
            sm._extra_issue += conflicts
            sm.stats.stall_bank_conflict += conflicts
            sm.stats.scratchpad_accesses += n
            ready = sm._cycle + cfg.scratchpad_latency
            if ready > sm._mem_ready:
                sm._mem_ready = ready
            if width == 8:
                sm._extra_issue += 1
            return
        if hi + width > sp_base and lo < sp_end:
            # Some lane may touch the scratchpad: reference path.
            return self._materialised_timing(op, addr0, stride, width, n,
                                             is_write, warp)
        stack = sm.stack_cache
        if stack is not None and hi + width > stack.base and \
                lo < stack.base + stack.size_bytes:
            # The stack cache is stateful (tags, writebacks): any
            # overlap goes through the reference path.
            return self._materialised_timing(op, addr0, stride, width, n,
                                             is_write, warp)
        line_bytes = cfg.dram_line_bytes
        if stride > line_bytes or -stride > line_bytes:
            # Lanes can skip whole lines: coalescing is no longer a
            # contiguous range.
            return self._materialised_timing(op, addr0, stride, width, n,
                                             is_write, warp)
        first = lo // line_bytes
        last = (hi + width - 1) // line_bytes
        writes_tag = is_write and op is Op.CSC
        sm._mem_ready = self._charge_lines(
            sm._cycle, range(first, last + 1), line_bytes,
            is_write, writes_tag, sm._mem_ready)
        if width == 8:
            sm._extra_issue += 1

    def _materialised_timing(self, op, addr0, stride, width, n, is_write,
                             warp):
        accesses = [(i, (addr0 + i * stride) & MASK32, width)
                    for i in range(n)]
        self.sm._memory_access(op, accesses, warp, is_write)

    def _charge_lines(self, cycle, lines, line_bytes, is_write, writes_tag,
                      mem_ready):
        """Per-line tag + DRAM accounting with the model calls unrolled.

        Bit-identical to calling ``tag_controller.access`` followed by
        ``dram.request(cycle, is_write, line_bytes)`` for each line in
        order (the per-call bodies are replicated here with their state
        hoisted into locals, because gather-heavy kernels touch one line
        per lane and the call overhead dominates).  Returns the updated
        memory-ready bound.
        """
        sm = self.sm
        dram = sm.dram
        latency = dram.latency
        cpt = dram.cycles_per_txn
        dstats = dram.stats
        next_free = dram._next_free
        slots = max(1, -(-line_bytes // dram.line_bytes))
        step = slots * cpt
        txns = 0
        enable_cheri = sm.cfg.enable_cheri
        if enable_cheri:
            tag = sm.tag_controller
            dirty = tag._dirty_regions
            tcache = tag._cache
            cache_lines = tag.cache_lines
            tag_line_words = tag.line_words
            region_words = tag.region_words
            tag_bytes = tag_line_words // 8
            tag_slots = max(1, -(-tag_bytes // dram.line_bytes))
            tag_step = tag_slots * cpt
            tag_txns = 0
            hits = 0
            misses = 0
            skips = 0
        for line in lines:
            if enable_cheri:
                word = (line * line_bytes) >> 2
                if writes_tag:
                    dirty.add(word // region_words)
                    check = True
                elif word // region_words in dirty:
                    check = True
                else:
                    skips += 1
                    check = False
                if check:
                    tline = word // tag_line_words
                    index = tline % cache_lines
                    if tcache.get(index) == tline:
                        hits += 1
                    else:
                        misses += 1
                        tcache[index] = tline
                        # dram.request(cycle, False, tag_bytes,
                        #              tag_traffic=True)
                        start = cycle if cycle > next_free else next_free
                        next_free = start + tag_step
                        tag_txns += tag_slots
                        done = next_free + latency
                        if done > mem_ready:
                            mem_ready = done
            # dram.request(cycle, is_write, line_bytes)
            start = cycle if cycle > next_free else next_free
            next_free = start + step
            txns += slots
            done = next_free + latency
            if done > mem_ready:
                mem_ready = done
        dram._next_free = next_free
        n = len(lines)
        if is_write:
            dstats.write_txns += txns
            dstats.write_bytes += n * line_bytes
        else:
            dstats.read_txns += txns
            dstats.read_bytes += n * line_bytes
        if enable_cheri:
            tag.hits += hits
            tag.misses += misses
            tag.zero_region_skips += skips
            if tag_txns:
                dstats.read_txns += tag_txns
                read_bytes = misses * tag_bytes
                dstats.read_bytes += read_bytes
                dstats.tag_bytes += read_bytes
        return mem_ready

    # ------------------------------------------------------------------
    # CHERI non-memory
    # ------------------------------------------------------------------

    def _v_cget(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, slow = aux
        f1 = self._gp_form(warp, instr.rs1)
        meta_f = self._meta_form(warp, instr.rs1)
        uniform_meta = type(meta_f) is _Scalar and meta_f.stride == 0
        full = mask == sm._full_mask
        value = None
        out = None
        if type(f1) is _Scalar:
            if f1.stride == 0 and uniform_meta:
                m = meta_f.base
                cap = Capability.from_meta_word(m & MASK32, f1.base,
                                               m > MASK32)
                value = fn(cap) & MASK32
            elif fn is _FN_CGETADDR and full:
                out = _Scalar(f1.base, f1.stride)
        if value is None and out is None and uniform_meta and \
                fn in _META_ONLY_CGET:
            m = meta_f.base
            cap = Capability.from_meta_word(m & MASK32, 0, m > MASK32)
            value = fn(cap) & MASK32
        if value is not None:
            if full:
                self._write_rd_form(warp, instr.rd, _Scalar(value, 0))
            else:
                sm._write_rd(warp, instr.rd, [value] * sm._num_lanes, mask)
        elif out is not None:
            self._write_rd_form(warp, instr.rd, out)
        else:
            return self._cget_core(warp, instr, pc, lanes, mask, fn, slow,
                                   self._forms_to_caps(f1, meta_f))
        if slow:
            sm._sfu_cheri_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    def _v_crr(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, slow = aux
        f1 = self._gp_form(warp, instr.rs1)
        num_lanes = sm._num_lanes
        full = mask == sm._full_mask
        if type(f1) is _Scalar and f1.stride == 0:
            if full:
                self._write_rd_form(warp, instr.rd,
                                    _Scalar(fn(f1.base) & MASK32, 0))
            else:
                sm._write_rd(warp, instr.rd,
                             [fn(f1.base)] * num_lanes, mask)
        else:
            a = _expand(f1, num_lanes)
            if full:
                values = [fn(a[i]) & MASK32 for i in range(num_lanes)]
            else:
                values = [0] * num_lanes
                for lane in lanes:
                    values[lane] = fn(a[lane])
            sm._write_rd(warp, instr.rd, values, mask)
        if slow:
            sm._sfu_cheri_issue(lanes)
        sm._advance(warp, lanes, pc + 4)

    def _write_rd_cap_any(self, warp, reg, gp_form, mask, full, meta_val,
                          tagged):
        """Write a capability result with uniform metadata under any mask
        (full masks write forms, partial masks merge lane lists)."""
        if full:
            self._write_rd_cap_form(warp, reg, gp_form, meta_val)
            return
        num_lanes = self.sm._num_lanes
        self._write_rd_raw(warp, reg, _expand(gp_form, num_lanes), mask,
                           [meta_val] * num_lanes, tagged)

    def _v_cmod1(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn = aux
        f1 = self._gp_form(warp, instr.rs1)
        meta_f = self._meta_form(warp, instr.rs1)
        full = mask == sm._full_mask
        if type(meta_f) is _Scalar and meta_f.stride == 0 and \
                type(f1) is _Scalar:
            m = meta_f.base
            if fn is _FN_CMOVE:
                self._write_rd_cap_any(warp, instr.rd,
                                       _Scalar(f1.base, f1.stride),
                                       mask, full, m, m > MASK32)
                sm._advance(warp, lanes, pc + 4)
                return
            if fn is _FN_CCLEARTAG:
                self._write_rd_cap_any(warp, instr.rd,
                                       _Scalar(f1.base, f1.stride),
                                       mask, full, m & MASK32, False)
                sm._advance(warp, lanes, pc + 4)
                return
            if f1.stride == 0:
                cap = fn(Capability.from_meta_word(m & MASK32, f1.base,
                                                   m > MASK32))
                self._write_rd_cap_any(
                    warp, instr.rd, _Scalar(cap.addr & MASK32, 0),
                    mask, full, cap.meta_word() | (cap.tag << 32), cap.tag)
                sm._advance(warp, lanes, pc + 4)
                return
        return self._cmod1_core(warp, instr, pc, lanes, mask, fn,
                                self._forms_to_caps(f1, meta_f))

    def _v_cmod2(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, slow = aux
        f1 = self._gp_form(warp, instr.rs1)
        meta_f = self._meta_form(warp, instr.rs1)
        f2 = self._gp_form(warp, instr.rs2)
        full = mask == sm._full_mask
        if type(f1) is _Scalar and type(f2) is _Scalar and \
                type(meta_f) is _Scalar and meta_f.stride == 0:
            m = meta_f.base
            if f1.stride == 0 and f2.stride == 0:
                # Uniform address math: try the k-window check first — a
                # same-window move keeps the metadata word bit-identical,
                # so no Capability needs decoding at all.
                if fn is _FN_CINCOFFSET or fn is _FN_CSETADDR:
                    nb = ((f1.base + f2.base if fn is _FN_CINCOFFSET
                           else f2.base) & MASK32)
                    res = self._uniform_addr_meta(m, f1.base, nb)
                    if res is not None:
                        self._write_rd_cap_any(warp, instr.rd,
                                               _Scalar(nb, 0), mask, full,
                                               res[0], res[1])
                        if slow:
                            sm._sfu_cheri_issue(lanes)
                        sm._advance(warp, lanes, pc + 4)
                        return
                cap = fn(Capability.from_meta_word(m & MASK32, f1.base,
                                                   m > MASK32), f2.base)
                self._write_rd_cap_any(
                    warp, instr.rd, _Scalar(cap.addr & MASK32, 0),
                    mask, full, cap.meta_word() | (cap.tag << 32), cap.tag)
                if slow:
                    sm._sfu_cheri_issue(lanes)
                sm._advance(warp, lanes, pc + 4)
                return
            if not full:
                ok = False
            elif fn is _FN_CINCOFFSET:
                ok = self._set_addr_window(
                    warp, instr.rd, m, f1,
                    f1.base + f2.base, f1.stride + f2.stride)
            elif fn is _FN_CSETADDR:
                ok = self._set_addr_window(warp, instr.rd, m, f1,
                                           f2.base, f2.stride)
            else:
                ok = False
            if ok:
                if slow:
                    sm._sfu_cheri_issue(lanes)
                sm._advance(warp, lanes, pc + 4)
                return
        return self._cmod2_core(warp, instr, pc, lanes, mask, fn, slow,
                                self._forms_to_caps(f1, meta_f),
                                _expand(f2, sm._num_lanes))

    def _v_cimm(self, warp, instr, pc, lanes, mask, aux):
        sm = self.sm
        fn, imm, slow = aux
        f1 = self._gp_form(warp, instr.rs1)
        meta_f = self._meta_form(warp, instr.rs1)
        full = mask == sm._full_mask
        if type(f1) is _Scalar and type(meta_f) is _Scalar and \
                meta_f.stride == 0:
            m = meta_f.base
            if f1.stride == 0:
                if fn is _FN_CINCOFFSETIMM:
                    nb = (f1.base + imm) & MASK32
                    res = self._uniform_addr_meta(m, f1.base, nb)
                    if res is not None:
                        self._write_rd_cap_any(warp, instr.rd,
                                               _Scalar(nb, 0), mask, full,
                                               res[0], res[1])
                        if slow:
                            sm._sfu_cheri_issue(lanes)
                        sm._advance(warp, lanes, pc + 4)
                        return
                cap = fn(Capability.from_meta_word(m & MASK32, f1.base,
                                                   m > MASK32), imm)
                self._write_rd_cap_any(
                    warp, instr.rd, _Scalar(cap.addr & MASK32, 0),
                    mask, full, cap.meta_word() | (cap.tag << 32), cap.tag)
                if slow:
                    sm._sfu_cheri_issue(lanes)
                sm._advance(warp, lanes, pc + 4)
                return
            if full and fn is _FN_CINCOFFSETIMM and self._set_addr_window(
                    warp, instr.rd, m, f1, f1.base + imm, f1.stride):
                if slow:
                    sm._sfu_cheri_issue(lanes)
                sm._advance(warp, lanes, pc + 4)
                return
        return self._cimm_core(warp, instr, pc, lanes, mask, fn, imm, slow,
                               self._forms_to_caps(f1, meta_f))

    def _uniform_addr_meta(self, meta_val, old_addr, new_addr):
        """Result (meta word incl. tag bit, tag) of a uniform
        setAddr/incOffset, or None when the move leaves the *k*-window
        (the exact Capability path must decide representability).

        Mirrors :meth:`_set_addr_window`'s three cases for a single
        address: untagged keeps meta and (cleared) tag; sealed keeps the
        meta word but clears the tag; tagged-unsealed keeps everything
        when old and new address share one *k*-window.
        """
        tag, otype, _perms, _bounds, exp, r = self._cap_info(meta_val)
        if not tag:
            return meta_val, False
        if otype != 0:
            return meta_val & MASK32, False
        if ((old_addr >> exp) - r) >> 8 != ((new_addr >> exp) - r) >> 8:
            return None
        return meta_val, True

    def _set_addr_window(self, warp, rd, meta_val, ref_form, new_base,
                         new_stride):
        """setAddr/incOffset across all lanes via the *k*-window.

        ``ref_form`` holds the per-lane reference addresses; the new
        addresses are ``new_base + i*new_stride`` (pre-mod).  When every
        lane's reference and new address share one *k*-window, each
        lane's bounds decode is unchanged, so every lane stays
        representable with an unchanged metadata word — no per-lane
        Capability is needed.  Returns True when the fast path applied
        (result written), False to fall back to the exact per-lane path.
        """
        sm = self.sm
        num_lanes = sm._num_lanes
        out = _affine(new_base, new_stride, num_lanes)
        if out is None:
            return False
        tag, otype, _perms, _bounds, exp, r = self._cap_info(meta_val)
        if not tag:
            # Untagged: set_addr keeps the (cleared) tag and meta word.
            self._write_rd_cap_form(warp, rd, out, meta_val)
            return True
        if otype != 0:
            # Sealed capabilities are address-immutable: tag cleared,
            # meta word kept.
            self._write_rd_cap_form(warp, rd, out, meta_val & MASK32)
            return True
        span_ref = (num_lanes - 1) * ref_form.stride
        ref_lo = ref_form.base + (span_ref if ref_form.stride < 0 else 0)
        ref_hi = ref_form.base + (span_ref if ref_form.stride > 0 else 0)
        span_new = (num_lanes - 1) * out.stride
        new_lo = out.base + (span_new if out.stride < 0 else 0)
        new_hi = out.base + (span_new if out.stride > 0 else 0)
        if ref_lo < 0 or ref_hi > MASK32 or new_lo < 0 or new_hi > MASK32:
            return False
        k = ((ref_lo >> exp) - r) >> 8
        if (((ref_hi >> exp) - r) >> 8) != k or \
                (((new_lo >> exp) - r) >> 8) != k or \
                (((new_hi >> exp) - r) >> 8) != k:
            return False
        self._write_rd_cap_form(warp, rd, out, meta_val)
        return True

    # ------------------------------------------------------------------
    # Scheduler: solo-warp run-ahead + hot-trace regions
    # ------------------------------------------------------------------

    def run(self, max_cycles):
        sm = self.sm
        if sm.probes is not None or sm.trace is not None:
            # Observed runs take the reference loop so idle probes, issue
            # events and trace records appear exactly as in the scalar
            # backend (the handlers themselves stay vectorized).
            return ScalarBackend.run(self, max_cycles)
        from repro.simt.pipeline import KernelAbort, SoftwareTrap

        # Hoisted per-issue state for the quiet issue path below.
        cfg = sm.cfg
        stats = sm.stats
        program = sm.program
        program_len = len(program)
        decoded = sm._decoded
        num_lanes = sm._num_lanes
        all_lanes = sm._all_lanes
        full_mask = sm._full_mask
        enable_cheri = cfg.enable_cheri
        dynamic_pcc = sm._dynamic_pcc
        shared_vrf = cfg.shared_vrf
        single_port = cfg.metadata_srf_single_port
        depth = cfg.pipeline_depth
        gp = sm.gp
        meta = sm.meta
        gp_pool = getattr(gp, "pool", None)
        gp_counts = gp_pool._counts if gp_pool is not None else None
        meta_pool = getattr(meta, "pool", None) if meta is not None else None
        meta_counts = meta_pool._counts if meta_pool is not None else None
        pcc_cache = sm._pcc_cache
        select = sm._select_threads
        check_pcc = sm._check_pcc
        regions = self._regions
        regions_get = regions.get
        hot = self._hot
        hot_get = hot.get
        hot_threshold = self._hot_threshold
        convoy = self._convoy
        rq_frames = self._rq_frames
        rq_frames_masked = self._rq_frames_masked
        masked_prefix = self._masked_prefix
        entry_masks = self._entry_masks

        # Issue counters are accumulated in plain ints / a per-instruction
        # list and flushed to the stats object in the finally block below,
        # so the hot loop never hashes an Op enum.  The flush runs on
        # faults and aborts too, keeping stats bit-identical to the
        # per-issue accounting at the point the exception escapes.
        icounts = [0] * program_len
        thread_acc = 0
        gp_occ_acc = 0
        meta_occ_acc = 0
        gp_count_get = gp_counts.get if gp_counts is not None else None
        meta_count_get = meta_counts.get if meta_counts is not None else None

        def issue_quiet(warp, cycle):
            # issue() minus the probe/trace plumbing (both are None on
            # this path) and with the per-issue constants hoisted into
            # cells; bit-identical stats, faults and scheduling.
            nonlocal thread_acc, gp_occ_acc, meta_occ_acc
            halted = warp.halted
            if True in halted:
                pc, lanes = select(warp)
                if pc is None:
                    warp.done = True
                    warp.ready_at = _FAR_FUTURE
                    return cycle
            else:
                pcs = warp.pcs
                pc = pcs[0]
                if pcs.count(pc) == num_lanes and (
                        not dynamic_pcc or
                        warp.pcc_meta.count(warp.pcc_meta[0]) == num_lanes):
                    lanes = all_lanes
                else:
                    pc, lanes = select(warp)
            index = pc >> 2
            if not 0 <= index < program_len:
                raise SoftwareTrap(
                    "instruction fetch from unmapped pc 0x%x" % pc,
                    thread=warp.index * num_lanes + lanes[0], pc=pc)
            if enable_cheri:
                cached = pcc_cache.get(warp.pcc_meta[lanes[0]])
                if cached is None or not cached[2] or \
                        not (cached[0] <= pc and pc + 4 <= cached[1]):
                    # Populate the decode cache, or raise the precise
                    # PCC fetch fault.
                    check_pcc(warp, pc, lanes)
            if lanes is all_lanes:
                mask = full_mask
                # Hot-trace barrel entry: a converged warp at the start
                # of a compiled straight-line region queues the rest of
                # the region's pre-decoded steps.  The scheduler then
                # feeds it one step per issue slot via step_quiet below,
                # preserving the exact round-robin interleave while
                # skipping the selection, fetch and per-instruction PCC
                # checks (hoisted here: the cached PCC decode must cover
                # the whole region, and regions contain no control flow,
                # halts or barriers, so convergence is preserved).
                steps = regions_get(index)
                if steps:
                    if enable_cheri:
                        c = pcc_cache.get(warp.pcc_meta[0])
                        if c is not None and c[2] and c[0] <= pc and \
                                steps[-1][0] + 4 <= c[1]:
                            warp.rq = [steps, 1, rq_frames(steps),
                                       None, 0]
                    else:
                        warp.rq = [steps, 1, rq_frames(steps), None, 0]
                    if warp.rq is not None:
                        em = (pc, full_mask)
                        entry_masks[em] = entry_masks.get(em, 0) + 1
                elif steps is None:
                    count = hot_get(index, 0) + 1
                    hot[index] = count
                    # >= with the regions-dict entry as the promoted
                    # sentinel: a counter seeded past the threshold
                    # (banked heat, masked entries) still promotes, and
                    # _build_region runs exactly once because the next
                    # visit short-circuits on regions_get above.
                    if count >= hot_threshold:
                        regions[index] = self._build_region(index)
            else:
                mask = 0
                for lane in lanes:
                    mask |= 1 << lane
                # Masked hot-trace entry: a diverged warp whose active
                # lanes share a PC queues the longest region prefix its
                # thread group is guaranteed to keep winning selection
                # for (strict priority dominance over the frozen other
                # groups), under its lane mask.  Regions are
                # straight-line, so group membership, halted lanes and
                # the group's PCC metadata are stable over the prefix.
                steps = regions_get(index)
                if steps:
                    ok = True
                    if enable_cheri:
                        c = pcc_cache.get(warp.pcc_meta[lanes[0]])
                        ok = (c is not None and c[2] and c[0] <= pc and
                              steps[-1][0] + 4 <= c[1])
                    if ok:
                        prefix = masked_prefix(warp, lanes, steps)
                        if prefix >= 2:
                            sub = steps if prefix == len(steps) \
                                else steps[:prefix]
                            warp.rq = [sub, 1,
                                       rq_frames_masked(sub, steps,
                                                        lanes, mask),
                                       lanes, mask]
                            em = (pc, mask)
                            entry_masks[em] = entry_masks.get(em, 0) + 1
                elif steps is None:
                    count = hot_get(index, 0) + 1
                    hot[index] = count
                    if count >= hot_threshold:
                        regions[index] = self._build_region(index)
            instr = program[index]
            sm._cycle = cycle
            sm._mem_ready = cycle
            sm._extra_issue = 0
            sm._gp_vec_touch = False
            sm._meta_vec_touch = False
            handler, aux = decoded[index]
            handler(warp, instr, pc, lanes, mask, aux)
            extra = sm._extra_issue
            if shared_vrf and sm._gp_vec_touch and sm._meta_vec_touch:
                extra += 1
                stats.stall_shared_vrf += 1
            if single_port and instr.op is Op.CSC:
                extra += 1
                stats.stall_csc_operand += 1
            icounts[index] += 1
            thread_acc += len(lanes)
            completion = cycle + depth
            if sm._mem_ready > completion:
                completion = sm._mem_ready
            warp.ready_at = completion
            if halted[0] and all(halted):
                warp.done = True
                warp.ready_at = _FAR_FUTURE
            width = 1 + extra
            if gp_count_get is not None:
                gp_occ_acc += gp_count_get(gp, 0) * width
            if meta_count_get is not None:
                meta_occ_acc += meta_count_get(meta, 0) * width
            return cycle + width

        def step_quiet(warp, cycle, rq):
            # One pre-decoded region step: selection, convergence,
            # fetch-range and PCC checks were hoisted to region entry in
            # issue_quiet and stay valid because regions are
            # straight-line (no control flow, halts or barriers).  The
            # entry mask rides in rq[3]/rq[4] (None = full warp), so
            # masked entries replay the handlers' own partial-mask
            # paths.  Accounting is bit-identical to issue_quiet's.
            nonlocal thread_acc, gp_occ_acc, meta_occ_acc
            steps = rq[0]
            i = rq[1]
            lanes = rq[3]
            if lanes is None:
                lanes = all_lanes
                mask = full_mask
            else:
                mask = rq[4]
            pc, instr, handler, aux, is_csc, op = steps[i]
            sm._cycle = cycle
            sm._mem_ready = cycle
            sm._extra_issue = 0
            sm._gp_vec_touch = False
            sm._meta_vec_touch = False
            handler(warp, instr, pc, lanes, mask, aux)
            extra = sm._extra_issue
            if shared_vrf and sm._gp_vec_touch and sm._meta_vec_touch:
                extra += 1
                stats.stall_shared_vrf += 1
            if single_port and is_csc:
                extra += 1
                stats.stall_csc_operand += 1
            icounts[pc >> 2] += 1
            thread_acc += len(lanes)
            completion = cycle + depth
            if sm._mem_ready > completion:
                completion = sm._mem_ready
            warp.ready_at = completion
            i += 1
            if i >= len(steps):
                warp.rq = None
            else:
                rq[1] = i
            width = 1 + extra
            if gp_count_get is not None:
                gp_occ_acc += gp_count_get(gp, 0) * width
            if meta_count_get is not None:
                meta_occ_acc += meta_count_get(meta, 0) * width
            return cycle + width

        cycle = 0
        rotation = 0
        warps = sm.warps
        for w in warps:
            w.rq = None  # stale queues from an aborted or prior program
        count = len(warps)
        live = count
        issue = issue_quiet
        try:
            while live:
                # done warps park at ready_at == _FAR_FUTURE, so the
                # ready check alone filters them; in_barrier warps keep
                # their issue-completion ready_at and need the flag.
                if rotation >= count:
                    rotation = 0
                picked = None
                for i in range(rotation, count):
                    warp = warps[i]
                    if warp.ready_at <= cycle and not warp.in_barrier:
                        picked = warp
                        break
                if picked is None:
                    for i in range(rotation):
                        warp = warps[i]
                        if warp.ready_at <= cycle and not warp.in_barrier:
                            picked = warp
                            break
                if picked is None:
                    next_ready = _FAR_FUTURE
                    for w in warps:
                        if not w.done and not w.in_barrier and \
                                w.ready_at < next_ready:
                            next_ready = w.ready_at
                    if next_ready == _FAR_FUTURE:
                        raise KernelAbort(
                            "deadlock: all warps blocked on a barrier",
                            cycle)
                    cycle = max(cycle + 1, next_ready)
                    continue
                rotation = picked.index + 1
                rq = picked.rq
                if rq is not None:
                    if convoy is not None and rq[1] <= 2 and \
                            rq[3] is None:
                        # JIT tier: when every runnable warp is inside
                        # this region, a specialized driver replays the
                        # barrel schedule over generated per-step frames
                        # (exact pick order, exact cycles).  Returns the
                        # (cycle, rotation) scheduler state to resume
                        # from, or None when the convoy can't form.
                        res = convoy(picked, rq, cycle, icounts,
                                     max_cycles, KernelAbort)
                        if res is not None:
                            cycle, rotation = res
                            continue
                    fr = rq[2]
                    if fr is not None:
                        # JIT tier: one specialized frame per issue slot
                        # (step_quiet semantics, same fault cycle).
                        cycle = fr[rq[1]](picked, rq, cycle, icounts)
                    else:
                        cycle = step_quiet(picked, cycle, rq)
                else:
                    cycle = issue(picked, cycle)
                if cycle > max_cycles:
                    raise KernelAbort("cycle limit exceeded", cycle)
                if picked.done:
                    live -= 1
                    continue
                if picked.in_barrier:
                    continue
                # Run-ahead: while every other runnable warp is blocked
                # strictly beyond this warp's next issue slot, the barrel
                # scheduler can only pick this warp again (its rotation
                # slot scans it last, so ties go to the other warps).
                # The scan stops at the first other warp ready at or
                # before this warp's next slot: only whether the minimum
                # clears that slot matters, not its exact value, and in
                # the busy multi-warp case that first warp appears within
                # a couple of probes.
                epoch = sm._sched_epoch
                ready = picked.ready_at
                nxt = cycle if cycle >= ready else ready
                others = _FAR_FUTURE
                for w in warps:
                    if w is not picked and not w.done and \
                            not w.in_barrier:
                        ra = w.ready_at
                        if ra <= nxt:
                            others = ra
                            break
                        if ra < others:
                            others = ra
                while True:
                    ready = picked.ready_at
                    nxt = cycle if cycle >= ready else ready
                    if nxt >= others:
                        break
                    cycle = nxt
                    rq = picked.rq
                    if rq is not None:
                        # Solo: drain the queued region back-to-back
                        # instead of one step per slot.
                        cycle = self._drain_rq(picked, rq, cycle, others,
                                               max_cycles, KernelAbort,
                                               icounts)
                        continue
                    ra = self._region_at(picked)
                    if ra is not None:
                        cycle = self._run_region(picked, ra[0], cycle,
                                                 others, max_cycles,
                                                 KernelAbort, icounts,
                                                 ra[1], ra[2])
                        continue
                    cycle = issue(picked, cycle)
                    if cycle > max_cycles:
                        raise KernelAbort("cycle limit exceeded", cycle)
                    if picked.done:
                        live -= 1
                        break
                    if picked.in_barrier:
                        break
                    if sm._sched_epoch != epoch:
                        # A barrier release changed other warps' state.
                        epoch = sm._sched_epoch
                        others = _FAR_FUTURE
                        for w in warps:
                            if w is not picked and not w.done and \
                                    not w.in_barrier and \
                                    w.ready_at < others:
                                others = w.ready_at
        except (CapabilityFault, SoftwareTrap):
            if self.fault_cycle is None:
                self.fault_cycle = cycle
            raise
        finally:
            opcode_counts = stats.opcode_counts
            pc_counts = self._pc_issue_counts
            issued = 0
            for idx in range(program_len):
                c = icounts[idx]
                if c:
                    opcode_counts[program[idx].op] += c
                    pc_counts[idx] = pc_counts.get(idx, 0) + c
                    issued += c
            stats.instrs_issued += issued
            stats.thread_instrs += thread_acc
            stats.gp_vrf_occupancy_integral += gp_occ_acc
            stats.meta_vrf_occupancy_integral += meta_occ_acc
        return cycle

    def _region_at(self, warp):
        """The fused region entry at this warp's PC: ``(steps, lanes,
        mask)`` or None.  ``lanes`` is None for a full-warp entry.

        A full-warp entry needs full-mask convergence (PC and, under
        dynamic PCC, metadata) with no halted lane.  A diverged (or
        partially halted) warp can still enter under a mask when its
        selected thread group sits at a region start: ``steps`` is then
        truncated to the prefix the group is guaranteed to keep winning
        selection for (see :meth:`_masked_prefix`).  Both shapes also
        need a known hot straight-line region and a PCC whose cached
        decode covers the whole region so the per-instruction fetch
        checks can be hoisted without changing fault behaviour.
        """
        sm = self.sm
        pcs = warp.pcs
        num_lanes = sm._num_lanes
        lanes = None
        if True in warp.halted:
            pc0, lanes = sm._select_threads(warp)
            if pc0 is None:
                return None
        else:
            pc0 = pcs[0]
            if pcs.count(pc0) != num_lanes or (
                    sm._dynamic_pcc and
                    warp.pcc_meta.count(warp.pcc_meta[0]) != num_lanes):
                pc0, lanes = sm._select_threads(warp)
                if lanes is sm._all_lanes:
                    lanes = None
        index = pc0 >> 2
        regions = self._regions
        steps = regions.get(index)
        if not steps:
            if steps is not None:
                return None  # known non-region start (empty sentinel)
            if not 0 <= index < len(sm.program):
                return None  # issue() raises the unmapped-fetch trap
            hot = self._hot
            count = hot.get(index, 0) + 1
            hot[index] = count
            if count < self._hot_threshold:
                return None
            steps = self._build_region(index)
            regions[index] = steps
            if not steps:
                return None
        if sm.cfg.enable_cheri:
            meta0 = warp.pcc_meta[lanes[0] if lanes is not None else 0]
            cached = sm._pcc_cache.get(meta0)
            if cached is None:
                return None  # first fetch populates the cache via issue()
            base, top, ok_perms = cached
            if not ok_perms or not (base <= pc0
                                    and steps[-1][0] + 4 <= top):
                return None  # the per-instruction check faults precisely
        if lanes is None:
            em = (pc0, sm._full_mask)
            self._entry_masks[em] = self._entry_masks.get(em, 0) + 1
            return steps, None, 0
        prefix = self._masked_prefix(warp, lanes, steps)
        if prefix < 2:
            return None
        if prefix < len(steps):
            steps = steps[:prefix]
        mask = 0
        for lane in lanes:
            mask |= 1 << lane
        em = (pc0, mask)
        self._entry_masks[em] = self._entry_masks.get(em, 0) + 1
        return steps, lanes, mask

    def _masked_prefix(self, warp, lanes, steps):
        """Longest region prefix the selected group keeps winning.

        While the group drains a straight-line region, the other
        groups' (pc, metadata) keys are frozen — their lanes don't
        execute, and regions contain no halts or barriers — so the
        selection outcome at every queued step is decided by comparing
        the group's static ``(depth, -pc)`` priority along the region
        against the best frozen competitor.  Strict dominance is
        required: ties fall to insertion order, which the drained group
        cannot claim ahead of time.  Step 0 is already won (the caller
        selected this group for the current slot).
        """
        sm = self.sm
        program = sm.program
        program_len = len(program)
        pcs = warp.pcs
        halted = warp.halted
        active = set(lanes)
        other = None
        for lane in range(sm._num_lanes):
            if halted[lane] or lane in active:
                continue
            opc = pcs[lane]
            oi = opc >> 2
            od = program[oi].depth if 0 <= oi < program_len else 0
            pr = (od, -opc)
            if other is None or pr > other:
                other = pr
        n = len(steps)
        if other is None:
            return n  # halted-only remainder: no competing group
        k = 1
        while k < n:
            spc = steps[k][0]
            if (program[spc >> 2].depth, -spc) <= other:
                break
            k += 1
        return k

    def _rq_frames(self, steps):
        """Per-slot compiled frames for a region entry (queued as
        ``rq[2]``), or None to step through the interpreted
        ``step_quiet``.  The JIT tier overrides this."""
        return None

    def _rq_frames_masked(self, sub, steps, lanes, mask):
        """Per-slot compiled frames for a *masked* region entry
        (``sub`` is the dominance prefix of the full region ``steps``),
        or None to step through the interpreted ``step_quiet`` under
        the entry mask.  The JIT tier overrides this with per-mask-class
        closure variants."""
        return None

    def _drain_rq(self, warp, rq, cycle, others, max_cycles, kernel_abort,
                  icounts):
        """Drain a solo warp's queued region suffix back-to-back.  The
        JIT tier overrides this to drive the compiled per-slot frames
        with ``rq`` kept live (so an early exit resumes per-slot
        dispatch instead of re-fetching)."""
        warp.rq = None
        return self._run_region(warp, rq[0][rq[1]:], cycle, others,
                                max_cycles, kernel_abort, icounts,
                                rq[3], rq[4])

    def _build_region(self, index):
        """Compile the straight-line run starting at ``index`` into steps
        of (pc, instr, handler, aux, is_csc, op), or the empty tuple if
        too short (stored as a falsy known-non-region sentinel)."""
        sm = self.sm
        decoded = sm._decoded
        program = sm.program
        steps = []
        i = index
        end = min(len(program), index + self._max_region)
        while i < end:
            handler, aux = decoded[i]
            if handler.__func__ in _REGION_STOP:
                break
            instr = program[i]
            steps.append((i << 2, instr, handler, aux,
                          instr.op is Op.CSC, instr.op))
            i += 1
        return steps if len(steps) >= 2 else ()

    def _run_region(self, warp, steps, cycle, others, max_cycles,
                    kernel_abort, icounts, lanes=None, mask=0):
        """Execute fused region steps back-to-back for a solo warp.

        Replays the exact per-issue accounting of :meth:`issue` minus the
        hoisted selection and fetch checks.  ``lanes``/``mask`` carry a
        masked entry's thread group (None = full warp).  Stops at the
        region end or as soon as the next issue slot would no longer be
        solo.  Returns the cycle after the last consumed issue slot.
        Per-instruction issue counts go into the caller's ``icounts``
        list (flushed to the stats object by :meth:`run`); thread counts
        are flushed here so a fault mid-region leaves the same stats as
        per-issue accounting would.
        """
        sm = self.sm
        stats = sm.stats
        cfg = sm.cfg
        depth = cfg.pipeline_depth
        shared_vrf = cfg.shared_vrf
        single_port = cfg.metadata_srf_single_port
        if lanes is None:
            lanes = sm._all_lanes
            mask = sm._full_mask
        active = len(lanes)
        gp = sm.gp
        meta = sm.meta
        gp_pool = getattr(gp, "pool", None)
        gp_counts = gp_pool._counts if gp_pool is not None else None
        meta_pool = getattr(meta, "pool", None) if meta is not None else None
        meta_counts = meta_pool._counts if meta_pool is not None else None
        i = 0
        n = len(steps)
        done_steps = 0
        try:
            while True:
                pc, instr, handler, aux, is_csc, op = steps[i]
                sm._cycle = cycle
                sm._mem_ready = cycle
                sm._extra_issue = 0
                sm._gp_vec_touch = False
                sm._meta_vec_touch = False
                try:
                    handler(warp, instr, pc, lanes, mask, aux)
                except CapabilityFault:
                    if self.fault_cycle is None:
                        self.fault_cycle = cycle
                    raise
                extra = sm._extra_issue
                if shared_vrf and sm._gp_vec_touch and sm._meta_vec_touch:
                    extra += 1
                    stats.stall_shared_vrf += 1
                if single_port and is_csc:
                    extra += 1
                    stats.stall_csc_operand += 1
                icounts[pc >> 2] += 1
                done_steps += 1
                completion = cycle + depth
                if sm._mem_ready > completion:
                    completion = sm._mem_ready
                warp.ready_at = completion
                width = 1 + extra
                if gp_counts is not None:
                    stats.gp_vrf_occupancy_integral += \
                        gp_counts.get(gp, 0) * width
                if meta_counts is not None:
                    stats.meta_vrf_occupancy_integral += \
                        meta_counts.get(meta, 0) * width
                cycle += width
                if cycle > max_cycles:
                    raise kernel_abort("cycle limit exceeded", cycle)
                i += 1
                if i >= n:
                    return cycle
                nxt = cycle if cycle >= completion else completion
                if nxt >= others:
                    return cycle
                cycle = nxt
        finally:
            stats.thread_instrs += active * done_steps


def _np_int(key, a, b):
    """uint32 array evaluation of a two-source integer op (wide SMs)."""
    np = _np
    x = np.array(a, dtype=np.uint32)
    y = np.uint32(b) if type(b) is int else np.array(b, dtype=np.uint32)
    if key == "add":
        z = x + y
    elif key == "sub":
        z = x - y
    elif key == "xor":
        z = x ^ y
    elif key == "or":
        z = x | y
    elif key == "and":
        z = x & y
    elif key == "sll":
        z = x << (y & np.uint32(31))
    elif key == "srl":
        z = x >> (y & np.uint32(31))
    elif key == "sra":
        z = (x.astype(np.int32)
             >> np.asarray(y & np.uint32(31)).astype(np.int32)
             ).astype(np.uint32)
    elif key == "slt":
        z = (x.astype(np.int32)
             < np.asarray(y).astype(np.int32)).astype(np.uint32)
    elif key == "sltu":
        z = (x < y).astype(np.uint32)
    else:  # mul
        z = x * y
    return [int(v) for v in z]


#: scalar handler function -> vectorized handler method name.
_VECTOR_FOR = {
    ScalarBackend._h_int_r: "_v_int_r",
    ScalarBackend._h_int_i: "_v_int_i",
    ScalarBackend._h_lui: "_v_lui",
    ScalarBackend._h_auipc: "_v_auipc",
    ScalarBackend._h_branch: "_v_branch",
    ScalarBackend._h_jal: "_v_jal",
    ScalarBackend._h_jalr: "_v_jalr",
    ScalarBackend._h_float_rr: "_v_float_rr",
    ScalarBackend._h_float_unary: "_v_float_unary",
    ScalarBackend._h_memory: "_v_memory",
    ScalarBackend._h_cget: "_v_cget",
    ScalarBackend._h_crr: "_v_crr",
    ScalarBackend._h_cmod1: "_v_cmod1",
    ScalarBackend._h_cmod2: "_v_cmod2",
    ScalarBackend._h_cimm: "_v_cimm",
}

#: Handlers that end a straight-line region: anything that can change PC
#: non-sequentially, halt lanes, trap, or reschedule other warps.
_REGION_STOP = frozenset((
    ScalarBackend._h_branch,
    ScalarBackend._h_jal,
    ScalarBackend._h_jalr,
    ScalarBackend._h_cjalr,
    ScalarBackend._h_barrier,
    ScalarBackend._h_halt,
    ScalarBackend._h_trap,
    ScalarBackend._h_unimplemented,
    VectorBackend._v_branch,
    VectorBackend._v_jal,
    VectorBackend._v_jalr,
))
