"""Shared-function unit (SFU).

One SFU per SM serves operations too expensive (or too rare) to replicate
per vector lane.  SIMTight already routes floating-point division and
square root here; the optimised CHERI configuration additionally moves the
get/set-bounds CheriCapLib logic into the SFU (paper section 3.3), which is
what cuts the per-lane area overhead by 44%.

Requests from the vector lanes pass through a serialiser (one lane per
cycle), flow through the pipelined unit, and return through a
deserialiser, so a warp-wide SFU operation with ``n`` active lanes costs
``n`` serialisation cycles plus the unit latency.
"""


class SharedFunctionUnit:
    """Occupancy and latency model for the per-SM shared unit."""

    def __init__(self, latency, cheri_latency):
        self.latency = latency
        self.cheri_latency = cheri_latency
        self._next_free = 0
        self.requests = 0
        self.busy_cycles = 0

    def reset_timing(self):
        self._next_free = 0

    def issue(self, cycle, n_active, cheri_op=False):
        """Account a warp-wide SFU operation; returns its completion cycle.

        The serialiser feeds one lane per cycle, so the unit is occupied
        for ``n_active`` cycles; the last lane's result appears after the
        unit latency.
        """
        latency = self.cheri_latency if cheri_op else self.latency
        start = max(cycle, self._next_free)
        self._next_free = start + n_active
        self.requests += n_active
        self.busy_cycles += n_active
        return start + n_active + latency
