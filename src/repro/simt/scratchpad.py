"""Banked scratchpad (shared local memory).

SIMTight implements CUDA ``__shared__`` memory as a set of SRAM banks
behind a fast switching network (paper section 2.3).  Parallel random
access is conflict-free when active lanes hit distinct banks; lanes that
collide on a bank serialise.  Under CHERI each bank is widened from 32 to
33 bits so capabilities (and their tags) can live in scratchpad (paper
section 3.4).
"""

from repro.simt.config import SCRATCHPAD_BASE


class Scratchpad:
    """Bank-conflict timing model over a region of tagged memory."""

    def __init__(self, memory, num_banks, size_bytes, base=SCRATCHPAD_BASE):
        self.memory = memory
        self.num_banks = num_banks
        self.size_bytes = size_bytes
        self.base = base

    def contains(self, addr):
        return self.base <= addr < self.base + self.size_bytes

    def bank_of(self, addr):
        return (addr >> 2) % self.num_banks

    def conflict_cycles(self, addrs):
        """Extra serialisation cycles for a set of same-cycle accesses.

        ``addrs`` are the byte addresses issued by the active lanes.  The
        access takes ``max accesses per bank`` bank-cycles; the first is
        free, the rest are stall cycles.  Lanes reading the *same* word are
        broadcast without conflict (like NVIDIA shared memory).
        """
        per_bank = {}
        for addr in addrs:
            word = addr >> 2
            per_bank.setdefault(self.bank_of(addr), set()).add(word)
        if not per_bank:
            return 0
        return max(len(words) for words in per_bank.values()) - 1
