"""Register files: plain, compressed (SRF/VRF), and capability metadata.

SIMTight's compressed register file (paper Figure 5) detects uniform and
affine vectors at write time and stores them compactly in a scalar register
file (SRF), spilling only general vectors to a size-constrained vector
register file (VRF).  CHERI support adds a second, 33-bit capability-
metadata register file that compresses *independently* of the data register
file (section 3.2), optionally sharing the VRF and supporting partially-null
vectors (the null-value optimisation).
"""

from repro.simt.regfile.compressed import (
    AccessReport,
    CompressedRegFile,
    PlainRegFile,
    SlotPool,
)

__all__ = ["AccessReport", "CompressedRegFile", "PlainRegFile", "SlotPool"]
