"""The compressed register file (SRF + VRF) and its building blocks.

Terminology follows paper Figure 5:

- **SRF** (scalar register file): one entry per architectural vector
  register, holding either a compressed vector (base + stride, or a
  partially-null uniform under the null-value optimisation) or a pointer to
  a VRF slot.
- **VRF** (vector register file): a size-constrained pool of physical slots
  for vectors that cannot be compressed.  A *free stack* tracks unused
  slots; when it runs dry the pipeline spills a resident vector register to
  main memory.

The VRF slot pool may be *shared* between the general-purpose and
capability-metadata register files (paper section 3.2), avoiding
fragmentation between the two.
"""

from collections import OrderedDict


class AccessReport:
    """Side effects of one register-file access the pipeline must cost."""

    __slots__ = ("spills", "reloads")

    def __init__(self, spills=0, reloads=0):
        self.spills = spills    # vector registers written back to main memory
        self.reloads = reloads  # spilled vector registers fetched from memory

    def merge(self, other):
        self.spills += other.spills
        self.reloads += other.reloads
        return self

    def __eq__(self, other):
        return (isinstance(other, AccessReport)
                and self.spills == other.spills
                and self.reloads == other.reloads)

    def __repr__(self):
        return "AccessReport(spills=%d, reloads=%d)" % (self.spills,
                                                        self.reloads)


class _Scalar:
    """SRF-resident compressed vector: lane i holds base + i*stride."""

    __slots__ = ("base", "stride")

    def __init__(self, base, stride=0):
        self.base = base
        self.stride = stride

    def expand(self, lanes, mask_bits):
        if self.stride == 0:
            return [self.base] * lanes
        return [(self.base + i * self.stride) & mask_bits for i in range(lanes)]


#: Shared form for a never-written register (all lanes zero).  Read-only
#: by the form-access contract, so one instance serves every reader.
_NULL_SCALAR = _Scalar(0, 0)

#: Shared report for accesses with no spill/reload side effects.  Callers
#: only ever read the counters of a returned report, so one clean
#: instance serves every such access without an allocation.
_NO_REPORT = AccessReport()


class _PartialNull:
    """SRF-resident under NVO: some lanes hold ``value``, the rest null (0).

    ``mask`` has bit i set when lane i holds ``value``.
    """

    __slots__ = ("value", "mask")

    def __init__(self, value, mask):
        self.value = value
        self.mask = mask

    def expand(self, lanes, mask_bits):
        return [self.value if (self.mask >> i) & 1 else 0 for i in range(lanes)]


class _Vector:
    """VRF-resident uncompressed vector."""

    __slots__ = ("slot", "values")

    def __init__(self, slot, values):
        self.slot = slot
        self.values = values

    def expand(self, lanes, mask_bits):
        return list(self.values)


class _Spilled:
    """Vector register spilled to main memory (values modelled in place)."""

    __slots__ = ("values",)

    def __init__(self, values):
        self.values = values

    def expand(self, lanes, mask_bits):
        return list(self.values)


class SlotPool:
    """The VRF free stack, possibly shared between register files.

    Tracks which (register file, warp, reg) owns each resident slot so a
    dry free stack can pick a spill victim (FIFO order).
    """

    def __init__(self, capacity):
        self.capacity = capacity
        self._free = list(range(capacity))
        self._residents = OrderedDict()  # (rf, warp, reg) -> slot
        # Per-owner occupancy, maintained incrementally on acquire/release
        # so the pipeline's per-issue occupancy integral is O(1) instead of
        # an O(residents) recount (keyed by register-file identity).
        self._counts = {}

    @property
    def used(self):
        return self.capacity - len(self._free)

    def acquire(self, owner_rf, warp, reg, report):
        """Allocate a slot, spilling the oldest resident if necessary."""
        if not self._free:
            (victim_rf, victim_warp, victim_reg), slot = \
                self._residents.popitem(last=False)
            victim_rf._spill(victim_warp, victim_reg)
            self._counts[victim_rf] -= 1
            report.spills += 1
            self._free.append(slot)
        slot = self._free.pop()
        self._residents[(owner_rf, warp, reg)] = slot
        self._counts[owner_rf] = self._counts.get(owner_rf, 0) + 1
        return slot

    def release(self, owner_rf, warp, reg):
        slot = self._residents.pop((owner_rf, warp, reg), None)
        if slot is not None:
            self._free.append(slot)
            self._counts[owner_rf] -= 1

    def resident_count(self, owner_rf):
        return self._counts.get(owner_rf, 0)


class CompressedRegFile:
    """One compressed register file (general-purpose or metadata).

    ``detect_affine`` enables base+stride compression (general-purpose
    register file).  The metadata register file detects only uniform
    vectors (a stride makes no sense for capability metadata, paper
    section 3.2) and optionally partially-null vectors (``nvo``).
    """

    def __init__(self, lanes, width_bits, pool, detect_affine=True, nvo=False,
                 name="rf"):
        self.lanes = lanes
        self.width_bits = width_bits
        self.value_mask = (1 << width_bits) - 1
        self.pool = pool
        self.detect_affine = detect_affine
        self.nvo = nvo
        self.name = name
        # Keyed by (warp << 8) | reg: register indices are < 256 (RV32 has
        # 32 architectural registers), and a packed int hashes cheaper than
        # a tuple on the per-issue hot path.
        self._entries = {}
        self._wmask = (1 << lanes) - 1
        self.total_spills = 0
        self.total_reloads = 0
        # Value-regularity counters (paper section 2.2): how many written
        # vectors were uniform / affine / partially-null / general.
        self.writes_total = 0
        self.writes_uniform = 0
        self.writes_affine = 0
        self.writes_partial_null = 0

    # -- internals -----------------------------------------------------------

    def _entry(self, warp, reg):
        return self._entries.get((warp << 8) | reg) or _Scalar(0, 0)

    def _spill(self, warp, reg):
        """Demote a VRF-resident vector to spilled (called by the pool)."""
        key = (warp << 8) | reg
        entry = self._entries.get(key)
        assert isinstance(entry, _Vector), "spill victim must be VRF-resident"
        self._entries[key] = _Spilled(entry.values)
        self.total_spills += 1

    def _compress(self, values):
        """The write-path comparator array: try to find a compact form."""
        first = values[0]
        lanes = self.lanes
        if values.count(first) == lanes:
            return _Scalar(first, 0)
        if self.detect_affine and lanes >= 2:
            mask_bits = self.value_mask
            stride = (values[1] - first) & mask_bits
            # Lane 1 matches by construction; walk the rest incrementally.
            expect = values[1]
            for i in range(2, lanes):
                expect = (expect + stride) & mask_bits
                if values[i] != expect:
                    break
            else:
                # Keep strides small enough for a narrow SRF stride field.
                signed = stride - (1 << self.width_bits) if stride >> (self.width_bits - 1) else stride
                if -128 <= signed <= 127:
                    return _Scalar(first, signed)
        if self.nvo:
            nonzero = {v for v in values if v != 0}
            if len(nonzero) == 1:
                value = nonzero.pop()
                mask = 0
                for i, v in enumerate(values):
                    if v == value:
                        mask |= 1 << i
                return _PartialNull(value, mask)
        return None

    # -- the pipeline-facing API ----------------------------------------------

    def read(self, warp, reg):
        """Read a full vector.  Returns (values, AccessReport)."""
        key = (warp << 8) | reg
        entry = self._entries.get(key)
        if entry is None:
            return [0] * self.lanes, _NO_REPORT
        if type(entry) is _Spilled:
            # Dynamic reload: bring the vector back into the VRF.
            report = AccessReport()
            slot = self.pool.acquire(self, warp, reg, report)
            entry = _Vector(slot, entry.values)
            self._entries[key] = entry
            report.reloads += 1
            self.total_reloads += 1
            return entry.expand(self.lanes, self.value_mask), report
        return entry.expand(self.lanes, self.value_mask), _NO_REPORT

    def write(self, warp, reg, values, active_mask=None):
        """Write the active lanes of a vector.  Returns an AccessReport.

        ``active_mask`` is a bit mask of lanes to write (None = all): under
        control-flow divergence only the selected threads write back.
        """
        report = None
        value_mask = self.value_mask
        key = (warp << 8) | reg
        entry = self._entries.get(key)
        if active_mask is None or active_mask == self._wmask:
            merged = [v & value_mask for v in values]
            if type(entry) is _Spilled:
                # Fully overwritten: the spilled copy is dead, no reload.
                entry = None
                self._entries.pop(key, None)
        else:
            if type(entry) is _Spilled:
                # Partial write needs the old lanes: reload first.
                report = AccessReport()
                slot = self.pool.acquire(self, warp, reg, report)
                entry = _Vector(slot, entry.values)
                self._entries[key] = entry
                report.reloads += 1
                self.total_reloads += 1
            if type(entry) is _Vector:
                # Merge into the resident lane list in place.  Safe under
                # the form-access contract: expansions handed out by
                # read_form are only read within the issuing instruction,
                # and all of an instruction's reads precede its writes.
                merged = entry.values
                for i in range(self.lanes):
                    if (active_mask >> i) & 1:
                        merged[i] = values[i] & value_mask
            else:
                old = (entry.expand(self.lanes, value_mask)
                       if entry is not None else [0] * self.lanes)
                merged = [
                    (values[i] & value_mask)
                    if (active_mask >> i) & 1 else old[i]
                    for i in range(self.lanes)
                ]
        compact = self._compress(merged)
        self.writes_total += 1
        tc = type(compact)
        if tc is _Scalar:
            if compact.stride == 0:
                self.writes_uniform += 1
            else:
                self.writes_affine += 1
        elif tc is _PartialNull:
            self.writes_partial_null += 1
        if compact is not None:
            if type(entry) is _Vector:
                self.pool.release(self, warp, reg)
            self._entries[key] = compact
            return report if report is not None else _NO_REPORT
        if type(entry) is _Vector:
            entry.values = merged
            return report if report is not None else _NO_REPORT
        if report is None:
            report = AccessReport()
        slot = self.pool.acquire(self, warp, reg, report)
        self._entries[key] = _Vector(slot, merged)
        return report

    # -- form-level access (vector backend fast paths) -----------------------

    def read_form(self, warp, reg):
        """Read a register as its stored compact form.

        Returns ``(form, report_or_None)`` where ``form`` is the internal
        entry object (:class:`_Scalar`, :class:`_PartialNull` or
        :class:`_Vector`; a spilled vector is reloaded first, exactly like
        :meth:`read`).  The caller must treat the form as immutable.  The
        report is ``None`` when the access had no spill/reload side
        effects to cost.
        """
        key = (warp << 8) | reg
        entry = self._entries.get(key)
        if entry is None:
            return _NULL_SCALAR, None
        if type(entry) is _Spilled:
            report = AccessReport()
            slot = self.pool.acquire(self, warp, reg, report)
            entry = _Vector(slot, entry.values)
            self._entries[key] = entry
            report.reloads += 1
            self.total_reloads += 1
            return entry, report
        return entry, None

    def write_form(self, warp, reg, form):
        """Full-mask write of an already-classified compact form.

        The caller guarantees ``form`` is exactly what :meth:`_compress`
        would produce for its expansion: a :class:`_Scalar` with canonical
        signed stride (0 when ``lanes == 1``; in [-128, 127]; 0 unless
        ``detect_affine``) or a :class:`_PartialNull` (only when ``nvo``:
        nonzero value, mask neither empty nor full, and the expansion not
        affine-classifiable).  Mirrors the compact branch of :meth:`write`
        bit-for-bit — including the regularity counters — and can never
        spill, so there is nothing to cost.
        """
        key = (warp << 8) | reg
        entry = self._entries.get(key)
        self.writes_total += 1
        if type(form) is _Scalar:
            if form.stride == 0:
                self.writes_uniform += 1
            else:
                self.writes_affine += 1
        else:
            self.writes_partial_null += 1
        if type(entry) is _Vector:
            self.pool.release(self, warp, reg)
        self._entries[key] = form

    def peek(self, warp, reg):
        """Side-effect-free read of a full vector (checker/debug use).

        Unlike :meth:`read`, a spilled vector is expanded in place — it is
        not reloaded into the VRF — so no spill traffic, slot-pool state or
        statistic can change.  The lockstep cross-checker depends on this
        to observe register state without perturbing the run.
        """
        entry = self._entries.get((warp << 8) | reg)
        if entry is None:
            return [0] * self.lanes
        return entry.expand(self.lanes, self.value_mask)

    def is_vector_resident(self, warp, reg):
        """True when the register currently occupies a VRF slot (used for
        the shared-VRF serialisation stall check)."""
        return isinstance(self._entries.get((warp << 8) | reg), _Vector)

    def is_uncompressed(self, warp, reg):
        """True when the register is not held compactly in the SRF."""
        t = type(self._entries.get((warp << 8) | reg))
        return t is _Vector or t is _Spilled

    @property
    def resident_vectors(self):
        """Number of vectors currently occupying VRF slots."""
        return self.pool.resident_count(self)


class PlainRegFile:
    """An uncompressed register file: full per-thread storage, no VRF.

    Models the unoptimised CHERI configuration's metadata register file
    ("value regularity in capability metadata is not detected or
    exploited") and is also handy as a behavioural reference in tests.
    """

    def __init__(self, lanes, width_bits, name="plain"):
        self.lanes = lanes
        self.width_bits = width_bits
        self.value_mask = (1 << width_bits) - 1
        self.name = name
        self._entries = {}
        self.total_spills = 0
        self.total_reloads = 0

    def read(self, warp, reg):
        values = self._entries.get((warp << 8) | reg)
        if values is None:
            values = [0] * self.lanes
        return list(values), _NO_REPORT

    def write(self, warp, reg, values, active_mask=None):
        key = (warp << 8) | reg
        if active_mask is None or active_mask == (1 << self.lanes) - 1:
            self._entries[key] = [v & self.value_mask for v in values]
        else:
            old = self._entries.get(key, [0] * self.lanes)
            self._entries[key] = [
                (values[i] & self.value_mask) if (active_mask >> i) & 1 else old[i]
                for i in range(self.lanes)
            ]
        return _NO_REPORT

    def read_form(self, warp, reg):
        """Form-level read: a plain file has no compact forms, so this
        returns the raw lane list (callers treat a ``list`` form as an
        uncompressed vector).  Never has side effects to cost."""
        values = self._entries.get((warp << 8) | reg)
        if values is None:
            return _NULL_SCALAR, None
        return values, None

    def write_form(self, warp, reg, form):
        """Full-mask write of a compact form: expanded to plain storage
        (a plain file keeps no compression state or counters)."""
        if type(form) is list:
            self._entries[(warp << 8) | reg] = [v & self.value_mask for v in form]
        else:
            self._entries[(warp << 8) | reg] = form.expand(self.lanes,
                                                           self.value_mask)

    def peek(self, warp, reg):
        """Side-effect-free read of a full vector (checker/debug use)."""
        values = self._entries.get((warp << 8) | reg)
        return [0] * self.lanes if values is None else list(values)

    def is_vector_resident(self, warp, reg):
        return False

    def is_uncompressed(self, warp, reg):
        return ((warp << 8) | reg) in self._entries

    @property
    def resident_vectors(self):
        return 0
