"""The SIMTight-like streaming multiprocessor (SM).

A cycle-level model of the paper's SM (Figure 2): a barrel-scheduled
pipeline with at most one instruction per warp in flight, per-thread program
counters with deepest-first reconvergence, a coalescing unit, a banked
scratchpad, a shared-function unit, and compressed general-purpose and
capability-metadata register files.
"""

from repro.simt.config import SMConfig
from repro.simt.pipeline import KernelAbort, StreamingMultiprocessor
from repro.simt.stats import SMStats

__all__ = ["KernelAbort", "SMConfig", "SMStats", "StreamingMultiprocessor"]
