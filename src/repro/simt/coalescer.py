"""The coalescing unit.

Packs per-lane memory requests into a small set of wide main-memory
transactions, exploiting memory-access regularity (paper sections 2.1 and
2.3).  The rules follow the same spirit as early NVIDIA Tesla devices: all
active lanes' accesses that fall within one aligned ``line_bytes`` block are
served by a single wide transaction.
"""


def coalesce(accesses, line_bytes):
    """Group per-lane accesses into line-sized transactions.

    ``accesses`` is an iterable of (addr, width) pairs for active lanes.
    Returns a list of (line_addr, n_bytes) transactions, one per distinct
    aligned block touched (an access straddling a block boundary counts
    against both blocks).
    """
    lines = set()
    for addr, width in accesses:
        first = addr // line_bytes
        last = (addr + width - 1) // line_bytes
        lines.add(first)
        if last != first:
            lines.add(last)
    return [(line * line_bytes, line_bytes) for line in sorted(lines)]


def atomic_conflicts(addresses):
    """Serialisation count for same-address atomics.

    Lanes performing an atomic on the same word must be serialised; the
    cost is the worst-case duplicate count minus one.
    """
    counts = {}
    for addr in addresses:
        counts[addr >> 2] = counts.get(addr >> 2, 0) + 1
    if not counts:
        return 0
    return max(counts.values()) - 1
