"""The streaming multiprocessor: barrel-scheduled SIMT pipeline.

Models the SIMTight SM of paper Figure 2 at cycle level:

- a barrel scheduler issues at most one instruction per warp into the
  pipeline at a time; a warp re-issues ``pipeline_depth`` cycles after
  issue (sooner-suspended warps resume at their operation's completion);
- the Active Thread Selection stage picks, per warp, the subset of threads
  at the deepest control-flow nesting level with the lowest common PC (and,
  under CHERI with dynamic PC metadata, an identical PCC);
- memory instructions suspend the warp and resume at the coalesced DRAM
  (or banked-scratchpad) completion time;
- the shared-function unit serialises lane requests for div/sqrt and, in
  the optimised configuration, the CHERI get/set-bounds instructions;
- the compressed register files charge spill/reload DRAM traffic and the
  CSC and shared-VRF operand-fetch stalls of paper section 3.2.

All CHERI checks (tag, seal, permission, bounds) are enforced exactly; a
failed check aborts the kernel with a :class:`KernelAbort` carrying the
precise fault.
"""

from repro.cheri.capability import Capability, Perms
from repro.cheri.exceptions import (
    BoundsViolation,
    CapabilityFault,
    PermissionViolation,
    SealViolation,
    TagViolation,
)
from repro.cheri import concentrate
from repro.isa.instructions import (
    ACCESS_WIDTH,
    AMO_OPS,
    BRANCH_OPS,
    CHERI_SLOW_OPS,
    LOAD_OPS,
    SFU_OPS,
    STORE_OPS,
    Op,
)
from repro.memory import DRAMModel, TagController, TaggedMemory
from repro.simt import alu
from repro.simt.coalescer import atomic_conflicts, coalesce
from repro.simt.config import SMConfig
from repro.simt.regfile import CompressedRegFile, PlainRegFile, SlotPool
from repro.simt.scratchpad import Scratchpad
from repro.simt.sfu import SharedFunctionUnit
from repro.simt.stackcache import StackCache
from repro.simt.stats import SMStats

MASK32 = 0xFFFFFFFF
_FAR_FUTURE = 1 << 62


class KernelAbort(Exception):
    """A kernel terminated abnormally (capability fault or software trap)."""

    def __init__(self, cause, cycle):
        super().__init__("kernel aborted at cycle %d: %s" % (cycle, cause))
        self.cause = cause
        self.cycle = cycle


class SoftwareTrap(Exception):
    """An explicit TRAP/EBREAK, e.g. a failed software bounds check."""

    def __init__(self, message, thread=None, pc=None):
        super().__init__(message)
        self.thread = thread
        self.pc = pc


_INT_R = {
    Op.ADD: "add", Op.SUB: "sub", Op.SLL: "sll", Op.SRL: "srl",
    Op.SRA: "sra", Op.XOR: "xor", Op.OR: "or", Op.AND: "and",
    Op.SLT: "slt", Op.SLTU: "sltu", Op.MUL: "mul", Op.MULH: "mulh",
    Op.MULHSU: "mulhsu", Op.MULHU: "mulhu", Op.DIV: "div", Op.DIVU: "divu",
    Op.REM: "rem", Op.REMU: "remu",
}
_INT_I = {
    Op.ADDI: "add", Op.SLTI: "slt", Op.SLTIU: "sltu", Op.XORI: "xor",
    Op.ORI: "or", Op.ANDI: "and", Op.SLLI: "sll", Op.SRLI: "srl",
    Op.SRAI: "sra",
}
_FLOAT_RR = {
    Op.FADD_S: "fadd", Op.FSUB_S: "fsub", Op.FMUL_S: "fmul",
    Op.FDIV_S: "fdiv", Op.FMIN_S: "fmin", Op.FMAX_S: "fmax",
    Op.FEQ_S: "feq", Op.FLT_S: "flt", Op.FLE_S: "fle",
    Op.FSGNJ_S: "fsgnj", Op.FSGNJN_S: "fsgnjn", Op.FSGNJX_S: "fsgnjx",
}
_FLOAT_UNARY = {
    Op.FSQRT_S: "fsqrt", Op.FCVT_W_S: "fcvt.w.s", Op.FCVT_WU_S: "fcvt.wu.s",
    Op.FCVT_S_W: "fcvt.s.w", Op.FCVT_S_WU: "fcvt.s.wu",
}
_AMO_FN = {
    Op.AMOADD_W: lambda old, v: alu.to_u32(old + v),
    Op.CAMOADD_W: lambda old, v: alu.to_u32(old + v),
    Op.AMOSWAP_W: lambda old, v: v,
    Op.AMOAND_W: lambda old, v: old & v,
    Op.AMOOR_W: lambda old, v: old | v,
    Op.AMOXOR_W: lambda old, v: old ^ v,
    Op.AMOMIN_W: lambda old, v: old if alu.to_signed(old) <= alu.to_signed(v) else v,
    Op.AMOMAX_W: lambda old, v: old if alu.to_signed(old) >= alu.to_signed(v) else v,
    Op.AMOMINU_W: lambda old, v: min(old, v),
    Op.AMOMAXU_W: lambda old, v: max(old, v),
}


class _Warp:
    """Mutable per-warp state."""

    __slots__ = ("index", "pcs", "halted", "pcc_meta", "ready_at",
                 "in_barrier", "block_slot", "done")

    def __init__(self, index, lanes, entry_pc, block_slot):
        self.index = index
        self.pcs = [entry_pc] * lanes
        self.halted = [False] * lanes
        self.pcc_meta = [0] * lanes
        self.ready_at = 0
        self.in_barrier = False
        self.block_slot = block_slot
        self.done = False


class StreamingMultiprocessor:
    """One SIMTight-like SM plus its memory subsystem."""

    def __init__(self, config=None, memory=None, scratchpad_base=None):
        self.cfg = (config or SMConfig()).validate()
        self.memory = memory if memory is not None else TaggedMemory()
        self.dram = DRAMModel(latency=self.cfg.dram_latency,
                              line_bytes=self.cfg.dram_line_bytes)
        self.tag_controller = TagController(self.memory, self.dram)
        if scratchpad_base is None:
            from repro.simt.config import SCRATCHPAD_BASE
            scratchpad_base = SCRATCHPAD_BASE
        self.scratchpad = Scratchpad(self.memory, self.cfg.num_lanes,
                                     self.cfg.scratchpad_bytes,
                                     base=scratchpad_base)
        self.sfu = SharedFunctionUnit(self.cfg.sfu_latency,
                                      self.cfg.sfu_cheri_latency)
        self.stack_cache = None
        if self.cfg.enable_stack_cache:
            from repro.simt.config import STACK_BASE
            self.stack_cache = StackCache(
                STACK_BASE,
                self.cfg.num_threads * self.cfg.stack_bytes_per_thread)
        self._build_regfiles()
        self.stats = SMStats()
        self.program = []
        self._pcc_cache = {}
        self._lane_range = range(self.cfg.num_lanes)
        #: Optional instruction-trace sink: an object with a
        #: ``record(cycle, warp, pc, instr, lanes)`` method.
        self.trace = None

    def _build_regfiles(self):
        cfg = self.cfg
        gp_pool = SlotPool(cfg.vrf_slots)
        self.gp = CompressedRegFile(cfg.num_lanes, 32, gp_pool,
                                    detect_affine=True, name="gp")
        self.meta = None
        if cfg.enable_cheri:
            if not cfg.compress_metadata:
                self.meta = PlainRegFile(cfg.num_lanes, 33, name="meta")
            elif cfg.shared_vrf:
                self.meta = CompressedRegFile(cfg.num_lanes, 33, gp_pool,
                                              detect_affine=False,
                                              nvo=cfg.nvo, name="meta")
            else:
                meta_pool = SlotPool(max(1, cfg.vrf_slots // 2))
                self.meta = CompressedRegFile(cfg.num_lanes, 33, meta_pool,
                                              detect_affine=False,
                                              nvo=cfg.nvo, name="meta")

    # ------------------------------------------------------------------
    # Launch interface
    # ------------------------------------------------------------------

    def launch(self, program, init_regs=None, init_cap_regs=None,
               entry_pc=0, warps_per_block=1, kernel_pcc=None,
               max_cycles=200_000_000):
        """Run ``program`` to completion on all warps; returns the stats.

        ``init_regs`` maps register index -> per-hardware-thread values
        (length num_threads).  ``init_cap_regs`` maps register index -> a
        single :class:`Capability` or per-thread list of capabilities
        (requires CHERI).  ``kernel_pcc`` is the program-counter capability
        installed in every thread at launch (defaults to an all-code root
        in CHERI mode).
        """
        cfg = self.cfg
        self.program = list(program)
        if cfg.num_warps % warps_per_block:
            raise ValueError("warps_per_block must divide num_warps")
        self.warps = [
            _Warp(w, cfg.num_lanes, entry_pc, w // warps_per_block)
            for w in range(cfg.num_warps)
        ]
        self._warps_per_block = warps_per_block
        self._barrier_arrived = {}
        if cfg.enable_cheri:
            if kernel_pcc is None:
                from repro.cheri.capability import root_capability
                kernel_pcc = root_capability(
                    Perms.GLOBAL | Perms.EXECUTE | Perms.LOAD)
            pcc_meta = kernel_pcc.meta_word() | (1 << 32)
            for warp in self.warps:
                warp.pcc_meta = [pcc_meta] * cfg.num_lanes
        self._install_registers(init_regs or {}, init_cap_regs or {})

        cycle = 0
        self.dram.reset_timing()
        self.sfu.reset_timing()
        rotation = 0
        live = cfg.num_warps
        try:
            while live:
                picked = None
                for offset in self._warp_order(rotation):
                    warp = self.warps[offset]
                    if not warp.done and not warp.in_barrier and \
                            warp.ready_at <= cycle:
                        picked = warp
                        break
                if picked is None:
                    next_ready = min(
                        (w.ready_at for w in self.warps
                         if not w.done and not w.in_barrier),
                        default=None,
                    )
                    if next_ready is None:
                        raise KernelAbort("deadlock: all warps blocked on a "
                                          "barrier", cycle)
                    cycle = max(cycle + 1, next_ready)
                    continue
                rotation = picked.index + 1
                cycle = self._issue(picked, cycle)
                if picked.done:
                    live -= 1
                if cycle > max_cycles:
                    raise KernelAbort("cycle limit exceeded", cycle)
        except (CapabilityFault, SoftwareTrap) as fault:
            self.stats.cycles += cycle
            self._finalise_stats()
            raise KernelAbort(fault, cycle) from fault
        # Cycles accumulate across launches so multi-kernel benchmarks
        # report their total.
        self.stats.cycles += cycle
        self._finalise_stats()
        return self.stats

    def _warp_order(self, rotation):
        count = self.cfg.num_warps
        return ((rotation + i) % count for i in range(count))

    def _install_registers(self, init_regs, init_cap_regs):
        cfg = self.cfg
        lanes = cfg.num_lanes
        for reg, values in init_regs.items():
            for w in range(cfg.num_warps):
                chunk = values[w * lanes:(w + 1) * lanes]
                self.gp.write(w, reg, [v & MASK32 for v in chunk])
                if self.meta is not None:
                    self.meta.write(w, reg, [0] * lanes)
        for reg, caps in init_cap_regs.items():
            if not cfg.enable_cheri:
                raise ValueError("capability registers require CHERI")
            if isinstance(caps, Capability):
                caps = [caps] * cfg.num_threads
            for w in range(cfg.num_warps):
                chunk = caps[w * lanes:(w + 1) * lanes]
                self.gp.write(w, reg, [c.addr for c in chunk])
                metas = [c.meta_word() | (int(c.tag) << 32) for c in chunk]
                self.meta.write(w, reg, metas)
                if any(c.tag for c in chunk):
                    self.stats.note_cap_register(w, reg)

    def _finalise_stats(self):
        st = self.stats
        st.dram_read_bytes = self.dram.stats.read_bytes
        st.dram_write_bytes = self.dram.stats.write_bytes
        st.dram_spill_bytes = self.dram.stats.spill_bytes
        st.dram_tag_bytes = self.dram.stats.tag_bytes
        st.dram_txns = self.dram.stats.total_txns
        st.gp_spills = self.gp.total_spills
        st.gp_reloads = self.gp.total_reloads
        st.gp_writes_total = self.gp.writes_total
        st.gp_writes_uniform = self.gp.writes_uniform
        st.gp_writes_affine = self.gp.writes_affine
        if self.meta is not None:
            st.meta_spills = self.meta.total_spills
            st.meta_reloads = self.meta.total_reloads
            if isinstance(self.meta, CompressedRegFile):
                st.meta_writes_total = self.meta.writes_total
                st.meta_writes_uniform = self.meta.writes_uniform
                st.meta_writes_partial_null = self.meta.writes_partial_null
        st.tag_cache_hits = self.tag_controller.hits
        st.tag_cache_misses = self.tag_controller.misses
        st.sfu_requests = self.sfu.requests
        st.sfu_busy_cycles = self.sfu.busy_cycles

    # ------------------------------------------------------------------
    # Active thread selection (paper section 2.3 / 3.3)
    # ------------------------------------------------------------------

    def _select_threads(self, warp):
        dynamic_pcc = (self.cfg.enable_cheri
                       and not self.cfg.static_pc_metadata)
        groups = {}
        for lane in self._lane_range:
            if warp.halted[lane]:
                continue
            pc = warp.pcs[lane]
            meta = warp.pcc_meta[lane] if dynamic_pcc else 0
            groups.setdefault((pc, meta), []).append(lane)
        if not groups:
            return None, None
        # Deepest nesting level first, then lowest PC (convergence).
        def priority(item):
            (pc, _meta), _lanes = item
            return (self._depth_at(pc), -pc)
        (pc, _meta), lanes = max(groups.items(), key=priority)
        return pc, lanes

    def _depth_at(self, pc):
        index = pc >> 2
        if 0 <= index < len(self.program):
            return self.program[index].depth
        return 0

    def _check_pcc(self, warp, pc, lanes):
        """One program-counter-capability bounds check per SM per fetch."""
        meta = warp.pcc_meta[lanes[0]]
        cached = self._pcc_cache.get(meta)
        if cached is None:
            cap = Capability.from_meta_word(meta & MASK32, pc, bool(meta >> 32))
            base, top = concentrate.decode_bounds(cap.bounds, pc)
            ok_perms = cap.tag and (Perms.EXECUTE in cap.perms)
            cached = (base, top, ok_perms)
            self._pcc_cache[meta] = cached
        base, top, ok_perms = cached
        if not ok_perms:
            raise PermissionViolation("PCC lacks execute permission",
                                      address=pc, pc=pc)
        if not (base <= pc and pc + 4 <= top):
            raise BoundsViolation("instruction fetch outside PCC bounds",
                                  address=pc, pc=pc)

    # ------------------------------------------------------------------
    # Issue: one instruction for one warp
    # ------------------------------------------------------------------

    def _issue(self, warp, cycle):
        cfg = self.cfg
        pc, lanes = self._select_threads(warp)
        if pc is None:
            warp.done = True
            warp.ready_at = _FAR_FUTURE
            return cycle
        index = pc >> 2
        if not 0 <= index < len(self.program):
            raise SoftwareTrap("instruction fetch from unmapped pc 0x%x" % pc,
                               thread=warp.index * cfg.num_lanes + lanes[0],
                               pc=pc)
        if cfg.enable_cheri:
            self._check_pcc(warp, pc, lanes)
        instr = self.program[index]

        # Per-issue accumulators, consumed by the helpers below.
        self._cycle = cycle
        self._mem_ready = cycle
        self._extra_issue = 0
        self._gp_vec_touch = False
        self._meta_vec_touch = False

        mask = 0
        for lane in lanes:
            mask |= 1 << lane

        self._execute(warp, instr, pc, lanes, mask)

        # Shared-VRF serialisation: accessing an uncompressed data vector
        # and an uncompressed metadata vector in one instruction costs an
        # extra cycle (section 3.2).
        if cfg.shared_vrf and self._gp_vec_touch and self._meta_vec_touch:
            self._extra_issue += 1
            self.stats.stall_shared_vrf += 1
        # One-read-port metadata SRF: CSC needs both cs1 and cs2 metadata,
        # costing an extra operand-fetch cycle (section 3.2).
        if cfg.metadata_srf_single_port and instr.op is Op.CSC:
            self._extra_issue += 1
            self.stats.stall_csc_operand += 1

        self.stats.instrs_issued += 1
        self.stats.thread_instrs += len(lanes)
        self.stats.opcode_counts[instr.op] += 1
        if self.trace is not None:
            self.trace.record(cycle, warp.index, pc, instr, lanes)

        completion = max(cycle + cfg.pipeline_depth, self._mem_ready)
        warp.ready_at = completion
        if all(warp.halted):
            warp.done = True
            warp.ready_at = _FAR_FUTURE

        # VRF occupancy integral (for Figure 10): resident vectors during
        # the issue slot(s) just consumed.
        width = 1 + self._extra_issue
        self.stats.gp_vrf_occupancy_integral += self.gp.resident_vectors * width
        if self.meta is not None:
            self.stats.meta_vrf_occupancy_integral += \
                self.meta.resident_vectors * width
        return cycle + width

    # -- register access helpers -----------------------------------------

    def _read_gp(self, warp, reg):
        if reg == 0:
            return [0] * self.cfg.num_lanes
        if self.gp.is_uncompressed(warp.index, reg):
            self._gp_vec_touch = True
        values, report = self.gp.read(warp.index, reg)
        self._account_rf(report)
        return values

    def _read_meta(self, warp, reg):
        if reg == 0:
            return [0] * self.cfg.num_lanes
        if self.meta.is_uncompressed(warp.index, reg):
            self._meta_vec_touch = True
        values, report = self.meta.read(warp.index, reg)
        self._account_rf(report)
        return values

    def _read_caps(self, warp, reg):
        """Materialise per-lane capabilities from the split register files."""
        addrs = self._read_gp(warp, reg)
        metas = self._read_meta(warp, reg)
        return [
            Capability.from_meta_word(metas[i] & MASK32, addrs[i],
                                      bool(metas[i] >> 32))
            for i in self._lane_range
        ]

    def _write_rd(self, warp, reg, values, mask, caps=None):
        """Write rd: general-purpose values plus capability/null metadata."""
        if reg is None or reg == 0:
            return
        report = self.gp.write(warp.index, reg, values, mask)
        self._account_rf(report)
        if self.gp.is_uncompressed(warp.index, reg):
            self._gp_vec_touch = True
        if self.meta is None:
            return
        if caps is None:
            metas = [0] * self.cfg.num_lanes
        else:
            metas = [
                (caps[i].meta_word() | (int(caps[i].tag) << 32))
                if caps[i] is not None else 0
                for i in self._lane_range
            ]
            if any(c is not None and c.tag for c in caps):
                self.stats.note_cap_register(warp.index, reg)
        report = self.meta.write(warp.index, reg, metas, mask)
        self._account_rf(report)
        if self.meta.is_uncompressed(warp.index, reg):
            self._meta_vec_touch = True

    def _account_rf(self, report):
        """Convert register spill/reload events into DRAM traffic + waits."""
        lane_bytes = self.cfg.num_lanes * 4
        for _ in range(report.spills):
            self.dram.request(self._cycle, True, lane_bytes, spill=True)
        for _ in range(report.reloads):
            done = self.dram.request(self._cycle, False, lane_bytes, spill=True)
            self._mem_ready = max(self._mem_ready, done)

    # -- memory helpers -----------------------------------------------------

    def _memory_access(self, op, accesses, warp, is_write):
        """Account timing for per-lane accesses [(lane, addr, width)]."""
        cfg = self.cfg
        scratch = [(a, w) for _, a, w in accesses
                   if self.scratchpad.contains(a)]
        global_ = [(a, w) for _, a, w in accesses
                   if not self.scratchpad.contains(a)]
        if scratch:
            conflicts = self.scratchpad.conflict_cycles([a for a, _ in scratch])
            self._extra_issue += conflicts
            self.stats.stall_bank_conflict += conflicts
            self.stats.scratchpad_accesses += len(scratch)
            self._mem_ready = max(self._mem_ready,
                                  self._cycle + cfg.scratchpad_latency)
        if global_ and self.stack_cache is not None:
            # The compressed stack cache absorbs stack traffic
            # (section 4.4): only missing lines reach DRAM.
            stack_accesses = [(a, w) for a, w in global_
                              if self.stack_cache.contains(a)]
            if stack_accesses:
                global_ = [(a, w) for a, w in global_
                           if not self.stack_cache.contains(a)]
                missed = self.stack_cache.access(
                    [a for a, _ in stack_accesses], is_write)
                self._mem_ready = max(self._mem_ready,
                                      self._cycle + cfg.scratchpad_latency)
                for line_addr in missed:
                    done = self.dram.request(
                        self._cycle, is_write,
                        self.stack_cache.line_bytes)
                    self._mem_ready = max(self._mem_ready, done)
        if global_:
            txns = coalesce(global_, cfg.dram_line_bytes)
            for line_addr, n_bytes in txns:
                if cfg.enable_cheri:
                    writes_tag = is_write and op in (Op.CSC,)
                    done = self.tag_controller.access(
                        self._cycle, line_addr, is_write, writes_tag=writes_tag)
                    self._mem_ready = max(self._mem_ready, done)
                done = self.dram.request(self._cycle, is_write, n_bytes)
                self._mem_ready = max(self._mem_ready, done)
        if ACCESS_WIDTH.get(op) == 8:
            # Multi-flit transaction: a 64-bit capability access is two
            # inseparable 32-bit flits (section 3.4).
            self._extra_issue += 1

    # -- capability checks ----------------------------------------------------

    def _check_cap(self, cap, addr, width, perm, thread, pc, op_name):
        if not cap.tag:
            raise TagViolation("%s via untagged capability" % op_name,
                               address=addr, thread=thread, pc=pc)
        if cap.is_sealed:
            raise SealViolation("%s via sealed capability" % op_name,
                                address=addr, thread=thread, pc=pc)
        if perm not in cap.perms:
            raise PermissionViolation(
                "%s lacks %s permission" % (op_name, perm.name),
                address=addr, thread=thread, pc=pc)
        base, top = concentrate.decode_bounds(cap.bounds, cap.addr)
        if not (base <= addr and addr + width <= top):
            raise BoundsViolation(
                "%s out of bounds: 0x%08x not in [0x%08x, 0x%08x)"
                % (op_name, addr, base, top),
                address=addr, thread=thread, pc=pc)

    # ------------------------------------------------------------------
    # Execution (functional semantics + per-op timing hooks)
    # ------------------------------------------------------------------

    def _execute(self, warp, instr, pc, lanes, mask):
        op = instr.op
        cfg = self.cfg
        next_pc = pc + 4

        def advance(targets=None):
            if targets is None:
                for lane in lanes:
                    warp.pcs[lane] = next_pc
            else:
                for lane in lanes:
                    warp.pcs[lane] = targets[lane]

        # --- integer ALU -------------------------------------------------
        if op in _INT_R:
            a = self._read_gp(warp, instr.rs1)
            b = self._read_gp(warp, instr.rs2)
            name = _INT_R[op]
            out = [0] * cfg.num_lanes
            for lane in lanes:
                out[lane] = alu.int_op(name, a[lane], b[lane])
            self._write_rd(warp, instr.rd, out, mask)
            if op in SFU_OPS:
                self._mem_ready = max(
                    self._mem_ready, self.sfu.issue(self._cycle, len(lanes)))
            advance()
            return

        if op in _INT_I:
            a = self._read_gp(warp, instr.rs1)
            name = _INT_I[op]
            imm = instr.imm or 0
            out = [0] * cfg.num_lanes
            for lane in lanes:
                out[lane] = alu.int_op(name, a[lane], imm & MASK32)
            self._write_rd(warp, instr.rd, out, mask)
            advance()
            return

        if op is Op.LUI:
            value = (instr.imm << 12) & MASK32
            self._write_rd(warp, instr.rd, [value] * cfg.num_lanes, mask)
            advance()
            return

        if op is Op.AUIPC:
            value = (pc + (instr.imm << 12)) & MASK32
            self._write_rd(warp, instr.rd, [value] * cfg.num_lanes, mask)
            advance()
            return

        if op is Op.AUIPCC:
            # rd := PCC with address pc + imm<<12 (a capability result).
            addr = (pc + (instr.imm << 12)) & MASK32
            caps = []
            for lane in self._lane_range:
                meta = warp.pcc_meta[lane]
                pcc = Capability.from_meta_word(meta & MASK32, pc,
                                                bool(meta >> 32))
                caps.append(pcc.set_addr(addr))
            self._write_rd(warp, instr.rd, [addr] * cfg.num_lanes, mask,
                           caps=caps)
            advance()
            return

        # --- branches and jumps -------------------------------------------
        if op in BRANCH_OPS:
            a = self._read_gp(warp, instr.rs1)
            b = self._read_gp(warp, instr.rs2)
            name = op.name.lower()
            taken_pc = (pc + instr.imm) & MASK32
            targets = list(warp.pcs)
            for lane in lanes:
                targets[lane] = taken_pc if alu.branch_taken(
                    name, a[lane], b[lane]) else next_pc
            advance(targets)
            return

        if op in (Op.JAL, Op.CJAL):
            if instr.rd:
                if op is Op.CJAL:
                    caps = []
                    for lane in self._lane_range:
                        meta = warp.pcc_meta[lane]
                        link = Capability.from_meta_word(
                            meta & MASK32, next_pc, bool(meta >> 32))
                        caps.append(link.seal_entry())
                    self._write_rd(warp, instr.rd,
                                   [next_pc] * cfg.num_lanes, mask, caps=caps)
                else:
                    self._write_rd(warp, instr.rd,
                                   [next_pc] * cfg.num_lanes, mask)
            target = (pc + instr.imm) & MASK32
            advance([target] * cfg.num_lanes)
            return

        if op is Op.JALR:
            a = self._read_gp(warp, instr.rs1)
            targets = list(warp.pcs)
            for lane in lanes:
                targets[lane] = (a[lane] + (instr.imm or 0)) & ~1 & MASK32
            if instr.rd:
                self._write_rd(warp, instr.rd, [next_pc] * cfg.num_lanes, mask)
            advance(targets)
            return

        if op is Op.CJALR:
            caps = self._read_caps(warp, instr.rs1)
            targets = list(warp.pcs)
            link_caps = []
            for lane in self._lane_range:
                meta = warp.pcc_meta[lane]
                link = Capability.from_meta_word(meta & MASK32, next_pc,
                                                 bool(meta >> 32))
                link_caps.append(link.seal_entry())
            for lane in lanes:
                cap = caps[lane]
                thread = warp.index * cfg.num_lanes + lane
                if not cap.tag:
                    raise TagViolation("CJALR via untagged capability",
                                       thread=thread, pc=pc)
                if cap.is_sealed and not cap.is_sentry:
                    raise SealViolation("CJALR via sealed capability",
                                        thread=thread, pc=pc)
                if Perms.EXECUTE not in cap.perms:
                    raise PermissionViolation("CJALR target lacks execute",
                                              thread=thread, pc=pc)
                target_cap = cap.unseal_entry() if cap.is_sentry else cap
                target = (target_cap.addr + (instr.imm or 0)) & ~1 & MASK32
                targets[lane] = target
                warp.pcc_meta[lane] = (target_cap.meta_word()
                                       | (int(target_cap.tag) << 32))
            if instr.rd:
                self._write_rd(warp, instr.rd, [next_pc] * cfg.num_lanes,
                               mask, caps=link_caps)
            advance(targets)
            return

        # --- floating point -------------------------------------------------
        if op in _FLOAT_RR:
            a = self._read_gp(warp, instr.rs1)
            b = self._read_gp(warp, instr.rs2)
            name = _FLOAT_RR[op]
            out = [0] * cfg.num_lanes
            for lane in lanes:
                out[lane] = alu.float_op(name, a[lane], b[lane])
            self._write_rd(warp, instr.rd, out, mask)
            if op in SFU_OPS:
                self._mem_ready = max(
                    self._mem_ready, self.sfu.issue(self._cycle, len(lanes)))
            advance()
            return

        if op in _FLOAT_UNARY:
            a = self._read_gp(warp, instr.rs1)
            name = _FLOAT_UNARY[op]
            out = [0] * cfg.num_lanes
            for lane in lanes:
                out[lane] = alu.float_op(name, a[lane])
            self._write_rd(warp, instr.rd, out, mask)
            if op in SFU_OPS:
                self._mem_ready = max(
                    self._mem_ready, self.sfu.issue(self._cycle, len(lanes)))
            advance()
            return

        # --- memory ----------------------------------------------------------
        if op in LOAD_OPS or op in STORE_OPS or op in AMO_OPS:
            self._execute_memory(warp, instr, pc, lanes, mask)
            advance()
            return

        # --- CHERI non-memory --------------------------------------------------
        if self._execute_cheri(warp, instr, pc, lanes, mask):
            advance()
            return

        # --- SIMT / system -------------------------------------------------------
        if op is Op.BARRIER:
            advance()
            self._enter_barrier(warp)
            return
        if op is Op.HALT:
            for lane in lanes:
                warp.halted[lane] = True
            return
        if op in (Op.TRAP, Op.EBREAK, Op.ECALL):
            thread = warp.index * cfg.num_lanes + lanes[0]
            raise SoftwareTrap(
                "software trap (%s)%s" % (
                    op.name.lower(),
                    "" if not instr.comment else ": " + instr.comment),
                thread=thread, pc=pc)
        if op is Op.FENCE:
            advance()
            return
        raise SoftwareTrap("unimplemented op %s" % op, pc=pc)

    # -- memory instructions ----------------------------------------------------

    def _execute_memory(self, warp, instr, pc, lanes, mask):
        cfg = self.cfg
        op = instr.op
        width = ACCESS_WIDTH[op]
        imm = instr.imm or 0
        is_cap_addressed = op.name.startswith("C")
        is_store = op in STORE_OPS
        is_amo = op in AMO_OPS

        if is_cap_addressed:
            caps = self._read_caps(warp, instr.rs1)
            addr_of = lambda lane: (caps[lane].addr + imm) & MASK32
        else:
            bases = self._read_gp(warp, instr.rs1)
            addr_of = lambda lane: (bases[lane] + imm) & MASK32

        accesses = [(lane, addr_of(lane), width) for lane in lanes]

        # Capability checks (one per active lane).
        if is_cap_addressed:
            for lane, addr, _ in accesses:
                thread = warp.index * cfg.num_lanes + lane
                if is_amo:
                    self._check_cap(caps[lane], addr, width, Perms.LOAD,
                                    thread, pc, op.name)
                    self._check_cap(caps[lane], addr, width, Perms.STORE,
                                    thread, pc, op.name)
                elif is_store:
                    self._check_cap(caps[lane], addr, width, Perms.STORE,
                                    thread, pc, op.name)
                else:
                    self._check_cap(caps[lane], addr, width, Perms.LOAD,
                                    thread, pc, op.name)

        if is_amo:
            values = self._read_gp(warp, instr.rs2)
            fn = _AMO_FN[op]
            out = [0] * cfg.num_lanes
            # Same-address atomics serialise deterministically in lane order.
            for lane, addr, _ in accesses:
                old = self.memory.read(addr, 4)
                self.memory.write(addr, 4, fn(old, values[lane]))
                out[lane] = old
            conflicts = atomic_conflicts([a for _, a, _ in accesses])
            self._extra_issue += conflicts
            self.stats.stall_atomic_serial += conflicts
            self._write_rd(warp, instr.rd, out, mask)
            self._memory_access(op, accesses, warp, is_write=True)
            return

        if is_store:
            if op is Op.CSC:
                store_caps = self._read_caps(warp, instr.rs2)
                for lane, addr, _ in accesses:
                    thread = warp.index * cfg.num_lanes + lane
                    cap2 = store_caps[lane]
                    if cap2.tag and Perms.STORE_CAP not in caps[lane].perms:
                        raise PermissionViolation(
                            "CSC lacks STORE_CAP permission",
                            address=addr, thread=thread, pc=pc)
                    self.memory.write_cap_raw(addr, cap2.to_mem()
                                              & ((1 << 64) - 1), cap2.tag)
            else:
                values = self._read_gp(warp, instr.rs2)
                for lane, addr, _ in accesses:
                    self.memory.write(addr, width, values[lane]
                                      & ((1 << (8 * width)) - 1))
            self._memory_access(op, accesses, warp, is_write=True)
            return

        # Loads.
        if op is Op.CLC:
            out = [0] * cfg.num_lanes
            metas = [None] * cfg.num_lanes
            for lane, addr, _ in accesses:
                raw, tag = self.memory.read_cap_raw(addr)
                if tag and Perms.LOAD_CAP not in caps[lane].perms:
                    tag = False  # lacking LOAD_CAP strips the loaded tag
                loaded = Capability.from_mem(raw | (int(tag) << 64))
                out[lane] = loaded.addr
                metas[lane] = loaded
            self._write_rd(warp, instr.rd, out, mask, caps=metas)
        else:
            signed = op in (Op.LB, Op.LH, Op.CLB, Op.CLH)
            out = [0] * cfg.num_lanes
            for lane, addr, _ in accesses:
                out[lane] = self.memory.read(addr, width, signed) & MASK32
            self._write_rd(warp, instr.rd, out, mask)
        self._memory_access(op, accesses, warp, is_write=False)

    # -- CHERI non-memory instructions ----------------------------------------

    def _execute_cheri(self, warp, instr, pc, lanes, mask):
        """Returns True when the op was a (non-memory) CHERI instruction."""
        cfg = self.cfg
        op = instr.op
        lanes_range = self._lane_range

        def sfu_slow_path():
            if cfg.sfu_cheri_slow_path and op in CHERI_SLOW_OPS:
                self._mem_ready = max(
                    self._mem_ready,
                    self.sfu.issue(self._cycle, len(lanes), cheri_op=True))

        if op in (Op.CGETTAG, Op.CGETPERM, Op.CGETBASE, Op.CGETLEN,
                  Op.CGETADDR, Op.CGETTYPE, Op.CGETSEALED, Op.CGETFLAGS):
            caps = self._read_caps(warp, instr.rs1)
            out = [0] * cfg.num_lanes
            for lane in lanes:
                cap = caps[lane]
                if op is Op.CGETTAG:
                    out[lane] = int(cap.tag)
                elif op is Op.CGETPERM:
                    out[lane] = int(cap.perms)
                elif op is Op.CGETBASE:
                    out[lane] = cap.base
                elif op is Op.CGETLEN:
                    out[lane] = min(cap.length, MASK32)
                elif op is Op.CGETADDR:
                    out[lane] = cap.addr
                elif op is Op.CGETTYPE:
                    out[lane] = cap.otype
                elif op is Op.CGETSEALED:
                    out[lane] = int(cap.is_sealed)
                else:
                    out[lane] = cap.flags
            self._write_rd(warp, instr.rd, out, mask)
            sfu_slow_path()
            return True

        if op in (Op.CRRL, Op.CRAM):
            a = self._read_gp(warp, instr.rs1)
            out = [0] * cfg.num_lanes
            for lane in lanes:
                if op is Op.CRRL:
                    out[lane] = min(concentrate.crrl(a[lane]), MASK32)
                else:
                    out[lane] = concentrate.crml(a[lane])
            self._write_rd(warp, instr.rd, out, mask)
            sfu_slow_path()
            return True

        if op in (Op.CCLEARTAG, Op.CMOVE, Op.CSEALENTRY):
            caps = self._read_caps(warp, instr.rs1)
            out = [0] * cfg.num_lanes
            result = [None] * cfg.num_lanes
            for lane in lanes:
                cap = caps[lane]
                if op is Op.CCLEARTAG:
                    cap = cap.with_tag_cleared()
                elif op is Op.CSEALENTRY:
                    cap = cap.seal_entry()
                out[lane] = cap.addr
                result[lane] = cap
            self._write_rd(warp, instr.rd, out, mask, caps=result)
            return True

        if op in (Op.CANDPERM, Op.CSETFLAGS, Op.CSETADDR, Op.CINCOFFSET,
                  Op.CSETBOUNDS, Op.CSETBOUNDSEXACT):
            caps = self._read_caps(warp, instr.rs1)
            b = self._read_gp(warp, instr.rs2)
            out = [0] * cfg.num_lanes
            result = [None] * cfg.num_lanes
            for lane in lanes:
                cap = caps[lane]
                if op is Op.CANDPERM:
                    cap = cap.and_perms(b[lane])
                elif op is Op.CSETFLAGS:
                    cap = cap.set_flags(b[lane])
                elif op is Op.CSETADDR:
                    cap = cap.set_addr(b[lane])
                elif op is Op.CINCOFFSET:
                    cap = cap.inc_addr(b[lane])
                else:
                    cap, _ = cap.set_bounds(cap.addr, b[lane],
                                            exact=op is Op.CSETBOUNDSEXACT)
                out[lane] = cap.addr
                result[lane] = cap
            self._write_rd(warp, instr.rd, out, mask, caps=result)
            sfu_slow_path()
            return True

        if op in (Op.CINCOFFSETIMM, Op.CSETBOUNDSIMM):
            caps = self._read_caps(warp, instr.rs1)
            imm = instr.imm or 0
            out = [0] * cfg.num_lanes
            result = [None] * cfg.num_lanes
            for lane in lanes:
                cap = caps[lane]
                if op is Op.CINCOFFSETIMM:
                    cap = cap.inc_addr(imm)
                else:
                    cap, _ = cap.set_bounds(cap.addr, imm)
                out[lane] = cap.addr
                result[lane] = cap
            self._write_rd(warp, instr.rd, out, mask, caps=result)
            sfu_slow_path()
            return True

        if op is Op.CSPECIALRW:
            # Only reading the PCC special register is supported.
            out = [0] * cfg.num_lanes
            result = [None] * cfg.num_lanes
            for lane in lanes:
                meta = warp.pcc_meta[lane]
                pcc = Capability.from_meta_word(meta & MASK32, pc,
                                                bool(meta >> 32))
                out[lane] = pc
                result[lane] = pcc
            self._write_rd(warp, instr.rd, out, mask, caps=result)
            return True

        return False

    # -- barriers --------------------------------------------------------------

    def _enter_barrier(self, warp):
        slot = warp.block_slot
        arrived = self._barrier_arrived.setdefault(slot, set())
        arrived.add(warp.index)
        warp.in_barrier = True
        warp.ready_at = _FAR_FUTURE
        self.stats.barrier_waits += 1
        expected = {
            w.index for w in self.warps
            if w.block_slot == slot and not w.done
        }
        if arrived >= expected:
            for index in arrived:
                other = self.warps[index]
                other.in_barrier = False
                other.ready_at = self._cycle + self.cfg.pipeline_depth
            arrived.clear()
