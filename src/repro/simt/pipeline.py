"""The streaming multiprocessor: barrel-scheduled SIMT pipeline.

Models the SIMTight SM of paper Figure 2 at cycle level:

- a barrel scheduler issues at most one instruction per warp into the
  pipeline at a time; a warp re-issues ``pipeline_depth`` cycles after
  issue (sooner-suspended warps resume at their operation's completion);
- the Active Thread Selection stage picks, per warp, the subset of threads
  at the deepest control-flow nesting level with the lowest common PC (and,
  under CHERI with dynamic PC metadata, an identical PCC);
- memory instructions suspend the warp and resume at the coalesced DRAM
  (or banked-scratchpad) completion time;
- the shared-function unit serialises lane requests for div/sqrt and, in
  the optimised configuration, the CHERI get/set-bounds instructions;
- the compressed register files charge spill/reload DRAM traffic and the
  CSC and shared-VRF operand-fetch stalls of paper section 3.2.

All CHERI checks (tag, seal, permission, bounds) are enforced exactly; a
failed check aborts the kernel with a :class:`KernelAbort` carrying the
precise fault.

Instruction decode and the issue/scheduler loop live in a pluggable
execution backend (:mod:`repro.simt.backend`), selected by
``SMConfig.backend``: the ``scalar`` backend interprets per lane (the
reference semantics), the ``vector`` backend executes each issued
instruction across all lanes at once.  Both are bit-identical in every
simulated statistic; the SM keeps the shared plumbing (register files,
memory system, capability checks) both backends drive.
"""

from repro.cheri.capability import Capability, Perms
from repro.cheri.exceptions import (
    BoundsViolation,
    CapabilityFault,
    PermissionViolation,
    SealViolation,
    TagViolation,
)
from repro.cheri import concentrate
from repro.isa.instructions import ACCESS_WIDTH, Op
from repro.memory import DRAMModel, TagController, TaggedMemory
from repro.simt.backend import create_backend
from repro.simt.coalescer import coalesce
from repro.simt.config import SMConfig
from repro.simt.regfile import CompressedRegFile, PlainRegFile, SlotPool
from repro.simt.regfile.compressed import _NULL_SCALAR, _Scalar
from repro.simt.scratchpad import Scratchpad
from repro.simt.sfu import SharedFunctionUnit
from repro.simt.stackcache import StackCache
from repro.simt.stats import SMStats

MASK32 = 0xFFFFFFFF
_FAR_FUTURE = 1 << 62


class KernelAbort(Exception):
    """A kernel terminated abnormally (capability fault or software trap)."""

    def __init__(self, cause, cycle):
        super().__init__("kernel aborted at cycle %d: %s" % (cycle, cause))
        self.cause = cause
        self.cycle = cycle


class SoftwareTrap(Exception):
    """An explicit TRAP/EBREAK, e.g. a failed software bounds check."""

    def __init__(self, message, thread=None, pc=None):
        super().__init__(message)
        self.thread = thread
        self.pc = pc


# Decode dispatch tables now live with the scalar (reference) backend; they
# are re-exported here because tests and tooling patch them in place (the
# dict objects are shared, so a monkeypatched entry is seen by every
# backend).  Imported lazily at the bottom of the module to avoid a cycle
# with repro.simt.backend.scalar, which needs KernelAbort/SoftwareTrap.


class _Warp:
    """Mutable per-warp state."""

    __slots__ = ("index", "pcs", "halted", "pcc_meta", "ready_at",
                 "in_barrier", "block_slot", "done", "rq")

    def __init__(self, index, lanes, entry_pc, block_slot):
        self.index = index
        self.pcs = [entry_pc] * lanes
        self.halted = [False] * lanes
        self.pcc_meta = [0] * lanes
        self.ready_at = 0
        self.in_barrier = False
        self.block_slot = block_slot
        self.done = False
        # Pending fused-region steps for the vector backend's barrel
        # scheduler: [steps, next_index] or None (see VectorBackend.run).
        self.rq = None


class StreamingMultiprocessor:
    """One SIMTight-like SM plus its memory subsystem."""

    def __init__(self, config=None, memory=None, scratchpad_base=None):
        self.cfg = (config or SMConfig()).validate()
        self.memory = memory if memory is not None else TaggedMemory()
        self.dram = DRAMModel(latency=self.cfg.dram_latency,
                              line_bytes=self.cfg.dram_line_bytes)
        self.tag_controller = TagController(self.memory, self.dram)
        if scratchpad_base is None:
            from repro.simt.config import SCRATCHPAD_BASE
            scratchpad_base = SCRATCHPAD_BASE
        self.scratchpad = Scratchpad(self.memory, self.cfg.num_lanes,
                                     self.cfg.scratchpad_bytes,
                                     base=scratchpad_base)
        self.sfu = SharedFunctionUnit(self.cfg.sfu_latency,
                                      self.cfg.sfu_cheri_latency)
        self.stack_cache = None
        if self.cfg.enable_stack_cache:
            from repro.simt.config import STACK_BASE
            self.stack_cache = StackCache(
                STACK_BASE,
                self.cfg.num_threads * self.cfg.stack_bytes_per_thread)
        self._build_regfiles()
        self.stats = SMStats()
        self.program = []
        self._decoded = []
        self._pcc_cache = {}
        self._num_lanes = self.cfg.num_lanes
        self._lane_range = range(self._num_lanes)
        #: Canonical all-active lane list (shared, never mutated).
        self._all_lanes = list(self._lane_range)
        self._full_mask = (1 << self._num_lanes) - 1
        #: Canonical zero vector returned for reads of register 0
        #: (shared, never mutated by any caller).
        self._zero_lanes = [0] * self._num_lanes
        self._dynamic_pcc = (self.cfg.enable_cheri
                             and not self.cfg.static_pc_metadata)
        #: Bumped whenever a barrier release changes other warps'
        #: readiness; lets the vector backend's run-ahead scheduler know
        #: its cached view of the other warps went stale.
        self._sched_epoch = 0
        #: Optional instruction-trace sink: an object with a
        #: ``record(cycle, warp, pc, instr, lanes)`` method.
        self.trace = None
        #: Optional :class:`repro.obs.ProbeBus`.  ``None`` (the default)
        #: keeps the hot path untouched: every hook below is guarded by a
        #: single ``self.probes is not None`` check, so simulated
        #: statistics are bit-identical with probes attached or not.
        self.probes = None
        #: Optional :class:`repro.nocl.compiler.CompiledKernel` for the
        #: running program (set by the runtime; profiler side-band only).
        self.kernel_info = None
        #: The execution backend (``SMConfig.backend``).
        self.backend = create_backend(self.cfg.backend, self)

    def _build_regfiles(self):
        cfg = self.cfg
        gp_pool = SlotPool(cfg.vrf_slots)
        self.gp = CompressedRegFile(cfg.num_lanes, 32, gp_pool,
                                    detect_affine=True, name="gp")
        self.meta = None
        if cfg.enable_cheri:
            if not cfg.compress_metadata:
                self.meta = PlainRegFile(cfg.num_lanes, 33, name="meta")
            elif cfg.shared_vrf:
                self.meta = CompressedRegFile(cfg.num_lanes, 33, gp_pool,
                                              detect_affine=False,
                                              nvo=cfg.nvo, name="meta")
            else:
                meta_pool = SlotPool(max(1, cfg.vrf_slots // 2))
                self.meta = CompressedRegFile(cfg.num_lanes, 33, meta_pool,
                                              detect_affine=False,
                                              nvo=cfg.nvo, name="meta")
        # A plain metadata file reports every held register as
        # uncompressed; a compressed one never does right after a compact
        # write.  Cached so write fast paths can skip the query.
        self._meta_plain = isinstance(self.meta, PlainRegFile)

    # ------------------------------------------------------------------
    # Launch interface
    # ------------------------------------------------------------------

    def launch(self, program, init_regs=None, init_cap_regs=None,
               entry_pc=0, warps_per_block=1, kernel_pcc=None,
               max_cycles=200_000_000):
        """Run ``program`` to completion on all warps; returns the stats.

        ``init_regs`` maps register index -> per-hardware-thread values
        (length num_threads).  ``init_cap_regs`` maps register index -> a
        single :class:`Capability` or per-thread list of capabilities
        (requires CHERI).  ``kernel_pcc`` is the program-counter capability
        installed in every thread at launch (defaults to an all-code root
        in CHERI mode).
        """
        cfg = self.cfg
        backend = self.backend
        self.program = list(program)
        # Decode every static instruction once (multi-kernel safe: redone
        # per launch because the program changes); this also invalidates
        # any hot-trace specialisations from a previous program.
        backend.on_launch()
        self._decoded = [backend.decode(instr) for instr in self.program]
        if cfg.num_warps % warps_per_block:
            raise ValueError("warps_per_block must divide num_warps")
        self.warps = [
            _Warp(w, cfg.num_lanes, entry_pc, w // warps_per_block)
            for w in range(cfg.num_warps)
        ]
        self._warps_per_block = warps_per_block
        self._barrier_arrived = {}
        if cfg.enable_cheri:
            if kernel_pcc is None:
                from repro.cheri.capability import root_capability
                kernel_pcc = root_capability(
                    Perms.GLOBAL | Perms.EXECUTE | Perms.LOAD)
            pcc_meta = kernel_pcc.meta_word() | (1 << 32)
            for warp in self.warps:
                warp.pcc_meta = [pcc_meta] * cfg.num_lanes
        self._install_registers(init_regs or {}, init_cap_regs or {})

        self.dram.reset_timing()
        self.sfu.reset_timing()
        if self.probes is not None:
            self.probes.launch(self, self.program)
        try:
            cycle = backend.run(max_cycles)
        except (CapabilityFault, SoftwareTrap) as fault:
            cycle = backend.fault_cycle or 0
            self.stats.cycles += cycle
            self._finalise_stats()
            raise KernelAbort(fault, cycle) from fault
        # Cycles accumulate across launches so multi-kernel benchmarks
        # report their total.
        self.stats.cycles += cycle
        self._finalise_stats()
        return self.stats

    def _install_registers(self, init_regs, init_cap_regs):
        cfg = self.cfg
        lanes = cfg.num_lanes
        for reg, values in init_regs.items():
            for w in range(cfg.num_warps):
                chunk = values[w * lanes:(w + 1) * lanes]
                self.gp.write(w, reg, [v & MASK32 for v in chunk])
                if self.meta is not None:
                    self.meta.write(w, reg, [0] * lanes)
        for reg, caps in init_cap_regs.items():
            if not cfg.enable_cheri:
                raise ValueError("capability registers require CHERI")
            if isinstance(caps, Capability):
                caps = [caps] * cfg.num_threads
            for w in range(cfg.num_warps):
                chunk = caps[w * lanes:(w + 1) * lanes]
                self.gp.write(w, reg, [c.addr for c in chunk])
                metas = [c.meta_word() | (int(c.tag) << 32) for c in chunk]
                self.meta.write(w, reg, metas)
                if any(c.tag for c in chunk):
                    self.stats.note_cap_register(w, reg)

    def _finalise_stats(self):
        st = self.stats
        st.dram_read_bytes = self.dram.stats.read_bytes
        st.dram_write_bytes = self.dram.stats.write_bytes
        st.dram_spill_bytes = self.dram.stats.spill_bytes
        st.dram_tag_bytes = self.dram.stats.tag_bytes
        st.dram_txns = self.dram.stats.total_txns
        st.gp_spills = self.gp.total_spills
        st.gp_reloads = self.gp.total_reloads
        st.gp_writes_total = self.gp.writes_total
        st.gp_writes_uniform = self.gp.writes_uniform
        st.gp_writes_affine = self.gp.writes_affine
        if self.meta is not None:
            st.meta_spills = self.meta.total_spills
            st.meta_reloads = self.meta.total_reloads
            if isinstance(self.meta, CompressedRegFile):
                st.meta_writes_total = self.meta.writes_total
                st.meta_writes_uniform = self.meta.writes_uniform
                st.meta_writes_partial_null = self.meta.writes_partial_null
        st.tag_cache_hits = self.tag_controller.hits
        st.tag_cache_misses = self.tag_controller.misses
        st.sfu_requests = self.sfu.requests
        st.sfu_busy_cycles = self.sfu.busy_cycles

    # ------------------------------------------------------------------
    # Active thread selection (paper section 2.3 / 3.3)
    # ------------------------------------------------------------------

    def _select_threads(self, warp):
        pcs = warp.pcs
        halted = warp.halted
        num_lanes = self._num_lanes
        # Fast path: no lane halted and all lanes converged.  This is the
        # overwhelmingly common case for the regular kernels the paper
        # evaluates, and avoids building the per-group dict.
        if True not in halted:
            pc = pcs[0]
            if pcs.count(pc) == num_lanes:
                if not self._dynamic_pcc:
                    return pc, self._all_lanes
                metas = warp.pcc_meta
                if metas.count(metas[0]) == num_lanes:
                    return pc, self._all_lanes
        dynamic_pcc = self._dynamic_pcc
        groups = {}
        if dynamic_pcc:
            metas = warp.pcc_meta
            for lane in self._lane_range:
                if halted[lane]:
                    continue
                key = (pcs[lane], metas[lane])
                group = groups.get(key)
                if group is None:
                    groups[key] = [lane]
                else:
                    group.append(lane)
        else:
            for lane in self._lane_range:
                if halted[lane]:
                    continue
                key = pcs[lane]
                group = groups.get(key)
                if group is None:
                    groups[key] = [lane]
                else:
                    group.append(lane)
        if not groups:
            return None, None
        # Deepest nesting level first, then lowest PC (convergence); the
        # strict > keeps max()'s first-maximal tie behaviour.  Group
        # insertion order is lane order of each group's first member,
        # matching the scalar reference selection exactly.
        program = self.program
        program_len = len(program)
        best = None
        best_priority = None
        for key, group_lanes in groups.items():
            pc = key[0] if dynamic_pcc else key
            index = pc >> 2
            depth = program[index].depth if 0 <= index < program_len else 0
            priority = (depth, -pc)
            if best_priority is None or priority > best_priority:
                best_priority = priority
                best = (pc, group_lanes)
        return best

    def _depth_at(self, pc):
        index = pc >> 2
        if 0 <= index < len(self.program):
            return self.program[index].depth
        return 0

    def _check_pcc(self, warp, pc, lanes):
        """One program-counter-capability bounds check per SM per fetch."""
        meta = warp.pcc_meta[lanes[0]]
        cached = self._pcc_cache.get(meta)
        if cached is None:
            cap = Capability.from_meta_word(meta & MASK32, pc, bool(meta >> 32))
            base, top = concentrate.decode_bounds(cap.bounds, pc)
            ok_perms = cap.tag and (Perms.EXECUTE in cap.perms)
            cached = (base, top, ok_perms)
            self._pcc_cache[meta] = cached
        base, top, ok_perms = cached
        if not ok_perms:
            raise PermissionViolation("PCC lacks execute permission",
                                      address=pc, pc=pc)
        if not (base <= pc and pc + 4 <= top):
            raise BoundsViolation("instruction fetch outside PCC bounds",
                                  address=pc, pc=pc)

    # ------------------------------------------------------------------
    # Backend delegation shims (kept for tests/tooling)
    # ------------------------------------------------------------------

    def _issue(self, warp, cycle):
        """Issue one instruction for one warp (delegates to the backend)."""
        return self.backend.issue(warp, cycle)

    def _decode_instr(self, instr):
        return self.backend.decode(instr)

    def _execute(self, warp, instr, pc, lanes, mask):
        """Decode-and-execute one instruction (non-cached dispatch)."""
        handler, aux = self.backend.decode(instr)
        handler(warp, instr, pc, lanes, mask, aux)

    def _advance(self, warp, lanes, next_pc):
        pcs = warp.pcs
        if len(lanes) == len(pcs):
            # Full set (lane indices are unique): one C-level fill.
            pcs[:] = [next_pc] * len(pcs)
            return
        for lane in lanes:
            pcs[lane] = next_pc

    # -- register access helpers -----------------------------------------

    def _read_gp(self, warp, reg):
        if reg == 0:
            return self._zero_lanes
        if self.gp.is_uncompressed(warp.index, reg):
            self._gp_vec_touch = True
        values, report = self.gp.read(warp.index, reg)
        if report.spills or report.reloads:
            self._account_rf(report)
        return values

    def _read_meta(self, warp, reg):
        if reg == 0:
            return self._zero_lanes
        if self.meta.is_uncompressed(warp.index, reg):
            self._meta_vec_touch = True
        values, report = self.meta.read(warp.index, reg)
        if report.spills or report.reloads:
            self._account_rf(report)
        return values

    def _read_caps(self, warp, reg):
        """Materialise per-lane capabilities from the split register files."""
        addrs = self._read_gp(warp, reg)
        metas = self._read_meta(warp, reg)
        from_meta_word = Capability.from_meta_word
        return [
            from_meta_word(metas[i] & MASK32, addrs[i], metas[i] > MASK32)
            for i in self._lane_range
        ]

    def _write_rd(self, warp, reg, values, mask, caps=None):
        """Write rd: general-purpose values plus capability/null metadata."""
        if reg is None or reg == 0:
            return
        windex = warp.index
        gp = self.gp
        report = gp.write(windex, reg, values, mask)
        if report.spills or report.reloads:
            self._account_rf(report)
        if gp.is_uncompressed(windex, reg):
            self._gp_vec_touch = True
        meta = self.meta
        if meta is None:
            return
        if caps is None:
            if mask == self._full_mask:
                # A full-mask null-metadata write always compresses to the
                # null scalar; skip the merge/comparator work.  This is
                # ``meta.write(..)`` with all-zero values, bit for bit.
                meta.write_form(windex, reg, _NULL_SCALAR)
                if self._meta_plain:
                    self._meta_vec_touch = True
                return
            entry = meta._entries.get((windex << 8) | reg)
            if entry is None or (type(entry) is _Scalar and
                                 entry.base == 0 and entry.stride == 0):
                # Masked null write over an already-null register: the
                # merged vector is all-zero, which classifies uniform —
                # same counters and stored form as the merge would give.
                meta.write_form(windex, reg, _NULL_SCALAR)
                if self._meta_plain:
                    self._meta_vec_touch = True
                return
            metas = self._zero_lanes
        else:
            metas = [0] * self._num_lanes
            tagged = False
            for i in self._lane_range:
                cap = caps[i]
                if cap is not None:
                    # bool tag shifts like the 0/1 int it is.
                    metas[i] = cap.meta_word() | (cap.tag << 32)
                    if cap.tag:
                        tagged = True
            if tagged:
                self.stats.note_cap_register(windex, reg)
        report = meta.write(windex, reg, metas, mask)
        if report.spills or report.reloads:
            self._account_rf(report)
        if meta.is_uncompressed(windex, reg):
            self._meta_vec_touch = True

    def _account_rf(self, report):
        """Convert register spill/reload events into DRAM traffic + waits."""
        lane_bytes = self.cfg.num_lanes * 4
        for _ in range(report.spills):
            self.dram.request(self._cycle, True, lane_bytes, spill=True)
        for _ in range(report.reloads):
            done = self.dram.request(self._cycle, False, lane_bytes, spill=True)
            self._mem_ready = max(self._mem_ready, done)
        if self.probes is not None:
            self.probes.rf_spill(self._cycle, report.spills, report.reloads)

    # -- memory helpers -----------------------------------------------------

    def _memory_access(self, op, accesses, warp, is_write):
        """Account timing for per-lane accesses [(lane, addr, width)]."""
        cfg = self.cfg
        scratch = [(a, w) for _, a, w in accesses
                   if self.scratchpad.contains(a)]
        global_ = [(a, w) for _, a, w in accesses
                   if not self.scratchpad.contains(a)]
        if scratch:
            conflicts = self.scratchpad.conflict_cycles([a for a, _ in scratch])
            self._extra_issue += conflicts
            self.stats.stall_bank_conflict += conflicts
            self.stats.scratchpad_accesses += len(scratch)
            self._mem_ready = max(self._mem_ready,
                                  self._cycle + cfg.scratchpad_latency)
        if global_ and self.stack_cache is not None:
            # The compressed stack cache absorbs stack traffic
            # (section 4.4): only missing lines reach DRAM.
            stack_accesses = [(a, w) for a, w in global_
                              if self.stack_cache.contains(a)]
            if stack_accesses:
                global_ = [(a, w) for a, w in global_
                           if not self.stack_cache.contains(a)]
                missed = self.stack_cache.access(
                    [a for a, _ in stack_accesses], is_write)
                self._mem_ready = max(self._mem_ready,
                                      self._cycle + cfg.scratchpad_latency)
                for line_addr in missed:
                    done = self.dram.request(
                        self._cycle, is_write,
                        self.stack_cache.line_bytes)
                    self._mem_ready = max(self._mem_ready, done)
        if global_:
            txns = coalesce(global_, cfg.dram_line_bytes)
            for line_addr, n_bytes in txns:
                if cfg.enable_cheri:
                    writes_tag = is_write and op in (Op.CSC,)
                    done = self.tag_controller.access(
                        self._cycle, line_addr, is_write, writes_tag=writes_tag)
                    self._mem_ready = max(self._mem_ready, done)
                done = self.dram.request(self._cycle, is_write, n_bytes)
                self._mem_ready = max(self._mem_ready, done)
                if self.probes is not None:
                    self.probes.mem_txn(self._cycle, line_addr, n_bytes,
                                        is_write, done)
        if ACCESS_WIDTH.get(op) == 8:
            # Multi-flit transaction: a 64-bit capability access is two
            # inseparable 32-bit flits (section 3.4).
            self._extra_issue += 1

    # -- capability checks ----------------------------------------------------

    def _check_cap(self, cap, addr, width, perm, thread, pc, op_name):
        if not cap.tag:
            raise TagViolation("%s via untagged capability" % op_name,
                               address=addr, thread=thread, pc=pc)
        if cap.is_sealed:
            raise SealViolation("%s via sealed capability" % op_name,
                                address=addr, thread=thread, pc=pc)
        if not (int(cap.perms) & int(perm)):
            raise PermissionViolation(
                "%s lacks %s permission" % (op_name, perm.name),
                address=addr, thread=thread, pc=pc)
        base, top = concentrate.decode_bounds(cap.bounds, cap.addr)
        if not (base <= addr and addr + width <= top):
            raise BoundsViolation(
                "%s out of bounds: 0x%08x not in [0x%08x, 0x%08x)"
                % (op_name, addr, base, top),
                address=addr, thread=thread, pc=pc)

    # --- shared function unit --------------------------------------------

    def _sfu_issue(self, lanes, cheri_op=False):
        done = self.sfu.issue(self._cycle, len(lanes), cheri_op=cheri_op)
        if done > self._mem_ready:
            self._mem_ready = done
        if self.probes is not None:
            self.probes.sfu(self._cycle, len(lanes), cheri_op, done)

    def _sfu_cheri_issue(self, lanes):
        self._sfu_issue(lanes, cheri_op=True)

    # -- barriers --------------------------------------------------------------

    def _enter_barrier(self, warp):
        slot = warp.block_slot
        arrived = self._barrier_arrived.setdefault(slot, set())
        arrived.add(warp.index)
        warp.in_barrier = True
        warp.ready_at = _FAR_FUTURE
        self.stats.barrier_waits += 1
        if self.probes is not None:
            self.probes.barrier(self._cycle, warp.index)
        expected = {
            w.index for w in self.warps
            if w.block_slot == slot and not w.done
        }
        if arrived >= expected:
            for index in arrived:
                other = self.warps[index]
                other.in_barrier = False
                other.ready_at = self._cycle + self.cfg.pipeline_depth
            arrived.clear()
            self._sched_epoch += 1


# Re-export the decode dispatch tables from the scalar backend (shared
# dict objects: tests patch entries in place and every backend sees the
# patched per-lane function).  Imported last to break the import cycle.
from repro.simt.backend.scalar import (  # noqa: E402
    _AMO_FN,
    _BRANCH_FN,
    _CGET_FN,
    _CIMM_FN,
    _CMOD1_FN,
    _CMOD2_FN,
    _CRR_FN,
    _FLOAT_RR_FN,
    _FLOAT_UNARY_FN,
    _INT_I_FN,
    _INT_R_FN,
)
