"""The streaming multiprocessor: barrel-scheduled SIMT pipeline.

Models the SIMTight SM of paper Figure 2 at cycle level:

- a barrel scheduler issues at most one instruction per warp into the
  pipeline at a time; a warp re-issues ``pipeline_depth`` cycles after
  issue (sooner-suspended warps resume at their operation's completion);
- the Active Thread Selection stage picks, per warp, the subset of threads
  at the deepest control-flow nesting level with the lowest common PC (and,
  under CHERI with dynamic PC metadata, an identical PCC);
- memory instructions suspend the warp and resume at the coalesced DRAM
  (or banked-scratchpad) completion time;
- the shared-function unit serialises lane requests for div/sqrt and, in
  the optimised configuration, the CHERI get/set-bounds instructions;
- the compressed register files charge spill/reload DRAM traffic and the
  CSC and shared-VRF operand-fetch stalls of paper section 3.2.

All CHERI checks (tag, seal, permission, bounds) are enforced exactly; a
failed check aborts the kernel with a :class:`KernelAbort` carrying the
precise fault.

Dispatch is decode-cached: at launch every static instruction is decoded
once into a ``(handler, aux)`` pair — the handler is a bound method for
the instruction's execution group and ``aux`` carries the pre-resolved
per-lane function and immediates — so the issue loop never re-classifies
an opcode.  This changes no simulated statistic; it only removes Python
interpreter overhead from the hot path.
"""

from repro.cheri.capability import Capability, Perms
from repro.cheri.exceptions import (
    BoundsViolation,
    CapabilityFault,
    PermissionViolation,
    SealViolation,
    TagViolation,
)
from repro.cheri import concentrate
from repro.isa.instructions import (
    ACCESS_WIDTH,
    AMO_OPS,
    BRANCH_OPS,
    CHERI_SLOW_OPS,
    LOAD_OPS,
    SFU_OPS,
    STORE_OPS,
    Op,
)
from repro.memory import DRAMModel, TagController, TaggedMemory
from repro.simt import alu
from repro.simt.coalescer import atomic_conflicts, coalesce
from repro.simt.config import SMConfig
from repro.simt.regfile import CompressedRegFile, PlainRegFile, SlotPool
from repro.simt.scratchpad import Scratchpad
from repro.simt.sfu import SharedFunctionUnit
from repro.simt.stackcache import StackCache
from repro.simt.stats import SMStats

MASK32 = 0xFFFFFFFF
_FAR_FUTURE = 1 << 62


class KernelAbort(Exception):
    """A kernel terminated abnormally (capability fault or software trap)."""

    def __init__(self, cause, cycle):
        super().__init__("kernel aborted at cycle %d: %s" % (cycle, cause))
        self.cause = cause
        self.cycle = cycle


class SoftwareTrap(Exception):
    """An explicit TRAP/EBREAK, e.g. a failed software bounds check."""

    def __init__(self, message, thread=None, pc=None):
        super().__init__(message)
        self.thread = thread
        self.pc = pc


_INT_R = {
    Op.ADD: "add", Op.SUB: "sub", Op.SLL: "sll", Op.SRL: "srl",
    Op.SRA: "sra", Op.XOR: "xor", Op.OR: "or", Op.AND: "and",
    Op.SLT: "slt", Op.SLTU: "sltu", Op.MUL: "mul", Op.MULH: "mulh",
    Op.MULHSU: "mulhsu", Op.MULHU: "mulhu", Op.DIV: "div", Op.DIVU: "divu",
    Op.REM: "rem", Op.REMU: "remu",
}
_INT_I = {
    Op.ADDI: "add", Op.SLTI: "slt", Op.SLTIU: "sltu", Op.XORI: "xor",
    Op.ORI: "or", Op.ANDI: "and", Op.SLLI: "sll", Op.SRLI: "srl",
    Op.SRAI: "sra",
}
_FLOAT_RR = {
    Op.FADD_S: "fadd", Op.FSUB_S: "fsub", Op.FMUL_S: "fmul",
    Op.FDIV_S: "fdiv", Op.FMIN_S: "fmin", Op.FMAX_S: "fmax",
    Op.FEQ_S: "feq", Op.FLT_S: "flt", Op.FLE_S: "fle",
    Op.FSGNJ_S: "fsgnj", Op.FSGNJN_S: "fsgnjn", Op.FSGNJX_S: "fsgnjx",
}
_FLOAT_UNARY = {
    Op.FSQRT_S: "fsqrt", Op.FCVT_W_S: "fcvt.w.s", Op.FCVT_WU_S: "fcvt.wu.s",
    Op.FCVT_S_W: "fcvt.s.w", Op.FCVT_S_WU: "fcvt.s.wu",
}
_AMO_FN = {
    Op.AMOADD_W: lambda old, v: alu.to_u32(old + v),
    Op.CAMOADD_W: lambda old, v: alu.to_u32(old + v),
    Op.AMOSWAP_W: lambda old, v: v,
    Op.AMOAND_W: lambda old, v: old & v,
    Op.AMOOR_W: lambda old, v: old | v,
    Op.AMOXOR_W: lambda old, v: old ^ v,
    Op.AMOMIN_W: lambda old, v: old if alu.to_signed(old) <= alu.to_signed(v) else v,
    Op.AMOMAX_W: lambda old, v: old if alu.to_signed(old) >= alu.to_signed(v) else v,
    Op.AMOMINU_W: lambda old, v: min(old, v),
    Op.AMOMAXU_W: lambda old, v: max(old, v),
}

# Decode-time dispatch tables: op -> per-lane function.  Resolved once at
# module import so the handlers call straight through with no name lookup.
_INT_R_FN = {op: alu.INT_FNS[name] for op, name in _INT_R.items()}
_INT_I_FN = {op: alu.INT_FNS[name] for op, name in _INT_I.items()}
_FLOAT_RR_FN = {op: alu.FLOAT_FNS[name] for op, name in _FLOAT_RR.items()}
_FLOAT_UNARY_FN = {op: alu.FLOAT_FNS[name] for op, name in _FLOAT_UNARY.items()}
_BRANCH_FN = {op: alu.BRANCH_FNS[op.name.lower()] for op in BRANCH_OPS}

_SIGNED_LOADS = (Op.LB, Op.LH, Op.CLB, Op.CLH)

_CGET_FN = {
    Op.CGETTAG: lambda cap: int(cap.tag),
    Op.CGETPERM: lambda cap: int(cap.perms),
    Op.CGETBASE: lambda cap: cap.base,
    Op.CGETLEN: lambda cap: min(cap.length, MASK32),
    Op.CGETADDR: lambda cap: cap.addr,
    Op.CGETTYPE: lambda cap: cap.otype,
    Op.CGETSEALED: lambda cap: int(cap.is_sealed),
    Op.CGETFLAGS: lambda cap: cap.flags,
}
_CRR_FN = {
    # CRRL is an XLEN-wide result: crrl(0xFFFFFFFF) = 2^32 truncates to 0
    # (the CHERI-RISC-V CRoundRepresentableLength semantics), it does not
    # saturate.  CGetLen above is the one that saturates.
    Op.CRRL: lambda v: concentrate.crrl(v) & MASK32,
    Op.CRAM: concentrate.crml,
}
_CMOD1_FN = {
    Op.CCLEARTAG: lambda cap: cap.with_tag_cleared(),
    Op.CMOVE: lambda cap: cap,
    Op.CSEALENTRY: lambda cap: cap.seal_entry(),
}
_CMOD2_FN = {
    Op.CANDPERM: lambda cap, v: cap.and_perms(v),
    Op.CSETFLAGS: lambda cap, v: cap.set_flags(v),
    Op.CSETADDR: lambda cap, v: cap.set_addr(v),
    Op.CINCOFFSET: lambda cap, v: cap.inc_addr(v),
    Op.CSETBOUNDS: lambda cap, v: cap.set_bounds(cap.addr, v)[0],
    Op.CSETBOUNDSEXACT: lambda cap, v: cap.set_bounds(cap.addr, v, exact=True)[0],
}
_CIMM_FN = {
    Op.CINCOFFSETIMM: lambda cap, imm: cap.inc_addr(imm),
    Op.CSETBOUNDSIMM: lambda cap, imm: cap.set_bounds(cap.addr, imm)[0],
}


class _Warp:
    """Mutable per-warp state."""

    __slots__ = ("index", "pcs", "halted", "pcc_meta", "ready_at",
                 "in_barrier", "block_slot", "done")

    def __init__(self, index, lanes, entry_pc, block_slot):
        self.index = index
        self.pcs = [entry_pc] * lanes
        self.halted = [False] * lanes
        self.pcc_meta = [0] * lanes
        self.ready_at = 0
        self.in_barrier = False
        self.block_slot = block_slot
        self.done = False


class StreamingMultiprocessor:
    """One SIMTight-like SM plus its memory subsystem."""

    def __init__(self, config=None, memory=None, scratchpad_base=None):
        self.cfg = (config or SMConfig()).validate()
        self.memory = memory if memory is not None else TaggedMemory()
        self.dram = DRAMModel(latency=self.cfg.dram_latency,
                              line_bytes=self.cfg.dram_line_bytes)
        self.tag_controller = TagController(self.memory, self.dram)
        if scratchpad_base is None:
            from repro.simt.config import SCRATCHPAD_BASE
            scratchpad_base = SCRATCHPAD_BASE
        self.scratchpad = Scratchpad(self.memory, self.cfg.num_lanes,
                                     self.cfg.scratchpad_bytes,
                                     base=scratchpad_base)
        self.sfu = SharedFunctionUnit(self.cfg.sfu_latency,
                                      self.cfg.sfu_cheri_latency)
        self.stack_cache = None
        if self.cfg.enable_stack_cache:
            from repro.simt.config import STACK_BASE
            self.stack_cache = StackCache(
                STACK_BASE,
                self.cfg.num_threads * self.cfg.stack_bytes_per_thread)
        self._build_regfiles()
        self.stats = SMStats()
        self.program = []
        self._decoded = []
        self._pcc_cache = {}
        self._num_lanes = self.cfg.num_lanes
        self._lane_range = range(self._num_lanes)
        #: Canonical all-active lane list (shared, never mutated).
        self._all_lanes = list(self._lane_range)
        self._full_mask = (1 << self._num_lanes) - 1
        #: Canonical zero vector returned for reads of register 0
        #: (shared, never mutated by any caller).
        self._zero_lanes = [0] * self._num_lanes
        self._dynamic_pcc = (self.cfg.enable_cheri
                             and not self.cfg.static_pc_metadata)
        #: Optional instruction-trace sink: an object with a
        #: ``record(cycle, warp, pc, instr, lanes)`` method.
        self.trace = None
        #: Optional :class:`repro.obs.ProbeBus`.  ``None`` (the default)
        #: keeps the hot path untouched: every hook below is guarded by a
        #: single ``self.probes is not None`` check, so simulated
        #: statistics are bit-identical with probes attached or not.
        self.probes = None
        #: Optional :class:`repro.nocl.compiler.CompiledKernel` for the
        #: running program (set by the runtime; profiler side-band only).
        self.kernel_info = None

    def _build_regfiles(self):
        cfg = self.cfg
        gp_pool = SlotPool(cfg.vrf_slots)
        self.gp = CompressedRegFile(cfg.num_lanes, 32, gp_pool,
                                    detect_affine=True, name="gp")
        self.meta = None
        if cfg.enable_cheri:
            if not cfg.compress_metadata:
                self.meta = PlainRegFile(cfg.num_lanes, 33, name="meta")
            elif cfg.shared_vrf:
                self.meta = CompressedRegFile(cfg.num_lanes, 33, gp_pool,
                                              detect_affine=False,
                                              nvo=cfg.nvo, name="meta")
            else:
                meta_pool = SlotPool(max(1, cfg.vrf_slots // 2))
                self.meta = CompressedRegFile(cfg.num_lanes, 33, meta_pool,
                                              detect_affine=False,
                                              nvo=cfg.nvo, name="meta")

    # ------------------------------------------------------------------
    # Launch interface
    # ------------------------------------------------------------------

    def launch(self, program, init_regs=None, init_cap_regs=None,
               entry_pc=0, warps_per_block=1, kernel_pcc=None,
               max_cycles=200_000_000):
        """Run ``program`` to completion on all warps; returns the stats.

        ``init_regs`` maps register index -> per-hardware-thread values
        (length num_threads).  ``init_cap_regs`` maps register index -> a
        single :class:`Capability` or per-thread list of capabilities
        (requires CHERI).  ``kernel_pcc`` is the program-counter capability
        installed in every thread at launch (defaults to an all-code root
        in CHERI mode).
        """
        cfg = self.cfg
        self.program = list(program)
        # Decode every static instruction once (multi-kernel safe: redone
        # per launch because the program changes).
        self._decoded = [self._decode_instr(instr) for instr in self.program]
        if cfg.num_warps % warps_per_block:
            raise ValueError("warps_per_block must divide num_warps")
        self.warps = [
            _Warp(w, cfg.num_lanes, entry_pc, w // warps_per_block)
            for w in range(cfg.num_warps)
        ]
        self._warps_per_block = warps_per_block
        self._barrier_arrived = {}
        if cfg.enable_cheri:
            if kernel_pcc is None:
                from repro.cheri.capability import root_capability
                kernel_pcc = root_capability(
                    Perms.GLOBAL | Perms.EXECUTE | Perms.LOAD)
            pcc_meta = kernel_pcc.meta_word() | (1 << 32)
            for warp in self.warps:
                warp.pcc_meta = [pcc_meta] * cfg.num_lanes
        self._install_registers(init_regs or {}, init_cap_regs or {})

        cycle = 0
        self.dram.reset_timing()
        self.sfu.reset_timing()
        rotation = 0
        live = cfg.num_warps
        warps = self.warps
        count = cfg.num_warps
        issue = self._issue
        if self.probes is not None:
            self.probes.launch(self, self.program)
        try:
            while live:
                picked = None
                for i in range(count):
                    warp = warps[(rotation + i) % count]
                    if not warp.done and not warp.in_barrier and \
                            warp.ready_at <= cycle:
                        picked = warp
                        break
                if picked is None:
                    next_ready = min(
                        (w.ready_at for w in warps
                         if not w.done and not w.in_barrier),
                        default=None,
                    )
                    if next_ready is None:
                        raise KernelAbort("deadlock: all warps blocked on a "
                                          "barrier", cycle)
                    advanced = max(cycle + 1, next_ready)
                    if self.probes is not None:
                        self.probes.idle(cycle, advanced)
                    cycle = advanced
                    continue
                rotation = picked.index + 1
                cycle = issue(picked, cycle)
                if picked.done:
                    live -= 1
                if cycle > max_cycles:
                    raise KernelAbort("cycle limit exceeded", cycle)
        except (CapabilityFault, SoftwareTrap) as fault:
            self.stats.cycles += cycle
            self._finalise_stats()
            raise KernelAbort(fault, cycle) from fault
        # Cycles accumulate across launches so multi-kernel benchmarks
        # report their total.
        self.stats.cycles += cycle
        self._finalise_stats()
        return self.stats

    def _install_registers(self, init_regs, init_cap_regs):
        cfg = self.cfg
        lanes = cfg.num_lanes
        for reg, values in init_regs.items():
            for w in range(cfg.num_warps):
                chunk = values[w * lanes:(w + 1) * lanes]
                self.gp.write(w, reg, [v & MASK32 for v in chunk])
                if self.meta is not None:
                    self.meta.write(w, reg, [0] * lanes)
        for reg, caps in init_cap_regs.items():
            if not cfg.enable_cheri:
                raise ValueError("capability registers require CHERI")
            if isinstance(caps, Capability):
                caps = [caps] * cfg.num_threads
            for w in range(cfg.num_warps):
                chunk = caps[w * lanes:(w + 1) * lanes]
                self.gp.write(w, reg, [c.addr for c in chunk])
                metas = [c.meta_word() | (int(c.tag) << 32) for c in chunk]
                self.meta.write(w, reg, metas)
                if any(c.tag for c in chunk):
                    self.stats.note_cap_register(w, reg)

    def _finalise_stats(self):
        st = self.stats
        st.dram_read_bytes = self.dram.stats.read_bytes
        st.dram_write_bytes = self.dram.stats.write_bytes
        st.dram_spill_bytes = self.dram.stats.spill_bytes
        st.dram_tag_bytes = self.dram.stats.tag_bytes
        st.dram_txns = self.dram.stats.total_txns
        st.gp_spills = self.gp.total_spills
        st.gp_reloads = self.gp.total_reloads
        st.gp_writes_total = self.gp.writes_total
        st.gp_writes_uniform = self.gp.writes_uniform
        st.gp_writes_affine = self.gp.writes_affine
        if self.meta is not None:
            st.meta_spills = self.meta.total_spills
            st.meta_reloads = self.meta.total_reloads
            if isinstance(self.meta, CompressedRegFile):
                st.meta_writes_total = self.meta.writes_total
                st.meta_writes_uniform = self.meta.writes_uniform
                st.meta_writes_partial_null = self.meta.writes_partial_null
        st.tag_cache_hits = self.tag_controller.hits
        st.tag_cache_misses = self.tag_controller.misses
        st.sfu_requests = self.sfu.requests
        st.sfu_busy_cycles = self.sfu.busy_cycles

    # ------------------------------------------------------------------
    # Active thread selection (paper section 2.3 / 3.3)
    # ------------------------------------------------------------------

    def _select_threads(self, warp):
        pcs = warp.pcs
        halted = warp.halted
        num_lanes = self._num_lanes
        # Fast path: no lane halted and all lanes converged.  This is the
        # overwhelmingly common case for the regular kernels the paper
        # evaluates, and avoids building the per-group dict.
        if True not in halted:
            pc = pcs[0]
            if pcs.count(pc) == num_lanes:
                if not self._dynamic_pcc:
                    return pc, self._all_lanes
                metas = warp.pcc_meta
                if metas.count(metas[0]) == num_lanes:
                    return pc, self._all_lanes
        dynamic_pcc = self._dynamic_pcc
        groups = {}
        for lane in self._lane_range:
            if halted[lane]:
                continue
            pc = pcs[lane]
            meta = warp.pcc_meta[lane] if dynamic_pcc else 0
            groups.setdefault((pc, meta), []).append(lane)
        if not groups:
            return None, None
        # Deepest nesting level first, then lowest PC (convergence); the
        # strict > keeps max()'s first-maximal tie behaviour.
        best = None
        best_priority = None
        for (pc, _meta), group_lanes in groups.items():
            priority = (self._depth_at(pc), -pc)
            if best_priority is None or priority > best_priority:
                best_priority = priority
                best = (pc, group_lanes)
        return best

    def _depth_at(self, pc):
        index = pc >> 2
        if 0 <= index < len(self.program):
            return self.program[index].depth
        return 0

    def _check_pcc(self, warp, pc, lanes):
        """One program-counter-capability bounds check per SM per fetch."""
        meta = warp.pcc_meta[lanes[0]]
        cached = self._pcc_cache.get(meta)
        if cached is None:
            cap = Capability.from_meta_word(meta & MASK32, pc, bool(meta >> 32))
            base, top = concentrate.decode_bounds(cap.bounds, pc)
            ok_perms = cap.tag and (Perms.EXECUTE in cap.perms)
            cached = (base, top, ok_perms)
            self._pcc_cache[meta] = cached
        base, top, ok_perms = cached
        if not ok_perms:
            raise PermissionViolation("PCC lacks execute permission",
                                      address=pc, pc=pc)
        if not (base <= pc and pc + 4 <= top):
            raise BoundsViolation("instruction fetch outside PCC bounds",
                                  address=pc, pc=pc)

    # ------------------------------------------------------------------
    # Issue: one instruction for one warp
    # ------------------------------------------------------------------

    def _issue(self, warp, cycle):
        cfg = self.cfg
        stats = self.stats
        pc, lanes = self._select_threads(warp)
        if pc is None:
            warp.done = True
            warp.ready_at = _FAR_FUTURE
            return cycle
        index = pc >> 2
        if not 0 <= index < len(self.program):
            raise SoftwareTrap("instruction fetch from unmapped pc 0x%x" % pc,
                               thread=warp.index * cfg.num_lanes + lanes[0],
                               pc=pc)
        if cfg.enable_cheri:
            self._check_pcc(warp, pc, lanes)
        instr = self.program[index]

        # Per-issue accumulators, consumed by the helpers below.
        self._cycle = cycle
        self._mem_ready = cycle
        self._extra_issue = 0
        self._gp_vec_touch = False
        self._meta_vec_touch = False

        probes = self.probes
        if probes is not None:
            pre_stalls = (stats.stall_shared_vrf, stats.stall_csc_operand,
                          stats.stall_bank_conflict,
                          stats.stall_atomic_serial)

        if lanes is self._all_lanes:
            mask = self._full_mask
        else:
            mask = 0
            for lane in lanes:
                mask |= 1 << lane

        handler, aux = self._decoded[index]
        handler(warp, instr, pc, lanes, mask, aux)

        # Shared-VRF serialisation: accessing an uncompressed data vector
        # and an uncompressed metadata vector in one instruction costs an
        # extra cycle (section 3.2).
        if cfg.shared_vrf and self._gp_vec_touch and self._meta_vec_touch:
            self._extra_issue += 1
            stats.stall_shared_vrf += 1
        # One-read-port metadata SRF: CSC needs both cs1 and cs2 metadata,
        # costing an extra operand-fetch cycle (section 3.2).
        if cfg.metadata_srf_single_port and instr.op is Op.CSC:
            self._extra_issue += 1
            stats.stall_csc_operand += 1

        stats.instrs_issued += 1
        stats.thread_instrs += len(lanes)
        stats.opcode_counts[instr.op] += 1
        if self.trace is not None:
            self.trace.record(cycle, warp.index, pc, instr, lanes)

        completion = max(cycle + cfg.pipeline_depth, self._mem_ready)
        warp.ready_at = completion
        if all(warp.halted):
            warp.done = True
            warp.ready_at = _FAR_FUTURE

        # VRF occupancy integral (for Figure 10): resident vectors during
        # the issue slot(s) just consumed.
        width = 1 + self._extra_issue
        stats.gp_vrf_occupancy_integral += self.gp.resident_vectors * width
        if self.meta is not None:
            stats.meta_vrf_occupancy_integral += \
                self.meta.resident_vectors * width
        if probes is not None:
            probes.issue(
                cycle, warp.index, pc, instr, len(lanes), width, completion,
                (stats.stall_shared_vrf - pre_stalls[0],
                 stats.stall_csc_operand - pre_stalls[1],
                 stats.stall_bank_conflict - pre_stalls[2],
                 stats.stall_atomic_serial - pre_stalls[3]))
            # Retirement: architectural effects are fully applied at this
            # point, so lockstep checkers can diff state per instruction.
            probes.retire(cycle, warp, pc, instr, lanes)
        return cycle + width

    # -- register access helpers -----------------------------------------

    def _read_gp(self, warp, reg):
        if reg == 0:
            return self._zero_lanes
        if self.gp.is_uncompressed(warp.index, reg):
            self._gp_vec_touch = True
        values, report = self.gp.read(warp.index, reg)
        if report.spills or report.reloads:
            self._account_rf(report)
        return values

    def _read_meta(self, warp, reg):
        if reg == 0:
            return self._zero_lanes
        if self.meta.is_uncompressed(warp.index, reg):
            self._meta_vec_touch = True
        values, report = self.meta.read(warp.index, reg)
        if report.spills or report.reloads:
            self._account_rf(report)
        return values

    def _read_caps(self, warp, reg):
        """Materialise per-lane capabilities from the split register files."""
        addrs = self._read_gp(warp, reg)
        metas = self._read_meta(warp, reg)
        from_meta_word = Capability.from_meta_word
        return [
            from_meta_word(metas[i] & MASK32, addrs[i], metas[i] > MASK32)
            for i in self._lane_range
        ]

    def _write_rd(self, warp, reg, values, mask, caps=None):
        """Write rd: general-purpose values plus capability/null metadata."""
        if reg is None or reg == 0:
            return
        windex = warp.index
        gp = self.gp
        report = gp.write(windex, reg, values, mask)
        if report.spills or report.reloads:
            self._account_rf(report)
        if gp.is_uncompressed(windex, reg):
            self._gp_vec_touch = True
        meta = self.meta
        if meta is None:
            return
        if caps is None:
            metas = self._zero_lanes
        else:
            metas = [0] * self._num_lanes
            tagged = False
            for i in self._lane_range:
                cap = caps[i]
                if cap is not None:
                    # bool tag shifts like the 0/1 int it is.
                    metas[i] = cap.meta_word() | (cap.tag << 32)
                    if cap.tag:
                        tagged = True
            if tagged:
                self.stats.note_cap_register(windex, reg)
        report = meta.write(windex, reg, metas, mask)
        if report.spills or report.reloads:
            self._account_rf(report)
        if meta.is_uncompressed(windex, reg):
            self._meta_vec_touch = True

    def _account_rf(self, report):
        """Convert register spill/reload events into DRAM traffic + waits."""
        lane_bytes = self.cfg.num_lanes * 4
        for _ in range(report.spills):
            self.dram.request(self._cycle, True, lane_bytes, spill=True)
        for _ in range(report.reloads):
            done = self.dram.request(self._cycle, False, lane_bytes, spill=True)
            self._mem_ready = max(self._mem_ready, done)
        if self.probes is not None:
            self.probes.rf_spill(self._cycle, report.spills, report.reloads)

    # -- memory helpers -----------------------------------------------------

    def _memory_access(self, op, accesses, warp, is_write):
        """Account timing for per-lane accesses [(lane, addr, width)]."""
        cfg = self.cfg
        scratch = [(a, w) for _, a, w in accesses
                   if self.scratchpad.contains(a)]
        global_ = [(a, w) for _, a, w in accesses
                   if not self.scratchpad.contains(a)]
        if scratch:
            conflicts = self.scratchpad.conflict_cycles([a for a, _ in scratch])
            self._extra_issue += conflicts
            self.stats.stall_bank_conflict += conflicts
            self.stats.scratchpad_accesses += len(scratch)
            self._mem_ready = max(self._mem_ready,
                                  self._cycle + cfg.scratchpad_latency)
        if global_ and self.stack_cache is not None:
            # The compressed stack cache absorbs stack traffic
            # (section 4.4): only missing lines reach DRAM.
            stack_accesses = [(a, w) for a, w in global_
                              if self.stack_cache.contains(a)]
            if stack_accesses:
                global_ = [(a, w) for a, w in global_
                           if not self.stack_cache.contains(a)]
                missed = self.stack_cache.access(
                    [a for a, _ in stack_accesses], is_write)
                self._mem_ready = max(self._mem_ready,
                                      self._cycle + cfg.scratchpad_latency)
                for line_addr in missed:
                    done = self.dram.request(
                        self._cycle, is_write,
                        self.stack_cache.line_bytes)
                    self._mem_ready = max(self._mem_ready, done)
        if global_:
            txns = coalesce(global_, cfg.dram_line_bytes)
            for line_addr, n_bytes in txns:
                if cfg.enable_cheri:
                    writes_tag = is_write and op in (Op.CSC,)
                    done = self.tag_controller.access(
                        self._cycle, line_addr, is_write, writes_tag=writes_tag)
                    self._mem_ready = max(self._mem_ready, done)
                done = self.dram.request(self._cycle, is_write, n_bytes)
                self._mem_ready = max(self._mem_ready, done)
                if self.probes is not None:
                    self.probes.mem_txn(self._cycle, line_addr, n_bytes,
                                        is_write, done)
        if ACCESS_WIDTH.get(op) == 8:
            # Multi-flit transaction: a 64-bit capability access is two
            # inseparable 32-bit flits (section 3.4).
            self._extra_issue += 1

    # -- capability checks ----------------------------------------------------

    def _check_cap(self, cap, addr, width, perm, thread, pc, op_name):
        if not cap.tag:
            raise TagViolation("%s via untagged capability" % op_name,
                               address=addr, thread=thread, pc=pc)
        if cap.is_sealed:
            raise SealViolation("%s via sealed capability" % op_name,
                                address=addr, thread=thread, pc=pc)
        if not (int(cap.perms) & int(perm)):
            raise PermissionViolation(
                "%s lacks %s permission" % (op_name, perm.name),
                address=addr, thread=thread, pc=pc)
        base, top = concentrate.decode_bounds(cap.bounds, cap.addr)
        if not (base <= addr and addr + width <= top):
            raise BoundsViolation(
                "%s out of bounds: 0x%08x not in [0x%08x, 0x%08x)"
                % (op_name, addr, base, top),
                address=addr, thread=thread, pc=pc)

    # ------------------------------------------------------------------
    # Decode: one (handler, aux) pair per static instruction
    # ------------------------------------------------------------------

    def _decode_instr(self, instr):
        """Classify ``instr`` once; returns (bound handler, aux data).

        ``aux`` packs everything the handler needs that is knowable at
        decode time: the per-lane ALU/branch/AMO function, masked
        immediates, SFU routing flags.  The CHERI slow-path flag is baked
        in here because the configuration is fixed per SM instance.
        """
        op = instr.op
        fn = _INT_R_FN.get(op)
        if fn is not None:
            return self._h_int_r, (fn, op in SFU_OPS)
        fn = _INT_I_FN.get(op)
        if fn is not None:
            return self._h_int_i, (fn, (instr.imm or 0) & MASK32)
        fn = _BRANCH_FN.get(op)
        if fn is not None:
            return self._h_branch, (fn, instr.imm)
        if op in LOAD_OPS or op in STORE_OPS or op in AMO_OPS:
            return self._h_memory, (
                ACCESS_WIDTH[op],
                op.name.startswith("C"),
                op in STORE_OPS,
                op in AMO_OPS,
                _AMO_FN.get(op),
                op in _SIGNED_LOADS,
                instr.imm or 0,
            )
        fn = _FLOAT_RR_FN.get(op)
        if fn is not None:
            return self._h_float_rr, (fn, op in SFU_OPS)
        fn = _FLOAT_UNARY_FN.get(op)
        if fn is not None:
            return self._h_float_unary, (fn, op in SFU_OPS)
        slow = self.cfg.sfu_cheri_slow_path and op in CHERI_SLOW_OPS
        fn = _CGET_FN.get(op)
        if fn is not None:
            return self._h_cget, (fn, slow)
        fn = _CRR_FN.get(op)
        if fn is not None:
            return self._h_crr, (fn, slow)
        fn = _CMOD1_FN.get(op)
        if fn is not None:
            return self._h_cmod1, fn
        fn = _CMOD2_FN.get(op)
        if fn is not None:
            return self._h_cmod2, (fn, slow)
        fn = _CIMM_FN.get(op)
        if fn is not None:
            return self._h_cimm, (fn, instr.imm or 0, slow)
        if op is Op.LUI:
            return self._h_lui, (instr.imm << 12) & MASK32
        if op is Op.AUIPC:
            return self._h_auipc, instr.imm << 12
        if op is Op.AUIPCC:
            return self._h_auipcc, instr.imm << 12
        if op in (Op.JAL, Op.CJAL):
            return self._h_jal, (instr.imm, op is Op.CJAL)
        if op is Op.JALR:
            return self._h_jalr, instr.imm or 0
        if op is Op.CJALR:
            return self._h_cjalr, instr.imm or 0
        if op is Op.CSPECIALRW:
            return self._h_cspecialrw, None
        if op is Op.BARRIER:
            return self._h_barrier, None
        if op is Op.HALT:
            return self._h_halt, None
        if op in (Op.TRAP, Op.EBREAK, Op.ECALL):
            return self._h_trap, None
        if op is Op.FENCE:
            return self._h_fence, None
        return self._h_unimplemented, None

    # ------------------------------------------------------------------
    # Execution (functional semantics + per-op timing hooks)
    # ------------------------------------------------------------------

    def _execute(self, warp, instr, pc, lanes, mask):
        """Decode-and-execute one instruction (non-cached dispatch)."""
        handler, aux = self._decode_instr(instr)
        handler(warp, instr, pc, lanes, mask, aux)

    def _advance(self, warp, lanes, next_pc):
        pcs = warp.pcs
        for lane in lanes:
            pcs[lane] = next_pc

    # --- integer ALU -------------------------------------------------

    def _h_int_r(self, warp, instr, pc, lanes, mask, aux):
        fn, is_sfu = aux
        a = self._read_gp(warp, instr.rs1)
        b = self._read_gp(warp, instr.rs2)
        out = [0] * self._num_lanes
        for lane in lanes:
            out[lane] = fn(a[lane], b[lane])
        self._write_rd(warp, instr.rd, out, mask)
        if is_sfu:
            self._sfu_issue(lanes)
        self._advance(warp, lanes, pc + 4)

    def _h_int_i(self, warp, instr, pc, lanes, mask, aux):
        fn, imm = aux
        a = self._read_gp(warp, instr.rs1)
        out = [0] * self._num_lanes
        for lane in lanes:
            out[lane] = fn(a[lane], imm)
        self._write_rd(warp, instr.rd, out, mask)
        self._advance(warp, lanes, pc + 4)

    def _h_lui(self, warp, instr, pc, lanes, mask, aux):
        self._write_rd(warp, instr.rd, [aux] * self._num_lanes, mask)
        self._advance(warp, lanes, pc + 4)

    def _h_auipc(self, warp, instr, pc, lanes, mask, aux):
        value = (pc + aux) & MASK32
        self._write_rd(warp, instr.rd, [value] * self._num_lanes, mask)
        self._advance(warp, lanes, pc + 4)

    def _h_auipcc(self, warp, instr, pc, lanes, mask, aux):
        # rd := PCC with address pc + imm<<12 (a capability result).
        addr = (pc + aux) & MASK32
        caps = []
        for lane in self._lane_range:
            meta = warp.pcc_meta[lane]
            pcc = Capability.from_meta_word(meta & MASK32, pc,
                                            bool(meta >> 32))
            caps.append(pcc.set_addr(addr))
        self._write_rd(warp, instr.rd, [addr] * self._num_lanes, mask,
                       caps=caps)
        self._advance(warp, lanes, pc + 4)

    # --- branches and jumps -------------------------------------------

    def _h_branch(self, warp, instr, pc, lanes, mask, aux):
        fn, imm = aux
        a = self._read_gp(warp, instr.rs1)
        b = self._read_gp(warp, instr.rs2)
        taken_pc = (pc + imm) & MASK32
        next_pc = pc + 4
        pcs = warp.pcs
        for lane in lanes:
            pcs[lane] = taken_pc if fn(a[lane], b[lane]) else next_pc

    def _h_jal(self, warp, instr, pc, lanes, mask, aux):
        imm, is_cjal = aux
        next_pc = pc + 4
        if instr.rd:
            if is_cjal:
                caps = []
                for lane in self._lane_range:
                    meta = warp.pcc_meta[lane]
                    link = Capability.from_meta_word(
                        meta & MASK32, next_pc, bool(meta >> 32))
                    caps.append(link.seal_entry())
                self._write_rd(warp, instr.rd,
                               [next_pc] * self._num_lanes, mask, caps=caps)
            else:
                self._write_rd(warp, instr.rd,
                               [next_pc] * self._num_lanes, mask)
        target = (pc + imm) & MASK32
        self._advance(warp, lanes, target)

    def _h_jalr(self, warp, instr, pc, lanes, mask, aux):
        imm = aux
        a = self._read_gp(warp, instr.rs1)
        next_pc = pc + 4
        targets = [0] * self._num_lanes
        for lane in lanes:
            targets[lane] = (a[lane] + imm) & ~1 & MASK32
        if instr.rd:
            self._write_rd(warp, instr.rd, [next_pc] * self._num_lanes, mask)
        pcs = warp.pcs
        for lane in lanes:
            pcs[lane] = targets[lane]

    def _h_cjalr(self, warp, instr, pc, lanes, mask, aux):
        imm = aux
        cfg = self.cfg
        caps = self._read_caps(warp, instr.rs1)
        next_pc = pc + 4
        targets = [0] * self._num_lanes
        link_caps = []
        for lane in self._lane_range:
            meta = warp.pcc_meta[lane]
            link = Capability.from_meta_word(meta & MASK32, next_pc,
                                             bool(meta >> 32))
            link_caps.append(link.seal_entry())
        for lane in lanes:
            cap = caps[lane]
            thread = warp.index * cfg.num_lanes + lane
            if not cap.tag:
                raise TagViolation("CJALR via untagged capability",
                                   thread=thread, pc=pc)
            if cap.is_sealed and not cap.is_sentry:
                raise SealViolation("CJALR via sealed capability",
                                    thread=thread, pc=pc)
            if Perms.EXECUTE not in cap.perms:
                raise PermissionViolation("CJALR target lacks execute",
                                          thread=thread, pc=pc)
            target_cap = cap.unseal_entry() if cap.is_sentry else cap
            target = (target_cap.addr + imm) & ~1 & MASK32
            targets[lane] = target
            warp.pcc_meta[lane] = (target_cap.meta_word()
                                   | (int(target_cap.tag) << 32))
        if instr.rd:
            self._write_rd(warp, instr.rd, [next_pc] * self._num_lanes,
                           mask, caps=link_caps)
        pcs = warp.pcs
        for lane in lanes:
            pcs[lane] = targets[lane]

    # --- floating point -------------------------------------------------

    def _h_float_rr(self, warp, instr, pc, lanes, mask, aux):
        fn, is_sfu = aux
        a = self._read_gp(warp, instr.rs1)
        b = self._read_gp(warp, instr.rs2)
        out = [0] * self._num_lanes
        for lane in lanes:
            out[lane] = fn(a[lane], b[lane])
        self._write_rd(warp, instr.rd, out, mask)
        if is_sfu:
            self._sfu_issue(lanes)
        self._advance(warp, lanes, pc + 4)

    def _h_float_unary(self, warp, instr, pc, lanes, mask, aux):
        fn, is_sfu = aux
        a = self._read_gp(warp, instr.rs1)
        out = [0] * self._num_lanes
        for lane in lanes:
            out[lane] = fn(a[lane])
        self._write_rd(warp, instr.rd, out, mask)
        if is_sfu:
            self._sfu_issue(lanes)
        self._advance(warp, lanes, pc + 4)

    # --- memory ----------------------------------------------------------

    def _h_memory(self, warp, instr, pc, lanes, mask, aux):
        cfg = self.cfg
        op = instr.op
        width, is_cap_addressed, is_store, is_amo, amo_fn, signed, imm = aux

        if is_cap_addressed:
            caps = self._read_caps(warp, instr.rs1)
            accesses = [(lane, (caps[lane].addr + imm) & MASK32, width)
                        for lane in lanes]
        else:
            bases = self._read_gp(warp, instr.rs1)
            accesses = [(lane, (bases[lane] + imm) & MASK32, width)
                        for lane in lanes]

        # Capability checks (one per active lane).
        if is_cap_addressed:
            check = self._check_cap
            num_lanes = cfg.num_lanes
            for lane, addr, _ in accesses:
                thread = warp.index * num_lanes + lane
                if is_amo:
                    check(caps[lane], addr, width, Perms.LOAD,
                          thread, pc, op.name)
                    check(caps[lane], addr, width, Perms.STORE,
                          thread, pc, op.name)
                elif is_store:
                    check(caps[lane], addr, width, Perms.STORE,
                          thread, pc, op.name)
                else:
                    check(caps[lane], addr, width, Perms.LOAD,
                          thread, pc, op.name)

        if is_amo:
            values = self._read_gp(warp, instr.rs2)
            out = [0] * self._num_lanes
            memory = self.memory
            # Same-address atomics serialise deterministically in lane order.
            for lane, addr, _ in accesses:
                old = memory.read(addr, 4)
                memory.write(addr, 4, amo_fn(old, values[lane]))
                out[lane] = old
            conflicts = atomic_conflicts([a for _, a, _ in accesses])
            self._extra_issue += conflicts
            self.stats.stall_atomic_serial += conflicts
            self._write_rd(warp, instr.rd, out, mask)
            self._memory_access(op, accesses, warp, is_write=True)
            self._advance(warp, lanes, pc + 4)
            return

        if is_store:
            if op is Op.CSC:
                store_caps = self._read_caps(warp, instr.rs2)
                for lane, addr, _ in accesses:
                    thread = warp.index * cfg.num_lanes + lane
                    cap2 = store_caps[lane]
                    if cap2.tag and Perms.STORE_CAP not in caps[lane].perms:
                        raise PermissionViolation(
                            "CSC lacks STORE_CAP permission",
                            address=addr, thread=thread, pc=pc)
                    self.memory.write_cap_raw(addr, cap2.to_mem()
                                              & ((1 << 64) - 1), cap2.tag)
            else:
                values = self._read_gp(warp, instr.rs2)
                memory = self.memory
                value_mask = (1 << (8 * width)) - 1
                for lane, addr, _ in accesses:
                    memory.write(addr, width, values[lane] & value_mask)
            self._memory_access(op, accesses, warp, is_write=True)
            self._advance(warp, lanes, pc + 4)
            return

        # Loads.
        if op is Op.CLC:
            out = [0] * self._num_lanes
            metas = [None] * self._num_lanes
            for lane, addr, _ in accesses:
                raw, tag = self.memory.read_cap_raw(addr)
                if tag and Perms.LOAD_CAP not in caps[lane].perms:
                    tag = False  # lacking LOAD_CAP strips the loaded tag
                loaded = Capability.from_mem(raw | (int(tag) << 64))
                out[lane] = loaded.addr
                metas[lane] = loaded
            self._write_rd(warp, instr.rd, out, mask, caps=metas)
        else:
            out = [0] * self._num_lanes
            memory = self.memory
            for lane, addr, _ in accesses:
                out[lane] = memory.read(addr, width, signed) & MASK32
            self._write_rd(warp, instr.rd, out, mask)
        self._memory_access(op, accesses, warp, is_write=False)
        self._advance(warp, lanes, pc + 4)

    # --- shared function unit --------------------------------------------

    def _sfu_issue(self, lanes, cheri_op=False):
        done = self.sfu.issue(self._cycle, len(lanes), cheri_op=cheri_op)
        if done > self._mem_ready:
            self._mem_ready = done
        if self.probes is not None:
            self.probes.sfu(self._cycle, len(lanes), cheri_op, done)

    # --- CHERI non-memory --------------------------------------------------

    def _sfu_cheri_issue(self, lanes):
        self._sfu_issue(lanes, cheri_op=True)

    def _h_cget(self, warp, instr, pc, lanes, mask, aux):
        fn, slow = aux
        caps = self._read_caps(warp, instr.rs1)
        out = [0] * self._num_lanes
        for lane in lanes:
            out[lane] = fn(caps[lane])
        self._write_rd(warp, instr.rd, out, mask)
        if slow:
            self._sfu_cheri_issue(lanes)
        self._advance(warp, lanes, pc + 4)

    def _h_crr(self, warp, instr, pc, lanes, mask, aux):
        fn, slow = aux
        a = self._read_gp(warp, instr.rs1)
        out = [0] * self._num_lanes
        for lane in lanes:
            out[lane] = fn(a[lane])
        self._write_rd(warp, instr.rd, out, mask)
        if slow:
            self._sfu_cheri_issue(lanes)
        self._advance(warp, lanes, pc + 4)

    def _h_cmod1(self, warp, instr, pc, lanes, mask, aux):
        fn = aux
        caps = self._read_caps(warp, instr.rs1)
        out = [0] * self._num_lanes
        result = [None] * self._num_lanes
        for lane in lanes:
            cap = fn(caps[lane])
            out[lane] = cap.addr
            result[lane] = cap
        self._write_rd(warp, instr.rd, out, mask, caps=result)
        self._advance(warp, lanes, pc + 4)

    def _h_cmod2(self, warp, instr, pc, lanes, mask, aux):
        fn, slow = aux
        caps = self._read_caps(warp, instr.rs1)
        b = self._read_gp(warp, instr.rs2)
        out = [0] * self._num_lanes
        result = [None] * self._num_lanes
        for lane in lanes:
            cap = fn(caps[lane], b[lane])
            out[lane] = cap.addr
            result[lane] = cap
        self._write_rd(warp, instr.rd, out, mask, caps=result)
        if slow:
            self._sfu_cheri_issue(lanes)
        self._advance(warp, lanes, pc + 4)

    def _h_cimm(self, warp, instr, pc, lanes, mask, aux):
        fn, imm, slow = aux
        caps = self._read_caps(warp, instr.rs1)
        out = [0] * self._num_lanes
        result = [None] * self._num_lanes
        for lane in lanes:
            cap = fn(caps[lane], imm)
            out[lane] = cap.addr
            result[lane] = cap
        self._write_rd(warp, instr.rd, out, mask, caps=result)
        if slow:
            self._sfu_cheri_issue(lanes)
        self._advance(warp, lanes, pc + 4)

    def _h_cspecialrw(self, warp, instr, pc, lanes, mask, aux):
        # Only reading the PCC special register is supported.
        out = [0] * self._num_lanes
        result = [None] * self._num_lanes
        for lane in lanes:
            meta = warp.pcc_meta[lane]
            pcc = Capability.from_meta_word(meta & MASK32, pc,
                                            bool(meta >> 32))
            out[lane] = pc
            result[lane] = pcc
        self._write_rd(warp, instr.rd, out, mask, caps=result)
        self._advance(warp, lanes, pc + 4)

    # --- SIMT / system -------------------------------------------------------

    def _h_barrier(self, warp, instr, pc, lanes, mask, aux):
        self._advance(warp, lanes, pc + 4)
        self._enter_barrier(warp)

    def _h_halt(self, warp, instr, pc, lanes, mask, aux):
        halted = warp.halted
        for lane in lanes:
            halted[lane] = True

    def _h_trap(self, warp, instr, pc, lanes, mask, aux):
        thread = warp.index * self.cfg.num_lanes + lanes[0]
        raise SoftwareTrap(
            "software trap (%s)%s" % (
                instr.op.name.lower(),
                "" if not instr.comment else ": " + instr.comment),
            thread=thread, pc=pc)

    def _h_fence(self, warp, instr, pc, lanes, mask, aux):
        self._advance(warp, lanes, pc + 4)

    def _h_unimplemented(self, warp, instr, pc, lanes, mask, aux):
        raise SoftwareTrap("unimplemented op %s" % instr.op, pc=pc)

    # -- barriers --------------------------------------------------------------

    def _enter_barrier(self, warp):
        slot = warp.block_slot
        arrived = self._barrier_arrived.setdefault(slot, set())
        arrived.add(warp.index)
        warp.in_barrier = True
        warp.ready_at = _FAR_FUTURE
        self.stats.barrier_waits += 1
        if self.probes is not None:
            self.probes.barrier(self._cycle, warp.index)
        expected = {
            w.index for w in self.warps
            if w.block_slot == slot and not w.done
        }
        if arrived >= expected:
            for index in arrived:
                other = self.warps[index]
                other.in_barrier = False
                other.ready_at = self._cycle + self.cfg.pipeline_depth
            arrived.clear()
