"""Per-lane scalar semantics: RV32IM integer and Zfinx float arithmetic.

All values are 32-bit unsigned bit patterns (Python ints in [0, 2**32)).
Signedness is applied per operation, matching the RISC-V spec, including
the division corner cases (divide-by-zero and signed overflow).
Floating-point ops round through IEEE-754 binary32 via struct packing.
"""

import math
import struct

MASK32 = 0xFFFFFFFF


def to_signed(value):
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def to_u32(value):
    return value & MASK32


# Memoising bits->float is safe because the key is the exact bit pattern.
# The reverse direction must NOT be cached: +0.0 and -0.0 compare equal, so
# a float-keyed dict would conflate their distinct bit patterns.
_BITS_TO_F32_CACHE = {}
_BITS_TO_F32_CACHE_MAX = 1 << 16


def bits_to_f32(bits):
    bits &= MASK32
    value = _BITS_TO_F32_CACHE.get(bits)
    if value is None:
        value = struct.unpack("<f", struct.pack("<I", bits))[0]
        if len(_BITS_TO_F32_CACHE) < _BITS_TO_F32_CACHE_MAX:
            _BITS_TO_F32_CACHE[bits] = value
    return value


def f32_to_bits(value):
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except (OverflowError, ValueError):
        # Overflow to infinity with the right sign.
        inf = float("inf") if value > 0 else float("-inf")
        return struct.unpack("<I", struct.pack("<f", inf))[0]


# -- integer ---------------------------------------------------------------
# One function per operation: the pipeline caches the function for each
# static instruction, so the per-lane hot path is a direct call with no
# name dispatch.


def _int_add(a, b):
    return (a + b) & MASK32


def _int_sub(a, b):
    return (a - b) & MASK32


def _int_sll(a, b):
    return (a << (b & 31)) & MASK32


def _int_srl(a, b):
    return (a & MASK32) >> (b & 31)


def _int_sra(a, b):
    return (to_signed(a) >> (b & 31)) & MASK32


def _int_xor(a, b):
    return (a ^ b) & MASK32


def _int_or(a, b):
    return (a | b) & MASK32


def _int_and(a, b):
    return (a & b) & MASK32


def _int_slt(a, b):
    return 1 if to_signed(a) < to_signed(b) else 0


def _int_sltu(a, b):
    return 1 if (a & MASK32) < (b & MASK32) else 0


def _int_mul(a, b):
    return (a * b) & MASK32


def _int_mulh(a, b):
    return ((to_signed(a) * to_signed(b)) >> 32) & MASK32


def _int_mulhsu(a, b):
    return ((to_signed(a) * (b & MASK32)) >> 32) & MASK32


def _int_mulhu(a, b):
    return (((a & MASK32) * (b & MASK32)) >> 32) & MASK32


def _int_divu(a, b):
    return MASK32 if (b & MASK32) == 0 else (a & MASK32) // (b & MASK32)


def _int_remu(a, b):
    return (a & MASK32) if (b & MASK32) == 0 else (a & MASK32) % (b & MASK32)


#: op name -> two-source integer function (the pipeline dispatch table).
INT_FNS = {
    "add": _int_add, "sub": _int_sub, "sll": _int_sll, "srl": _int_srl,
    "sra": _int_sra, "xor": _int_xor, "or": _int_or, "and": _int_and,
    "slt": _int_slt, "sltu": _int_sltu, "mul": _int_mul, "mulh": _int_mulh,
    "mulhsu": _int_mulhsu, "mulhu": _int_mulhu, "divu": _int_divu,
    "remu": _int_remu,
}


def int_op(op_name, a, b):
    """Two-source RV32IM integer operation on 32-bit patterns."""
    fn = INT_FNS.get(op_name)
    if fn is None:
        raise ValueError("unknown int op %r" % op_name)
    return fn(a, b)


def _div_signed(a, b):
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return MASK32  # RISC-V: division by zero yields -1
    if sa == -(1 << 31) and sb == -1:
        return 0x80000000  # signed overflow wraps
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return to_u32(quotient)


def _rem_signed(a, b):
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return to_u32(sa)
    if sa == -(1 << 31) and sb == -1:
        return 0
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return to_u32(remainder)


INT_FNS["div"] = _div_signed
INT_FNS["rem"] = _rem_signed


def _br_beq(a, b):
    return a == b


def _br_bne(a, b):
    return a != b


def _br_blt(a, b):
    return to_signed(a) < to_signed(b)


def _br_bge(a, b):
    return to_signed(a) >= to_signed(b)


def _br_bltu(a, b):
    return (a & MASK32) < (b & MASK32)


def _br_bgeu(a, b):
    return (a & MASK32) >= (b & MASK32)


#: branch name -> condition function (the pipeline dispatch table).
BRANCH_FNS = {
    "beq": _br_beq, "bne": _br_bne, "blt": _br_blt, "bge": _br_bge,
    "bltu": _br_bltu, "bgeu": _br_bgeu,
}


def branch_taken(op_name, a, b):
    """Branch condition on 32-bit patterns."""
    fn = BRANCH_FNS.get(op_name)
    if fn is None:
        raise ValueError("unknown branch %r" % op_name)
    return fn(a, b)


# -- floating point (binary32 via bit patterns) ------------------------------

def _pack_arith(value):
    # RISC-V F/Zfinx: an arithmetic result that is NaN is the *canonical*
    # quiet NaN — operand payloads never propagate.  Canonicalizing here
    # also keeps the result independent of the host's NaN-propagation
    # order, which CPython's specializing interpreter can flip between
    # cold and warm ``float + float`` code paths.
    if value != value:  # NaN
        return _CANONICAL_NAN
    return f32_to_bits(value)


def _f_fadd(a_bits, b_bits=0):
    return _pack_arith(bits_to_f32(a_bits) + bits_to_f32(b_bits))


def _f_fsub(a_bits, b_bits=0):
    return _pack_arith(bits_to_f32(a_bits) - bits_to_f32(b_bits))


def _f_fmul(a_bits, b_bits=0):
    return _pack_arith(bits_to_f32(a_bits) * bits_to_f32(b_bits))


def _f_fdiv(a_bits, b_bits=0):
    a, b = bits_to_f32(a_bits), bits_to_f32(b_bits)
    if b == 0.0:
        if math.isnan(a):
            return _CANONICAL_NAN
        if a == 0.0:
            return _CANONICAL_NAN  # 0/0 is invalid: canonical quiet NaN
        # x/±0: infinity whose sign is the XOR of the operand signs.
        sign = (a_bits ^ b_bits) & 0x80000000
        return 0xFF800000 if sign else 0x7F800000
    return _pack_arith(a / b)


def _f_fsqrt(a_bits, b_bits=0):
    a = bits_to_f32(a_bits)
    if a < 0.0:
        return _CANONICAL_NAN
    return _pack_arith(math.sqrt(a))


_CANONICAL_NAN = 0x7FC00000


def _is_nan_bits(bits):
    return (bits & 0x7F800000) == 0x7F800000 and (bits & 0x007FFFFF) != 0


def _f_fmin(a_bits, b_bits=0):
    # RISC-V F/Zfinx: a NaN operand is ignored (result is the other
    # operand); both-NaN yields the canonical NaN; and -0.0 < +0.0.
    a_bits &= MASK32
    b_bits &= MASK32
    a_nan, b_nan = _is_nan_bits(a_bits), _is_nan_bits(b_bits)
    if a_nan or b_nan:
        if a_nan and b_nan:
            return _CANONICAL_NAN
        return a_bits if b_nan else b_bits
    if ((a_bits | b_bits) & 0x7FFFFFFF) == 0:
        return a_bits | b_bits  # fmin(-0.0, +0.0) = -0.0 either way round
    return a_bits if bits_to_f32(a_bits) < bits_to_f32(b_bits) else b_bits


def _f_fmax(a_bits, b_bits=0):
    a_bits &= MASK32
    b_bits &= MASK32
    a_nan, b_nan = _is_nan_bits(a_bits), _is_nan_bits(b_bits)
    if a_nan or b_nan:
        if a_nan and b_nan:
            return _CANONICAL_NAN
        return a_bits if b_nan else b_bits
    if ((a_bits | b_bits) & 0x7FFFFFFF) == 0:
        return a_bits & b_bits  # fmax(-0.0, +0.0) = +0.0 either way round
    return a_bits if bits_to_f32(a_bits) > bits_to_f32(b_bits) else b_bits


def _f_feq(a_bits, b_bits=0):
    return 1 if bits_to_f32(a_bits) == bits_to_f32(b_bits) else 0


def _f_flt(a_bits, b_bits=0):
    return 1 if bits_to_f32(a_bits) < bits_to_f32(b_bits) else 0


def _f_fle(a_bits, b_bits=0):
    return 1 if bits_to_f32(a_bits) <= bits_to_f32(b_bits) else 0


def _f_fsgnj(a_bits, b_bits=0):
    return (a_bits & 0x7FFFFFFF) | (b_bits & 0x80000000)


def _f_fsgnjn(a_bits, b_bits=0):
    return (a_bits & 0x7FFFFFFF) | (~b_bits & 0x80000000)


def _f_fsgnjx(a_bits, b_bits=0):
    return a_bits ^ (b_bits & 0x80000000)


def _f_fcvt_w_s(a_bits, b_bits=0):
    return to_u32(_clamp_int(bits_to_f32(a_bits), -(1 << 31), (1 << 31) - 1))


def _f_fcvt_wu_s(a_bits, b_bits=0):
    return to_u32(_clamp_int(bits_to_f32(a_bits), 0, MASK32))


def _f_fcvt_s_w(a_bits, b_bits=0):
    return f32_to_bits(float(to_signed(a_bits)))


def _f_fcvt_s_wu(a_bits, b_bits=0):
    return f32_to_bits(float(to_u32(a_bits)))


#: float op name -> function on 32-bit patterns (the pipeline dispatch
#: table; unary ops ignore the second operand).
FLOAT_FNS = {
    "fadd": _f_fadd, "fsub": _f_fsub, "fmul": _f_fmul, "fdiv": _f_fdiv,
    "fsqrt": _f_fsqrt, "fmin": _f_fmin, "fmax": _f_fmax, "feq": _f_feq,
    "flt": _f_flt, "fle": _f_fle, "fsgnj": _f_fsgnj, "fsgnjn": _f_fsgnjn,
    "fsgnjx": _f_fsgnjx, "fcvt.w.s": _f_fcvt_w_s, "fcvt.wu.s": _f_fcvt_wu_s,
    "fcvt.s.w": _f_fcvt_s_w, "fcvt.s.wu": _f_fcvt_s_wu,
}


def float_op(op_name, a_bits, b_bits=0):
    """Zfinx single-precision operation on/to 32-bit patterns."""
    fn = FLOAT_FNS.get(op_name)
    if fn is None:
        raise ValueError("unknown float op %r" % op_name)
    return fn(a_bits, b_bits)


def _clamp_int(value, lo, hi):
    if math.isnan(value):
        return hi
    if math.isinf(value):
        return hi if value > 0 else lo
    return max(lo, min(hi, int(value)))
