"""Per-lane scalar semantics: RV32IM integer and Zfinx float arithmetic.

All values are 32-bit unsigned bit patterns (Python ints in [0, 2**32)).
Signedness is applied per operation, matching the RISC-V spec, including
the division corner cases (divide-by-zero and signed overflow).
Floating-point ops round through IEEE-754 binary32 via struct packing.
"""

import math
import struct

MASK32 = 0xFFFFFFFF


def to_signed(value):
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def to_u32(value):
    return value & MASK32


def bits_to_f32(bits):
    return struct.unpack("<f", struct.pack("<I", bits & MASK32))[0]


def f32_to_bits(value):
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except (OverflowError, ValueError):
        # Overflow to infinity with the right sign.
        inf = float("inf") if value > 0 else float("-inf")
        return struct.unpack("<I", struct.pack("<f", inf))[0]


# -- integer ---------------------------------------------------------------

def int_op(op_name, a, b):
    """Two-source RV32IM integer operation on 32-bit patterns."""
    if op_name == "add":
        return to_u32(a + b)
    if op_name == "sub":
        return to_u32(a - b)
    if op_name == "sll":
        return to_u32(a << (b & 31))
    if op_name == "srl":
        return to_u32(a) >> (b & 31)
    if op_name == "sra":
        return to_u32(to_signed(a) >> (b & 31))
    if op_name == "xor":
        return to_u32(a ^ b)
    if op_name == "or":
        return to_u32(a | b)
    if op_name == "and":
        return to_u32(a & b)
    if op_name == "slt":
        return 1 if to_signed(a) < to_signed(b) else 0
    if op_name == "sltu":
        return 1 if to_u32(a) < to_u32(b) else 0
    if op_name == "mul":
        return to_u32(a * b)
    if op_name == "mulh":
        return to_u32((to_signed(a) * to_signed(b)) >> 32)
    if op_name == "mulhsu":
        return to_u32((to_signed(a) * to_u32(b)) >> 32)
    if op_name == "mulhu":
        return to_u32((to_u32(a) * to_u32(b)) >> 32)
    if op_name == "div":
        return _div_signed(a, b)
    if op_name == "divu":
        return MASK32 if to_u32(b) == 0 else to_u32(a) // to_u32(b)
    if op_name == "rem":
        return _rem_signed(a, b)
    if op_name == "remu":
        return to_u32(a) if to_u32(b) == 0 else to_u32(a) % to_u32(b)
    raise ValueError("unknown int op %r" % op_name)


def _div_signed(a, b):
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return MASK32  # RISC-V: division by zero yields -1
    if sa == -(1 << 31) and sb == -1:
        return 0x80000000  # signed overflow wraps
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return to_u32(quotient)


def _rem_signed(a, b):
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return to_u32(sa)
    if sa == -(1 << 31) and sb == -1:
        return 0
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return to_u32(remainder)


def branch_taken(op_name, a, b):
    """Branch condition on 32-bit patterns."""
    if op_name == "beq":
        return a == b
    if op_name == "bne":
        return a != b
    if op_name == "blt":
        return to_signed(a) < to_signed(b)
    if op_name == "bge":
        return to_signed(a) >= to_signed(b)
    if op_name == "bltu":
        return to_u32(a) < to_u32(b)
    if op_name == "bgeu":
        return to_u32(a) >= to_u32(b)
    raise ValueError("unknown branch %r" % op_name)


# -- floating point (binary32 via bit patterns) ------------------------------

def float_op(op_name, a_bits, b_bits=0):
    """Zfinx single-precision operation on/to 32-bit patterns."""
    a = bits_to_f32(a_bits)
    b = bits_to_f32(b_bits)
    if op_name == "fadd":
        return f32_to_bits(a + b)
    if op_name == "fsub":
        return f32_to_bits(a - b)
    if op_name == "fmul":
        return f32_to_bits(a * b)
    if op_name == "fdiv":
        if b == 0.0:
            return f32_to_bits(math.inf if a > 0 else (-math.inf if a < 0 else math.nan))
        return f32_to_bits(a / b)
    if op_name == "fsqrt":
        if a < 0.0:
            return f32_to_bits(math.nan)
        return f32_to_bits(math.sqrt(a))
    if op_name == "fmin":
        return f32_to_bits(min(a, b))
    if op_name == "fmax":
        return f32_to_bits(max(a, b))
    if op_name == "feq":
        return 1 if a == b else 0
    if op_name == "flt":
        return 1 if a < b else 0
    if op_name == "fle":
        return 1 if a <= b else 0
    if op_name == "fsgnj":
        return (a_bits & 0x7FFFFFFF) | (b_bits & 0x80000000)
    if op_name == "fsgnjn":
        return (a_bits & 0x7FFFFFFF) | (~b_bits & 0x80000000)
    if op_name == "fsgnjx":
        return a_bits ^ (b_bits & 0x80000000)
    if op_name == "fcvt.w.s":
        return to_u32(_clamp_int(a, -(1 << 31), (1 << 31) - 1))
    if op_name == "fcvt.wu.s":
        return to_u32(_clamp_int(a, 0, MASK32))
    if op_name == "fcvt.s.w":
        return f32_to_bits(float(to_signed(a_bits)))
    if op_name == "fcvt.s.wu":
        return f32_to_bits(float(to_u32(a_bits)))
    raise ValueError("unknown float op %r" % op_name)


def _clamp_int(value, lo, hi):
    if math.isnan(value):
        return hi
    return max(lo, min(hi, int(value)))
