"""The compressed stack cache (paper section 4.4).

SIMTight ships a proof-of-concept cache that absorbs register-spill and
stack traffic at low hardware cost by holding uniform/affine vectors in a
compressed form.  The paper notes it is *particularly effective on
capability metadata* (spilled capabilities usually share bounds across the
warp) but has no noticeable performance impact on the benchmark suite —
spill traffic is simply rare when the VRF is adequately sized.

The model here: a small, per-SM, direct-mapped cache over the stack
address region.  A warp-wide stack access that hits is served at
scratchpad-like latency with no DRAM transaction; a miss fills the line
from DRAM.  Compressibility is modelled by the line granularity: a
warp's spill slots are contiguous, so one line covers a warp's worth of a
compressed vector.
"""


class StackCache:
    """Direct-mapped cache over the per-thread-stack address range."""

    def __init__(self, base, size_bytes, lines=64, line_bytes=64):
        self.base = base
        self.size_bytes = size_bytes
        self.lines = lines
        self.line_bytes = line_bytes
        self._tags = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def contains(self, addr):
        return self.base <= addr < self.base + self.size_bytes

    def _line_of(self, addr):
        return addr // self.line_bytes

    def access(self, addrs, is_write):
        """Account a warp's same-cycle stack accesses.

        Returns the list of line addresses that missed (and must go to
        DRAM); hits are free beyond the cache latency.
        """
        missed = []
        for line in sorted({self._line_of(addr) for addr in addrs}):
            index = line % self.lines
            if self._tags.get(index) == line:
                self.hits += 1
                continue
            self.misses += 1
            if index in self._tags:
                # Evicting a (conservatively dirty) resident line.
                self.writebacks += 1
            self._tags[index] = line
            missed.append(line * self.line_bytes)
        return missed

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
