"""SM configuration: geometry, feature flags, and the paper's three presets.

The paper evaluates three configurations (section 4.1):

- **Baseline** — compressed general-purpose register file, no CHERI.
- **CHERI** — CHERI enabled, but capability metadata stored uncompressed,
  no CHERI instructions in the shared-function unit, dynamic PC metadata.
- **CHERI (Optimised)** — metadata register file compressed (uniform
  detection + null-value optimisation), shared VRF, one-read-port metadata
  SRF, bounds instructions in the SFU, static PC metadata restriction.
"""

import os
from dataclasses import dataclass, field, replace

#: Number of architectural registers per thread.
REGS_PER_THREAD = 32

#: Architectural ceiling on hardware threads per SM (warps x lanes).
#: Mirrors real SM limits (a few thousand threads) with generous slack.
MAX_HW_THREADS = 1 << 16

#: Maximum threads per block, mirroring the CUDA ``blockDim`` limit.
#: ``NoCLRuntime.launch`` rejects larger blocks, which gives the kernel
#: compiler's range analysis a sound static bound on ``threadIdx.x``.
MAX_BLOCK_DIM = 1024

#: Memory map used by the simulator and the NoCL runtime.
IMEM_BASE = 0x00000000
ARG_BASE = 0x00010000
HEAP_BASE = 0x00100000
STACK_BASE = 0x40000000
SCRATCHPAD_BASE = 0xC0000000


def default_backend():
    """The default execution backend.

    Honours the ``REPRO_BACKEND`` environment variable so CI jobs and
    the serve workers can switch tiers without threading flags through
    every entry point; an explicit ``backend=`` argument (e.g. from a
    CLI ``--backend`` flag) still wins because it bypasses the default.
    """
    return os.environ.get("REPRO_BACKEND") or "vector"


@dataclass(frozen=True)
class SMConfig:
    """Full configuration of one streaming multiprocessor."""

    # -- geometry ----------------------------------------------------------
    num_warps: int = 8
    num_lanes: int = 8
    #: VRF capacity as a fraction of all architectural vector registers.
    #: The paper's evaluation uses 3/8 (Table 2).
    vrf_fraction: float = 0.375
    scratchpad_bytes: int = 64 * 1024
    stack_bytes_per_thread: int = 2048

    # -- CHERI feature flags -------------------------------------------------
    enable_cheri: bool = False
    #: Detect uniform vectors in the capability-metadata register file and
    #: store them in the metadata SRF (section 3.2).
    compress_metadata: bool = False
    #: Share one VRF slot pool between the data and metadata register files
    #: (avoids fragmentation, at the cost of a serialisation stall when an
    #: access needs uncompressed data *and* metadata).
    shared_vrf: bool = False
    #: Null-value optimisation: metadata SRF entries may be partially null.
    nvo: bool = False
    #: One read port on the metadata SRF; CSC pays one extra operand-fetch
    #: cycle (section 3.2) but the SRF needs half the storage.
    metadata_srf_single_port: bool = False
    #: Get/set-bounds CHERI instructions execute in the shared-function
    #: unit instead of per-lane logic (section 3.3).
    sfu_cheri_slow_path: bool = False
    #: PC metadata fixed at kernel launch; active-thread selection may
    #: ignore it (the static PC metadata restriction, section 3.3).
    static_pc_metadata: bool = False
    #: Proof-of-concept compressed stack cache (section 4.4): absorbs
    #: register-spill / stack traffic at low hardware cost.  Off by
    #: default, like the paper's evaluation.
    enable_stack_cache: bool = False

    # -- execution backend ---------------------------------------------------
    #: Which execution backend interprets instructions.  ``"scalar"`` is
    #: the reference per-lane interpreter; ``"vector"`` executes each
    #: issued instruction across all lanes at once (symbolic uniform /
    #: affine forms, NumPy arrays on wide SMs, hot-trace specialisation)
    #: and is bit-identical to the scalar backend by construction —
    #: enforced by the equivalence tests and ``repro lockstep``.
    #: ``"jit"`` layers the codegen trace-JIT tier on top of the vector
    #: backend (see :mod:`repro.simt.backend.jit`), same bit-identity
    #: contract.  The default honours ``REPRO_BACKEND`` (see
    #: :func:`default_backend`).
    backend: str = field(default_factory=default_backend)

    # -- compiler ------------------------------------------------------------
    #: Kernel-compiler optimization level (``repro.nocl.opt``): 0 compiles
    #: the direct frontend output (historical behaviour), 1 runs the
    #: dataflow-analysis pass pipeline (LICM, CSE, strength reduction,
    #: bounds-check elimination, DCE).  Part of the config — not a side
    #: channel — so cache keys, manifests and the service dedup path all
    #: distinguish -O0 from -O1 results automatically.
    opt: int = 0

    # -- timing constants ----------------------------------------------------
    pipeline_depth: int = 6
    sfu_latency: int = 12
    sfu_cheri_latency: int = 3
    dram_latency: int = 40
    dram_line_bytes: int = 64
    scratchpad_latency: int = 2

    # ------------------------------------------------------------------------

    @property
    def num_threads(self):
        return self.num_warps * self.num_lanes

    @property
    def arch_vector_regs(self):
        """Total architectural vector registers (32 per warp)."""
        return REGS_PER_THREAD * self.num_warps

    @property
    def vrf_slots(self):
        """Physical VRF capacity in vector registers."""
        return max(1, int(self.arch_vector_regs * self.vrf_fraction))

    def validate(self):
        if self.num_warps < 1 or self.num_lanes < 1:
            raise ValueError("SM needs at least one warp and one lane")
        if self.num_threads > MAX_HW_THREADS:
            raise ValueError("SM capped at %d hardware threads"
                             % MAX_HW_THREADS)
        if not 0.0 < self.vrf_fraction <= 1.0:
            raise ValueError("vrf_fraction must be in (0, 1]")
        if self.backend not in ("scalar", "vector", "jit"):
            raise ValueError(
                "unknown backend %r (choose scalar, vector or jit)"
                % (self.backend,))
        if self.opt not in (0, 1):
            raise ValueError("unknown opt level %r (choose 0 or 1)"
                             % (self.opt,))
        features = (self.compress_metadata, self.shared_vrf, self.nvo,
                    self.metadata_srf_single_port, self.sfu_cheri_slow_path,
                    self.static_pc_metadata)
        if any(features) and not self.enable_cheri:
            raise ValueError("CHERI optimisations require enable_cheri")
        return self

    def with_(self, **kwargs):
        """A modified copy (convenience for sweeps)."""
        return replace(self, **kwargs).validate()

    # -- the paper's three configurations ------------------------------------

    @classmethod
    def baseline(cls, **kwargs):
        """Baseline: compressed GP register file, no CHERI, no safety."""
        return cls(**kwargs).validate()

    @classmethod
    def cheri(cls, **kwargs):
        """Unoptimised CHERI: uncompressed metadata, no SFU slow path."""
        return cls(enable_cheri=True, **kwargs).validate()

    @classmethod
    def cheri_optimised(cls, **kwargs):
        """CHERI (Optimised): every section-3 technique enabled."""
        return cls(
            enable_cheri=True,
            compress_metadata=True,
            shared_vrf=True,
            nvo=True,
            metadata_srf_single_port=True,
            sfu_cheri_slow_path=True,
            static_pc_metadata=True,
            **kwargs,
        ).validate()
