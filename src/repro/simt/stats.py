"""Performance counters for one kernel run.

These counters regenerate the paper's evaluation directly:

- ``opcode_counts``       -> Figure 6 (CHERI instruction frequency)
- ``vrf_occupancy_*``     -> Figure 10 (vectors resident in the VRF)
- ``cap_regs_per_thread`` -> Figure 11 (registers holding capabilities)
- DRAM counters           -> Figure 12 / Table 2 (bandwidth, spill traffic)
- ``cycles``              -> Figure 13 / Table 2 (execution-time overheads)
"""

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.instructions import CHERI_OPS


@dataclass
class SMStats:
    """Counters collected by the pipeline over one kernel launch."""

    cycles: int = 0
    instrs_issued: int = 0
    thread_instrs: int = 0
    opcode_counts: Counter = field(default_factory=Counter)

    # Stall cycles by cause (each costs one extra issue slot).
    stall_csc_operand: int = 0
    stall_shared_vrf: int = 0
    stall_bank_conflict: int = 0
    stall_atomic_serial: int = 0
    sfu_busy_cycles: int = 0

    sfu_requests: int = 0
    barrier_waits: int = 0

    # Register-file compression behaviour.
    gp_vrf_occupancy_integral: int = 0   # sum over cycles of resident vectors
    meta_vrf_occupancy_integral: int = 0
    gp_spills: int = 0
    gp_reloads: int = 0
    meta_spills: int = 0
    meta_reloads: int = 0
    # Value regularity of register writes (paper section 2.2).
    gp_writes_total: int = 0
    gp_writes_uniform: int = 0
    gp_writes_affine: int = 0
    meta_writes_total: int = 0
    meta_writes_uniform: int = 0
    meta_writes_partial_null: int = 0

    # Memory behaviour.
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    dram_spill_bytes: int = 0
    dram_tag_bytes: int = 0
    dram_txns: int = 0
    scratchpad_accesses: int = 0
    scratchpad_conflict_cycles: int = 0
    tag_cache_hits: int = 0
    tag_cache_misses: int = 0

    # Figure 11: per-warp set of registers that ever held a tagged
    # capability in any lane (threads in a warp behave symmetrically).
    cap_regs_per_warp: dict = field(default_factory=dict)

    def note_cap_register(self, warp, reg):
        self.cap_regs_per_warp.setdefault(warp, set()).add(reg)

    def as_dict(self):
        """Every counter as a JSON-serialisable dict (manifests, --json).

        Scalar counters pass through; ``opcode_counts`` becomes an op-name
        histogram and ``cap_regs_per_warp`` sorted register lists keyed by
        warp index (as strings, since JSON objects key on strings).
        Derived metrics (``ipc``, ``dram_total_bytes``) are included so
        downstream consumers need no simulator knowledge.
        """
        from dataclasses import fields
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "opcode_counts":
                out[f.name] = {op.name: count
                               for op, count in sorted(value.items(),
                                                       key=lambda kv: kv[0].name)}
            elif f.name == "cap_regs_per_warp":
                out[f.name] = {str(warp): sorted(regs)
                               for warp, regs in sorted(value.items())}
            else:
                out[f.name] = value
        out["ipc"] = round(self.ipc, 6)
        out["dram_total_bytes"] = self.dram_total_bytes
        out["cap_regs_per_thread"] = self.cap_regs_per_thread
        return out

    # -- derived metrics -----------------------------------------------------

    @property
    def cap_regs_per_thread(self):
        """Max number of registers any thread used to hold capabilities."""
        if not self.cap_regs_per_warp:
            return 0
        return max(len(regs) for regs in self.cap_regs_per_warp.values())

    @property
    def ipc(self):
        return self.instrs_issued / self.cycles if self.cycles else 0.0

    @property
    def dram_total_bytes(self):
        return self.dram_read_bytes + self.dram_write_bytes

    def cheri_instr_fraction(self):
        """Per-op execution frequency of CHERI instructions (Figure 6)."""
        total = sum(self.opcode_counts.values())
        if not total:
            return {}
        return {
            op: count / total
            for op, count in sorted(self.opcode_counts.items(),
                                    key=lambda item: -item[1])
            if op in CHERI_OPS
        }

    def write_regularity(self, metadata=False):
        """Fractions of written vectors that were uniform / affine.

        The paper's section 2.2 cites Collange et al.: on CUDA workloads
        ~15% of written vectors are uniform and ~28% affine; capability
        metadata is expected to be far *more* regular than data.
        """
        if metadata:
            total = max(1, self.meta_writes_total)
            return {
                "uniform": self.meta_writes_uniform / total,
                "partial_null": self.meta_writes_partial_null / total,
            }
        total = max(1, self.gp_writes_total)
        return {
            "uniform": self.gp_writes_uniform / total,
            "affine": self.gp_writes_affine / total,
        }

    def vrf_residency(self, arch_vector_regs, metadata=False):
        """Time-averaged fraction of architectural vector registers that
        were resident uncompressed in the VRF (Figure 10, lower is better).
        """
        if not self.cycles:
            return 0.0
        integral = (self.meta_vrf_occupancy_integral if metadata
                    else self.gp_vrf_occupancy_integral)
        return integral / (self.cycles * arch_vector_regs)
