"""Virtual-register assembly: the compiler's intermediate form.

The frontend emits a linear sequence of :class:`VInstr` (machine operations
over virtual registers, with symbolic branch targets) and :class:`VLabel`
markers.  Register allocation rewrites virtual registers to physical ones;
:func:`assemble` then resolves labels to byte offsets, expands the ``LI``
pseudo-instruction, and produces the final :class:`repro.isa.Instr` list.

Virtual register numbering: ids 0..31 denote *physical* (pre-coloured)
registers — the zero register and the ABI registers the runtime
initialises; ids >= 32 are virtual and subject to allocation.
"""

from dataclasses import dataclass
from typing import Optional

from repro.isa.instructions import Instr, Op

#: First virtual (allocatable) register id.
FIRST_VREG = 32


@dataclass
class VInstr:
    """One machine operation over virtual registers."""

    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[str] = None   # symbolic branch/jump target
    depth: int = 0                 # convergence nesting level
    comment: str = ""
    line: Optional[int] = None     # DSL source line (profiler attribution)

    def regs_read(self):
        regs = []
        if self.rs1 is not None:
            regs.append(self.rs1)
        if self.rs2 is not None:
            regs.append(self.rs2)
        return regs

    def regs_written(self):
        return [self.rd] if self.rd is not None else []


@dataclass
class VLabel:
    """A branch-target marker in the instruction stream."""

    name: str
    depth: int = 0


#: Pseudo-op: load a 32-bit immediate (expands to LUI and/or ADDI).
LI = "LI"


@dataclass
class VLoadImm:
    """``LI rd, value`` pseudo-instruction (32-bit immediate)."""

    rd: int
    value: int
    depth: int = 0
    comment: str = ""
    line: Optional[int] = None

    def regs_read(self):
        return []

    def regs_written(self):
        return [self.rd]


class AsmError(Exception):
    """Raised on malformed virtual assembly (unknown label, bad range)."""


def _li_length(value):
    """How many real instructions ``LI`` expands to for this value."""
    value &= 0xFFFFFFFF
    if -2048 <= _sext32(value) <= 2047:
        return 1
    return 1 if (value & 0xFFF) == 0 else 2


def _sext32(value):
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


def _expand_li(rd, value, depth, comment, line=None):
    """Expand LI into LUI/ADDI."""
    value &= 0xFFFFFFFF
    signed = _sext32(value)
    if -2048 <= signed <= 2047:
        return [Instr(Op.ADDI, rd=rd, rs1=0, imm=signed, depth=depth,
                      comment=comment, line=line)]
    upper = (value + 0x800) >> 12 & 0xFFFFF
    low = _sext32((value - ((upper << 12) & 0xFFFFFFFF)) & 0xFFFFFFFF)
    out = [Instr(Op.LUI, rd=rd, imm=upper, depth=depth, comment=comment,
                 line=line)]
    if low:
        out.append(Instr(Op.ADDI, rd=rd, rs1=rd, imm=low, depth=depth,
                         line=line))
    return out


def instruction_lengths(items):
    """Final instruction count contributed by each item (labels are 0)."""
    lengths = []
    for item in items:
        if isinstance(item, VLabel):
            lengths.append(0)
        elif isinstance(item, VLoadImm):
            lengths.append(_li_length(item.value))
        else:
            lengths.append(1)
    return lengths


def assemble(items, base_pc=0):
    """Resolve labels and expand pseudos into a final Instr list."""
    lengths = instruction_lengths(items)
    label_pc = {}
    pc = base_pc
    for item, length in zip(items, lengths):
        if isinstance(item, VLabel):
            if item.name in label_pc:
                raise AsmError("duplicate label %r" % item.name)
            label_pc[item.name] = pc
        pc += 4 * length

    out = []
    pc = base_pc
    for item, length in zip(items, lengths):
        if isinstance(item, VLabel):
            continue
        if isinstance(item, VLoadImm):
            out.extend(_expand_li(item.rd, item.value, item.depth,
                                  item.comment, line=item.line))
            pc += 4 * length
            continue
        instr = item
        imm = instr.imm
        if instr.target is not None:
            if instr.target not in label_pc:
                raise AsmError("unknown label %r" % instr.target)
            imm = label_pc[instr.target] - pc
        out.append(Instr(instr.op, rd=instr.rd, rs1=instr.rs1,
                         rs2=instr.rs2, imm=imm, depth=instr.depth,
                         comment=instr.comment, line=instr.line))
        pc += 4 * length
    return out
