"""AST frontend: restricted-Python kernel bodies -> virtual-register code.

Walks the kernel's AST and emits :class:`VInstr` streams through a
mode-specific :class:`repro.nocl.codegen.CodeGen`.  Supports the CUDA-style
subset the NoCL benchmarks need: integer/float arithmetic, comparisons,
``if``/``elif``/``else``, ``while``, ``for .. in range(..)``,
``break``/``continue``/``return``, array indexing through typed pointer
parameters, shared arrays, barriers and atomics, plus pointer-variable
aliasing (``p = a if cond else b`` style selection, the pattern behind the
paper's BlkStencil metadata divergence).

Control-flow nesting depth is attached to every instruction for the SM's
deepest-first reconvergence (paper section 2.3).
"""

import ast
import struct

from repro.isa.instructions import Op
from repro.nocl.codegen import PtrValue, Value
from repro.nocl.dsl import BUILTIN_DIMS, SCALAR_TYPES, f32, i32, u32
from repro.nocl.ir import FIRST_VREG, VInstr, VLabel, VLoadImm


class CompileError(Exception):
    """A kernel uses something outside the supported subset."""

    def __init__(self, message, node=None):
        if node is not None and hasattr(node, "lineno"):
            message = "line %d: %s" % (node.lineno, message)
        super().__init__(message)


_BIN_INT = {
    ast.Add: ("add", Op.ADD, Op.ADDI),
    ast.Sub: ("sub", Op.SUB, None),
    ast.Mult: ("mul", Op.MUL, None),
    ast.BitAnd: ("and", Op.AND, Op.ANDI),
    ast.BitOr: ("or", Op.OR, Op.ORI),
    ast.BitXor: ("xor", Op.XOR, Op.XORI),
    ast.LShift: ("sll", Op.SLL, Op.SLLI),
}
_BIN_FLOAT = {
    ast.Add: Op.FADD_S,
    ast.Sub: Op.FSUB_S,
    ast.Mult: Op.FMUL_S,
    ast.Div: Op.FDIV_S,
}
# (signed op, unsigned op) keyed by comparison for branch emission; the
# bool says whether to swap operands.
_CMP_BRANCH = {
    ast.Eq: (Op.BEQ, Op.BEQ, False),
    ast.NotEq: (Op.BNE, Op.BNE, False),
    ast.Lt: (Op.BLT, Op.BLTU, False),
    ast.GtE: (Op.BGE, Op.BGEU, False),
    ast.Gt: (Op.BLT, Op.BLTU, True),
    ast.LtE: (Op.BGE, Op.BGEU, True),
}
_FLOAT_CMP = {
    ast.Eq: (Op.FEQ_S, False, False),
    ast.NotEq: (Op.FEQ_S, False, True),   # invert
    ast.Lt: (Op.FLT_S, False, False),
    ast.Gt: (Op.FLT_S, True, False),      # swap
    ast.LtE: (Op.FLE_S, False, False),
    ast.GtE: (Op.FLE_S, True, False),
}


def f32_bits(value):
    return struct.unpack("<I", struct.pack("<f", float(value)))[0]


class Frontend:
    """Compiles one kernel body; shared by all codegen modes."""

    def __init__(self, source, codegen_cls):
        self.source = source
        self.items = []
        self.depth = 0
        self._next_vreg = FIRST_VREG
        self._next_label = 0
        self.vars = {}
        self.loop_spans = []        # (start_index, end_index) for liveness
        self._loop_stack = []       # (continue_label, break_label)
        self.shared_cursor = 0
        self.shared_bytes = 0
        self.uses_barrier = False
        #: vregs that must stay live across loop back edges (named
        #: variables plus compiler temporaries like loop bounds).
        self.var_vregs = set()
        #: shared-array materialisation, hoisted before the block loop
        #: (NoCL declares shared arrays in init(), outside the hot path).
        self.hoisted = []
        self._hoisting = False
        self.cg = codegen_cls(self)
        self._block_continue = None
        #: DSL source line of the statement currently being compiled;
        #: stamped onto every emitted instruction for cycle attribution.
        self.cur_line = None

    # -- emitter interface used by CodeGen --------------------------------

    def emit(self, item):
        if self._hoisting:
            if isinstance(item, (VInstr, VLoadImm)):
                item.depth = 0
                if item.line is None:
                    item.line = self.cur_line
            self.hoisted.append(item)
            return item
        if isinstance(item, (VInstr, VLoadImm)):
            item.depth = self.depth
            if item.line is None:
                item.line = self.cur_line
        self.items.append(item)
        return item

    def emit_li(self, value, comment=""):
        vreg = self.new_vreg()
        self.emit(VLoadImm(vreg, value & 0xFFFFFFFF, comment=comment))
        return vreg

    def new_vreg(self):
        self._next_vreg += 1
        return self._next_vreg - 1

    def new_label(self, prefix):
        self._next_label += 1
        return "%s_%d" % (prefix, self._next_label)

    def place_label(self, name):
        self.items.append(VLabel(name, depth=self.depth))

    # -- public entry point --------------------------------------------------

    def compile_body(self, builtins, block_continue_label):
        """Compile the kernel body statements (prologue handled by driver).

        ``builtins`` maps threadIdx/blockIdx/blockDim/gridDim to Values and
        parameter names to their Values/PtrValues.
        """
        self.vars.update(builtins)
        self._block_continue = block_continue_label
        for stmt in self.source.tree.body:
            self._stmt(stmt)

    # ----------------------------------------------------------------------
    # Statements
    # ----------------------------------------------------------------------

    def _stmt(self, node):
        if hasattr(node, "lineno"):
            self.cur_line = node.lineno
        if isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, ast.AugAssign):
            self._aug_assign(node)
        elif isinstance(node, ast.AnnAssign):
            if node.value is None:
                raise CompileError("declarations need an initial value", node)
            target = ast.Assign(targets=[node.target], value=node.value)
            ast.copy_location(target, node)
            self._assign(target)
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.Break):
            if not self._loop_stack:
                raise CompileError("break outside loop", node)
            self.emit(VInstr(self.cg.jump_op, rd=0, target=self._loop_stack[-1][1]))
        elif isinstance(node, ast.Continue):
            if not self._loop_stack:
                raise CompileError("continue outside loop", node)
            self.emit(VInstr(self.cg.jump_op, rd=0, target=self._loop_stack[-1][0]))
        elif isinstance(node, ast.Return):
            if node.value is not None:
                raise CompileError("kernels cannot return values", node)
            self.emit(VInstr(self.cg.jump_op, rd=0, target=self._block_continue,
                             comment="thread return"))
        elif isinstance(node, ast.Expr):
            self._expr_stmt(node.value)
        elif isinstance(node, ast.Pass):
            pass
        else:
            raise CompileError(
                "unsupported statement %s" % type(node).__name__, node)

    def _expr_stmt(self, node):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return  # docstring
        if not isinstance(node, ast.Call):
            raise CompileError("expression statements must be calls", node)
        name = self._call_name(node)
        if name == "syncthreads":
            self.uses_barrier = True
            self.emit(VInstr(Op.BARRIER))
            return
        if name == "atomic_add":
            self._intrinsic_atomic_add(node)
            return
        if name == "noop":
            return
        raise CompileError("unsupported call %r as statement" % name, node)

    # -- assignment ------------------------------------------------------------

    def _assign(self, node):
        if len(node.targets) != 1:
            raise CompileError("chained assignment unsupported", node)
        target = node.targets[0]
        if isinstance(target, ast.Subscript):
            pointer = self._pointer(target.value)
            idx = self._rvalue(target.slice)
            value = self._rvalue(node.value)
            value = self._coerce_store(value, pointer, node)
            self.cg.store(pointer, idx, value)
            return
        if not isinstance(target, ast.Name):
            raise CompileError("unsupported assignment target", node)
        name = target.id
        # Shared-array declaration?
        if isinstance(node.value, ast.Call) and \
                self._call_name(node.value) == "shared":
            self.vars[name] = self._intrinsic_shared(node.value)
            return
        # Pointer aliasing (p = a, or p = a if c else b)?
        if self._is_pointer_expr(node.value):
            self._assign_pointer(name, node.value)
            return
        value = self._rvalue(node.value)
        existing = self.vars.get(name)
        if existing is None:
            if value.temp:
                value.temp = False
                self.vars[name] = value
            else:
                fresh = Value(self.new_vreg(), value.ty, temp=False)
                self._move(fresh.vreg, value.vreg)
                self.vars[name] = fresh
            return
        if isinstance(existing, PtrValue):
            raise CompileError(
                "cannot assign scalar to pointer variable %r" % name, node)
        if existing.ty.is_float != value.ty.is_float:
            raise CompileError(
                "type of %r changed between assignments" % name, node)
        self._move(existing.vreg, value.vreg)
        existing.const = None

    def _assign_pointer(self, name, value_node):
        existing = self.vars.get(name)
        if isinstance(value_node, ast.IfExp):
            # p = a if cond else b  — the BlkStencil pointer-select pattern.
            then_ptr_node, else_ptr_node = value_node.body, value_node.orelse
            probe = self._pointer(then_ptr_node)
            dst = self._ensure_ptr_var(name, probe.elem, value_node)
            else_label = self.new_label("psel_else")
            join = self.new_label("psel_join")
            self._branch_false(value_node.test, else_label)
            self.depth += 1
            self.cg.ptr_copy(dst, self._pointer(then_ptr_node))
            self.emit(VInstr(self.cg.jump_op, rd=0, target=join))
            self.depth -= 1
            self.place_label(else_label)
            self.depth += 1
            self.cg.ptr_copy(dst, self._pointer(else_ptr_node))
            self.depth -= 1
            self.place_label(join)
            dst.len_const = None
            return
        src = self._pointer(value_node)
        dst = self._ensure_ptr_var(name, src.elem, value_node)
        self.cg.ptr_copy(dst, src)
        dst.len_const = src.len_const

    def _ensure_ptr_var(self, name, elem, node):
        existing = self.vars.get(name)
        if existing is None:
            fresh = self.cg.new_ptr(elem)
            self.vars[name] = fresh
            return fresh
        if not isinstance(existing, PtrValue):
            raise CompileError(
                "cannot assign pointer to scalar variable %r" % name, node)
        if existing.elem is not elem:
            raise CompileError(
                "pointer variable %r changed element type" % name, node)
        return existing

    def _aug_assign(self, node):
        binop = ast.BinOp(left=None, op=node.op, right=node.value)
        if isinstance(node.target, ast.Subscript):
            pointer = self._pointer(node.target.value)
            idx = self._rvalue(node.target.slice)
            old = self.cg.load(pointer, idx)
            rhs = self._rvalue(node.value)
            result = self._binop_values(node.op, old, rhs, node)
            result = self._coerce_store(result, pointer, node)
            # Re-evaluating a constant index is free; a dynamic one was
            # already scaled once, but correctness first.
            self.cg.store(pointer, idx, result)
            return
        if not isinstance(node.target, ast.Name):
            raise CompileError("unsupported augmented target", node)
        name = node.target.id
        var = self.vars.get(name)
        if var is None:
            raise CompileError("augmented assignment to undefined %r" % name,
                               node)
        if isinstance(var, PtrValue):
            raise CompileError("pointer arithmetic on %r is not supported; "
                               "index the original array instead" % name, node)
        rhs = self._rvalue(node.value)
        # Read the variable without its recorded constness (see _rvalue).
        current = Value(var.vreg, var.ty, const=None, temp=False)
        result = self._binop_values(node.op, current, rhs, node)
        self._move(var.vreg, result.vreg)
        var.const = None

    def _move(self, dst_vreg, src_vreg):
        if dst_vreg != src_vreg:
            self.emit(VInstr(Op.ADDI, rd=dst_vreg, rs1=src_vreg, imm=0))

    def _coerce_store(self, value, pointer, node):
        if pointer.elem.is_float != value.ty.is_float:
            raise CompileError(
                "storing %s into %s array" % (value.ty, pointer.elem), node)
        return value

    # -- control flow -------------------------------------------------------------

    def _if(self, node):
        else_label = self.new_label("else")
        join = self.new_label("join")
        self._branch_false(node.test, else_label)
        self.depth += 1
        for stmt in node.body:
            self._stmt(stmt)
        if node.orelse:
            self.emit(VInstr(self.cg.jump_op, rd=0, target=join))
        self.depth -= 1
        self.place_label(else_label)
        if node.orelse:
            self.depth += 1
            for stmt in node.orelse:
                self._stmt(stmt)
            self.depth -= 1
            self.place_label(join)

    def _while(self, node):
        header = self.new_label("while")
        exit_label = self.new_label("endwhile")
        continue_label = header
        start = len(self.items)
        self.place_label(header)
        self._branch_false(node.test, exit_label)
        self._loop_stack.append((continue_label, exit_label))
        self.depth += 1
        for stmt in node.body:
            self._stmt(stmt)
        self.emit(VInstr(self.cg.jump_op, rd=0, target=header))
        self.depth -= 1
        self._loop_stack.pop()
        self.place_label(exit_label)
        self.loop_spans.append((start, len(self.items)))

    def _for(self, node):
        if node.orelse:
            raise CompileError("for-else is not supported", node)
        if not (isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "range"):
            raise CompileError("for loops must iterate over range(...)", node)
        if not isinstance(node.target, ast.Name):
            raise CompileError("for target must be a simple name", node)
        args = node.iter.args
        if len(args) == 1:
            start_node, stop_node, step_node = None, args[0], None
        elif len(args) == 2:
            start_node, stop_node, step_node = args[0], args[1], None
        elif len(args) == 3:
            start_node, stop_node, step_node = args
        else:
            raise CompileError("range() takes 1-3 arguments", node)

        name = node.target.id
        var = self.vars.get(name)
        if isinstance(var, PtrValue):
            raise CompileError("loop variable %r is a pointer" % name, node)
        if var is None:
            var = Value(self.new_vreg(), i32, temp=False)
            self.vars[name] = var
        if start_node is None:
            self._move_imm(var.vreg, 0)
        else:
            start = self._rvalue(start_node)
            self._move(var.vreg, start.vreg)
        var.const = None
        stop = self._rvalue(stop_node)
        if not stop.temp:
            # The bound may be mutated inside the body; snapshot it like
            # Python's range does.
            snap = Value(self.new_vreg(), stop.ty)
            self._move(snap.vreg, stop.vreg)
            stop = snap
        # The bound (and a dynamic step) is re-read at the loop header on
        # every iteration: keep it live across the back edge.
        self.var_vregs.add(stop.vreg)
        step_const = 1
        step_value = None
        if step_node is not None:
            step_value = self._rvalue(step_node)
            step_const = step_value.const
            if step_const == 0:
                raise CompileError("range() step of zero", node)
            self.var_vregs.add(step_value.vreg)

        header = self.new_label("for")
        continue_label = self.new_label("forcont")
        exit_label = self.new_label("endfor")
        start_index = len(self.items)
        self.place_label(header)
        descending = step_const is not None and step_const < 0
        if descending:
            self.emit(VInstr(Op.BGE, rs1=stop.vreg, rs2=var.vreg,
                             target=exit_label))
        else:
            self.emit(VInstr(Op.BGE, rs1=var.vreg, rs2=stop.vreg,
                             target=exit_label))
        self._loop_stack.append((continue_label, exit_label))
        self.depth += 1
        for stmt in node.body:
            self._stmt(stmt)
        self.place_label(continue_label)
        if step_value is not None and step_value.const is None:
            self.emit(VInstr(Op.ADD, rd=var.vreg, rs1=var.vreg,
                             rs2=step_value.vreg))
        else:
            self.emit(VInstr(Op.ADDI, rd=var.vreg, rs1=var.vreg,
                             imm=step_const))
        self.emit(VInstr(self.cg.jump_op, rd=0, target=header))
        self.depth -= 1
        self._loop_stack.pop()
        self.place_label(exit_label)
        self.loop_spans.append((start_index, len(self.items)))

    def _move_imm(self, vreg, value):
        self.emit(VInstr(Op.ADDI, rd=vreg, rs1=0, imm=value))

    # -- branch-context condition compilation --------------------------------------

    def _branch_false(self, test, false_label):
        """Fall through when ``test`` holds; jump to false_label otherwise."""
        self._branch(test, None, false_label)

    def _branch(self, test, true_label, false_label):
        """Emit branches: exactly one of the labels may be None, meaning
        fall-through."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._branch(test.operand, false_label, true_label)
            return
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And):
                # Short-circuit: any failing conjunct jumps to false.
                fl = false_label or self.new_label("and_false")
                for sub in test.values[:-1]:
                    self._branch(sub, None, fl)
                self._branch(test.values[-1], true_label, false_label)
                if false_label is None:
                    self.place_label(fl)
                return
            # Or: jump to true target on first success.
            tl = true_label or self.new_label("or_true")
            for sub in test.values[:-1]:
                self._branch(sub, tl, None)
            self._branch(test.values[-1], true_label, false_label)
            if true_label is None:
                self.place_label(tl)
            return
        if isinstance(test, ast.Constant):
            taken = bool(test.value)
            if taken and true_label:
                self.emit(VInstr(self.cg.jump_op, rd=0, target=true_label))
            if not taken and false_label:
                self.emit(VInstr(self.cg.jump_op, rd=0, target=false_label))
            return
        if isinstance(test, ast.Compare):
            if len(test.ops) != 1:
                raise CompileError("chained comparisons unsupported", test)
            left = self._rvalue(test.left)
            right = self._rvalue(test.comparators[0])
            cmp_ast = type(test.ops[0])
            if left.ty.is_float or right.ty.is_float:
                value = self._float_compare(cmp_ast, left, right, test)
                self._branch_nonzero(value, true_label, false_label)
                return
            if cmp_ast not in _CMP_BRANCH:
                raise CompileError("unsupported comparison", test)
            signed_op, unsigned_op, swap = _CMP_BRANCH[cmp_ast]
            unsigned = left.ty is u32 or right.ty is u32
            op = unsigned_op if unsigned else signed_op
            a, b = (right, left) if swap else (left, right)
            if true_label is not None:
                self.emit(VInstr(op, rs1=a.vreg, rs2=b.vreg,
                                 target=true_label))
                if false_label is not None:
                    self.emit(VInstr(self.cg.jump_op, rd=0, target=false_label))
            else:
                inverted = self._invert(op)
                self.emit(VInstr(inverted, rs1=a.vreg, rs2=b.vreg,
                                 target=false_label))
            return
        # Fallback: any integer expression, nonzero = true.
        value = self._rvalue(test)
        self._branch_nonzero(value, true_label, false_label)

    @staticmethod
    def _invert(op):
        return {
            Op.BEQ: Op.BNE, Op.BNE: Op.BEQ, Op.BLT: Op.BGE, Op.BGE: Op.BLT,
            Op.BLTU: Op.BGEU, Op.BGEU: Op.BLTU,
        }[op]

    def _branch_nonzero(self, value, true_label, false_label):
        if true_label is not None:
            self.emit(VInstr(Op.BNE, rs1=value.vreg, rs2=0,
                             target=true_label))
            if false_label is not None:
                self.emit(VInstr(self.cg.jump_op, rd=0, target=false_label))
        else:
            self.emit(VInstr(Op.BEQ, rs1=value.vreg, rs2=0,
                             target=false_label))

    def _float_compare(self, cmp_ast, left, right, node):
        if cmp_ast not in _FLOAT_CMP:
            raise CompileError("unsupported float comparison", node)
        op, swap, invert = _FLOAT_CMP[cmp_ast]
        a, b = (right, left) if swap else (left, right)
        rd = self.new_vreg()
        self.emit(VInstr(op, rd=rd, rs1=a.vreg, rs2=b.vreg))
        if invert:
            out = self.new_vreg()
            self.emit(VInstr(Op.XORI, rd=out, rs1=rd, imm=1))
            rd = out
        return Value(rd, i32)

    # ----------------------------------------------------------------------
    # Expressions
    # ----------------------------------------------------------------------

    def _rvalue(self, node):
        """Evaluate an expression to a scalar Value."""
        if isinstance(node, ast.Constant):
            return self._constant(node)
        if isinstance(node, ast.Name):
            var = self.vars.get(node.id)
            if var is None:
                raise CompileError("undefined variable %r" % node.id, node)
            if isinstance(var, PtrValue):
                raise CompileError(
                    "pointer %r used as a scalar" % node.id, node)
            # Deliberately do NOT propagate compile-time constness through
            # variable reads: the value may be overwritten on a later loop
            # iteration even though the current const is still recorded.
            return Value(var.vreg, var.ty, const=None, temp=False)
        if isinstance(node, ast.Attribute):
            return self._builtin_dim(node)
        if isinstance(node, ast.BinOp):
            left = self._rvalue(node.left)
            right = self._rvalue(node.right)
            return self._binop_values(node.op, left, right, node)
        if isinstance(node, ast.UnaryOp):
            return self._unary(node)
        if isinstance(node, ast.Compare):
            return self._compare_value(node)
        if isinstance(node, ast.Subscript):
            pointer = self._pointer(node.value)
            idx = self._rvalue(node.slice)
            return self.cg.load(pointer, idx)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            return self._ifexp(node)
        if isinstance(node, ast.BoolOp):
            return self._boolop_value(node)
        raise CompileError(
            "unsupported expression %s" % type(node).__name__, node)

    def _constant(self, node):
        value = node.value
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int):
            if not -(1 << 31) <= value < (1 << 32):
                raise CompileError("integer constant out of range", node)
            vreg = self.emit_li(value)
            return Value(vreg, i32, const=value)
        if isinstance(value, float):
            vreg = self.emit_li(f32_bits(value), comment="%r" % value)
            return Value(vreg, f32)
        raise CompileError("unsupported constant %r" % (value,), node)

    def _builtin_dim(self, node):
        if not (isinstance(node.value, ast.Name)
                and node.value.id in BUILTIN_DIMS and node.attr == "x"):
            raise CompileError("unsupported attribute access", node)
        var = self.vars.get("%s.x" % node.value.id)
        if var is None:
            raise CompileError(
                "%s.x unavailable here" % node.value.id, node)
        return Value(var.vreg, var.ty, const=None, temp=False)

    def _binop_values(self, op_node, left, right, node):
        op_ast = type(op_node)
        if left.ty.is_float or right.ty.is_float:
            if not (left.ty.is_float and right.ty.is_float):
                raise CompileError(
                    "mixed int/float arithmetic needs an explicit cast", node)
            if op_ast not in _BIN_FLOAT:
                raise CompileError("unsupported float operator", node)
            rd = self.new_vreg()
            self.emit(VInstr(_BIN_FLOAT[op_ast], rd=rd, rs1=left.vreg,
                             rs2=right.vreg))
            return Value(rd, f32)
        unsigned = left.ty is u32 or right.ty is u32
        result_ty = u32 if unsigned else i32
        # Constant folding keeps addressing code tight.
        if left.const is not None and right.const is not None:
            folded = self._fold(op_ast, left.const, right.const, unsigned)
            if folded is not None:
                vreg = self.emit_li(folded)
                return Value(vreg, result_ty, const=folded)
        if op_ast in _BIN_INT:
            name, reg_op, imm_op = _BIN_INT[op_ast]
            if imm_op is not None and right.const is not None and \
                    -2048 <= right.const <= 2047 and op_ast is not ast.LShift:
                rd = self.new_vreg()
                self.emit(VInstr(imm_op, rd=rd, rs1=left.vreg,
                                 imm=right.const))
                return Value(rd, result_ty)
            if op_ast is ast.LShift and right.const is not None and \
                    0 <= right.const < 32:
                rd = self.new_vreg()
                self.emit(VInstr(Op.SLLI, rd=rd, rs1=left.vreg,
                                 imm=right.const))
                return Value(rd, result_ty)
            if op_ast is ast.Add and left.const is not None and \
                    -2048 <= left.const <= 2047:
                rd = self.new_vreg()
                self.emit(VInstr(Op.ADDI, rd=rd, rs1=right.vreg,
                                 imm=left.const))
                return Value(rd, result_ty)
            if op_ast is ast.Sub and right.const is not None and \
                    -2047 <= right.const <= 2048:
                rd = self.new_vreg()
                self.emit(VInstr(Op.ADDI, rd=rd, rs1=left.vreg,
                                 imm=-right.const))
                return Value(rd, result_ty)
            rd = self.new_vreg()
            self.emit(VInstr(reg_op, rd=rd, rs1=left.vreg, rs2=right.vreg))
            return Value(rd, result_ty)
        if op_ast is ast.RShift:
            rd = self.new_vreg()
            op = Op.SRL if unsigned else Op.SRA
            imm_op = Op.SRLI if unsigned else Op.SRAI
            if right.const is not None and 0 <= right.const < 32:
                self.emit(VInstr(imm_op, rd=rd, rs1=left.vreg,
                                 imm=right.const))
            else:
                self.emit(VInstr(op, rd=rd, rs1=left.vreg, rs2=right.vreg))
            return Value(rd, result_ty)
        if op_ast is ast.FloorDiv or op_ast is ast.Div:
            # Integer `/` is rejected to avoid Python-semantics surprises.
            if op_ast is ast.Div:
                raise CompileError(
                    "use // for integer division (or f32 operands)", node)
            rd = self.new_vreg()
            self.emit(VInstr(Op.DIVU if unsigned else Op.DIV, rd=rd,
                             rs1=left.vreg, rs2=right.vreg))
            return Value(rd, result_ty)
        if op_ast is ast.Mod:
            rd = self.new_vreg()
            self.emit(VInstr(Op.REMU if unsigned else Op.REM, rd=rd,
                             rs1=left.vreg, rs2=right.vreg))
            return Value(rd, result_ty)
        raise CompileError("unsupported operator", node)

    @staticmethod
    def _fold(op_ast, a, b, unsigned):
        mask = 0xFFFFFFFF
        try:
            if op_ast is ast.Add:
                return (a + b) & mask
            if op_ast is ast.Sub:
                return (a - b) & mask
            if op_ast is ast.Mult:
                return (a * b) & mask
            if op_ast is ast.BitAnd:
                return (a & b) & mask
            if op_ast is ast.BitOr:
                return (a | b) & mask
            if op_ast is ast.BitXor:
                return (a ^ b) & mask
            if op_ast is ast.LShift and 0 <= b < 32:
                return (a << b) & mask
            if op_ast is ast.RShift and 0 <= b < 32:
                a &= mask
                if unsigned:
                    return a >> b
                # Folded constants are stored as 32-bit patterns:
                # sign-extend before an arithmetic shift.
                if a & 0x80000000:
                    a -= 1 << 32
                return (a >> b) & mask
        except TypeError:
            return None
        return None

    def _unary(self, node):
        if isinstance(node.op, ast.USub):
            operand = self._rvalue(node.operand)
            if operand.const is not None:
                vreg = self.emit_li(-operand.const & 0xFFFFFFFF)
                return Value(vreg, operand.ty, const=-operand.const)
            rd = self.new_vreg()
            if operand.ty.is_float:
                self.emit(VInstr(Op.FSGNJN_S, rd=rd, rs1=operand.vreg,
                                 rs2=operand.vreg))
                return Value(rd, f32)
            self.emit(VInstr(Op.SUB, rd=rd, rs1=0, rs2=operand.vreg))
            return Value(rd, operand.ty)
        if isinstance(node.op, ast.Invert):
            operand = self._rvalue(node.operand)
            rd = self.new_vreg()
            self.emit(VInstr(Op.XORI, rd=rd, rs1=operand.vreg, imm=-1))
            return Value(rd, operand.ty)
        if isinstance(node.op, ast.Not):
            operand = self._rvalue(node.operand)
            rd = self.new_vreg()
            self.emit(VInstr(Op.SLTIU, rd=rd, rs1=operand.vreg, imm=1))
            return Value(rd, i32)
        if isinstance(node.op, ast.UAdd):
            return self._rvalue(node.operand)
        raise CompileError("unsupported unary operator", node)

    def _compare_value(self, node):
        """A comparison in value position (materialised 0/1)."""
        if len(node.ops) != 1:
            raise CompileError("chained comparisons unsupported", node)
        left = self._rvalue(node.left)
        right = self._rvalue(node.comparators[0])
        cmp_ast = type(node.ops[0])
        if left.ty.is_float or right.ty.is_float:
            return self._float_compare(cmp_ast, left, right, node)
        unsigned = left.ty is u32 or right.ty is u32
        slt = Op.SLTU if unsigned else Op.SLT
        rd = self.new_vreg()
        if cmp_ast is ast.Lt:
            self.emit(VInstr(slt, rd=rd, rs1=left.vreg, rs2=right.vreg))
        elif cmp_ast is ast.Gt:
            self.emit(VInstr(slt, rd=rd, rs1=right.vreg, rs2=left.vreg))
        elif cmp_ast is ast.GtE:
            self.emit(VInstr(slt, rd=rd, rs1=left.vreg, rs2=right.vreg))
            self.emit(VInstr(Op.XORI, rd=rd, rs1=rd, imm=1))
        elif cmp_ast is ast.LtE:
            self.emit(VInstr(slt, rd=rd, rs1=right.vreg, rs2=left.vreg))
            self.emit(VInstr(Op.XORI, rd=rd, rs1=rd, imm=1))
        elif cmp_ast in (ast.Eq, ast.NotEq):
            self.emit(VInstr(Op.XOR, rd=rd, rs1=left.vreg, rs2=right.vreg))
            if cmp_ast is ast.Eq:
                self.emit(VInstr(Op.SLTIU, rd=rd, rs1=rd, imm=1))
            else:
                self.emit(VInstr(Op.SLTU, rd=rd, rs1=0, rs2=rd))
        else:
            raise CompileError("unsupported comparison", node)
        return Value(rd, i32)

    def _boolop_value(self, node):
        # Evaluate as branches into a 0/1 result.
        rd = self.new_vreg()
        true_label = self.new_label("bool_t")
        join = self.new_label("bool_j")
        self._branch(node, true_label, None)
        self._move_imm(rd, 0)
        self.emit(VInstr(self.cg.jump_op, rd=0, target=join))
        self.place_label(true_label)
        self._move_imm(rd, 1)
        self.place_label(join)
        return Value(rd, i32)

    def _ifexp(self, node):
        rd = self.new_vreg()
        else_label = self.new_label("sel_else")
        join = self.new_label("sel_join")
        self._branch_false(node.test, else_label)
        self.depth += 1
        then_val = self._rvalue(node.body)
        self._move(rd, then_val.vreg)
        self.emit(VInstr(self.cg.jump_op, rd=0, target=join))
        self.depth -= 1
        self.place_label(else_label)
        self.depth += 1
        else_val = self._rvalue(node.orelse)
        if else_val.ty.is_float != then_val.ty.is_float:
            raise CompileError("ternary branches have different types", node)
        self._move(rd, else_val.vreg)
        self.depth -= 1
        self.place_label(join)
        return Value(rd, then_val.ty)

    # -- calls ---------------------------------------------------------------------

    @staticmethod
    def _call_name(node):
        if isinstance(node.func, ast.Name):
            return node.func.id
        return None

    def _call(self, node):
        name = self._call_name(node)
        if name == "atomic_add":
            return self._intrinsic_atomic_add(node)
        if name == "fsqrt":
            (arg,) = self._call_args(node, 1)
            value = self._rvalue(arg)
            rd = self.new_vreg()
            self.emit(VInstr(Op.FSQRT_S, rd=rd, rs1=value.vreg))
            return Value(rd, f32)
        if name in ("fmin_", "fmax_"):
            a_node, b_node = self._call_args(node, 2)
            a, b = self._rvalue(a_node), self._rvalue(b_node)
            rd = self.new_vreg()
            op = Op.FMIN_S if name == "fmin_" else Op.FMAX_S
            self.emit(VInstr(op, rd=rd, rs1=a.vreg, rs2=b.vreg))
            return Value(rd, f32)
        if name in ("min_", "max_"):
            return self._intrinsic_minmax(node, name == "min_")
        if name == "f32":
            (arg,) = self._call_args(node, 1)
            value = self._rvalue(arg)
            if value.ty.is_float:
                return value
            rd = self.new_vreg()
            op = Op.FCVT_S_WU if value.ty is u32 else Op.FCVT_S_W
            self.emit(VInstr(op, rd=rd, rs1=value.vreg))
            return Value(rd, f32)
        if name in ("i32", "u32"):
            (arg,) = self._call_args(node, 1)
            value = self._rvalue(arg)
            ty = u32 if name == "u32" else i32
            if not value.ty.is_float:
                return Value(value.vreg, ty, const=value.const,
                             temp=value.temp)
            rd = self.new_vreg()
            op = Op.FCVT_WU_S if name == "u32" else Op.FCVT_W_S
            self.emit(VInstr(op, rd=rd, rs1=value.vreg))
            return Value(rd, ty)
        if name == "shared":
            raise CompileError(
                "shared(...) must be assigned to a variable", node)
        raise CompileError("unknown function %r" % name, node)

    def _call_args(self, node, count):
        if len(node.args) != count or node.keywords:
            raise CompileError(
                "%s() takes exactly %d positional arguments"
                % (self._call_name(node), count), node)
        return node.args

    def _intrinsic_minmax(self, node, is_min):
        # Branch-free min/max: SIMT-friendly (no divergence).
        a_node, b_node = self._call_args(node, 2)
        a, b = self._rvalue(a_node), self._rvalue(b_node)
        if a.ty.is_float or b.ty.is_float:
            raise CompileError("use fmin_/fmax_ for floats", node)
        lt = self.new_vreg()
        self.emit(VInstr(Op.SLT, rd=lt, rs1=a.vreg, rs2=b.vreg))
        neg = self.new_vreg()
        self.emit(VInstr(Op.SUB, rd=neg, rs1=0, rs2=lt))
        diff = self.new_vreg()
        self.emit(VInstr(Op.XOR, rd=diff, rs1=a.vreg, rs2=b.vreg))
        sel = self.new_vreg()
        self.emit(VInstr(Op.AND, rd=sel, rs1=diff, rs2=neg))
        rd = self.new_vreg()
        # min: b ^ ((a^b) & -(a<b));  max: a ^ ((a^b) & -(a<b))
        other = b if is_min else a
        self.emit(VInstr(Op.XOR, rd=rd, rs1=other.vreg, rs2=sel))
        return Value(rd, i32)

    def _intrinsic_atomic_add(self, node):
        arr_node, idx_node, val_node = self._call_args(node, 3)
        pointer = self._pointer(arr_node)
        idx = self._rvalue(idx_node)
        value = self._rvalue(val_node)
        return self.cg.atomic_add(pointer, idx, value)

    def _intrinsic_shared(self, node):
        from repro.nocl.codegen import shared_alloc_layout
        ty_node, size_node = self._call_args(node, 2)
        if not (isinstance(ty_node, ast.Name)
                and ty_node.id in SCALAR_TYPES):
            raise CompileError("shared() element type must be a scalar type",
                               node)
        elem = SCALAR_TYPES[ty_node.id]
        if not (isinstance(size_node, ast.Constant)
                and isinstance(size_node.value, int)
                and size_node.value > 0):
            raise CompileError("shared() size must be a positive constant",
                               node)
        count = size_node.value
        offset, padded, self.shared_cursor = shared_alloc_layout(
            self.shared_cursor, count, elem)
        self.shared_bytes = max(self.shared_bytes, self.shared_cursor)
        # Materialise the (bounded) shared-array pointer once, in the
        # prologue, not on every block iteration.
        self._hoisting = True
        try:
            pointer = self.cg.make_shared_ptr(offset, padded, count, elem)
        finally:
            self._hoisting = False
        return pointer

    # -- pointer expressions ------------------------------------------------------

    def _is_pointer_expr(self, node):
        if isinstance(node, ast.Name):
            return isinstance(self.vars.get(node.id), PtrValue)
        if isinstance(node, ast.IfExp):
            return self._is_pointer_expr(node.body) and \
                self._is_pointer_expr(node.orelse)
        return False

    def _pointer(self, node):
        if isinstance(node, ast.Name):
            var = self.vars.get(node.id)
            if isinstance(var, PtrValue):
                return var
            raise CompileError("%r is not a pointer" % node.id, node)
        raise CompileError(
            "arrays must be referenced by name (pointer arithmetic is not "
            "part of the DSL; index the array instead)", node)
