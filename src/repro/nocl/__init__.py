"""NoCL: a CUDA-like kernel DSL, compiler, and runtime for the simulated GPU.

The paper's NoCL library lets CUDA-style compute kernels be written in
plain C++ and *simply recompiled* to get full spatial memory safety under
CHERI.  This package reproduces that workflow in Python: kernels are
written in a restricted Python subset (``threadIdx.x``/``blockIdx.x``
indexing, shared arrays, barriers, atomics) and compiled, unmodified, in
any of three modes:

- ``baseline``    — plain RV32IMA+Zfinx, raw pointers, no safety.
- ``purecap``     — pure-capability CHERI: every pointer is a bounded,
  unforgeable capability; all checks enforced in hardware.
- ``boundscheck`` — the Rust-comparison mode (paper section 4.7): raw
  pointers plus compiler-inserted per-access software bounds checks.
"""

from repro.nocl.dsl import (
    KernelSource,
    blockDim,
    blockIdx,
    f32,
    gridDim,
    i8,
    i16,
    i32,
    kernel,
    ptr,
    threadIdx,
    u8,
    u16,
    u32,
)
from repro.nocl.compiler import MODES, CompileError, compile_kernel
from repro.nocl.runtime import Buffer, NoCLRuntime

__all__ = [
    "Buffer",
    "CompileError",
    "KernelSource",
    "MODES",
    "NoCLRuntime",
    "blockDim",
    "blockIdx",
    "compile_kernel",
    "f32",
    "gridDim",
    "i16",
    "i32",
    "i8",
    "kernel",
    "ptr",
    "threadIdx",
    "u16",
    "u32",
    "u8",
]
