"""Host-side runtime: buffers, argument blocks, and kernel launches.

Mirrors the role of the NoCL host library on the paper's evaluation SoC
(Figure 9): it owns GPU memory, allocates buffers, marshals kernel
arguments, and launches kernels on the SM.  Under CHERI the runtime is
where the *only* software changes live (paper section 4.1): buffer and
stack capabilities are derived from the root with exact CHERI-Concentrate
bounds, and kernel arguments are passed as tagged capabilities in the
argument block.  Kernels themselves are identical across modes.
"""

import struct

from repro.cheri import Perms, concentrate, root_capability
from repro.cheri.revocation import Quarantine, sweep_memory
from repro.nocl.compiler import MODES, compile_kernel
from repro.nocl.dsl import ScalarType
from repro.simt import SMConfig, StreamingMultiprocessor
from repro.simt.config import (
    ARG_BASE,
    HEAP_BASE,
    MAX_BLOCK_DIM,
    SCRATCHPAD_BASE,
    STACK_BASE,
)

#: Stack frame reserve per thread (must cover regalloc's spill frame).
FRAME_RESERVE = 512


class Buffer:
    """A device buffer of ``count`` elements of scalar type ``elem``."""

    def __init__(self, addr, count, elem, padded_bytes):
        self.addr = addr
        self.count = count
        self.elem = elem
        self.padded_bytes = padded_bytes

    @property
    def nbytes(self):
        return self.count * self.elem.width

    def __repr__(self):
        return "Buffer(0x%08x, %d x %s)" % (self.addr, self.count, self.elem)


class LaunchError(Exception):
    """Invalid launch geometry or argument mismatch."""


class NoCLRuntime:
    """One simulated GPU + host runtime, fixed to one compilation mode."""

    def __init__(self, mode="baseline", config=None):
        if mode not in MODES:
            raise ValueError("unknown mode %r" % mode)
        self.mode = mode
        if config is None:
            config = (SMConfig.cheri_optimised() if mode == "purecap"
                      else SMConfig.baseline())
        if mode == "purecap" and not config.enable_cheri:
            raise ValueError("purecap mode needs a CHERI-enabled SMConfig")
        self.config = config
        #: Kernel-compiler optimization level, taken from the config so
        #: cache keys and manifests see it (see SMConfig.opt).
        self.opt = getattr(config, "opt", 0)
        self.sm = StreamingMultiprocessor(config)
        self._heap = HEAP_BASE
        self._compiled = {}
        self._root = root_capability()
        self._quarantine = Quarantine()

    # -- memory management ----------------------------------------------------

    def alloc(self, elem, count):
        """Allocate a device buffer, CHERI-aligned so its capability is exact.

        Like a CHERI-aware malloc, the base is aligned to CRAM(size) and
        the allocation padded to CRRL(size), so CSetBounds never rounds
        (paper section 2.4's representable-bounds requirement).
        """
        if not isinstance(elem, ScalarType):
            raise TypeError("alloc() needs a scalar element type")
        size = max(1, count * elem.width)
        padded = concentrate.crrl(size)
        mask = concentrate.crml(size)
        align = ((~mask & 0xFFFFFFFF) + 1) & 0xFFFFFFFF
        base = (self._heap + align - 1) & mask if align > 1 else self._heap
        base = (base + 3) & ~3  # at least word alignment
        self._heap = base + max(4, padded)
        if self._heap >= STACK_BASE:
            raise MemoryError("device heap exhausted")
        return Buffer(base, count, elem, max(4, padded))

    def free(self, buffer):
        """Free a buffer into quarantine (temporal safety, section 2.4).

        The address range is not reused until :meth:`revoke` has swept
        away every capability still pointing at it.
        """
        self._quarantine.add(buffer.addr, buffer.addr + buffer.padded_bytes)

    def revoke(self):
        """Run a Cornucopia-style revocation sweep over device memory.

        Clears the tag of every stored capability whose bounds overlap a
        quarantined region; subsequent use traps as a tag violation.
        Returns the number of capabilities revoked.
        """
        revoked = sweep_memory(self.sm.memory, self._quarantine)
        self._quarantine.drain()
        return revoked

    def upload(self, buffer, values):
        """Copy host values into a device buffer."""
        if len(values) > buffer.count:
            raise ValueError("too many values for buffer")
        raw = bytearray(((len(values) * buffer.elem.width + 3) // 4) * 4)
        fmt = self._pack_format(buffer.elem)
        for i, value in enumerate(values):
            struct.pack_into(fmt, raw, i * buffer.elem.width,
                             self._to_wire(buffer.elem, value))
        words = [int.from_bytes(raw[i:i + 4], "little")
                 for i in range(0, len(raw), 4)]
        self.sm.memory.write_block_words(buffer.addr, words)

    def download(self, buffer, count=None):
        """Copy a device buffer back to host values."""
        count = buffer.count if count is None else count
        nbytes = count * buffer.elem.width
        words = self.sm.memory.read_block_words(buffer.addr,
                                                (nbytes + 3) // 4)
        raw = b"".join(word.to_bytes(4, "little") for word in words)
        fmt = self._pack_format(buffer.elem)
        out = []
        for i in range(count):
            (value,) = struct.unpack_from(fmt, raw, i * buffer.elem.width)
            out.append(value)
        return out

    @staticmethod
    def _pack_format(elem):
        if elem.is_float:
            return "<f"
        return {
            (1, True): "<b", (1, False): "<B",
            (2, True): "<h", (2, False): "<H",
            (4, True): "<i", (4, False): "<I",
        }[(elem.width, elem.signed)]

    @staticmethod
    def _to_wire(elem, value):
        if elem.is_float:
            return float(value)
        bits = 8 * elem.width
        value = int(value) & ((1 << bits) - 1)
        if elem.signed and value >= (1 << (bits - 1)):
            value -= 1 << bits
        return value

    # -- kernel compilation -----------------------------------------------------

    def compiled(self, kernel_src):
        key = id(kernel_src)
        if key not in self._compiled:
            self._compiled[key] = compile_kernel(kernel_src, self.mode,
                                                 opt=self.opt)
        return self._compiled[key]

    # -- launching -----------------------------------------------------------------

    def launch(self, kernel_src, grid_dim, block_dim, args):
        """Run ``kernel_src`` over a 1-D grid; returns the SM stats."""
        program = self.compiled(kernel_src)
        cfg = self.config
        if block_dim <= 0 or grid_dim <= 0:
            raise LaunchError("grid and block dimensions must be positive")
        if grid_dim > 0x7FFFFFFF:
            # The optimizer's range analysis assumes the launch-geometry
            # header words are positive signed 32-bit values.
            raise LaunchError("gridDim must fit in a signed 32-bit int")
        if block_dim > MAX_BLOCK_DIM:
            # The CUDA blockDim limit; also a compiler assumption (the
            # range analysis bounds threadIdx.x by it).
            raise LaunchError("blockDim is capped at %d threads per block"
                              % MAX_BLOCK_DIM)
        if block_dim % cfg.num_lanes:
            raise LaunchError("blockDim must be a multiple of the warp size "
                              "(%d)" % cfg.num_lanes)
        if block_dim > cfg.num_threads or cfg.num_threads % block_dim:
            raise LaunchError("blockDim must divide the %d hardware threads"
                              % cfg.num_threads)
        if program.shared_bytes > cfg.scratchpad_bytes:
            raise LaunchError("kernel needs %d bytes of shared memory, SM "
                              "has %d" % (program.shared_bytes,
                                          cfg.scratchpad_bytes))
        if len(args) != len(program.arg_slots):
            raise LaunchError("kernel %s expects %d arguments, got %d"
                              % (program.name, len(program.arg_slots),
                                 len(args)))
        num_slots = cfg.num_threads // block_dim
        self._write_arg_block(program, grid_dim, block_dim, args)
        init_regs, init_caps = self._initial_registers(
            program, block_dim, num_slots)
        pcc = self._kernel_pcc(program)
        # Side-band for the profiler: which compiled kernel is running
        # (source text + line table); never read by the simulation itself.
        self.sm.kernel_info = program
        return self.sm.launch(
            program.instrs,
            init_regs=init_regs,
            init_cap_regs=init_caps,
            warps_per_block=block_dim // cfg.num_lanes,
            kernel_pcc=pcc,
        )

    def _write_arg_block(self, program, grid_dim, block_dim, args):
        from repro.nocl.codegen import HDR_BLOCK_DIM, HDR_GRID_DIM
        mem = self.sm.memory
        mem.write(ARG_BASE + HDR_GRID_DIM, 4, grid_dim)
        mem.write(ARG_BASE + HDR_BLOCK_DIM, 4, block_dim)
        for slot, arg in zip(program.arg_slots, args):
            addr = ARG_BASE + slot.offset
            if slot.is_pointer:
                if not isinstance(arg, Buffer):
                    raise LaunchError("argument %r must be a Buffer"
                                      % slot.name)
                if self.mode == "purecap":
                    cap, exact = self._root.set_bounds(arg.addr,
                                                       arg.padded_bytes)
                    assert exact and cap.tag, "allocator guarantees exactness"
                    cap = cap.and_perms(Perms.GLOBAL | Perms.LOAD
                                        | Perms.STORE | Perms.LOAD_CAP
                                        | Perms.STORE_CAP)
                    mem.write_cap_raw(addr, cap.to_mem() & ((1 << 64) - 1),
                                      True)
                elif self.mode == "boundscheck":
                    mem.write(addr, 4, arg.addr)
                    mem.write(addr + 4, 4, arg.count)  # length in elements
                else:
                    mem.write(addr, 4, arg.addr)
            else:
                if isinstance(arg, Buffer):
                    raise LaunchError("argument %r must be a scalar"
                                      % slot.name)
                if isinstance(arg, float):
                    word = struct.unpack("<I", struct.pack("<f", arg))[0]
                else:
                    word = int(arg) & 0xFFFFFFFF
                mem.write(addr, 4, word)

    def _initial_registers(self, program, block_dim, num_slots,
                           slot_offset=0, scratch_base=SCRATCHPAD_BASE,
                           stack_base=STACK_BASE):
        """Per-thread launch registers.

        ``slot_offset``/``scratch_base``/``stack_base`` let a multi-SM
        runtime give each SM its own block slots, scratchpad window, and
        stack window.
        """
        from repro.nocl.codegen import (
            REG_ARG,
            REG_BLK0,
            REG_NSLOT,
            REG_SCRATCH,
            REG_SP,
            REG_TID,
        )
        cfg = self.config
        tids = list(range(cfg.num_threads))
        stack_size = cfg.stack_bytes_per_thread
        sp_addrs = [
            stack_base + (t + 1) * stack_size - FRAME_RESERVE for t in tids
        ]
        init_regs = {
            REG_TID: [t % block_dim for t in tids],
            REG_BLK0: [t // block_dim + slot_offset for t in tids],
            REG_NSLOT: [num_slots] * len(tids),
        }
        init_caps = {}
        if self.mode == "purecap":
            data_perms = (Perms.GLOBAL | Perms.LOAD | Perms.STORE
                          | Perms.LOAD_CAP | Perms.STORE_CAP)
            arg_cap, _ = self._root.set_bounds(ARG_BASE,
                                               program.arg_block_bytes)
            init_caps[REG_ARG] = arg_cap.and_perms(
                Perms.GLOBAL | Perms.LOAD | Perms.LOAD_CAP)
            scratch_cap, _ = self._root.set_bounds(scratch_base,
                                                   cfg.scratchpad_bytes)
            init_caps[REG_SCRATCH] = scratch_cap.and_perms(data_perms)
            # One capability bounds the whole stack region; threads differ
            # only in their addresses.  This mirrors NoCL's stack-bounds
            # setup (paper section 4.1) and keeps the stack capability's
            # metadata *uniform* across a warp — per-thread bounds would
            # put one divergent metadata vector per warp in the VRF
            # forever.
            region, _ = self._root.set_bounds(
                stack_base, len(tids) * stack_size)
            region = region.and_perms(data_perms)
            init_caps[REG_SP] = [region.set_addr(sp_addrs[t]) for t in tids]
        else:
            init_regs[REG_ARG] = [ARG_BASE] * len(tids)
            init_regs[REG_SCRATCH] = [scratch_base] * len(tids)
            init_regs[REG_SP] = sp_addrs
        return init_regs, init_caps

    def _kernel_pcc(self, program):
        if self.mode != "purecap":
            return None
        code_bytes = 4 * len(program.instrs)
        pcc, _ = self._root.set_bounds(0, concentrate.crrl(code_bytes))
        return pcc.and_perms(Perms.GLOBAL | Perms.EXECUTE | Perms.LOAD)

    @property
    def stats(self):
        return self.sm.stats
