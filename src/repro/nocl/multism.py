"""Multi-SM execution: projecting beyond the paper's single-SM limit.

SIMTight supports only a single streaming multiprocessor (paper section
2.3), and the paper argues (section 4.4) that the CHERI overheads it
reports would carry over to a multi-SM design because the memory
subsystem's behaviour is essentially unchanged by CHERI.  This runtime
lets that projection be tested in simulation: ``num_sms`` SMs share one
tagged main memory, each with a private scratchpad window and stack
region, and the grid's block slots are partitioned across them (a thread
block never spans SMs, so barrier semantics are unchanged).

Timing is a projection, not a cycle-true interconnect model: each SM runs
against its own DRAM channel; the aggregate reports the slowest SM's
cycle count and the summed traffic.
"""

from dataclasses import dataclass, field
from typing import List

from repro.nocl.runtime import LaunchError, NoCLRuntime
from repro.simt import SMStats, StreamingMultiprocessor
from repro.simt.config import SCRATCHPAD_BASE, STACK_BASE


@dataclass
class MultiSMStats:
    """Aggregate of one multi-SM launch."""

    per_sm: List[SMStats] = field(default_factory=list)

    @property
    def cycles(self):
        return max((s.cycles for s in self.per_sm), default=0)

    @property
    def instrs_issued(self):
        return sum(s.instrs_issued for s in self.per_sm)

    @property
    def dram_total_bytes(self):
        return sum(s.dram_total_bytes for s in self.per_sm)


class MultiSMRuntime(NoCLRuntime):
    """A GPU with several SMs over one shared global memory."""

    def __init__(self, mode="baseline", num_sms=2, config=None):
        super().__init__(mode, config=config)
        if num_sms < 1:
            raise ValueError("need at least one SM")
        self.num_sms = num_sms
        self.sms = [self.sm]
        for index in range(1, num_sms):
            self.sms.append(StreamingMultiprocessor(
                self.config,
                memory=self.sm.memory,
                scratchpad_base=self._scratch_base(index),
            ))

    def _scratch_base(self, index):
        return SCRATCHPAD_BASE + index * self.config.scratchpad_bytes

    def _stack_base(self, index):
        return STACK_BASE + index * (self.config.num_threads
                                     * self.config.stack_bytes_per_thread)

    def launch(self, kernel_src, grid_dim, block_dim, args):
        """Run the grid across all SMs; returns :class:`MultiSMStats`."""
        program = self.compiled(kernel_src)
        cfg = self.config
        if block_dim % cfg.num_lanes or block_dim > cfg.num_threads or \
                cfg.num_threads % block_dim:
            raise LaunchError("blockDim must be a warp multiple dividing "
                              "each SM's %d threads" % cfg.num_threads)
        if len(args) != len(program.arg_slots):
            raise LaunchError("kernel %s expects %d arguments, got %d"
                              % (program.name, len(program.arg_slots),
                                 len(args)))
        slots_per_sm = cfg.num_threads // block_dim
        total_slots = slots_per_sm * self.num_sms
        self._write_arg_block(program, grid_dim, block_dim, args)
        pcc = self._kernel_pcc(program)
        aggregate = MultiSMStats()
        for index, sm in enumerate(self.sms):
            init_regs, init_caps = self._initial_registers(
                program, block_dim, total_slots,
                slot_offset=index * slots_per_sm,
                scratch_base=self._scratch_base(index),
                stack_base=self._stack_base(index),
            )
            sm.launch(
                program.instrs,
                init_regs=init_regs,
                init_cap_regs=init_caps,
                warps_per_block=block_dim // cfg.num_lanes,
                kernel_pcc=pcc,
            )
            aggregate.per_sm.append(sm.stats)
        return aggregate
