"""Compiler driver: kernel source -> executable program, per mode.

Builds the generated prologue (launch-geometry loads, argument loads, the
NoCL block loop that iterates a hardware thread over grid blocks), compiles
the kernel body through the frontend, register-allocates, and assembles to
the final instruction list.  The result also carries the argument-block
layout contract the runtime must honour.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isa.instructions import Instr, Op
from repro.nocl.codegen import (
    ARGS_OFFSET,
    BOUNDS_CHECK_COMMENT,
    CODEGENS,
    HDR_BLOCK_DIM,
    HDR_GRID_DIM,
    REG_BLK0,
    REG_NSLOT,
    Value,
)
from repro.nocl.dsl import KernelSource, i32
from repro.nocl.frontend import CompileError, Frontend  # noqa: F401
from repro.nocl.ir import VInstr, assemble
from repro.nocl.regalloc import allocate

#: The three compilation modes of the evaluation (paper sections 4.1, 4.7).
MODES = ("baseline", "purecap", "boundscheck")


@dataclass
class ArgSlot:
    """Where one kernel argument lives in the argument block."""

    name: str
    offset: int
    is_pointer: bool
    elem_width: int = 4


@dataclass
class CompiledKernel:
    """A ready-to-launch program plus its runtime contract."""

    name: str
    mode: str
    instrs: List[Instr]
    arg_slots: List[ArgSlot]
    arg_block_bytes: int
    shared_bytes: int
    uses_barrier: bool
    frame_bytes: int
    #: Dedented DSL source; ``Instr.line`` values are 1-based indices
    #: into its lines (profiler side-band, not part of the binary).
    source_text: str = ""
    #: Optimization level the kernel was compiled at (0 = none).
    opt: int = 0
    #: Per-pass report from the ``-O1`` pipeline (None at ``-O0``).
    opt_report: Optional[dict] = None
    #: PCs of surviving software bounds-check guards (boundscheck mode);
    #: the dynamic-check probe counts issue slots at these addresses.
    bounds_check_pcs: Tuple[int, ...] = ()

    @property
    def uses_cheri(self):
        return self.mode == "purecap"

    def line_text(self, line):
        """The source text of 1-based ``line`` (empty when unknown)."""
        if not line or not self.source_text:
            return ""
        lines = self.source_text.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def listing(self):
        from repro.isa.disasm import format_program
        return format_program(self.instrs)

    def to_binary(self):
        """Encode the program to its 32-bit instruction words (TCIM image)."""
        from repro.isa.encoding import encode
        return [encode(instr) for instr in self.instrs]

    def from_binary_roundtrip(self):
        """Decode the TCIM image back; convergence depths re-attached.

        The depth metadata used by active-thread selection is compiler
        side-band information (like SIMTight's convergence hints), not an
        encoded field, so it is carried over by program position.
        """
        from repro.isa.encoding import decode
        decoded = [
            decode(word, cheri_mode=self.uses_cheri).with_depth(orig.depth)
            for word, orig in zip(self.to_binary(), self.instrs)
        ]
        return decoded


def _layout_args(source, cg_cls):
    """Assign argument-block offsets according to the mode's slot sizes."""
    slots = []
    offset = ARGS_OFFSET
    for param in source.params:
        if param.is_pointer:
            size = cg_cls.pointer_arg_slot_bytes
            offset = (offset + size - 1) & ~(size - 1)
            slots.append(ArgSlot(param.name, offset, True,
                                 param.ty.elem.width))
        else:
            size = cg_cls.scalar_arg_slot_bytes
            offset = (offset + size - 1) & ~(size - 1)
            slots.append(ArgSlot(param.name, offset, False))
        offset += size
    return slots, offset


def compile_kernel(source, mode, opt=0):
    """Compile a :class:`KernelSource` for one of the three MODES.

    ``opt`` selects the optimization level: 0 (default) is the direct
    frontend output — byte-identical to the historical compiler — and 1
    runs the :mod:`repro.nocl.opt` pass pipeline between the frontend
    and register allocation.
    """
    if not isinstance(source, KernelSource):
        raise TypeError("expected a @kernel function, got %r" % (source,))
    if mode not in MODES:
        raise ValueError("unknown mode %r (expected one of %s)"
                         % (mode, ", ".join(MODES)))
    from repro.nocl.opt import OPT_LEVELS
    if opt not in OPT_LEVELS:
        raise ValueError("unknown opt level %r (expected one of %s)"
                         % (opt, OPT_LEVELS))
    cg_cls = CODEGENS[mode]
    fe = Frontend(source, cg_cls)
    arg_slots, arg_block_bytes = _layout_args(source, cg_cls)

    # --- prologue: launch geometry + kernel arguments -----------------------
    grid_dim = fe.cg.load_header_word(HDR_GRID_DIM, "gridDim.x")
    block_dim = fe.cg.load_header_word(HDR_BLOCK_DIM, "blockDim.x")
    builtins = {
        "gridDim.x": grid_dim,
        "blockDim.x": block_dim,
    }
    from repro.nocl.codegen import REG_TID
    builtins["threadIdx.x"] = Value(REG_TID, i32, temp=False)

    for param, slot in zip(source.params, arg_slots):
        if param.is_pointer:
            builtins[param.name] = fe.cg.load_ptr_arg(
                slot.offset, param.ty.elem, param.name)
        else:
            builtins[param.name] = fe.cg.load_scalar_arg(
                slot.offset, param.ty, param.name)

    # --- the NoCL block loop: each hardware-thread slot walks the grid ------
    blk = Value(fe.new_vreg(), i32, temp=False)
    builtins["blockIdx.x"] = blk
    fe.emit(VInstr(Op.ADDI, rd=blk.vreg, rs1=REG_BLK0, imm=0,
                   comment="blockIdx = first block of slot"))
    hoist_index = len(fe.items)
    loop = fe.new_label("blocks")
    block_continue = fe.new_label("block_next")
    done = fe.new_label("grid_done")
    span_start = len(fe.items)
    fe.place_label(loop)
    fe.emit(VInstr(Op.BGE, rs1=blk.vreg, rs2=grid_dim.vreg, target=done,
                   comment="all blocks done?"))
    fe.depth += 1
    fe.compile_body(builtins, block_continue)
    fe.place_label(block_continue)
    fe.emit(VInstr(Op.ADD, rd=blk.vreg, rs1=blk.vreg, rs2=REG_NSLOT,
                   comment="next block for this slot"))
    fe.emit(VInstr(fe.cg.jump_op, rd=0, target=loop))
    fe.depth -= 1
    fe.place_label(done)
    fe.emit(VInstr(Op.HALT))
    fe.loop_spans.append((span_start, len(fe.items)))

    # Splice hoisted shared-array setup into the prologue, shifting the
    # recorded loop spans to match.
    if fe.hoisted:
        count = len(fe.hoisted)
        fe.items[hoist_index:hoist_index] = fe.hoisted
        fe.loop_spans = [
            (start + count if start >= hoist_index else start,
             end + count if end >= hoist_index else end)
            for start, end in fe.loop_spans
        ]

    # --- allocate and assemble ------------------------------------------------
    var_vregs = set(fe.var_vregs)
    from repro.nocl.codegen import PtrValue
    from repro.nocl.ir import FIRST_VREG
    for value in fe.vars.values():
        if isinstance(value, PtrValue):
            if value.vreg >= FIRST_VREG:
                var_vregs.add(value.vreg)
            if value.len_vreg is not None and value.len_vreg >= FIRST_VREG:
                var_vregs.add(value.len_vreg)
        else:
            if value.vreg >= FIRST_VREG:
                var_vregs.add(value.vreg)

    # --- optimize (the -O0 path must not touch the frontend output) ---------
    vitems, loop_spans = fe.items, fe.loop_spans
    opt_report = None
    if opt:
        from repro.nocl.opt import optimize
        vitems, loop_spans, var_vregs, report = optimize(
            vitems, loop_spans, var_vregs, opt,
            cap_spills=(mode == "purecap"))
        opt_report = report.as_dict()

    items, frame_bytes = allocate(
        vitems, loop_spans, var_vregs,
        cap_spills=(mode == "purecap"))
    instrs = assemble(items)
    bounds_check_pcs = tuple(
        4 * i for i, instr in enumerate(instrs)
        if instr.comment == BOUNDS_CHECK_COMMENT)
    return CompiledKernel(
        name=source.name,
        mode=mode,
        instrs=instrs,
        arg_slots=arg_slots,
        arg_block_bytes=arg_block_bytes,
        shared_bytes=fe.shared_bytes,
        uses_barrier=fe.uses_barrier,
        frame_bytes=frame_bytes,
        source_text=getattr(source, "source_text", ""),
        opt=opt,
        opt_report=opt_report,
        bounds_check_pcs=bounds_check_pcs,
    )
