"""Register allocation: linear scan over virtual-register assembly.

Liveness is computed on the linear instruction stream with a loop-span
correction: virtual registers that back *named kernel variables* (which may
be live across a loop's back edge) have their intervals widened to every
loop span they are accessed in.  Expression temporaries are strictly
def-then-use and need no widening.

When demand exceeds the 22 freely-allocatable physical registers, the
interval ending furthest away is spilled to the per-thread stack.  In
pure-capability mode spill slots are capability-sized and use CSC/CLC (the
stack pointer itself is a bounded capability), which is exactly the
compiler-inserted register-spill traffic the paper discusses in section
4.4.  A dead-code pass removes value-producing instructions whose results
are never read (e.g. constants folded into immediates).
"""

from repro.isa.instructions import FLOAT_OPS, Op
from repro.nocl.ir import FIRST_VREG, VInstr, VLabel, VLoadImm

#: Physical registers free for allocation (see codegen for reservations):
#: everything except zero/ra/sp/gp/tp, a0-a2, and the two spill scratches.
ALLOCATABLE = tuple(
    r for r in range(5, 30) if r not in (10, 11, 12)
)
SCRATCH_A = 30  # t5
SCRATCH_B = 31  # t6

_PURE_OPS = frozenset({
    Op.ADD, Op.SUB, Op.SLL, Op.SRL, Op.SRA, Op.XOR, Op.OR, Op.AND,
    Op.SLT, Op.SLTU, Op.MUL, Op.MULH, Op.MULHSU, Op.MULHU,
    Op.ADDI, Op.SLTI, Op.SLTIU, Op.XORI, Op.ORI, Op.ANDI,
    Op.SLLI, Op.SRLI, Op.SRAI, Op.LUI,
}) | FLOAT_OPS


class AllocationError(Exception):
    """Raised when a kernel cannot be register-allocated (frame overflow)."""


def eliminate_dead_code(items):
    """Drop pure instructions whose virtual results are never read."""
    items = list(items)
    changed = True
    while changed:
        changed = False
        used = set()
        for item in items:
            if isinstance(item, VLabel):
                continue
            for reg in item.regs_read():
                used.add(reg)
        kept = []
        for item in items:
            removable = False
            if isinstance(item, VLoadImm):
                removable = item.rd >= FIRST_VREG and item.rd not in used
            elif isinstance(item, VInstr) and item.op in _PURE_OPS:
                removable = (item.rd is not None and item.rd >= FIRST_VREG
                             and item.rd not in used)
            if removable:
                changed = True
            else:
                kept.append(item)
        items = kept
    return items


def _intervals(items, loop_spans, var_vregs):
    starts, ends = {}, {}
    for index, item in enumerate(items):
        if isinstance(item, VLabel):
            continue
        for reg in item.regs_read() + item.regs_written():
            if reg < FIRST_VREG:
                continue
            starts.setdefault(reg, index)
            ends[reg] = index
    # Widen named variables across the loops they participate in: their
    # values may flow around back edges.  Iterate to a fixpoint because an
    # extension can create a new overlap with an enclosing span.
    changed = True
    while changed:
        changed = False
        for span_start, span_end in loop_spans:
            for reg in var_vregs:
                if reg not in starts:
                    continue
                overlaps = not (ends[reg] < span_start
                                or starts[reg] > span_end)
                if overlaps and (starts[reg] > span_start
                                 or ends[reg] < span_end):
                    starts[reg] = min(starts[reg], span_start)
                    ends[reg] = max(ends[reg], span_end)
                    changed = True
    return starts, ends


def allocate(items, loop_spans, var_vregs, cap_spills, frame_bytes=512):
    """Map virtual registers to physical ones; spill what does not fit.

    ``cap_spills`` selects capability-sized spill slots via CSC/CLC
    (purecap) versus word slots via SW/LW.  Returns (items, frame_used).
    """
    items = eliminate_dead_code(items)
    starts, ends = _intervals(items, loop_spans, var_vregs)
    order = sorted(starts, key=lambda r: (starts[r], ends[r]))

    assignment = {}
    spilled = {}
    free = list(reversed(ALLOCATABLE))
    active = []  # (end, vreg, phys)
    slot_size = 8 if cap_spills else 4
    next_slot = 0

    def expire(now):
        nonlocal active
        keep = []
        for end, vreg, phys in active:
            if end < now:
                free.append(phys)
            else:
                keep.append((end, vreg, phys))
        active = keep

    for vreg in order:
        expire(starts[vreg])
        if free:
            phys = free.pop()
            assignment[vreg] = phys
            active.append((ends[vreg], vreg, phys))
            continue
        # Spill the interval that ends furthest in the future.
        active.sort()
        furthest_end, victim, victim_phys = active[-1]
        if furthest_end > ends[vreg]:
            active.pop()
            spilled[victim] = next_slot
            del assignment[victim]
            assignment[vreg] = victim_phys
            active.append((ends[vreg], vreg, victim_phys))
        else:
            spilled[vreg] = next_slot
        next_slot += slot_size
        if next_slot > frame_bytes:
            raise AllocationError("spill frame exceeds %d bytes" % frame_bytes)

    return _rewrite(items, assignment, spilled, cap_spills), next_slot


def _rewrite(items, assignment, spilled, cap_spills):
    load_op = Op.CLC if cap_spills else Op.LW
    store_op = Op.CSC if cap_spills else Op.SW
    sp = 2
    out = []
    for item in items:
        if isinstance(item, VLabel):
            out.append(item)
            continue
        if isinstance(item, VLoadImm):
            rd, post = _map_write(item.rd, assignment, spilled)
            out.append(VLoadImm(rd, item.value, depth=item.depth,
                                comment=item.comment, line=item.line))
            _emit_spill_store(out, post, store_op, sp, item.depth,
                              item.line)
            continue
        rs1, rs2 = item.rs1, item.rs2
        scratch_cycle = [SCRATCH_A, SCRATCH_B]
        if rs1 is not None and rs1 >= FIRST_VREG:
            if rs1 in spilled:
                scratch = scratch_cycle.pop(0)
                out.append(VInstr(load_op, rd=scratch, rs1=sp,
                                  imm=spilled[rs1], depth=item.depth,
                                  comment="reload", line=item.line))
                rs1 = scratch
            else:
                rs1 = assignment[rs1]
        if rs2 is not None and rs2 >= FIRST_VREG:
            if rs2 in spilled:
                scratch = scratch_cycle.pop(0)
                out.append(VInstr(load_op, rd=scratch, rs1=sp,
                                  imm=spilled[rs2], depth=item.depth,
                                  comment="reload", line=item.line))
                rs2 = scratch
            else:
                rs2 = assignment[rs2]
        rd, post = _map_write(item.rd, assignment, spilled)
        out.append(VInstr(item.op, rd=rd, rs1=rs1, rs2=rs2, imm=item.imm,
                          target=item.target, depth=item.depth,
                          comment=item.comment, line=item.line))
        _emit_spill_store(out, post, store_op, sp, item.depth, item.line)
    return out


def _map_write(rd, assignment, spilled):
    """Map a destination; returns (phys_rd, spill_slot_or_None)."""
    if rd is None or rd < FIRST_VREG:
        return rd, None
    if rd in spilled:
        return SCRATCH_A, spilled[rd]
    return assignment[rd], None


def _emit_spill_store(out, slot, store_op, sp, depth, line=None):
    if slot is not None:
        out.append(VInstr(store_op, rs1=sp, rs2=SCRATCH_A, imm=slot,
                          depth=depth, comment="spill", line=line))
