"""Pass manager: opt levels, pass ordering, and the per-pass report.

``optimize`` is the single entry point :func:`repro.nocl.compiler
.compile_kernel` calls between the frontend and register allocation.
At ``-O0`` it is the identity (the caller skips it entirely); at
``-O1`` it runs

    [licm, cse, strength] x 2  ->  bounds-check elim  ->  dce

— two rounds of the enabling passes because CSE merging the length
constants of two arrays can make a bounds check of one array dominate
the other's, and LICM exposes CSE opportunities across iterations.

After the passes the linear item order has changed, so the loop
metadata the register allocator depends on is *recomputed from the
optimized CFG*: loop spans become the item ranges of the natural loops,
and any virtual register now defined before a loop but read inside it
(a hoisted or merged value, live across the back edge) joins
``var_vregs`` so linear-scan interval widening keeps it alive.
"""

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.nocl.ir import FIRST_VREG, VLabel
from repro.nocl.opt.cfg import CFGError, build_cfg
from repro.nocl.opt import passes as P

#: Supported optimization levels.
OPT_LEVELS = (0, 1)


@dataclass
class OptReport:
    """What the pipeline did to one kernel, per pass."""

    level: int
    items_before: int = 0
    items_after: int = 0
    #: pass name -> count of instructions hoisted/removed/rewritten
    passes: Dict[str, int] = field(default_factory=dict)
    #: bounds checks removed, split by proof obligation
    bounds_dominated: int = 0
    bounds_range_proved: int = 0

    def bump(self, name, count):
        if count:
            self.passes[name] = self.passes.get(name, 0) + count

    def total_changes(self):
        return sum(self.passes.values())

    def as_dict(self):
        return {
            "level": self.level,
            "items_before": self.items_before,
            "items_after": self.items_after,
            "passes": dict(sorted(self.passes.items())),
            "bounds_dominated": self.bounds_dominated,
            "bounds_range_proved": self.bounds_range_proved,
        }


#: LICM pressure-target backoff ladder: each rung hoists less; the last
#: rung also disables CSE (which can stretch live ranges across loops).
_BACKOFF = (
    (P._PRESSURE_TARGET, True),
    (8, True),
    (4, True),
    (0, True),
    (0, False),
)


def optimize(items, loop_spans, var_vregs, level, cap_spills=False):
    """Run the ``-O<level>`` pipeline over the frontend's item list.

    Returns ``(items, loop_spans, var_vregs, report)``.  ``level`` 0
    returns its inputs untouched (the compiler short-circuits before
    calling here, but the contract holds regardless).

    Spill-aware backoff: hoisting and expression merging lengthen live
    ranges, and one register spilled inside a hot loop (a DRAM round
    trip per iteration with the stack cache off) costs more than any
    recomputation saves.  The pipeline therefore trial-allocates its
    output and retries with a lower LICM pressure target (finally
    without CSE) until the loop-depth-weighted spill cost is no worse
    than the unoptimized program's; if even the tamest attempt spills
    more, the kernel is left untouched.  ``cap_spills`` mirrors the
    compile mode's spill width so the trial matches the real
    allocation.
    """
    if level not in OPT_LEVELS:
        raise ValueError("unsupported opt level %r (expected one of %s)"
                         % (level, OPT_LEVELS))
    report = OptReport(level=level, items_before=len(items),
                       items_after=len(items))
    if level == 0:
        return items, loop_spans, var_vregs, report
    try:
        build_cfg(items)
    except CFGError:
        # Un-analyzable IR (indirect control flow): refuse to optimize.
        return items, loop_spans, var_vregs, report

    base_cost = _trial_spill_cost(items, loop_spans, var_vregs, cap_spills)
    for licm_target, enable_cse in _BACKOFF:
        attempt = OptReport(level=level, items_before=len(items))
        out = _run_passes(copy.deepcopy(items), attempt, licm_target,
                          enable_cse)
        out_spans, out_vregs = _recompute_loop_metadata(out, var_vregs)
        cost = _trial_spill_cost(out, out_spans, out_vregs, cap_spills)
        if cost > base_cost:
            continue
        attempt.items_after = len(out)
        return out, out_spans, out_vregs, attempt
    return items, loop_spans, var_vregs, report


def _run_passes(items, report, licm_target, enable_cse):
    for _ in range(2):
        items, hoisted = P.licm(items, pressure_target=licm_target)
        report.bump("licm", hoisted)
        if enable_cse:
            items, merged = P.cse(items)
            report.bump("cse", merged)
        items, reduced = P.strength_reduce(items)
        report.bump("strength", reduced)
    items, dominated, proved = P.eliminate_bounds_checks(items)
    report.bump("boundscheck", (dominated + proved) * 3)
    report.bounds_dominated = dominated
    report.bounds_range_proved = proved
    items, dead = P.dce(items)
    report.bump("dce", dead)
    return items


def _trial_spill_cost(items, loop_spans, var_vregs, cap_spills):
    """Loop-depth-weighted spill cost of a trial allocation of ``items``.

    Equal frame sizes can hide very different runtimes: a slot spilled
    once in the prologue is ~free, the same slot reloaded every
    iteration of an inner loop is a DRAM round trip per trip.  Each
    spill store / reload therefore counts ``64**depth`` (a stand-in
    for expected trip count), and the frame size only breaks ties.
    """
    from repro.nocl.regalloc import AllocationError, allocate
    try:
        allocated, frame = allocate(copy.deepcopy(items), list(loop_spans),
                                    set(var_vregs), cap_spills=cap_spills)
    except AllocationError:
        return (float("inf"), float("inf"))
    weighted = sum(64 ** min(item.depth, 4)
                   for item in allocated
                   if not isinstance(item, VLabel)
                   and item.comment in ("spill", "reload"))
    return (weighted, frame)


def _recompute_loop_metadata(items, var_vregs):
    """Loop spans + back-edge-live vregs for the optimized item order."""
    cfg = build_cfg(items)
    spans: List[Tuple[int, int]] = []
    for _header, body in cfg.loops:
        spans.append(cfg.loop_item_span(body))
    spans.sort()

    var_vregs = set(var_vregs)
    first_def: Dict[int, int] = {}
    for i, item in enumerate(items):
        if isinstance(item, VLabel):
            continue
        for reg in item.regs_written():
            if reg >= FIRST_VREG:
                first_def.setdefault(reg, i)
    for start, end in spans:
        for i in range(start, end):
            item = items[i]
            if isinstance(item, VLabel):
                continue
            for reg in item.regs_read():
                if reg >= FIRST_VREG and first_def.get(reg, start) < start:
                    # Defined before the loop, read inside it: the value
                    # must survive the back edge.
                    var_vregs.add(reg)
    return spans, var_vregs
