"""Classic dataflow analyses over the :class:`~repro.nocl.opt.cfg.CFG`.

Three analyses, each a textbook fixpoint over block-level transfer
functions:

- :class:`ReachingDefs` — which definition sites (item indices) can
  reach each block entry.  May-analysis, union meet.
- :class:`Liveness` — which registers are live at block boundaries.
  Backward may-analysis; drives the ``-O1`` dead-code pass, which is
  strictly stronger than the allocator's "never read anywhere" sweep.
- :class:`AvailableChecks` — which ``(index, length)`` register pairs
  have been bounds-checked on *every* path with no intervening
  redefinition.  Must-analysis, intersection meet; drives redundant
  bounds-check elimination in ``boundscheck`` mode.

Register 0 is the RISC-V zero register: writes to it are discarded by
hardware, so it is never treated as a definition.
"""

from typing import Dict, List, Set, Tuple

from repro.nocl.ir import VLabel


def _defined_reg(item):
    """The register ``item`` defines, or None (labels, stores, x0)."""
    if isinstance(item, VLabel):
        return None
    written = item.regs_written()
    if not written or written[0] == 0:
        return None
    return written[0]


def def_sites(items) -> Dict[int, List[int]]:
    """Map register -> ordered item indices that define it."""
    sites: Dict[int, List[int]] = {}
    for i, item in enumerate(items):
        reg = _defined_reg(item)
        if reg is not None:
            sites.setdefault(reg, []).append(i)
    return sites


class ReachingDefs:
    """Reaching definitions: sets of defining item indices per block."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.sites = def_sites(cfg.items)
        self.block_in: Dict[int, Set[int]] = {}
        self.block_out: Dict[int, Set[int]] = {}
        self._run()

    def _gen_kill(self, block):
        gen: Set[int] = set()
        kill: Set[int] = set()
        for i in block.item_indices():
            reg = _defined_reg(self.cfg.items[i])
            if reg is None:
                continue
            others = set(self.sites[reg])
            gen -= others
            gen.add(i)
            kill |= others - {i}
        return gen, kill

    def _run(self):
        cfg = self.cfg
        gen_kill = {b: self._gen_kill(cfg.blocks[b]) for b in cfg.rpo}
        for b in cfg.rpo:
            self.block_in[b] = set()
            self.block_out[b] = set()
        changed = True
        while changed:
            changed = False
            for b in cfg.rpo:
                new_in: Set[int] = set()
                for p in cfg.blocks[b].preds:
                    if p in self.block_out:
                        new_in |= self.block_out[p]
                gen, kill = gen_kill[b]
                new_out = (new_in - kill) | gen
                if new_in != self.block_in[b] or new_out != self.block_out[b]:
                    self.block_in[b] = new_in
                    self.block_out[b] = new_out
                    changed = True

    def reaching_at(self, index) -> Set[int]:
        """Definition sites reaching the point just before item ``index``."""
        block = self.cfg.blocks[self.cfg.block_of_item[index]]
        state = set(self.block_in.get(block.index, set()))
        for i in range(block.start, index):
            reg = _defined_reg(self.cfg.items[i])
            if reg is None:
                continue
            state -= set(self.sites[reg])
            state.add(i)
        return state

    def defs_of(self, reg, index) -> Set[int]:
        """The defs of ``reg`` that reach the point before item ``index``."""
        mine = set(self.sites.get(reg, ()))
        return self.reaching_at(index) & mine


class Liveness:
    """Backward liveness of registers at block boundaries."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.live_in: Dict[int, Set[int]] = {}
        self.live_out: Dict[int, Set[int]] = {}
        self._run()

    def _use_def(self, block):
        use: Set[int] = set()
        defined: Set[int] = set()
        for i in block.item_indices():
            item = self.cfg.items[i]
            if isinstance(item, VLabel):
                continue
            for reg in item.regs_read():
                if reg != 0 and reg not in defined:
                    use.add(reg)
            reg = _defined_reg(item)
            if reg is not None:
                defined.add(reg)
        return use, defined

    def _run(self):
        cfg = self.cfg
        use_def = {b: self._use_def(cfg.blocks[b]) for b in cfg.rpo}
        for b in cfg.rpo:
            self.live_in[b] = set()
            self.live_out[b] = set()
        changed = True
        while changed:
            changed = False
            for b in reversed(cfg.rpo):
                out: Set[int] = set()
                for s in cfg.blocks[b].succs:
                    out |= self.live_in.get(s, set())
                use, defined = use_def[b]
                new_in = use | (out - defined)
                if out != self.live_out[b] or new_in != self.live_in[b]:
                    self.live_out[b] = out
                    self.live_in[b] = new_in
                    changed = True


class AvailableChecks:
    """Available bounds checks: a forward must-analysis.

    A *check* is the guard of the software bounds-check triple the
    ``boundscheck`` code generator emits::

        BLTU idx, len -> ok      ; the guard (gen point)
        TRAP                     ; unreachable when in bounds
    ok:

    The pair ``(idx, len)`` becomes available after the guard — on the
    fallthrough edge the program traps, so propagating availability on
    both edges is sound — and is killed by any redefinition of either
    register.  A later identical guard whose pair is available on every
    incoming path can never trap and may be deleted together with its
    TRAP and label.
    """

    def __init__(self, cfg, checks):
        """``checks``: list of ``(item_index, idx_reg, len_reg)``."""
        self.cfg = cfg
        self.checks = checks
        self.universe: Set[Tuple[int, int]] = {
            (idx, ln) for _, idx, ln in checks}
        self.check_at = {i: (idx, ln) for i, idx, ln in checks}
        self.block_in: Dict[int, Set[Tuple[int, int]]] = {}
        self.block_out: Dict[int, Set[Tuple[int, int]]] = {}
        self._run()

    def _transfer(self, state, index):
        item = self.cfg.items[index]
        reg = _defined_reg(item)
        if reg is not None:
            state = {pair for pair in state if reg not in pair}
        if index in self.check_at:
            state = state | {self.check_at[index]}
        return state

    def _run(self):
        cfg = self.cfg
        # Optimistic init (full universe) so loop-carried availability
        # converges to the greatest fixpoint of the intersection meet.
        for b in cfg.rpo:
            self.block_in[b] = set(self.universe)
            self.block_out[b] = set(self.universe)
        if cfg.rpo:
            self.block_in[cfg.rpo[0]] = set()
        changed = True
        while changed:
            changed = False
            for b in cfg.rpo:
                preds = [p for p in cfg.blocks[b].preds if p in self.block_out]
                if b == cfg.rpo[0] and not preds:
                    new_in: Set[Tuple[int, int]] = set()
                else:
                    new_in = set(self.universe)
                    for p in preds:
                        new_in &= self.block_out[p]
                    if b == cfg.rpo[0]:
                        new_in = set()  # entry has an implicit undefined pred
                state = set(new_in)
                for i in cfg.blocks[b].item_indices():
                    state = self._transfer(state, i)
                if (new_in != self.block_in[b]
                        or state != self.block_out[b]):
                    self.block_in[b] = new_in
                    self.block_out[b] = state
                    changed = True

    def available_before(self, index) -> Set[Tuple[int, int]]:
        """Pairs checked on every path to the point before item ``index``."""
        block = self.cfg.blocks[self.cfg.block_of_item[index]]
        state = set(self.block_in.get(block.index, set()))
        for i in range(block.start, index):
            state = self._transfer(state, i)
        return state
