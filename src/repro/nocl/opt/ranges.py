"""Unsigned value-range (interval) analysis over the CFG.

Tracks a conservative ``[lo, hi]`` interval (0 <= lo <= hi < 2**32) for
every register, the machine's unsigned view of the 32-bit value.  The
analysis is a forward fixpoint with:

- per-op transfer functions for the arithmetic the frontend emits for
  index math (LI, ADD/ADDI, SUB, SLLI/SRLI, AND/ANDI, MUL, REMU);
- *edge refinement*: a conditional branch splits the state, so on the
  taken edge of ``BLTU idx, len`` the analysis knows ``idx < len``
  (and symmetrically on the fallthrough edge).  Signed branches
  (``BLT``/``BGE`` — the for-loop guard) refine only when both operand
  intervals fit in ``[0, 2**31)``, where signed and unsigned orders
  agree;
- a widening ladder ``{2**31 - 1, 2**32 - 1}`` applied after a few
  visits of a join, so loop counters converge in O(1) iterations: the
  counter widens to INT_MAX, then the loop guard's refinement narrows
  it to ``[init, stop - 1]``.

This is what lets ``boundscheck`` mode discharge guards statically: a
``for i in range(16)`` index into a 16-element shared array has
``hi(i) = 15 < lo(len) = 16``, so ``BLTU i, len`` always passes.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.instructions import Op
from repro.nocl.codegen import (
    HDR_BLOCK_DIM,
    HDR_GRID_DIM,
    REG_ARG,
    REG_BLK0,
    REG_NSLOT,
    REG_TID,
)
from repro.nocl.ir import VInstr, VLabel, VLoadImm
from repro.simt.config import MAX_BLOCK_DIM, MAX_HW_THREADS

UMAX = 0xFFFFFFFF
INT_MAX = 0x7FFFFFFF
#: Join visits before a moving bound is widened up the ladder.
_WIDEN_AFTER = 4
#: Backstop: widen ANY block whose join is visited this often (keeps
#: the fixpoint terminating on CFGs without recognised loop headers).
_HARD_WIDEN = 64


@dataclass(frozen=True)
class Interval:
    """An unsigned interval ``[lo, hi]``; TOP is ``[0, UMAX]``."""

    lo: int
    hi: int

    def __post_init__(self):
        assert 0 <= self.lo <= self.hi <= UMAX, (self.lo, self.hi)

    @property
    def is_top(self):
        return self.lo == 0 and self.hi == UMAX

    @property
    def is_const(self):
        return self.lo == self.hi

    def join(self, other):
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen_from(self, older):
        """Widen any bound that moved since ``older`` up the ladder."""
        lo, hi = self.lo, self.hi
        if lo < older.lo:
            lo = 0
        if hi > older.hi:
            hi = INT_MAX if hi <= INT_MAX else UMAX
        return Interval(lo, hi)


TOP = Interval(0, UMAX)

#: Entry-state seeds for the physical registers the launch sequence
#: initialises (``NoCLRuntime._initial_registers``): ``tid`` is
#: ``t % block_dim < block_dim <= MAX_BLOCK_DIM`` (``launch`` enforces
#: the CUDA blockDim cap); ``nslot`` is ``num_threads // block_dim``,
#: at least 1 (``launch`` rejects geometry where it would not be) and
#: at most ``MAX_HW_THREADS`` (``SMConfig.validate`` caps
#: ``num_threads``).  ``blk0`` is a block index, bounded only by
#: ``gridDim <= INT_MAX``.
_LAUNCH_SEEDS = {
    REG_TID: Interval(0, MAX_BLOCK_DIM - 1),
    REG_BLK0: Interval(0, INT_MAX),
    REG_NSLOT: Interval(1, MAX_HW_THREADS),
}


def _const(value):
    return Interval(value & UMAX, value & UMAX)


class RangeAnalysis:
    """Forward interval analysis with branch refinement and widening."""

    def __init__(self, cfg):
        self.cfg = cfg
        #: per-block entry state: reg -> Interval (missing = TOP)
        self.block_in: Dict[int, Dict[int, Interval]] = {}
        # The launch seeds and the header-word LW rule are only sound
        # while the seeded registers keep their launch-time values.
        # The codegen never writes them, but verify rather than assume.
        written = {item.rd for item in cfg.items
                   if isinstance(item, (VInstr, VLoadImm))
                   and getattr(item, "rd", None) is not None}
        self._seeds = {reg: iv for reg, iv in _LAUNCH_SEEDS.items()
                       if reg not in written}
        self._arg_reg_stable = REG_ARG not in written
        self._run()

    # ------------------------------------------------------------------
    # Transfer functions
    # ------------------------------------------------------------------

    def _get(self, state, reg):
        if reg == 0:
            return Interval(0, 0)
        return state.get(reg, TOP)

    def _set(self, state, reg, interval):
        if reg is None or reg == 0:
            return
        if interval.is_top:
            state.pop(reg, None)
        else:
            state[reg] = interval

    def transfer(self, state, item):
        """Apply one item's effect to ``state`` in place."""
        if isinstance(item, VLabel):
            return
        if isinstance(item, VLoadImm):
            self._set(state, item.rd, _const(item.value))
            return
        assert isinstance(item, VInstr)
        rd = item.rd
        if rd is None or rd == 0:
            return
        op = item.op
        out: Optional[Interval] = None
        if op == Op.ADDI:
            a = self._get(state, item.rs1)
            lo, hi = a.lo + item.imm, a.hi + item.imm
            if 0 <= lo and hi <= UMAX:
                out = Interval(lo, hi)
        elif op == Op.ADD:
            a, b = self._get(state, item.rs1), self._get(state, item.rs2)
            if a.hi + b.hi <= UMAX:
                out = Interval(a.lo + b.lo, a.hi + b.hi)
        elif op == Op.SUB:
            a, b = self._get(state, item.rs1), self._get(state, item.rs2)
            if a.lo - b.hi >= 0:
                out = Interval(a.lo - b.hi, a.hi - b.lo)
        elif op == Op.SLLI:
            a = self._get(state, item.rs1)
            shift = item.imm & 31
            if (a.hi << shift) <= UMAX:
                out = Interval(a.lo << shift, a.hi << shift)
        elif op == Op.SRLI:
            a = self._get(state, item.rs1)
            shift = item.imm & 31
            out = Interval(a.lo >> shift, a.hi >> shift)
        elif op == Op.ANDI and item.imm >= 0:
            a = self._get(state, item.rs1)
            out = Interval(0, min(a.hi, item.imm))
        elif op == Op.AND:
            a, b = self._get(state, item.rs1), self._get(state, item.rs2)
            out = Interval(0, min(a.hi, b.hi))
        elif op == Op.MUL:
            a, b = self._get(state, item.rs1), self._get(state, item.rs2)
            if a.hi * b.hi <= UMAX:
                out = Interval(a.lo * b.lo, a.hi * b.hi)
        elif op == Op.REMU:
            b = self._get(state, item.rs2)
            if b.lo >= 1:
                a = self._get(state, item.rs1)
                out = Interval(0, min(a.hi, b.hi - 1))
        elif op in (Op.SLT, Op.SLTU, Op.SLTI, Op.SLTIU):
            out = Interval(0, 1)
        elif op == Op.LW and self._arg_reg_stable and item.rs1 == REG_ARG \
                and item.imm in (HDR_GRID_DIM, HDR_BLOCK_DIM):
            # Launch-geometry header words: ``launch`` rejects
            # non-positive or > INT_MAX dimensions, and kernels cannot
            # write the argument block header.  blockDim is further
            # capped at the CUDA per-block thread limit.
            hdr_hi = MAX_BLOCK_DIM if item.imm == HDR_BLOCK_DIM else INT_MAX
            out = Interval(1, hdr_hi)
        elif op in (Op.LBU, Op.CLBU):
            out = Interval(0, 0xFF)
        elif op in (Op.LHU, Op.CLHU):
            out = Interval(0, 0xFFFF)
        self._set(state, rd, out if out is not None else TOP)

    # ------------------------------------------------------------------
    # Edge refinement
    # ------------------------------------------------------------------

    def _refine_edge(self, state, block, succ):
        """Refine ``state`` (end of ``block``) along the edge to ``succ``."""
        items = self.cfg.items
        last = items[block.end - 1] if block.end > block.start else None
        if not isinstance(last, VInstr) or last.op not in (
                Op.BLTU, Op.BGEU, Op.BLT, Op.BGE):
            return state
        target_block = self.cfg.label_block.get(last.target)
        fall_block = block.index + 1
        if target_block == fall_block:
            return state  # degenerate branch-to-next: edge is ambiguous
        if succ == target_block:
            taken = True
        elif succ == fall_block:
            taken = False
        else:
            return state
        a_reg, b_reg = last.rs1, last.rs2
        a, b = self._get(state, a_reg), self._get(state, b_reg)
        op = last.op
        if op in (Op.BLT, Op.BGE):
            # Signed order == unsigned order only within [0, INT_MAX].
            if a.hi > INT_MAX or b.hi > INT_MAX:
                return state
        # Normalise to the "a < b holds" / "a >= b holds" cases.
        lt_holds = taken if op in (Op.BLTU, Op.BLT) else not taken
        clamped = []
        if lt_holds:  # a < b
            if b.hi == 0:
                return None  # nothing is unsigned-below 0
            clamped.append((a_reg, self._clamp(a, hi=b.hi - 1)))
            if a.lo + 1 <= UMAX:
                clamped.append((b_reg, self._clamp(b, lo=a.lo + 1)))
        else:  # a >= b
            clamped.append((a_reg, self._clamp(a, lo=b.lo)))
            clamped.append((b_reg, self._clamp(b, hi=a.hi)))
        if any(interval is None for _, interval in clamped):
            # Contradictory refinement: the edge cannot be taken under
            # the current state, so it contributes no flow at all.
            return None
        state = dict(state)
        for reg, interval in clamped:
            self._set(state, reg, interval)
        return state

    @staticmethod
    def _clamp(interval, lo=None, hi=None):
        """The refined interval, or None when the constraint is
        contradictory (the refining edge is infeasible)."""
        new_lo = max(interval.lo, lo) if lo is not None else interval.lo
        new_hi = min(interval.hi, hi) if hi is not None else interval.hi
        if new_lo > new_hi:
            return None
        return Interval(new_lo, new_hi)

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------

    def _run(self):
        cfg = self.cfg
        if not cfg.rpo:
            return
        visits: Dict[int, int] = {b: 0 for b in cfg.rpo}
        # Widen only at loop headers: widening a refinement target (a
        # loop body entered through the guard's fall-through) would
        # permanently destroy the guard-derived bound, because the
        # widened state feeds the counter's increment and ratchets the
        # header past the signed-refinement precondition.  Headers cap
        # every cycle of a reducible CFG, so this preserves
        # termination; _HARD_WIDEN is a backstop for anything else.
        headers = {header for header, _ in cfg.loops}
        self.block_in[cfg.rpo[0]] = dict(self._seeds)
        worklist = list(cfg.rpo)
        while worklist:
            b = worklist.pop(0)
            if b not in self.block_in:
                continue
            state = dict(self.block_in[b])
            block = cfg.blocks[b]
            for i in block.item_indices():
                self.transfer(state, self.cfg.items[i])
            for succ in block.succs:
                edge_state = self._refine_edge(state, block, succ)
                if edge_state is None:
                    continue  # edge infeasible under the current state
                old = self.block_in.get(succ)
                if old is None:
                    self.block_in[succ] = dict(edge_state)
                    if succ not in worklist:
                        worklist.append(succ)
                    continue
                merged = self._join_states(old, edge_state)
                visits[succ] += 1
                if visits[succ] > _WIDEN_AFTER and succ in headers:
                    merged = self._widen_states(merged, old)
                elif visits[succ] > _HARD_WIDEN:
                    merged = self._widen_states(merged, old)
                if merged != old:
                    self.block_in[succ] = merged
                    if succ not in worklist:
                        worklist.append(succ)

    @staticmethod
    def _join_states(a, b):
        out = {}
        for reg in set(a) & set(b):
            joined = a[reg].join(b[reg])
            if not joined.is_top:
                out[reg] = joined
        return out

    @staticmethod
    def _widen_states(new, old):
        out = {}
        for reg, interval in new.items():
            widened = interval.widen_from(old[reg]) if reg in old else TOP
            if not widened.is_top:
                out[reg] = widened
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def interval_before(self, index, reg) -> Interval:
        """The interval of ``reg`` just before item ``index``."""
        block = self.cfg.blocks[self.cfg.block_of_item[index]]
        state = dict(self.block_in.get(block.index, {}))
        for i in range(block.start, index):
            self.transfer(state, self.cfg.items[i])
        return self._get(state, reg)
