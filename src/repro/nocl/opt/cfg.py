"""Control-flow graph, dominators and natural loops over the linear IR.

The virtual-register assembly is a flat list of :class:`VInstr` /
:class:`VLabel` / :class:`VLoadImm` items.  A :class:`CFG` partitions it
into basic blocks (half-open item-index ranges), wires successor edges
from branch targets and fallthrough, and derives the classic structural
facts every pass needs: reverse postorder, dominators, and natural loops
discovered from back edges.

Blocks are *views* onto the item list, not copies: passes edit the item
list and rebuild the CFG, which is cheap at kernel sizes (hundreds of
items).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import BRANCH_OPS, JUMP_OPS, Op
from repro.nocl.ir import VInstr, VLabel

#: Ops after which control never falls through to the next instruction.
_NO_FALLTHROUGH = frozenset({Op.HALT, Op.TRAP, Op.EBREAK, Op.ECALL})

#: Indirect jumps: successor unknown at compile time.  The optimizer
#: refuses to touch programs containing these (the DSL frontend never
#: emits them; only hand-written fuzz sequences do).
_INDIRECT = frozenset({Op.JALR, Op.CJALR})


class CFGError(Exception):
    """Raised on IR the CFG builder cannot model (e.g. indirect jumps)."""


@dataclass
class BasicBlock:
    """A maximal straight-line run of items: ``items[start:end]``."""

    index: int
    start: int
    end: int
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def item_indices(self):
        return range(self.start, self.end)


class CFG:
    """Basic blocks + edges + dominators over one item list."""

    def __init__(self, items):
        self.items = items
        self.blocks: List[BasicBlock] = []
        self.label_block: Dict[str, int] = {}
        #: item index -> owning block index
        self.block_of_item: List[int] = []
        self._build()
        self.rpo = self._reverse_postorder()
        self.reachable: Set[int] = set(self.rpo)
        self.idom = self._dominators()
        self.loops = self._natural_loops()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self):
        items = self.items
        n = len(items)
        leaders = set([0]) if n else set()
        for i, item in enumerate(items):
            if isinstance(item, VLabel):
                leaders.add(i)
            elif isinstance(item, VInstr):
                if item.op in _INDIRECT:
                    raise CFGError("indirect jump %s at item %d"
                                   % (item.op.name, i))
                if (item.op in BRANCH_OPS or item.op in JUMP_OPS
                        or item.op in _NO_FALLTHROUGH):
                    if i + 1 < n:
                        leaders.add(i + 1)
        starts = sorted(leaders)
        bounds = list(zip(starts, starts[1:] + [n]))
        self.blocks = [BasicBlock(bi, s, e)
                       for bi, (s, e) in enumerate(bounds)]
        self.block_of_item = [0] * n
        for block in self.blocks:
            for i in block.item_indices():
                self.block_of_item[i] = block.index
            for i in block.item_indices():
                item = items[i]
                if isinstance(item, VLabel):
                    self.label_block[item.name] = block.index
                else:
                    break  # labels only lead a block

        for block in self.blocks:
            last = items[block.end - 1] if block.end > block.start else None
            succs = []
            if isinstance(last, VInstr) and last.target is not None:
                if last.op in BRANCH_OPS:
                    if block.index + 1 < len(self.blocks):
                        succs.append(block.index + 1)
                    succs.append(self._target_block(last.target))
                elif last.op in JUMP_OPS:
                    succs.append(self._target_block(last.target))
                else:
                    raise CFGError("unexpected targeted op %s" % last.op)
            elif isinstance(last, VInstr) and last.op in _NO_FALLTHROUGH:
                pass
            elif block.index + 1 < len(self.blocks):
                succs.append(block.index + 1)
            # De-duplicate (a conditional branch to the next block).
            seen = []
            for s in succs:
                if s not in seen:
                    seen.append(s)
            block.succs = seen
        for block in self.blocks:
            for s in block.succs:
                self.blocks[s].preds.append(block.index)

    def _target_block(self, label):
        try:
            return self.label_block[label]
        except KeyError:
            raise CFGError("branch to unknown label %r" % label)

    # ------------------------------------------------------------------
    # Orderings and dominators
    # ------------------------------------------------------------------

    def _reverse_postorder(self):
        seen, order = set(), []

        def visit(b):
            stack = [(b, iter(self.blocks[b].succs))]
            seen.add(b)
            while stack:
                node, it = stack[-1]
                advanced = False
                for s in it:
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, iter(self.blocks[s].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        if self.blocks:
            visit(0)
        order.reverse()
        return order

    def _dominators(self):
        """Cooper-Harvey-Kennedy iterative idom computation."""
        if not self.blocks:
            return {}
        rpo_index = {b: i for i, b in enumerate(self.rpo)}
        idom: Dict[int, Optional[int]] = {0: 0}
        changed = True
        while changed:
            changed = False
            for b in self.rpo:
                if b == 0:
                    continue
                preds = [p for p in self.blocks[b].preds if p in idom]
                if not preds:
                    continue
                new = preds[0]
                for p in preds[1:]:
                    new = self._intersect(new, p, idom, rpo_index)
                if idom.get(b) != new:
                    idom[b] = new
                    changed = True
        return idom

    @staticmethod
    def _intersect(a, b, idom, rpo_index):
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    def dominates(self, a, b):
        """Does block ``a`` dominate block ``b``?  (Reflexive.)"""
        if b not in self.idom or a not in self.idom:
            return False
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom[node]
            if parent == node:
                return False
            node = parent

    def instr_dominates(self, i, j):
        """Does item ``i`` dominate item ``j`` (execute on every path)?"""
        bi, bj = self.block_of_item[i], self.block_of_item[j]
        if bi == bj:
            return i <= j
        return self.dominates(bi, bj)

    # ------------------------------------------------------------------
    # Natural loops
    # ------------------------------------------------------------------

    def _natural_loops(self):
        """Loops from back edges, merged per header.

        Returns a list of ``(header, body)`` with ``body`` a set of block
        indices including the header, ordered innermost-first (smallest
        body first).
        """
        per_header: Dict[int, Set[int]] = {}
        for block in self.blocks:
            if block.index not in self.reachable:
                continue
            for succ in block.succs:
                if self.dominates(succ, block.index):
                    body = per_header.setdefault(succ, {succ})
                    stack = [block.index]
                    while stack:
                        node = stack.pop()
                        if node in body:
                            continue
                        body.add(node)
                        stack.extend(self.blocks[node].preds)
        loops = sorted(per_header.items(), key=lambda kv: (len(kv[1]), kv[0]))
        return [(header, body) for header, body in loops]

    def loop_item_span(self, body) -> Tuple[int, int]:
        """The half-open item-index range covered by a loop body."""
        lo = min(self.blocks[b].start for b in body)
        hi = max(self.blocks[b].end for b in body)
        return lo, hi


def build_cfg(items):
    """Construct a :class:`CFG` (raises :class:`CFGError` on indirect IR)."""
    return CFG(items)
