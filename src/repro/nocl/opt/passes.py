"""The ``-O1`` pass set: semantics-preserving rewrites of the linear IR.

Every pass edits the item list and reports what it changed; the pass
manager (:mod:`.pipeline`) rebuilds the CFG between passes.  Safety
arguments, per pass:

- **LICM** hoists only *pure, non-trapping* operations (integer/float
  ALU, LI, and the capability-manipulation ops, which clear the tag
  rather than fault — see ``repro.cheri.capability``) whose destination
  has exactly one definition and whose operands are loop-invariant, so
  speculating them into the preheader is value- and trap-preserving
  even for zero-trip loops.
- **CSE** merges lexically identical pure expressions when the earlier
  definition dominates the later one and all operands are single-
  definition registers (register identity then implies value identity).
- **Strength reduction** rewrites MUL/DIVU/REMU with a known power-of-
  two operand into shifts/masks — bit-exact for 32-bit wrapping
  arithmetic.
- **Bounds-check elimination** deletes the compare-and-trap triple when
  the :class:`~repro.nocl.opt.dataflow.AvailableChecks` must-analysis
  proves an identical dominating check, or when
  :class:`~repro.nocl.opt.ranges.RangeAnalysis` proves ``idx < len`` on
  the unsigned order.  Removing a check that can never trap is
  trap-preserving by construction.
- **DCE** removes pure definitions whose result is dead per the
  block-level liveness analysis (stronger than the allocator's global
  "never read" sweep: it kills values that are only read before being
  rewritten).
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Op
from repro.nocl.ir import FIRST_VREG, VInstr, VLabel, VLoadImm
from repro.nocl.opt.cfg import CFG, CFGError, build_cfg
from repro.nocl.opt.dataflow import AvailableChecks, Liveness, def_sites
from repro.nocl.opt.ranges import RangeAnalysis
from repro.nocl.regalloc import _PURE_OPS

#: Non-trapping capability manipulation: these derive a new capability
#: and clear the tag on misuse instead of faulting, so they may be
#: executed speculatively (hoisted) and de-duplicated.
_CAP_PURE_OPS = frozenset({
    Op.CINCOFFSET, Op.CINCOFFSETIMM, Op.CSETBOUNDS, Op.CSETBOUNDSIMM,
    Op.CSETBOUNDSEXACT, Op.CMOVE, Op.CSETADDR, Op.CGETLEN, Op.CGETBASE,
    Op.CGETADDR, Op.CGETTAG, Op.CGETPERM,
})

#: Everything a pass may speculate, duplicate-eliminate, or delete.
PURE_OPS = frozenset(_PURE_OPS) | _CAP_PURE_OPS


def _is_pure_instr(item):
    if isinstance(item, VLoadImm):
        return True
    return (isinstance(item, VInstr) and item.op in PURE_OPS
            and item.rd is not None)


def _operand_regs(item):
    return [r for r in item.regs_read() if r != 0]


# ---------------------------------------------------------------------------
# Loop-invariant code motion
# ---------------------------------------------------------------------------

#: Hoisting makes values live across the loop's back edge; past this many
#: simultaneously-live loop-crossing registers, linear scan starts
#: spilling *inside* the loop, which costs more than recomputing.  The SM
#: has 22 allocatable registers; leave headroom for loop-body temps.
_PRESSURE_TARGET = 12


def licm(items, pressure_target=_PRESSURE_TARGET) -> Tuple[list, int]:
    """Hoist loop-invariant pure computation into loop preheaders.

    Returns ``(new_items, hoisted_count)``.  ``pressure_target`` bounds
    the loop-crossing register pressure hoisting may create (see
    :func:`_budget_moves`); 0 disables hoisting entirely.
    """
    hoisted_total = 0
    changed = pressure_target > 0
    while changed:
        changed = False
        try:
            cfg = build_cfg(items)
        except CFGError:
            return items, hoisted_total
        sites = def_sites(items)
        for header, body in cfg.loops:
            moves = _loop_invariants(cfg, sites, header, body,
                                     pressure_target)
            if not moves:
                continue
            items = _apply_hoist(cfg, items, header, moves)
            hoisted_total += len(moves)
            changed = True
            break  # item indices shifted: rebuild the CFG
    return items, hoisted_total


def _loop_invariants(cfg, sites, header, body, pressure_target) -> List[int]:
    """Item indices (original order) hoistable out of one natural loop."""
    header_block = cfg.blocks[header]
    # The preheader position is just before the header label.  That spot
    # is only a real preheader if every loop entry falls through into the
    # header: any outside predecessor must be the linearly-previous block
    # ending without a jump around the insertion point.
    for pred in header_block.preds:
        if pred in body:
            continue
        pred_block = cfg.blocks[pred]
        if pred_block.end != header_block.start:
            return []
        last = cfg.items[pred_block.end - 1]
        if isinstance(last, VInstr) and last.target is not None:
            # Entry via explicit jump skips anything we insert.
            return []
    if all(pred in body for pred in header_block.preds):
        return []  # unreachable-entry loop; leave it alone

    defined_in_loop: Set[int] = set()
    loop_items: List[int] = []
    for b in sorted(body):
        for i in cfg.blocks[b].item_indices():
            loop_items.append(i)
            item = cfg.items[i]
            if isinstance(item, VLabel):
                continue
            for reg in item.regs_written():
                if reg != 0:
                    defined_in_loop.add(reg)

    moves: List[int] = []
    hoisted_dests: Set[int] = set()
    progress = True
    while progress:
        progress = False
        for i in loop_items:
            if i in moves:
                continue
            item = cfg.items[i]
            if not _is_pure_instr(item):
                continue
            rd = item.regs_written()[0]
            if rd < FIRST_VREG or len(sites.get(rd, ())) != 1:
                continue
            operands = _operand_regs(item)
            if rd in operands:
                continue
            if all(reg not in defined_in_loop or reg in hoisted_dests
                   for reg in operands):
                moves.append(i)
                hoisted_dests.add(rd)
                progress = True
    return _budget_moves(cfg, sites, loop_items, sorted(moves),
                         pressure_target)


def _budget_moves(cfg, sites, loop_items, candidates, pressure_target):
    """Keep only as many hoists as the register file can afford.

    A hoisted destination *persists* across the loop when some unmoved
    loop instruction still reads it; chain intermediates consumed only by
    other hoisted instructions die in the preheader and are free.  The
    budget is ``_PRESSURE_TARGET`` minus the registers the loop already
    keeps live across its back edge (values defined outside, read
    inside).
    """
    if not candidates:
        return candidates
    loop_set = set(loop_items)
    reads_in_loop: Dict[int, Set[int]] = {}
    for i in loop_items:
        item = cfg.items[i]
        if isinstance(item, VLabel):
            continue
        for reg in item.regs_read():
            reads_in_loop.setdefault(reg, set()).add(i)

    already_across = 0
    for reg, readers in reads_in_loop.items():
        if reg < FIRST_VREG or not readers:
            continue
        defs = sites.get(reg, ())
        # Any definition outside the loop means the value crosses into
        # it (covers both invariants and loop-carried variables, whose
        # init lives in the preheader).
        if defs and any(d not in loop_set for d in defs):
            already_across += 1
    budget = max(0, pressure_target - already_across)

    kept: List[int] = []
    kept_dests: Set[int] = set()

    def persist_count(selection):
        count = 0
        for i in selection:
            rd = cfg.items[i].regs_written()[0]
            if any(u not in selection for u in reads_in_loop.get(rd, ())):
                count += 1
        return count

    for i in candidates:
        item = cfg.items[i]
        operands = _operand_regs(item)
        # Dependency closure: loop-defined operands must themselves move.
        if any(reg in sites and sites[reg]
               and sites[reg][0] in loop_set
               and sites[reg][0] not in kept
               for reg in operands if reg >= FIRST_VREG):
            continue
        trial = set(kept) | {i}
        if persist_count(trial) > budget:
            continue
        kept.append(i)
        kept_dests.add(item.regs_written()[0])
    return sorted(kept)


def _apply_hoist(cfg, items, header, moves):
    header_block = cfg.blocks[header]
    insert_at = header_block.start
    # Hoisted items adopt the preheader's convergence depth.
    depth = items[insert_at].depth
    moved = []
    for i in moves:
        item = items[i]
        item.depth = depth
        moved.append(item)
    keep = [item for i, item in enumerate(items) if i not in set(moves)]
    shift = sum(1 for i in moves if i < insert_at)
    pos = insert_at - shift
    return keep[:pos] + moved + keep[pos:]


# ---------------------------------------------------------------------------
# Common-subexpression elimination
# ---------------------------------------------------------------------------

def cse(items) -> Tuple[list, int]:
    """Dominator-scoped value numbering over single-definition registers."""
    removed_total = 0
    for _ in range(4):  # operand rewrites can expose new matches
        try:
            cfg = build_cfg(items)
        except CFGError:
            return items, removed_total
        sites = def_sites(items)

        def single_def(reg):
            if reg == 0:
                return True
            if reg < FIRST_VREG:
                return len(sites.get(reg, ())) == 0  # runtime-initialised
            return len(sites.get(reg, ())) == 1

        uses: Dict[int, List[int]] = {}
        for i, item in enumerate(items):
            if isinstance(item, VLabel):
                continue
            for reg in item.regs_read():
                uses.setdefault(reg, []).append(i)

        children: Dict[int, List[int]] = {}
        for b, parent in cfg.idom.items():
            if b != 0:
                children.setdefault(parent, []).append(b)
        if 0 not in cfg.idom:
            return items, removed_total

        delete: Set[int] = set()
        rewrite: Dict[int, int] = {}

        def key_of(i, item):
            if isinstance(item, VLoadImm):
                return ("LI", item.value)
            if (isinstance(item, VInstr) and item.op in PURE_OPS
                    and item.target is None):
                if not all(single_def(r) for r in _operand_regs(item)):
                    return None
                return (item.op, item.rs1, item.rs2, item.imm)
            return None

        def walk(block_index, scope):
            local = dict(scope)
            for i in cfg.blocks[block_index].item_indices():
                item = cfg.items[i]
                if isinstance(item, VLabel) or i in delete:
                    continue
                written = item.regs_written()
                if not written or written[0] < FIRST_VREG:
                    continue
                rd = written[0]
                if len(sites.get(rd, ())) != 1:
                    continue
                key = key_of(i, item)
                if key is None:
                    continue
                prior = local.get(key)
                if prior is not None and prior != rd:
                    if all(cfg.instr_dominates(i, u)
                           for u in uses.get(rd, ())):
                        delete.add(i)
                        rewrite[rd] = prior
                        continue
                local[key] = rd
            for child in sorted(children.get(block_index, ()),
                                key=lambda b: cfg.blocks[b].start):
                walk(child, local)

        walk(0, {})
        if not delete:
            return items, removed_total

        resolved = {}
        for old in rewrite:
            new = rewrite[old]
            while new in rewrite:
                new = rewrite[new]
            resolved[old] = new
        out = []
        for i, item in enumerate(items):
            if i in delete:
                continue
            if not isinstance(item, VLabel):
                if item.regs_read():
                    if isinstance(item, VInstr):
                        if item.rs1 in resolved:
                            item.rs1 = resolved[item.rs1]
                        if item.rs2 in resolved:
                            item.rs2 = resolved[item.rs2]
            out.append(item)
        items = out
        removed_total += len(delete)
    return items, removed_total


# ---------------------------------------------------------------------------
# Strength reduction
# ---------------------------------------------------------------------------

def _power_of_two(value):
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


def _divmod_recombine(items, cfg, sites, i, item):
    """Rewrite ``(x / y) * y + x % y`` into ``x`` (any ``y``).

    The identity holds modulo 2**32 for both signednesses, including
    the RISC-V edge cases: division by zero (``DIVU = UMAX, REMU = x``
    and ``DIV = -1, REM = x``, with ``q * 0 = 0``) and signed overflow
    (``INT_MIN / -1 = INT_MIN`` with remainder 0, and ``INT_MIN * -1
    == INT_MIN`` mod 2**32).  This is the tile-decomposition pattern
    ``(tid // tile) * tile + tid % tile == tid``, which gives the range
    analysis a provable index where the quotient alone is unbounded.
    """
    def sole_def(reg, at):
        """The reg's unique dominating def index; -1 for a launch-set
        physical register (never written); None when neither holds."""
        defs = sites.get(reg, ())
        if reg < FIRST_VREG:
            return -1 if not defs else None
        if len(defs) != 1 or not cfg.instr_dominates(defs[0], at):
            return None
        return defs[0]

    def resolve(reg, at):
        """Chase single-def ``ADDI rd, rs, 0`` copies to a root reg.

        The frontend emits a fresh copy per source-level mention of the
        same variable (e.g. each ``threadIdx.x``), so value equality
        must be checked on roots.  Roots are single-def or never
        written, hence hold one value for the whole kernel.  Returns
        None when the value cannot be pinned to a unique def.
        """
        for _ in range(len(items)):
            at = sole_def(reg, at)
            if at is None:
                return None
            if at < 0:
                return reg
            copy = items[at]
            if (isinstance(copy, VInstr) and copy.op == Op.ADDI
                    and copy.imm == 0 and copy.rs1 is not None):
                reg = copy.rs1
                continue
            return reg
        return None

    for mul_reg, rem_reg in ((item.rs1, item.rs2), (item.rs2, item.rs1)):
        mul_at = sole_def(mul_reg, i)
        rem_at = sole_def(rem_reg, i)
        if mul_at is None or mul_at < 0 or rem_at is None or rem_at < 0:
            continue
        mul, rem = items[mul_at], items[rem_at]
        if not (isinstance(mul, VInstr) and mul.op == Op.MUL
                and isinstance(rem, VInstr)
                and rem.op in (Op.REMU, Op.REM)):
            continue
        div_op = Op.DIVU if rem.op == Op.REMU else Op.DIV
        x_root = resolve(rem.rs1, rem_at)
        y_root = resolve(rem.rs2, rem_at)
        if x_root is None or y_root is None:
            continue
        for quot_reg, mul_y in ((mul.rs1, mul.rs2), (mul.rs2, mul.rs1)):
            if resolve(mul_y, mul_at) != y_root:
                continue
            quot_at = sole_def(quot_reg, mul_at)
            if quot_at is None or quot_at < 0:
                continue
            div = items[quot_at]
            if not (isinstance(div, VInstr) and div.op == div_op
                    and resolve(div.rs1, quot_at) == x_root
                    and resolve(div.rs2, quot_at) == y_root):
                continue
            # rem.rs1 is single-def, so it still holds x at the ADD.
            item.op, item.rs1, item.rs2, item.imm = \
                Op.ADDI, rem.rs1, None, 0
            return True
    return False


def strength_reduce(items) -> Tuple[list, int]:
    """MUL/DIVU/REMU with a known power-of-two operand -> shift/mask."""
    try:
        cfg = build_cfg(items)
    except CFGError:
        return items, 0
    sites = def_sites(items)
    consts: Dict[int, Tuple[int, int]] = {}  # reg -> (value, def index)
    for reg, defs in sites.items():
        if reg < FIRST_VREG or len(defs) != 1:
            continue
        item = items[defs[0]]
        if isinstance(item, VLoadImm):
            consts[reg] = (item.value & 0xFFFFFFFF, defs[0])
        elif (isinstance(item, VInstr) and item.op == Op.ADDI
                and item.rs1 == 0):
            consts[reg] = (item.imm & 0xFFFFFFFF, defs[0])

    def const_of(reg, at):
        if reg not in consts:
            return None
        value, where = consts[reg]
        if not cfg.instr_dominates(where, at):
            return None
        return value

    rewritten = 0
    for i, item in enumerate(items):
        if not isinstance(item, VInstr) or item.rd is None:
            continue
        if item.op == Op.MUL:
            for a, b in ((item.rs1, item.rs2), (item.rs2, item.rs1)):
                value = const_of(b, i)
                shift = _power_of_two(value) if value is not None else None
                if shift is None:
                    continue
                if shift == 0:
                    item.op, item.rs1, item.rs2, item.imm = \
                        Op.ADDI, a, None, 0
                else:
                    item.op, item.rs1, item.rs2, item.imm = \
                        Op.SLLI, a, None, shift
                rewritten += 1
                break
        elif item.op in (Op.DIVU, Op.REMU):
            value = const_of(item.rs2, i)
            shift = _power_of_two(value) if value is not None else None
            if shift is None:
                continue
            if item.op == Op.DIVU:
                item.op, item.rs2, item.imm = Op.SRLI, None, shift
                rewritten += 1
            elif value - 1 <= 2047:  # ANDI immediate range
                item.op, item.rs2, item.imm = Op.ANDI, None, value - 1
                rewritten += 1
        elif item.op == Op.ADD:
            if _divmod_recombine(items, cfg, sites, i, item):
                rewritten += 1
    return items, rewritten


# ---------------------------------------------------------------------------
# Bounds-check elimination
# ---------------------------------------------------------------------------

def find_checks(items):
    """Locate ``BLTU idx, len -> ok; TRAP; ok:`` guard triples.

    Returns ``(index, idx_reg, len_reg)`` tuples for triples whose label
    is targeted only by its own guard (so deleting all three items is
    safe).
    """
    target_counts: Dict[str, int] = {}
    for item in items:
        if isinstance(item, VInstr) and item.target is not None:
            target_counts[item.target] = target_counts.get(item.target, 0) + 1
    checks = []
    for i in range(len(items) - 2):
        guard, trap, label = items[i], items[i + 1], items[i + 2]
        if not (isinstance(guard, VInstr) and guard.op == Op.BLTU
                and guard.target is not None):
            continue
        if not (isinstance(trap, VInstr) and trap.op == Op.TRAP):
            continue
        if not (isinstance(label, VLabel) and label.name == guard.target):
            continue
        if target_counts.get(label.name) != 1:
            continue
        checks.append((i, guard.rs1, guard.rs2))
    return checks


def eliminate_bounds_checks(items) -> Tuple[list, int, int]:
    """Drop provably-redundant / provably-in-bounds software checks.

    Returns ``(new_items, dominated_removed, range_removed)``.
    """
    try:
        cfg = build_cfg(items)
    except CFGError:
        return items, 0, 0
    checks = find_checks(items)
    if not checks:
        return items, 0, 0
    available = AvailableChecks(cfg, checks)
    ranges = RangeAnalysis(cfg)

    dominated, proved = [], []
    for i, idx_reg, len_reg in checks:
        if (idx_reg, len_reg) in available.available_before(i):
            dominated.append(i)
            continue
        idx = ranges.interval_before(i, idx_reg)
        length = ranges.interval_before(i, len_reg)
        if idx.hi < length.lo:
            proved.append(i)

    doomed = set()
    for i in dominated + proved:
        doomed.update((i, i + 1, i + 2))
    out = [item for i, item in enumerate(items) if i not in doomed]
    return out, len(dominated), len(proved)


# ---------------------------------------------------------------------------
# Dead-code elimination
# ---------------------------------------------------------------------------

def dce(items) -> Tuple[list, int]:
    """Remove pure definitions that are dead per block-level liveness."""
    removed_total = 0
    changed = True
    while changed:
        changed = False
        try:
            cfg = build_cfg(items)
        except CFGError:
            return items, removed_total
        liveness = Liveness(cfg)
        doomed: Set[int] = set()
        for block in cfg.blocks:
            if block.index not in cfg.reachable:
                continue
            live = set(liveness.live_out.get(block.index, set()))
            for i in reversed(list(block.item_indices())):
                item = cfg.items[i]
                if isinstance(item, VLabel):
                    continue
                written = item.regs_written()
                if (_is_pure_instr(item) and written
                        and written[0] >= FIRST_VREG
                        and written[0] not in live):
                    doomed.add(i)
                    continue
                for reg in written:
                    live.discard(reg)
                for reg in item.regs_read():
                    if reg != 0:
                        live.add(reg)
        if doomed:
            items = [item for i, item in enumerate(items) if i not in doomed]
            removed_total += len(doomed)
            changed = True
    return items, removed_total
