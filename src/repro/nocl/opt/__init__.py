"""repro.nocl.opt — dataflow analyses and the optimizing pass pipeline.

The frontend emits straight-line virtual-register assembly with symbolic
branch targets (:mod:`repro.nocl.ir`).  This package adds the missing
middle-end: a control-flow graph over that linear form (:mod:`.cfg`),
classic dataflow analyses — reaching definitions, liveness, available
bounds checks (:mod:`.dataflow`) — an unsigned value-range analysis
(:mod:`.ranges`), and a pass manager (:mod:`.pipeline`) that runs the
semantics-preserving passes of :mod:`.passes` at ``-O1``:

- loop-invariant code motion (CIncOffset/CSetBounds and address math),
- dominator-scoped common-subexpression elimination,
- strength reduction of address arithmetic,
- redundant/provably-in-bounds software bounds-check elimination,
- liveness-based dead-code elimination.

``-O0`` is a strict no-op: :func:`repro.nocl.compiler.compile_kernel`
does not even construct a CFG, so its output is byte-identical to the
historical compiler.  Every ``-O1`` program is held to the golden-model
lockstep and differential-fuzz bar (see ``repro.check``).
"""

from repro.nocl.opt.cfg import CFG, build_cfg
from repro.nocl.opt.dataflow import (
    AvailableChecks,
    Liveness,
    ReachingDefs,
    def_sites,
)
from repro.nocl.opt.pipeline import OPT_LEVELS, OptReport, optimize
from repro.nocl.opt.ranges import Interval, RangeAnalysis

__all__ = [
    "CFG",
    "build_cfg",
    "ReachingDefs",
    "Liveness",
    "AvailableChecks",
    "def_sites",
    "Interval",
    "RangeAnalysis",
    "OPT_LEVELS",
    "OptReport",
    "optimize",
]
