"""The kernel-side DSL: types, intrinsics, and the ``@kernel`` decorator.

Kernels are plain Python functions over a restricted subset of the
language.  They are *never executed by the Python interpreter*: the
``@kernel`` decorator captures the function's AST and signature, and the
compiler translates it to the simulator's ISA.  The names below (``i32``,
``ptr``, ``threadIdx`` and friends) exist so kernels read like CUDA and so
type annotations resolve; inside a kernel body they are recognised
syntactically by the frontend.

Example::

    @kernel
    def vecadd(n: i32, a: ptr[i32], b: ptr[i32], c: ptr[i32]):
        i = threadIdx.x + blockIdx.x * blockDim.x
        while i < n:
            c[i] = a[i] + b[i]
            i += blockDim.x * gridDim.x
"""

import ast
import inspect
import textwrap


class ScalarType:
    """A scalar value type (int of some width/signedness, or float32)."""

    def __init__(self, name, width, signed, is_float=False):
        self.name = name
        self.width = width          # bytes
        self.signed = signed
        self.is_float = is_float

    def __repr__(self):
        return self.name

    def __call__(self, _value):
        raise TypeError(
            "%s(...) casts are only meaningful inside kernels" % self.name)


i8 = ScalarType("i8", 1, True)
u8 = ScalarType("u8", 1, False)
i16 = ScalarType("i16", 2, True)
u16 = ScalarType("u16", 2, False)
i32 = ScalarType("i32", 4, True)
u32 = ScalarType("u32", 4, False)
f32 = ScalarType("f32", 4, True, is_float=True)

SCALAR_TYPES = {t.name: t for t in (i8, u8, i16, u16, i32, u32, f32)}


class PtrType:
    """A pointer-to-array-of-``elem`` parameter type."""

    def __init__(self, elem):
        if not isinstance(elem, ScalarType):
            raise TypeError("ptr element must be a scalar type")
        self.elem = elem

    def __repr__(self):
        return "ptr[%s]" % self.elem


class _PtrFactory:
    def __getitem__(self, elem):
        return PtrType(elem)


ptr = _PtrFactory()


class _IndexDim:
    """Placeholder for ``threadIdx.x`` etc.; only valid inside kernels."""

    def __init__(self, name):
        self._name = name

    @property
    def x(self):
        raise RuntimeError(
            "%s.x can only be used inside a @kernel body" % self._name)


threadIdx = _IndexDim("threadIdx")
blockIdx = _IndexDim("blockIdx")
blockDim = _IndexDim("blockDim")
gridDim = _IndexDim("gridDim")

#: Names the frontend recognises as launch-geometry reads.
BUILTIN_DIMS = ("threadIdx", "blockIdx", "blockDim", "gridDim")

#: Intrinsic function names available inside kernels.
INTRINSICS = (
    "shared",       # arr = shared(i32, 256): scratchpad array
    "syncthreads",  # barrier within the thread block
    "atomic_add",   # atomic_add(arr, idx, val) -> old value
    "fsqrt",        # float square root (SFU)
    "min_", "max_",     # signed integer min/max
    "fmin_", "fmax_",   # float min/max
    "f32", "i32", "u32",  # conversions / casts
    "noop",
)


class KernelParam:
    """One declared kernel parameter."""

    def __init__(self, name, ty):
        self.name = name
        self.ty = ty
        self.is_pointer = isinstance(ty, PtrType)

    def __repr__(self):
        return "%s: %r" % (self.name, self.ty)


class KernelSource:
    """A parsed-but-uncompiled kernel: AST + signature."""

    def __init__(self, func):
        self.func = func
        self.name = func.__name__
        source = textwrap.dedent(inspect.getsource(func))
        #: Dedented source text; ``lineno`` fields in :attr:`tree` are
        #: 1-based indices into these lines (the profiler renders them).
        self.source_text = source
        module = ast.parse(source)
        funcs = [node for node in module.body
                 if isinstance(node, ast.FunctionDef)]
        if len(funcs) != 1:
            raise ValueError("expected exactly one function definition")
        self.tree = funcs[0]
        self.params = self._parse_params(func)

    @classmethod
    def from_source(cls, source):
        """Build a kernel from a source string (for generated kernels).

        The annotations are resolved syntactically: scalar type names and
        ``ptr[...]`` subscripts.
        """
        self = cls.__new__(cls)
        self.func = None
        self.source_text = textwrap.dedent(source)
        module = ast.parse(self.source_text)
        funcs = [node for node in module.body
                 if isinstance(node, ast.FunctionDef)]
        if len(funcs) != 1:
            raise ValueError("expected exactly one function definition")
        self.tree = funcs[0]
        self.name = self.tree.name
        self.params = []
        for arg in self.tree.args.args:
            if arg.annotation is None:
                raise TypeError(
                    "kernel parameter %r needs a type annotation" % arg.arg)
            ty = _annotation_to_type(arg.annotation)
            if isinstance(ty, ScalarType) and ty.width != 4:
                raise TypeError(
                    "scalar kernel parameters must be 32-bit (%r)" % arg.arg)
            self.params.append(KernelParam(arg.arg, ty))
        return self

    @staticmethod
    def _parse_params(func):
        params = []
        signature = inspect.signature(func)
        for name, param in signature.parameters.items():
            annotation = param.annotation
            if annotation is inspect.Parameter.empty:
                raise TypeError(
                    "kernel parameter %r needs a type annotation" % name)
            if not isinstance(annotation, (ScalarType, PtrType)):
                raise TypeError(
                    "kernel parameter %r has unsupported type %r"
                    % (name, annotation))
            if isinstance(annotation, ScalarType) and annotation.width != 4:
                raise TypeError(
                    "scalar kernel parameters must be 32-bit (%r)" % name)
            params.append(KernelParam(name, annotation))
        return params

    def __repr__(self):
        return "<kernel %s(%s)>" % (
            self.name, ", ".join(repr(p) for p in self.params))


def _annotation_to_type(node):
    """Resolve a syntactic annotation: a scalar name or ptr[scalar]."""
    if isinstance(node, ast.Name) and node.id in SCALAR_TYPES:
        return SCALAR_TYPES[node.id]
    if (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name) and node.value.id == "ptr"
            and isinstance(node.slice, ast.Name)
            and node.slice.id in SCALAR_TYPES):
        return PtrType(SCALAR_TYPES[node.slice.id])
    raise TypeError("unsupported parameter annotation %s" % ast.dump(node))


def kernel(func):
    """Decorator marking a function as a GPU kernel (parsed, not run)."""
    return KernelSource(func)
