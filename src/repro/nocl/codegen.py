"""Mode-specific code generation: how pointers compile in each mode.

This is where the paper's three worlds diverge:

- **baseline**: a pointer is a raw 32-bit address; indexing is shift+add;
  loads/stores are plain RV32 accesses with no checks.
- **purecap**: a pointer is a capability register; indexing is CIncOffset;
  loads/stores are capability-checked (CL*/CS*); pointer arguments arrive
  as capabilities (CLC from the argument block) and shared arrays are
  *derived* from the scratchpad root via CSetBounds.  Kernels need no
  source changes — only this code generator differs.
- **boundscheck**: the Rust-comparison mode (paper section 4.7): raw
  addresses plus a hidden per-pointer length, with a compare-and-trap
  bounds check compiled before every dynamically-indexed access, the same
  check ``rustc`` emits for slice indexing.
"""

from repro.cheri import concentrate
from repro.isa.instructions import Op
from repro.nocl.dsl import f32, i32, u32
from repro.nocl.ir import VInstr, VLoadImm

#: Physical (pre-coloured) registers the runtime initialises at launch.
REG_ZERO = 0
REG_SP = 2       # per-thread stack pointer (a capability under purecap)
REG_ARG = 3      # gp: kernel-argument block pointer / capability
REG_SCRATCH = 4  # tp: scratchpad base pointer / root capability
REG_TID = 10     # a0: threadIdx.x
REG_BLK0 = 11    # a1: first block index for this thread's slot
REG_NSLOT = 12   # a2: number of concurrent block slots (block-loop stride)

#: Argument-block header layout (byte offsets).
HDR_GRID_DIM = 0
HDR_BLOCK_DIM = 4
ARGS_OFFSET = 8

#: Comment stamped on every software bounds-check guard (the BLTU of the
#: compare-and-trap triple).  The optimizer and the dynamic-check probe
#: identify guards by this marker, so keep it in sync with check_bounds.
BOUNDS_CHECK_COMMENT = "bounds check"


class Value:
    """A scalar SSA-ish value: virtual register + type (+ known constant)."""

    __slots__ = ("vreg", "ty", "const", "temp")

    def __init__(self, vreg, ty, const=None, temp=True):
        self.vreg = vreg
        self.ty = ty
        self.const = const
        self.temp = temp

    def __repr__(self):
        return "Value(v%d: %s%s)" % (
            self.vreg, self.ty,
            "" if self.const is None else " = %d" % self.const)


class PtrValue:
    """A pointer value: address vreg (+ element-count length in boundscheck
    mode) and the element type it indexes."""

    __slots__ = ("vreg", "elem", "len_vreg", "len_const", "temp")

    def __init__(self, vreg, elem, len_vreg=None, len_const=None, temp=True):
        self.vreg = vreg
        self.elem = elem
        self.len_vreg = len_vreg
        self.len_const = len_const
        self.temp = temp

    def __repr__(self):
        return "PtrValue(v%d -> %s)" % (self.vreg, self.elem)


def _log2(width):
    return {1: 0, 2: 1, 4: 2, 8: 3}[width]


_LOAD_OPS = {
    # (width, signed) -> (baseline op, purecap op)
    (1, True): (Op.LB, Op.CLB),
    (1, False): (Op.LBU, Op.CLBU),
    (2, True): (Op.LH, Op.CLH),
    (2, False): (Op.LHU, Op.CLHU),
    (4, True): (Op.LW, Op.CLW),
    (4, False): (Op.LW, Op.CLW),
}
_STORE_OPS = {
    1: (Op.SB, Op.CSB),
    2: (Op.SH, Op.CSH),
    4: (Op.SW, Op.CSW),
}


class CodeGen:
    """Base class: the pieces shared by all three modes.

    The frontend hands us an ``emitter`` exposing ``emit``/``emit_li``/
    ``new_vreg``/``new_label``/``place_label`` so generated instructions
    interleave with the frontend's stream.
    """

    mode = None
    uses_cheri = False
    pointer_arg_slot_bytes = 4
    scalar_arg_slot_bytes = 4
    #: Unconditional-jump opcode: plain JAL, or CJAL under purecap (where
    #: the program counter is a capability).
    jump_op = Op.JAL

    def __init__(self, emitter):
        self.e = emitter

    # -- prologue helpers ---------------------------------------------------

    def load_header_word(self, offset, comment):
        value = Value(self.e.new_vreg(), i32, temp=False)
        self._load_word_from(REG_ARG, offset, value.vreg, comment)
        return value

    def load_scalar_arg(self, offset, ty, name):
        value = Value(self.e.new_vreg(), ty, temp=False)
        self._load_word_from(REG_ARG, offset, value.vreg, "arg %s" % name)
        return value

    # -- scalar helpers shared by subclasses ----------------------------------

    def scale_index(self, idx, width):
        """Return a vreg holding idx * width (byte offset)."""
        shift = _log2(width)
        if shift == 0:
            return idx.vreg
        scaled = self.e.new_vreg()
        self.e.emit(VInstr(Op.SLLI, rd=scaled, rs1=idx.vreg, imm=shift))
        return scaled

    def _value_ty(self, elem):
        if elem.is_float:
            return f32
        return u32 if not elem.signed and elem.width == 4 else i32

    def check_bounds(self, pointer, idx):
        """No software checks by default (hardware enforces under CHERI)."""

    # -- things subclasses must provide -----------------------------------------
    # load_ptr_arg, make_shared_ptr, new_ptr, ptr_copy, load, store, atomic_add
    # _load_word_from


class BaselineCodeGen(CodeGen):
    """Raw 32-bit pointers, no checks: the paper's Baseline configuration."""

    mode = "baseline"

    def _load_word_from(self, base_reg, offset, rd, comment):
        self.e.emit(VInstr(Op.LW, rd=rd, rs1=base_reg, imm=offset,
                           comment=comment))

    def load_ptr_arg(self, offset, elem, name):
        vreg = self.e.new_vreg()
        self._load_word_from(REG_ARG, offset, vreg, "ptr arg %s" % name)
        return PtrValue(vreg, elem, temp=False)

    def make_shared_ptr(self, offset, size_bytes, count, elem):
        vreg = self.e.new_vreg()
        if offset <= 2047:
            self.e.emit(VInstr(Op.ADDI, rd=vreg, rs1=REG_SCRATCH, imm=offset,
                               comment="shared array"))
        else:
            self.e.emit(VLoadImm(vreg, offset, comment="shared array"))
            self.e.emit(VInstr(Op.ADD, rd=vreg, rs1=vreg, rs2=REG_SCRATCH))
        return PtrValue(vreg, elem, len_const=count, temp=False)

    def new_ptr(self, elem):
        return PtrValue(self.e.new_vreg(), elem, temp=False)

    def ptr_copy(self, dst, src):
        self.e.emit(VInstr(Op.ADDI, rd=dst.vreg, rs1=src.vreg, imm=0,
                           comment="ptr copy"))

    def _effective_address(self, pointer, idx):
        if idx.const is not None and 0 <= idx.const * pointer.elem.width <= 2047:
            return pointer.vreg, idx.const * pointer.elem.width
        byte_off = self.scale_index(idx, pointer.elem.width)
        addr = self.e.new_vreg()
        self.e.emit(VInstr(Op.ADD, rd=addr, rs1=pointer.vreg, rs2=byte_off))
        return addr, 0

    def check_bounds(self, pointer, idx):
        pass  # no safety whatsoever

    def load(self, pointer, idx):
        self.check_bounds(pointer, idx)
        base, imm = self._effective_address(pointer, idx)
        op = _LOAD_OPS[(pointer.elem.width, pointer.elem.signed)][0]
        rd = self.e.new_vreg()
        self.e.emit(VInstr(op, rd=rd, rs1=base, imm=imm))
        return Value(rd, self._value_ty(pointer.elem))

    def store(self, pointer, idx, value):
        self.check_bounds(pointer, idx)
        base, imm = self._effective_address(pointer, idx)
        op = _STORE_OPS[pointer.elem.width][0]
        self.e.emit(VInstr(op, rs1=base, rs2=value.vreg, imm=imm))

    def atomic_add(self, pointer, idx, value):
        self.check_bounds(pointer, idx)
        base, imm = self._effective_address(pointer, idx)
        if imm:
            addr = self.e.new_vreg()
            self.e.emit(VInstr(Op.ADDI, rd=addr, rs1=base, imm=imm))
            base = addr
        rd = self.e.new_vreg()
        self.e.emit(VInstr(Op.AMOADD_W, rd=rd, rs1=base, rs2=value.vreg))
        return Value(rd, i32)


class BoundsCheckCodeGen(BaselineCodeGen):
    """Baseline plus Rust-style software bounds checks (paper section 4.7).

    Every pointer carries a hidden element-count length; every dynamically
    indexed access compiles to ``bltu idx, len, ok; trap; ok:`` before the
    access — the check the Rust compiler emits for slice indexing and, as
    the paper observes, can rarely eliminate in CUDA-style code because
    there is no general relationship between buffer sizes and thread ids.
    """

    mode = "boundscheck"
    pointer_arg_slot_bytes = 8  # address word + length word

    def load_ptr_arg(self, offset, elem, name):
        vreg = self.e.new_vreg()
        len_vreg = self.e.new_vreg()
        self._load_word_from(REG_ARG, offset, vreg, "ptr arg %s" % name)
        self._load_word_from(REG_ARG, offset + 4, len_vreg,
                             "len of %s" % name)
        return PtrValue(vreg, elem, len_vreg=len_vreg, temp=False)

    def make_shared_ptr(self, offset, size_bytes, count, elem):
        pointer = super().make_shared_ptr(offset, size_bytes, count, elem)
        len_vreg = self.e.new_vreg()
        self.e.emit(VLoadImm(len_vreg, count, comment="shared len"))
        pointer.len_vreg = len_vreg
        pointer.len_const = count
        return pointer

    def new_ptr(self, elem):
        return PtrValue(self.e.new_vreg(), elem,
                        len_vreg=self.e.new_vreg(), temp=False)

    def ptr_copy(self, dst, src):
        super().ptr_copy(dst, src)
        if src.len_vreg is not None:
            self.e.emit(VInstr(Op.ADDI, rd=dst.len_vreg, rs1=src.len_vreg,
                               imm=0, comment="len copy"))
        dst.len_const = src.len_const

    def check_bounds(self, pointer, idx):
        # A constant index into a statically-sized array is provably safe;
        # rustc elides the check there too.
        if (idx.const is not None and pointer.len_const is not None
                and 0 <= idx.const < pointer.len_const):
            return
        if pointer.len_vreg is None:
            return
        idx_vreg = idx.vreg
        ok = self.e.new_label("bc_ok")
        self.e.emit(VInstr(Op.BLTU, rs1=idx_vreg, rs2=pointer.len_vreg,
                           target=ok, comment=BOUNDS_CHECK_COMMENT))
        self.e.emit(VInstr(Op.TRAP, comment="index out of bounds"))
        self.e.place_label(ok)


class PurecapCodeGen(CodeGen):
    """Pure-capability CHERI: pointers are bounded, unforgeable capabilities."""

    mode = "purecap"
    uses_cheri = True
    pointer_arg_slot_bytes = 8
    scalar_arg_slot_bytes = 8  # keep capability alignment in the arg block
    jump_op = Op.CJAL

    def _load_word_from(self, base_reg, offset, rd, comment):
        self.e.emit(VInstr(Op.CLW, rd=rd, rs1=base_reg, imm=offset,
                           comment=comment))

    def load_ptr_arg(self, offset, elem, name):
        vreg = self.e.new_vreg()
        self.e.emit(VInstr(Op.CLC, rd=vreg, rs1=REG_ARG, imm=offset,
                           comment="cap arg %s" % name))
        return PtrValue(vreg, elem, temp=False)

    def make_shared_ptr(self, offset, size_bytes, count, elem):
        vreg = self.e.new_vreg()
        if offset == 0:
            self.e.emit(VInstr(Op.CMOVE, rd=vreg, rs1=REG_SCRATCH,
                               comment="shared array"))
        elif offset <= 2047:
            self.e.emit(VInstr(Op.CINCOFFSETIMM, rd=vreg, rs1=REG_SCRATCH,
                               imm=offset, comment="shared array"))
        else:
            tmp = self.e.new_vreg()
            self.e.emit(VLoadImm(tmp, offset, comment="shared array"))
            self.e.emit(VInstr(Op.CINCOFFSET, rd=vreg, rs1=REG_SCRATCH,
                               rs2=tmp))
        if size_bytes <= 4095:
            self.e.emit(VInstr(Op.CSETBOUNDSIMM, rd=vreg, rs1=vreg,
                               imm=size_bytes))
        else:
            tmp = self.e.new_vreg()
            self.e.emit(VLoadImm(tmp, size_bytes))
            self.e.emit(VInstr(Op.CSETBOUNDS, rd=vreg, rs1=vreg, rs2=tmp))
        return PtrValue(vreg, elem, len_const=count, temp=False)

    def new_ptr(self, elem):
        return PtrValue(self.e.new_vreg(), elem, temp=False)

    def ptr_copy(self, dst, src):
        self.e.emit(VInstr(Op.CMOVE, rd=dst.vreg, rs1=src.vreg,
                           comment="cap copy"))

    def _effective_cap(self, pointer, idx):
        """Capability addressing: returns (cap_vreg, immediate)."""
        if idx.const is not None and 0 <= idx.const * pointer.elem.width <= 2047:
            return pointer.vreg, idx.const * pointer.elem.width
        byte_off = self.scale_index(idx, pointer.elem.width)
        cap = self.e.new_vreg()
        self.e.emit(VInstr(Op.CINCOFFSET, rd=cap, rs1=pointer.vreg,
                           rs2=byte_off))
        return cap, 0

    def load(self, pointer, idx):
        cap, imm = self._effective_cap(pointer, idx)
        op = _LOAD_OPS[(pointer.elem.width, pointer.elem.signed)][1]
        rd = self.e.new_vreg()
        self.e.emit(VInstr(op, rd=rd, rs1=cap, imm=imm))
        return Value(rd, self._value_ty(pointer.elem))

    def store(self, pointer, idx, value):
        cap, imm = self._effective_cap(pointer, idx)
        op = _STORE_OPS[pointer.elem.width][1]
        self.e.emit(VInstr(op, rs1=cap, rs2=value.vreg, imm=imm))

    def atomic_add(self, pointer, idx, value):
        cap, imm = self._effective_cap(pointer, idx)
        if imm:
            cap2 = self.e.new_vreg()
            self.e.emit(VInstr(Op.CINCOFFSETIMM, rd=cap2, rs1=cap, imm=imm))
            cap = cap2
        rd = self.e.new_vreg()
        self.e.emit(VInstr(Op.CAMOADD_W, rd=rd, rs1=cap, rs2=value.vreg))
        return Value(rd, i32)


CODEGENS = {
    "baseline": BaselineCodeGen,
    "purecap": PurecapCodeGen,
    "boundscheck": BoundsCheckCodeGen,
}


def shared_alloc_layout(cursor, count, elem):
    """Place a shared array so its capability is exactly representable.

    Returns (offset, padded_size_bytes, next_cursor).  The offset is
    aligned with CRAM and the size rounded with CRRL so CSetBounds in the
    purecap prologue is always exact (no silent widening into a
    neighbouring shared array).
    """
    size = count * elem.width
    rounded = concentrate.crrl(size)
    mask = concentrate.crml(size)
    align = (~mask & 0xFFFFFFFF) + 1
    offset = (cursor + align - 1) & mask
    return offset, rounded, offset + rounded
