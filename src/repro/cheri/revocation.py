"""Temporal safety: quarantine and Cornucopia-style revocation sweeps.

The paper scopes itself to spatial safety but points at CHERI's temporal
story (section 2.4, references [25, 26]): because capabilities are
precisely distinguishable from data via tags, freed memory can be
*revoked* — a sweep clears the tag of every capability, in registers or
memory, that points into freed (quarantined) regions.  Use-after-free then
faults deterministically like any other tag violation.

This module implements the memory-side sweep for the simulated GPU:

- a :class:`Quarantine` accumulates freed [base, top) regions,
- :func:`sweep_memory` walks the tagged words of main memory, decodes each
  candidate capability, and clears tags of those whose bounds overlap a
  quarantined region (Cornucopia's load-barrier variant is not modelled;
  this is the stop-the-world sweep).

The NoCL runtime exposes this as ``free()`` + ``revoke()``.
"""

from repro.cheri.capability import Capability


class Quarantine:
    """Freed-but-not-yet-reusable address regions awaiting revocation."""

    def __init__(self):
        self._regions = []

    def add(self, base, top):
        if top <= base:
            raise ValueError("empty quarantine region")
        self._regions.append((base, top))

    def __len__(self):
        return len(self._regions)

    def __bool__(self):
        return bool(self._regions)

    def overlaps(self, base, top):
        """Does [base, top) intersect any quarantined region?"""
        for q_base, q_top in self._regions:
            if base < q_top and q_base < top:
                return True
        return False

    def drain(self):
        """Empty the quarantine (after a completed sweep)."""
        regions, self._regions = self._regions, []
        return regions


def _capability_at(memory, word_index):
    """Decode the (aligned) capability whose low half is at word_index.

    Returns None unless both halves are tagged (the 32-bit-granule
    invariant of paper section 3.4).
    """
    if word_index % 2:
        return None
    addr = word_index * 4
    raw, tag = memory.read_cap_raw(addr)
    if not tag:
        return None
    return addr, Capability.from_mem(raw | (1 << 64))


def sweep_memory(memory, quarantine):
    """Revoke every in-memory capability overlapping the quarantine.

    Walks only words that currently carry tags (capabilities are sparse),
    decodes each candidate, and clears its tag when its *bounds* overlap a
    quarantined region — bounds, not just the current address, because a
    revoked capability must not be resurrectable by moving its cursor.
    Returns the number of capabilities revoked.
    """
    revoked = 0
    # Snapshot: the sweep itself mutates tag state.
    tagged = sorted(memory._tags)
    seen = set()
    for index in tagged:
        base_index = index & ~1
        if base_index in seen:
            continue
        seen.add(base_index)
        entry = _capability_at(memory, base_index)
        if entry is None:
            continue
        addr, cap = entry
        if quarantine.overlaps(cap.base, cap.top):
            memory.write_cap_raw(addr, cap.to_mem() & ((1 << 64) - 1), False)
            revoked += 1
    return revoked
