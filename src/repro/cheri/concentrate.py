"""CHERI Concentrate compressed bounds for 32-bit addresses (64+1-bit caps).

The paper (section 2.4) uses the CHERI Concentrate format [Woodruff et al.,
IEEE ToC 2019]: a 32-bit lower bound and a 33-bit upper bound are stored in
just 15 bits of metadata, encoded floating-point-style relative to the
capability address.  This module implements that format bit-for-bit:

- 1-bit internal-exponent flag ``IE``
- 8-bit ``B`` field (bottom/base mantissa; low 3 bits reused for the
  exponent when ``IE`` is set)
- 6-bit ``T`` field (top mantissa, top two bits reconstructed from ``B``;
  low 3 bits reused for the exponent when ``IE`` is set)

for a total of 15 bounds bits, exactly as the paper states.  The mantissa
width ``MW`` is 8.  With ``IE = 0`` the exponent is zero and lengths below
``2**(MW-2) = 64`` bytes are represented exactly.  With ``IE = 1`` the
6-bit exponent ``E`` scales the mantissas by ``2**E`` and bounds are rounded
outward to multiples of ``2**(E+3)``.

The functions here mirror CheriCapLib (paper Figure 7):

- :func:`encode_bounds`   — ``setBounds`` bounds computation (with rounding)
- :func:`decode_bounds`   — ``getBase`` / ``getTop`` / ``getLength``
- :func:`is_representable`— the ``setAddr`` representability check
- :func:`crrl` / :func:`crml` — the CRRL / CRAM instructions
"""

from collections import namedtuple
from functools import lru_cache

#: Width of a capability address in bits (RV32).
ADDR_BITS = 32
#: Mantissa width of the Concentrate encoding.
MANTISSA_BITS = 8
#: Maximum internal exponent: the full 2**32-byte address space decodes with
#: a mantissa length of 64 when E == 26.
MAX_EXP = 26

_ADDR_MASK = (1 << ADDR_BITS) - 1
_TOP_MASK = (1 << (ADDR_BITS + 1)) - 1
_MW = MANTISSA_BITS

#: Encoded bounds: internal-exponent flag, 8-bit B field, 6-bit T field.
CapBounds = namedtuple("CapBounds", ["ie", "b_field", "t_field"])

#: The bounds encoding of the null capability (and of cleared metadata).
NULL_BOUNDS = CapBounds(ie=0, b_field=0, t_field=0)


def _reconstruct_mantissas(bounds):
    """Expand stored fields to the effective exponent and 8-bit mantissas.

    Returns (exp, b8, t8) where b8/t8 are the full 8-bit base/top mantissas.
    The top two bits of t8 are reconstructed from b8 using the length
    carry-out and the length MSB implied by the IE flag (see the CHERI
    Concentrate paper, section IV).
    """
    if bounds.ie == 0:
        exp = 0
        b8 = bounds.b_field
        t_low6 = bounds.t_field
    else:
        exp = min(((bounds.t_field & 0x7) << 3) | (bounds.b_field & 0x7), MAX_EXP)
        b8 = bounds.b_field & 0xF8
        t_low6 = (bounds.t_field >> 3) << 3
    length_carry = 1 if t_low6 < (b8 & 0x3F) else 0
    length_msb = bounds.ie
    t_hi2 = ((b8 >> 6) + length_carry + length_msb) & 0x3
    t8 = (t_hi2 << 6) | t_low6
    return exp, b8, t8


@lru_cache(maxsize=1 << 16)
def decode_bounds(bounds, addr):
    """Decode absolute (base, top) bounds relative to ``addr``.

    ``base`` is a 32-bit value and ``top`` a 33-bit value (the top of the
    full address space is ``2**32``).  Decoding is total: any bit pattern
    yields some bounds, but only tagged capabilities (which are always
    derived, hence canonical) are ever used for access checks.  Decoding
    is pure, and the pipeline re-checks the same few capabilities for
    millions of accesses, so results are memoised.
    """
    exp, b8, t8 = _reconstruct_mantissas(bounds)
    shift = exp + _MW
    addr &= _ADDR_MASK
    a_top = addr >> shift
    a_mid = (addr >> exp) & 0xFF
    # Representable-region boundary: one eighth of the representable space
    # below the base mantissa.
    r = (b8 - (1 << (_MW - 3))) & 0xFF
    a_hi = 1 if a_mid < r else 0
    c_base = (1 if b8 < r else 0) - a_hi
    c_top = (1 if t8 < r else 0) - a_hi
    base = (((a_top + c_base) << shift) | (b8 << exp)) & _ADDR_MASK
    top = (((a_top + c_top) << shift) | (t8 << exp)) & _TOP_MASK
    # One-bit top correction: if base and top land more than an address
    # space apart, flip the MSB of top (CHERI ISA spec, getCapBounds).
    if exp < (MAX_EXP - 1):
        top2 = (top >> (ADDR_BITS - 1)) & 0x3
        base1 = (base >> (ADDR_BITS - 1)) & 0x1
        if ((top2 - base1) & 0x3) > 1:
            top ^= 1 << ADDR_BITS
    return base, top


def encode_bounds(base, top):
    """Encode requested [base, top) as Concentrate bounds (``setBounds``).

    Returns ``(bounds, exact, actual_base, actual_top)``.  When the
    requested region cannot be represented exactly, the bounds are rounded
    *outward* (base down, top up) to the representable granule and ``exact``
    is False.  Requires ``0 <= base <= top <= 2**32``.
    """
    if not 0 <= base <= top <= (1 << ADDR_BITS):
        raise ValueError("bounds out of range: base=%#x top=%#x" % (base, top))
    length = top - base
    if length < (1 << (_MW - 2)):
        # IE = 0: exact representation, exponent zero.
        bounds = CapBounds(ie=0, b_field=base & 0xFF, t_field=top & 0x3F)
        return bounds, True, base, top
    exp = max(0, length.bit_length() - (_MW - 1))
    while True:
        granule = 1 << (exp + 3)
        b_mant = base >> (exp + 3)
        t_mant = (top + granule - 1) >> (exp + 3)
        if ((t_mant - b_mant) << 3) >= (1 << (_MW - 1)):
            # Rounding the top up overflowed the mantissa: coarsen by one.
            exp += 1
            continue
        break
    if exp > MAX_EXP:
        raise ValueError("unrepresentable length %#x" % length)
    b_field = ((b_mant & 0x1F) << 3) | (exp & 0x7)
    t_field = ((t_mant & 0x7) << 3) | ((exp >> 3) & 0x7)
    bounds = CapBounds(ie=1, b_field=b_field, t_field=t_field)
    actual_base = b_mant << (exp + 3)
    actual_top = t_mant << (exp + 3)
    exact = actual_base == base and actual_top == top
    return bounds, exact, actual_base, actual_top


def is_representable(bounds, ref_addr, new_addr):
    """``setAddr`` representability: do the decoded bounds survive the move?

    A capability's bounds are decoded relative to its address; moving the
    address too far out of bounds changes the decode.  CHERI allows limited
    out-of-bounds wandering (needed for C/C++ pointer idioms, paper section
    2.4) and clears the tag beyond that.  This is the definitional check:
    bounds decoded at ``new_addr`` must equal bounds decoded at ``ref_addr``.
    """
    return decode_bounds(bounds, new_addr) == decode_bounds(bounds, ref_addr)


def crrl(length):
    """CRRL: round ``length`` up to the nearest exactly-representable length.

    Mirrors the CRRL instruction: given a requested region size, return the
    smallest size >= ``length`` for which setBounds can be exact (assuming a
    suitably aligned base, see :func:`crml`).
    """
    if not 0 <= length <= (1 << ADDR_BITS):
        raise ValueError("length out of range: %#x" % length)
    if length < (1 << (_MW - 2)):
        return length
    exp = max(0, length.bit_length() - (_MW - 1))
    while True:
        mask = (1 << (exp + 3)) - 1
        rounded = (length + mask) & ~mask
        if (rounded >> exp) >= (1 << (_MW - 1)):
            exp += 1
            continue
        return rounded


def crml(length):
    """CRAM: alignment mask required for an exact region of ``length`` bytes.

    Mirrors the CRAM (Capability Representable Alignment Mask) instruction:
    a base ANDed with this mask, combined with a :func:`crrl`-rounded length,
    yields exact setBounds.  Returns an ``ADDR_BITS``-bit mask.
    """
    if not 0 <= length <= (1 << ADDR_BITS):
        raise ValueError("length out of range: %#x" % length)
    if length < (1 << (_MW - 2)):
        return _ADDR_MASK
    exp = max(0, length.bit_length() - (_MW - 1))
    while True:
        mask = (1 << (exp + 3)) - 1
        rounded = (length + mask) & ~mask
        if (rounded >> exp) >= (1 << (_MW - 1)):
            exp += 1
            continue
        return _ADDR_MASK & ~mask
