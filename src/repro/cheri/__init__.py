"""Capability model: CHERI Concentrate bounds compression and capability algebra.

This package is the software equivalent of CheriCapLib (paper Figure 7): the
compressed 64+1-bit capability format used by the CHERI-SIMT pipeline, with
the same key operations (``from_mem``/``to_mem``, ``set_addr`` with a
representability check, ``is_access_in_bounds``, ``get_base``/``get_top``/
``get_length``, ``set_bounds``, and the CRRL/CRAM rounding helpers).
"""

from repro.cheri.capability import (
    CAP_NULL,
    Capability,
    Perms,
    root_capability,
)
from repro.cheri.concentrate import (
    ADDR_BITS,
    CapBounds,
    crml,
    crrl,
    decode_bounds,
    encode_bounds,
    is_representable,
)
from repro.cheri.exceptions import (
    BoundsViolation,
    CapabilityFault,
    PermissionViolation,
    SealViolation,
    TagViolation,
)

__all__ = [
    "ADDR_BITS",
    "CAP_NULL",
    "BoundsViolation",
    "CapBounds",
    "Capability",
    "CapabilityFault",
    "Perms",
    "PermissionViolation",
    "SealViolation",
    "TagViolation",
    "crml",
    "crrl",
    "decode_bounds",
    "encode_bounds",
    "is_representable",
    "root_capability",
]
