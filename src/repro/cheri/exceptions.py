"""Capability fault taxonomy.

CHERI faults are *deterministic and enforced* (paper section 2.4): any memory
access through a capability that fails a tag, seal, permission, or bounds
check raises a precise exception rather than silently corrupting state.  The
SIMT pipeline converts these into kernel aborts that integration tests assert
on.
"""


class CapabilityFault(Exception):
    """Base class for all capability-check failures.

    Attributes:
        address: the faulting address (int) when applicable, else None.
        thread: global hardware-thread index that faulted, else None.
        pc: program counter of the faulting instruction, else None.
    """

    def __init__(self, message, address=None, thread=None, pc=None):
        super().__init__(message)
        self.address = address
        self.thread = thread
        self.pc = pc

    def located(self, thread, pc):
        """Return a copy annotated with the faulting thread and PC."""
        clone = type(self)(str(self), address=self.address, thread=thread, pc=pc)
        return clone

    def __str__(self):
        base = super().__str__()
        parts = []
        if self.address is not None:
            parts.append("addr=0x%08x" % self.address)
        if self.thread is not None:
            parts.append("thread=%d" % self.thread)
        if self.pc is not None:
            parts.append("pc=0x%08x" % self.pc)
        if parts:
            return "%s (%s)" % (base, ", ".join(parts))
        return base


class TagViolation(CapabilityFault):
    """Use of an untagged (invalid) capability for a privileged operation."""


class SealViolation(CapabilityFault):
    """Use of a sealed capability where an unsealed one is required."""


class BoundsViolation(CapabilityFault):
    """Memory access outside the capability's [base, top) bounds."""


class PermissionViolation(CapabilityFault):
    """Access lacking a required permission bit (load/store/execute/...)."""
