"""The 64+1-bit capability value type used throughout the pipeline.

A capability packs (paper section 2.4, bit-layout diagram):

==========  =====  ==============================================
field       bits   meaning
==========  =====  ==============================================
tag         1      validity (hidden; stored out of band in memory)
perms       12     permission bits (:class:`Perms`)
otype       4      object type; 0 means unsealed
flags       1      software-defined flag
bounds      15     Concentrate-encoded bounds (IE + B + T)
address     32     the current pointer value
==========  =====  ==============================================

``Capability`` is an immutable "CapPipe" view: bounds are kept decoded
(base/top cached) so pipeline checks are cheap, while :meth:`to_mem` /
:func:`Capability.from_mem` convert to/from the packed 65-bit "CapMem"
format stored in registers and memory.  Two capabilities with the same
bounds, permissions and type have *identical* metadata words even when
their addresses differ — the value-regularity property the metadata
register file exploits (paper section 3.1).
"""

from dataclasses import dataclass, replace
from enum import IntFlag

from repro.cheri import concentrate
from repro.cheri.concentrate import ADDR_BITS, CapBounds, NULL_BOUNDS

_ADDR_MASK = (1 << ADDR_BITS) - 1

#: otype value of an unsealed capability.
OTYPE_UNSEALED = 0
#: otype marking a sealed-entry ("sentry") capability (CSealEntry).
OTYPE_SENTRY = 1


class Perms(IntFlag):
    """Capability permission bits (a pragmatic CHERI-RISC-V subset)."""

    GLOBAL = 1 << 0
    EXECUTE = 1 << 1
    LOAD = 1 << 2
    STORE = 1 << 3
    LOAD_CAP = 1 << 4
    STORE_CAP = 1 << 5
    STORE_LOCAL_CAP = 1 << 6
    SEAL = 1 << 7
    UNSEAL = 1 << 8
    ACCESS_SYS_REGS = 1 << 9
    SET_CID = 1 << 10
    INVOKE = 1 << 11

    @classmethod
    def all_perms(cls):
        value = 0
        for perm in cls:
            value |= perm
        return cls(value)


#: Decoded (bounds, perms, otype, flags) per 32-bit metadata word.  The
#: pipeline rebuilds capabilities from the split register files on every
#: operand fetch, but distinct metadata words are few (value regularity,
#: paper section 3.1), so the expensive field unpacking — in particular the
#: ``Perms`` IntFlag construction — is done once per distinct word.
_META_DECODE_CACHE = {}


@dataclass(frozen=True)
class Capability:
    """An immutable, decoded capability (the pipeline 'CapPipe' view)."""

    tag: bool = False
    addr: int = 0
    bounds: CapBounds = NULL_BOUNDS
    perms: Perms = Perms(0)
    otype: int = OTYPE_UNSEALED
    flags: int = 0

    @classmethod
    def _make(cls, tag, addr, bounds, perms, otype, flags):
        """Construct without the frozen-dataclass ``__init__`` overhead.

        Hot-path helper: writing the field dict directly skips six
        ``object.__setattr__`` calls per capability.  Field semantics are
        identical to the generated constructor.
        """
        cap = object.__new__(cls)
        cap.__dict__.update(tag=tag, addr=addr, bounds=bounds, perms=perms,
                            otype=otype, flags=flags)
        return cap

    # -- derived views ----------------------------------------------------

    @property
    def base(self):
        """Decoded lower bound (getBase)."""
        return concentrate.decode_bounds(self.bounds, self.addr)[0]

    @property
    def top(self):
        """Decoded upper bound, a 33-bit value (getTop)."""
        return concentrate.decode_bounds(self.bounds, self.addr)[1]

    @property
    def length(self):
        """getLength: top - base, clamped at zero for malformed patterns."""
        base, top = concentrate.decode_bounds(self.bounds, self.addr)
        return max(0, top - base)

    @property
    def is_sealed(self):
        return self.otype != OTYPE_UNSEALED

    @property
    def is_sentry(self):
        return self.otype == OTYPE_SENTRY

    # -- in-memory format --------------------------------------------------

    def meta_word(self):
        """The 32-bit metadata half of the CapMem format (no tag, no addr).

        This is exactly the value held in the capability-metadata register
        file; uniform-vector detection compares these words.  The packed
        word is memoised per instance (immutable fields, so it can never
        change) because the pipeline re-packs on every register writeback.
        """
        word = self.__dict__.get("_meta_word")
        if word is None:
            word = int(self.perms) & 0xFFF
            word = (word << 4) | (self.otype & 0xF)
            word = (word << 1) | (self.flags & 0x1)
            word = (word << 1) | (self.bounds.ie & 0x1)
            word = (word << 8) | (self.bounds.b_field & 0xFF)
            word = (word << 6) | (self.bounds.t_field & 0x3F)
            self.__dict__["_meta_word"] = word
        return word

    def to_mem(self):
        """Pack into the 65-bit CapMem integer: tag | meta(32) | addr(32)."""
        value = (1 if self.tag else 0) << 64
        value |= self.meta_word() << 32
        value |= self.addr & _ADDR_MASK
        return value

    @classmethod
    def from_mem(cls, value):
        """Unpack a 65-bit CapMem integer (inverse of :meth:`to_mem`)."""
        addr = value & _ADDR_MASK
        meta = (value >> 32) & 0xFFFFFFFF
        tag = bool((value >> 64) & 1)
        return cls.from_meta_word(meta, addr, tag)

    @classmethod
    def from_meta_word(cls, meta, addr, tag):
        """Rebuild a capability from a 32-bit metadata word + address + tag."""
        decoded = _META_DECODE_CACHE.get(meta)
        if decoded is None:
            decoded = (
                CapBounds(ie=(meta >> 14) & 0x1, b_field=(meta >> 6) & 0xFF,
                          t_field=meta & 0x3F),
                Perms((meta >> 20) & 0xFFF),
                (meta >> 16) & 0xF,   # otype
                (meta >> 15) & 0x1,   # flags
            )
            _META_DECODE_CACHE[meta] = decoded
        bounds, perms, otype, flags = decoded
        cap = cls._make(tag, addr & _ADDR_MASK, bounds, perms, otype, flags)
        cap.__dict__["_meta_word"] = meta & 0xFFFFFFFF
        return cap

    # -- capability manipulation (the CHERI instruction semantics) ---------

    def _with_addr_tag(self, addr, tag):
        """Derive a copy with new address/tag (metadata word unchanged)."""
        cap = Capability._make(tag, addr, self.bounds, self.perms,
                               self.otype, self.flags)
        word = self.__dict__.get("_meta_word")
        if word is not None:
            cap.__dict__["_meta_word"] = word
        return cap

    def with_tag_cleared(self):
        """CClearTag: same bit pattern, tag cleared."""
        return self._with_addr_tag(self.addr, False)

    def set_addr(self, new_addr):
        """CSetAddr/CIncOffset address update with representability check.

        The tag is cleared if the new address moves the capability so far
        out of bounds that the compressed bounds no longer decode to the
        same region (paper Figure 7, ``setAddr``), or if the capability is
        sealed (sealed capabilities are immutable).
        """
        new_addr &= _ADDR_MASK
        tag = self.tag
        if tag and self.otype != OTYPE_UNSEALED:
            tag = False
        if tag and not concentrate.is_representable(self.bounds, self.addr, new_addr):
            tag = False
        return self._with_addr_tag(new_addr, tag)

    def inc_addr(self, offset):
        """CIncOffset: address += offset (mod 2**32), same checks as set_addr."""
        return self.set_addr((self.addr + offset) & _ADDR_MASK)

    def set_bounds(self, req_base, req_length, exact=False):
        """CSetBounds[Exact]: narrow bounds to [req_base, req_base+req_length).

        Returns (new_capability, was_exact).  The new bounds are rounded
        outward if inexact.  The tag is cleared if the capability is
        untagged/sealed or if the *requested* region is not contained in the
        current bounds (monotonicity: derivation can never grow authority).
        When ``exact`` is set, inexact rounding also clears the tag rather
        than widening silently.
        """
        req_top = req_base + req_length
        new_bounds, was_exact, actual_base, actual_top = concentrate.encode_bounds(
            req_base & _ADDR_MASK, min(req_top, 1 << ADDR_BITS)
        )
        tag = self.tag and not self.is_sealed
        cur_base, cur_top = concentrate.decode_bounds(self.bounds, self.addr)
        if not (cur_base <= req_base and req_top <= cur_top):
            tag = False
        if exact and not was_exact:
            tag = False
        new_cap = replace(self, bounds=new_bounds, addr=req_base & _ADDR_MASK, tag=tag)
        # Guard against rounding that escapes the parent region.
        if tag and not (cur_base <= actual_base and actual_top <= cur_top):
            # Outward rounding may exceed the parent bounds; CHERI permits
            # this only for untagged results.
            new_cap = new_cap.with_tag_cleared()
        return new_cap, was_exact

    def and_perms(self, mask):
        """CAndPerm: intersect the permission set with ``mask``."""
        tag = self.tag and not self.is_sealed
        return Capability._make(tag, self.addr, self.bounds,
                                Perms(int(self.perms) & int(mask) & 0xFFF),
                                self.otype, self.flags)

    def set_flags(self, flags):
        """CSetFlags: replace the flags field."""
        tag = self.tag and not self.is_sealed
        return Capability._make(tag, self.addr, self.bounds, self.perms,
                                self.otype, flags & 0x1)

    def seal_entry(self):
        """CSealEntry: seal as a sentry (jump-target-only) capability."""
        return Capability._make(self.tag, self.addr, self.bounds, self.perms,
                                OTYPE_SENTRY, self.flags)

    def unseal_entry(self):
        """Implicit sentry unsealing performed by CJALR."""
        return Capability._make(self.tag, self.addr, self.bounds, self.perms,
                                OTYPE_UNSEALED, self.flags)


#: The canonical null capability: untagged, zero everywhere.
CAP_NULL = Capability()


def root_capability(perms=None):
    """The almighty root: whole address space, all permissions, tagged.

    The runtime derives every other capability (stacks, heap buffers,
    kernel arguments, scratchpad windows) from this, mirroring how the
    host CPU seeds the GPU in the paper's evaluation SoC.
    """
    bounds, exact, base, top = concentrate.encode_bounds(0, 1 << ADDR_BITS)
    assert exact and base == 0 and top == 1 << ADDR_BITS
    if perms is None:
        perms = Perms.all_perms()
    return Capability(tag=True, addr=0, bounds=bounds, perms=perms)
