"""Experiment drivers: regenerate every table and figure of the paper."""

from repro.eval.runner import (
    EVAL_GEOMETRY,
    RunResult,
    clear_cache,
    config_for,
    run_benchmark,
    run_suite,
)

__all__ = [
    "EVAL_GEOMETRY",
    "RunResult",
    "clear_cache",
    "config_for",
    "run_benchmark",
    "run_suite",
]
