"""Benchmark runner with memoised results.

Each (benchmark, configuration) simulation runs once per process; every
experiment that needs it reuses the cached result.  The evaluation
geometry is a scaled-down SM (8 warps x 8 lanes rather than the paper's
64 x 32) so the full suite simulates in seconds; storage and area figures
are always *reported* at the paper's geometry via the area model.
"""

from dataclasses import dataclass

from repro.benchsuite import ALL_BENCHMARKS, BENCHMARK_NAMES
from repro.nocl import NoCLRuntime
from repro.simt import SMConfig, SMStats

#: Simulated SM geometry for the evaluation runs.  Plenty of warps are
#: needed to mask DRAM latency, exactly as the paper uses 64 warps on
#: FPGA (section 4.1); the thread count stays square so the tiled kernels
#: get an integral tile size.
EVAL_GEOMETRY = dict(num_warps=32, num_lanes=8)

#: The named configurations of the evaluation (paper section 4.1 + 4.7).
CONFIG_NAMES = ("baseline", "cheri", "cheri_opt", "boundscheck")


def config_for(name, **overrides):
    """Build (mode, SMConfig) for a named evaluation configuration."""
    geometry = dict(EVAL_GEOMETRY)
    geometry.update(overrides)
    if name == "baseline":
        return "baseline", SMConfig.baseline(**geometry)
    if name == "cheri":
        return "purecap", SMConfig.cheri(**geometry)
    if name == "cheri_opt":
        return "purecap", SMConfig.cheri_optimised(**geometry)
    if name == "cheri_opt_no_nvo":
        cfg = SMConfig.cheri_optimised(**geometry).with_(nvo=False)
        return "purecap", cfg
    # Ablations: the optimised configuration minus one technique each.
    if name == "cheri_opt_split_vrf":
        cfg = SMConfig.cheri_optimised(**geometry).with_(shared_vrf=False)
        return "purecap", cfg
    if name == "cheri_opt_dual_port_srf":
        cfg = SMConfig.cheri_optimised(**geometry).with_(
            metadata_srf_single_port=False)
        return "purecap", cfg
    if name == "cheri_opt_lane_bounds":
        cfg = SMConfig.cheri_optimised(**geometry).with_(
            sfu_cheri_slow_path=False)
        return "purecap", cfg
    if name == "cheri_opt_dynamic_pcc":
        cfg = SMConfig.cheri_optimised(**geometry).with_(
            static_pc_metadata=False)
        return "purecap", cfg
    if name == "boundscheck":
        return "boundscheck", SMConfig.baseline(**geometry)
    raise ValueError("unknown configuration %r" % name)


@dataclass
class RunResult:
    """One verified benchmark run."""

    benchmark: str
    config_name: str
    mode: str
    stats: SMStats
    config: SMConfig


_CACHE = {}


def clear_cache():
    _CACHE.clear()


def run_benchmark(name, config_name, scale=1, **overrides):
    """Run one benchmark under a named configuration (memoised)."""
    key = (name, config_name, scale, tuple(sorted(overrides.items())))
    if key in _CACHE:
        return _CACHE[key]
    mode, config = config_for(config_name, **overrides)
    bench = ALL_BENCHMARKS[name]
    rt = NoCLRuntime(mode, config=config)
    stats = bench.run(rt, scale=scale)
    result = RunResult(name, config_name, mode, stats, config)
    _CACHE[key] = result
    return result


def run_suite(config_name, scale=1, **overrides):
    """Run the whole Table 1 suite under one configuration."""
    return {
        name: run_benchmark(name, config_name, scale, **overrides)
        for name in BENCHMARK_NAMES
    }


def geomean(values):
    """Geometric mean of (1 + x) ratios expressed as overheads."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= (1.0 + value)
    return product ** (1.0 / len(values)) - 1.0
