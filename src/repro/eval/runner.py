"""Benchmark runner: memoised, parallel, and disk-cached.

Three layers keep experiment turnaround short:

1. **In-process memo** — each (benchmark, mode, config, scale) simulation
   runs once per process; every experiment that needs it reuses the
   result.  The memo key includes the fully-resolved :class:`SMConfig`
   (which embodies ``EVAL_GEOMETRY`` plus any overrides) and the runtime
   mode, so editing the evaluation geometry or adding a config alias can
   never alias two different simulations.
2. **Parallel fan-out** — :func:`run_suite` distributes uncached runs
   across worker processes (``jobs=`` controls the width, defaulting to
   ``os.cpu_count()``); results are merged back into the memo.
3. **Persistent disk cache** — finished runs are pickled under
   ``results/.simcache/`` keyed by a content hash of the compiled kernel
   binaries, the SMConfig fields, the scale, and a digest of the
   simulator's own sources, so any change to the simulator, compiler, or
   benchmark inputs invalidates stale entries automatically.  Disable
   with :func:`set_disk_cache` (or ``--no-cache`` on the CLI) and wipe
   with ``clear_cache(disk=True)``.

The evaluation geometry is a scaled-down SM (32 warps x 8 lanes rather
than the paper's 64 x 32) so the full suite simulates in seconds; storage
and area figures are always *reported* at the paper's geometry via the
area model.
"""

import hashlib
import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field

from repro.benchsuite import ALL_BENCHMARKS, BENCHMARK_NAMES
from repro.nocl import NoCLRuntime
from repro.obs.telemetry import active_tracer
from repro.simt import SMConfig, SMStats

#: Simulated SM geometry for the evaluation runs.  Plenty of warps are
#: needed to mask DRAM latency, exactly as the paper uses 64 warps on
#: FPGA (section 4.1); the thread count stays square so the tiled kernels
#: get an integral tile size.
EVAL_GEOMETRY = dict(num_warps=32, num_lanes=8)

#: The named configurations of the evaluation (paper section 4.1 + 4.7).
CONFIG_NAMES = ("baseline", "cheri", "cheri_opt", "boundscheck")

#: Manual salt for the on-disk cache format.  Bump when the pickle layout
#: of RunResult/SMStats changes in a way the source digest cannot see.
_DISK_FORMAT = 1


def config_for(name, **overrides):
    """Build (mode, SMConfig) for a named evaluation configuration."""
    geometry = dict(EVAL_GEOMETRY)
    geometry.update(overrides)
    if name == "baseline":
        return "baseline", SMConfig.baseline(**geometry)
    if name == "cheri":
        return "purecap", SMConfig.cheri(**geometry)
    if name == "cheri_opt":
        return "purecap", SMConfig.cheri_optimised(**geometry)
    if name == "cheri_opt_no_nvo":
        cfg = SMConfig.cheri_optimised(**geometry).with_(nvo=False)
        return "purecap", cfg
    # Ablations: the optimised configuration minus one technique each.
    if name == "cheri_opt_split_vrf":
        cfg = SMConfig.cheri_optimised(**geometry).with_(shared_vrf=False)
        return "purecap", cfg
    if name == "cheri_opt_dual_port_srf":
        cfg = SMConfig.cheri_optimised(**geometry).with_(
            metadata_srf_single_port=False)
        return "purecap", cfg
    if name == "cheri_opt_lane_bounds":
        cfg = SMConfig.cheri_optimised(**geometry).with_(
            sfu_cheri_slow_path=False)
        return "purecap", cfg
    if name == "cheri_opt_dynamic_pcc":
        cfg = SMConfig.cheri_optimised(**geometry).with_(
            static_pc_metadata=False)
        return "purecap", cfg
    if name == "boundscheck":
        return "boundscheck", SMConfig.baseline(**geometry)
    raise ValueError("unknown configuration %r" % name)


@dataclass
class RunMeta:
    """Provenance of one RunResult: where it came from and what it cost."""

    source: str = "sim"        # "sim" | "disk"
    wall_seconds: float = 0.0  # simulation wall-clock (0.0 for disk hits)
    #: JIT-tier counters (``JITBackend.jit_summary()``) when the run
    #: executed on the jit backend; None otherwise.  Purely diagnostic:
    #: not part of the verified statistics and never compared.
    jit: dict = None
    #: Per-kernel optimizer reports (``CompiledKernel.opt_report``) when
    #: the run compiled at -O1; None otherwise.  Diagnostic side-band,
    #: surfaced in manifests and ``repro profile``.
    opt: dict = None


@dataclass
class RunResult:
    """One verified benchmark run."""

    benchmark: str
    config_name: str
    mode: str
    stats: SMStats
    config: SMConfig
    meta: RunMeta = None


@dataclass
class RunnerStats:
    """Process-wide cache behaviour and simulation-time counters.

    Safe under concurrent use: the simulation service (``repro.serve``)
    issues overlapping :func:`run_benchmark` calls from executor threads,
    so every mutation goes through :meth:`bump` under one lock and
    :meth:`snapshot` returns a consistent point-in-time copy.
    """

    memo_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    sim_seconds: float = 0.0
    manifest_write_failures: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def bump(self, memo_hits=0, disk_hits=0, misses=0, sim_seconds=0.0,
             manifest_write_failures=0):
        with self._lock:
            self.memo_hits += memo_hits
            self.disk_hits += disk_hits
            self.misses += misses
            self.sim_seconds += sim_seconds
            self.manifest_write_failures += manifest_write_failures

    def snapshot(self):
        with self._lock:
            return dict(memo_hits=self.memo_hits, disk_hits=self.disk_hits,
                        misses=self.misses,
                        sim_seconds=round(self.sim_seconds, 3),
                        manifest_write_failures=
                        self.manifest_write_failures)

    def reset(self):
        with self._lock:
            self.memo_hits = self.disk_hits = self.misses = 0
            self.sim_seconds = 0.0
            self.manifest_write_failures = 0


#: Counters for this process (reset with ``RUNNER_STATS.reset()``).
RUNNER_STATS = RunnerStats()

#: Guards the in-process memo (``_CACHE``) and the lazy source digest;
#: the per-counter lock lives inside :class:`RunnerStats`.
_LOCK = threading.RLock()

_CACHE = {}
_disk_enabled = True
_manifests_enabled = True

#: Source trees whose content participates in the disk-cache key: any
#: edit to the simulator, ISA, compiler, or benchmark inputs must
#: invalidate previously cached statistics.
_DIGEST_PACKAGES = ("simt", "cheri", "memory", "isa", "nocl", "benchsuite")


def set_disk_cache(enabled):
    """Globally enable/disable the persistent disk cache."""
    global _disk_enabled
    _disk_enabled = bool(enabled)


def set_manifests(enabled):
    """Globally enable/disable run-manifest emission from run_suite."""
    global _manifests_enabled
    _manifests_enabled = bool(enabled)


def cache_dir():
    """Location of the persistent result cache (``results/.simcache``)."""
    override = os.environ.get("REPRO_SIMCACHE_DIR")
    if override:
        return override
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    return os.path.join(root, "results", ".simcache")


def clear_cache(disk=False):
    """Drop the in-process memo (and optionally the on-disk cache)."""
    with _LOCK:
        _CACHE.clear()
    if disk:
        directory = cache_dir()
        if os.path.isdir(directory):
            for entry in os.listdir(directory):
                if entry.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(directory, entry))
                    except OSError:
                        pass


_sources_digest_memo = None


def _sources_digest():
    """SHA-256 over every simulator source file (cache-key ingredient)."""
    global _sources_digest_memo
    with _LOCK:
        if _sources_digest_memo is not None:
            return _sources_digest_memo
        import repro
        pkg_root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        h.update(b"format:%d" % _DISK_FORMAT)
        for package in _DIGEST_PACKAGES:
            base = os.path.join(pkg_root, package)
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames.sort()
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, filename)
                    h.update(os.path.relpath(path, pkg_root).encode())
                    with open(path, "rb") as stream:
                        h.update(stream.read())
        _sources_digest_memo = h.digest()
    return _sources_digest_memo


def _kernel_digest(name, mode, opt=0):
    """Hash of the benchmark's compiled kernel binaries under ``mode``.

    The kernels are discovered the same way the CLI's ``listing`` command
    finds them: every :class:`KernelSource` bound in the benchmark's
    module, compiled at the run's optimization level — so -O0 and -O1
    results can never alias even before the config repr is hashed.
    Compiling is milliseconds; simulating is seconds, so paying a compile
    per cache probe is a bargain for content-exact keys.
    """
    import inspect

    from repro.nocl.compiler import compile_kernel
    from repro.nocl.dsl import KernelSource
    bench = ALL_BENCHMARKS[name]
    mod = inspect.getmodule(type(bench))
    h = hashlib.sha256()
    for attr, obj in sorted(vars(mod).items()):
        if isinstance(obj, KernelSource):
            words = compile_kernel(obj, mode, opt=opt).to_binary()
            h.update(attr.encode())
            h.update(repr(words).encode())
    return h.digest()


def _disk_key(name, mode, config, scale):
    h = hashlib.sha256()
    h.update(_sources_digest())
    h.update(repr((name, mode, scale,
                   sorted(asdict(config).items()))).encode())
    h.update(_kernel_digest(name, mode, opt=getattr(config, "opt", 0)))
    return h.hexdigest()


def _disk_load(name, config_name, mode, config, scale):
    path = os.path.join(cache_dir(),
                        _disk_key(name, mode, config, scale) + ".pkl")
    if not os.path.exists(path):
        return None
    try:
        with open(path, "rb") as stream:
            result = pickle.load(stream)
    except Exception:
        # Corrupt/truncated entry: treat as a miss and drop it.
        try:
            os.unlink(path)
        except OSError:
            pass
        return None
    # Re-label: different config aliases can resolve to the same content
    # key (e.g. an overridden cheri_opt equals an ablation config).
    result.config_name = config_name
    # Optimizer reports are deterministic per (kernel, config) — unlike
    # the runtime JIT counters, they survive the cache so -O1 manifests
    # carry per-pass data whether the run simulated or hit disk.
    result.meta = RunMeta(source="disk", wall_seconds=0.0,
                          opt=getattr(result.meta, "opt", None))
    return result


def _disk_store(result, mode, scale):
    directory = cache_dir()
    path = os.path.join(
        directory,
        _disk_key(result.benchmark, mode, result.config, scale) + ".pkl")
    try:
        os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "wb") as stream:
            pickle.dump(result, stream, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:
        pass  # a read-only checkout never blocks experiments


def _simulate(name, config_name, mode, config, scale):
    bench = ALL_BENCHMARKS[name]
    rt = NoCLRuntime(mode, config=config)
    tracer = active_tracer()
    span_cm = (tracer.span("simulate",
                           attrs={"benchmark": name, "config": config_name,
                                  "scale": scale,
                                  "backend": getattr(config, "backend", "")})
               if tracer is not None else nullcontext())
    with span_cm as span:
        start = time.perf_counter()
        stats = bench.run(rt, scale=scale)
        elapsed = time.perf_counter() - start
    backend = rt.sm.backend
    jit = (backend.jit_summary() if hasattr(backend, "jit_summary")
           else None)
    if tracer is not None and jit:
        codegen = jit.get("codegen_seconds") or 0.0
        if codegen > 0 and span.end is not None:
            # The JIT compiles lazily inside the simulation, so there is
            # no live span to time; synthesise one from its own counter,
            # anchored at the end of the simulate span.
            tracer.record(tracer.start_span(
                "jit.codegen", parent=span,
                start=span.end - codegen,
                attrs={"regions": jit.get("compiled_regions", 0)}),
                end=span.end)
    opt_reports = None
    if getattr(config, "opt", 0):
        opt_reports = {
            program.name: program.opt_report
            for program in rt._compiled.values()
            if program.opt_report is not None
        } or None
    return RunResult(name, config_name, mode, stats, config,
                     meta=RunMeta(source="sim", wall_seconds=elapsed,
                                  jit=jit, opt=opt_reports))


def job_key(name, config_name, scale=1, **overrides):
    """Content-addressed identity of one benchmark run (hex digest).

    This is exactly the persistent disk-cache key: it covers the compiled
    kernel binaries, the fully-resolved :class:`SMConfig`, the scale, and
    the simulator source digest.  Two submissions with the same key are
    guaranteed to produce bit-identical statistics, which is what lets
    the simulation service (``repro.serve``) coalesce duplicate jobs.
    """
    mode, config = config_for(config_name, **overrides)
    return _disk_key(name, mode, config, scale)


def probe_disk(name, config_name, scale=1, **overrides):
    """Non-executing cache probe: the :class:`RunResult` or ``None``.

    A hit is merged into the in-process memo (and counted), so a later
    :func:`run_benchmark` for the same key is a memo hit.
    """
    if not _disk_enabled:
        return None
    mode, config = config_for(config_name, **overrides)
    key = (name, config_name, mode, config, scale)
    with _LOCK:
        result = _CACHE.get(key)
    if result is not None:
        return result
    result = _disk_load(name, config_name, mode, config, scale)
    if result is not None:
        RUNNER_STATS.bump(disk_hits=1)
        with _LOCK:
            _CACHE[key] = result
    return result


def run_benchmark(name, config_name, scale=1, **overrides):
    """Run one benchmark under a named configuration (memoised).

    Results come from, in order: the in-process memo, the persistent disk
    cache (unless disabled), or a fresh simulation.  ``overrides`` are
    :class:`SMConfig` field overrides applied on top of the evaluation
    geometry.  Reentrant: overlapping calls from several threads (the
    simulation service does this) see a consistent memo; the scheduler
    above is responsible for not simulating the same key twice in
    parallel.

    With a process tracer installed (:func:`repro.obs.telemetry.install`)
    the call is timed as a ``runner.run`` span whose ``source`` attr
    records where the result came from; without one, nothing is touched
    — the statistics are bit-identical either way (pinned by the
    equivalence suite).
    """
    tracer = active_tracer()
    if tracer is not None:
        with tracer.span("runner.run",
                         attrs={"benchmark": name, "config": config_name,
                                "scale": scale}) as span:
            result = _run_benchmark(name, config_name, scale, **overrides)
            span.set_attr("source",
                          result.meta.source if result.meta else "?")
        return result
    return _run_benchmark(name, config_name, scale, **overrides)


def _run_benchmark(name, config_name, scale, **overrides):
    mode, config = config_for(config_name, **overrides)
    key = (name, config_name, mode, config, scale)
    with _LOCK:
        result = _CACHE.get(key)
    if result is not None:
        RUNNER_STATS.bump(memo_hits=1)
        return result
    if _disk_enabled:
        result = _disk_load(name, config_name, mode, config, scale)
        if result is not None:
            RUNNER_STATS.bump(disk_hits=1)
            with _LOCK:
                _CACHE[key] = result
            return result
    result = _simulate(name, config_name, mode, config, scale)
    RUNNER_STATS.bump(misses=1, sim_seconds=result.meta.wall_seconds)
    with _LOCK:
        _CACHE[key] = result
    if _disk_enabled:
        _disk_store(result, mode, scale)
    return result


def _worker_run(name, config_name, scale, overrides_items):
    """Top-level worker entry point (must be picklable)."""
    return run_benchmark(name, config_name, scale, **dict(overrides_items))


def run_suite(config_name, scale=1, jobs=None, **overrides):
    """Run the whole Table 1 suite under one configuration.

    ``jobs`` bounds the number of worker processes used for runs that are
    in neither the memo nor the disk cache; ``None`` means
    ``os.cpu_count()`` and ``1`` forces a serial in-process run.  Worker
    results are merged into the in-process memo (and the disk cache), so
    repeated calls are hits regardless of how the first call ran.
    """
    suite_start = time.perf_counter()
    results = {}
    pending = []
    for name in BENCHMARK_NAMES:
        mode, config = config_for(config_name, **overrides)
        key = (name, config_name, mode, config, scale)
        with _LOCK:
            cached = _CACHE.get(key)
        if cached is None and _disk_enabled:
            cached = _disk_load(name, config_name, mode, config, scale)
            if cached is not None:
                RUNNER_STATS.bump(disk_hits=1)
                with _LOCK:
                    _CACHE[key] = cached
        elif cached is not None:
            RUNNER_STATS.bump(memo_hits=1)
        if cached is not None:
            results[name] = cached
        else:
            pending.append((name, key))
    if pending:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs > 1 and len(pending) > 1:
            overrides_items = tuple(sorted(overrides.items()))
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending))) as pool:
                futures = [
                    (name, key,
                     pool.submit(_worker_run, name, config_name, scale,
                                 overrides_items))
                    for name, key in pending
                ]
                for name, key, future in futures:
                    result = future.result()
                    RUNNER_STATS.bump(
                        misses=1, sim_seconds=result.meta.wall_seconds)
                    with _LOCK:
                        _CACHE[key] = result
                    results[name] = result
        else:
            for name, _key in pending:
                results[name] = run_benchmark(name, config_name, scale,
                                              **overrides)
    ordered = {name: results[name] for name in BENCHMARK_NAMES}
    if _manifests_enabled:
        _emit_manifest(ordered, config_name, scale,
                       time.perf_counter() - suite_start)
    return ordered


def _emit_manifest(results, config_name, scale, wall_seconds):
    """Write the structured run manifest for one suite invocation.

    Best-effort by design: a broken or read-only manifest directory must
    never fail an experiment run — but a failure is never *silent*
    either: it logs one line and bumps the process-wide
    ``manifest_write_failures`` counter (carried in every later
    manifest's ``runner_counters`` and flagged by ``repro obs
    report``), so lost provenance stays visible.
    """
    import sys
    from repro.obs import manifest as mf
    try:
        manifest = mf.build_manifest(
            results, config_name, scale, wall_seconds,
            sources_digest=_sources_digest().hex(),
            runner_counters=RUNNER_STATS.snapshot())
        # write_manifest itself swallows filesystem errors and returns
        # None — the common failure (read-only results dir) surfaces as
        # that None, not as an exception.
        path = mf.write_manifest(manifest)
        reason = "results dir not writable" if path is None else None
    except Exception as exc:
        path = None
        reason = "%s: %s" % (type(exc).__name__, exc)
    if reason is not None:
        RUNNER_STATS.bump(manifest_write_failures=1)
        print("warning: run manifest write failed (%s) — provenance "
              "for this suite invocation was not recorded"
              % reason, file=sys.stderr)
    return path


def geomean(values):
    """Geometric mean of (1 + x) ratios expressed as overheads."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= (1.0 + value)
    return product ** (1.0 / len(values)) - 1.0
