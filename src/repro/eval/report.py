"""Plain-text rendering of experiment results (the paper's rows/series).

Besides the ``render_*`` table formatters, :func:`to_jsonable` and
:func:`write_structured` turn the same experiment outputs into JSON, so
every regenerated table also lands machine-readable under ``results/``
(consumed by plotting scripts and the manifest ``diff`` workflow).
"""

import json
import os


def pct(value):
    return "%+.1f%%" % (100.0 * value)


def to_jsonable(value):
    """Recursively convert experiment output into JSON-serialisable data.

    Experiments return plain rows (lists of dicts/tuples) but keys and
    leaves can be opcodes, Counters, sets, or dataclasses; normalise all
    of them so ``json.dump`` never trips.
    """
    from dataclasses import asdict, is_dataclass
    if isinstance(value, dict):
        return {str(getattr(k, "name", k)): to_jsonable(v)
                for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(v) for v in value)
    if is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(asdict(value))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "name"):  # enum-ish (opcodes)
        return value.name
    return str(value)


def write_structured(directory, name, data):
    """Write ``data`` as ``<directory>/<name>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(str(directory), "%s.json" % name)
    with open(path, "w") as stream:
        json.dump(to_jsonable(data), stream, indent=1, sort_keys=True)
        stream.write("\n")
    return path


def render_fig6(series):
    lines = ["Figure 6: CHERI instruction execution frequency"]
    for name, fraction in series:
        bar = "#" * max(1, int(400 * fraction))
        lines.append("  %-16s %6.2f%%  %s" % (name, 100 * fraction, bar))
    return "\n".join(lines)


def render_table2(rows):
    lines = [
        "Table 2: register-file compression (baseline, paper geometry)",
        "  %-18s %-12s %-10s %-10s %-10s" % (
            "VRF (registers)", "Storage(Kb)", "Ratio", "Cycle ovh",
            "Mem ovh"),
    ]
    for row in rows:
        lines.append("  %-18s %-12d 1:%.2f     %-10s %-10s" % (
            "%d (%s)" % (row["vrf_registers"], _frac(row["fraction"])),
            row["storage_kb"], row["compress_ratio"],
            pct(row["cycle_overhead"]), pct(row["mem_access_overhead"])))
    return "\n".join(lines)


def _frac(fraction):
    from fractions import Fraction
    f = Fraction(fraction).limit_denominator(16)
    return "%d/%d" % (f.numerator, f.denominator)


def render_fig10(rows):
    lines = [
        "Figure 10: registers resident as vectors in the VRF (lower=better)",
        "  %-12s %8s %10s %12s" % ("benchmark", "gp", "meta+NVO",
                                   "meta-no-NVO"),
    ]
    for row in rows:
        lines.append("  %-12s %7.2f%% %9.2f%% %11.2f%%" % (
            row["benchmark"], 100 * row["gp"], 100 * row["meta_nvo"],
            100 * row["meta_no_nvo"]))
    return "\n".join(lines)


def render_fig11(series):
    lines = ["Figure 11: registers per thread holding capabilities (of 32)"]
    for name, count in series:
        lines.append("  %-12s %2d %s" % (name, count, "#" * count))
    return "\n".join(lines)


def render_fig12(rows):
    lines = [
        "Figure 12: DRAM traffic with/without CHERI",
        "  %-12s %14s %14s %8s" % ("benchmark", "baseline(B)",
                                   "CHERI(B)", "ratio"),
    ]
    for row in rows:
        lines.append("  %-12s %14d %14d %7.3fx" % (
            row["benchmark"], row["baseline_bytes"], row["cheri_bytes"],
            row["ratio"]))
    return "\n".join(lines)


def render_overheads(title, rows, mean):
    lines = [title]
    for name, overhead in rows:
        lines.append("  %-12s %8s" % (name, pct(overhead)))
    lines.append("  %-12s %8s" % ("geomean", pct(mean)))
    return "\n".join(lines)


def render_table3(rows):
    lines = [
        "Table 3: synthesis results (area model, paper geometry)",
        "  %-20s %10s %6s %12s %6s" % ("Configuration", "ALMs", "DSPs",
                                       "BRAM (Kb)", "Fmax"),
    ]
    for name, alms, dsps, bram, fmax in rows:
        lines.append("  %-20s %10d %6d %12d %6d" % (name, alms, dsps,
                                                    bram, fmax))
    return "\n".join(lines)


def render_fig7(costs):
    lines = ["Figure 7: CheriCapLib function costs (ALMs)"]
    for name, alms in costs.items():
        lines.append("  %-18s %5d" % (name, alms))
    lines.append("  (reference: 32-bit multiplier = 567 ALMs)")
    return "\n".join(lines)
